//! # hierarchical-queries
//!
//! A production-quality Rust implementation of
//! *A Unifying Algorithm for Hierarchical Queries*
//! (Abo Khamis, Comer, Kolaitis, Roy, Tannen — PODS 2025,
//! arXiv:2506.10238).
//!
//! One polynomial-time algorithm — Algorithm 1 over an abstract
//! **2-monoid** — solves three classically separate problems for
//! hierarchical self-join-free Boolean conjunctive queries:
//!
//! * **Probabilistic Query Evaluation** over tuple-independent
//!   databases ([`unify::pqe`]),
//! * **Bag-Set Maximization** — maximize the bag-set value of `Q` by
//!   adding at most `θ` facts from a repair database ([`unify::bsm`]),
//! * **Shapley value computation** for facts ([`unify::shapley`]).
//!
//! This facade crate re-exports the whole workspace: exact arithmetic
//! ([`arith`]), the database substrate ([`db`]), query analysis
//! ([`query`]), the 2-monoid algebra ([`monoid`]), the unifying engine
//! ([`unify`]), and the exponential baselines ([`baselines`]).
//!
//! ## Quickstart
//!
//! ```
//! use hierarchical_queries::prelude::*;
//!
//! // Parse the paper's running query (Eq. 1) and check it is
//! // hierarchical.
//! let q = parse_query("Q() :- R(A,B), S(A,C), T(A,C,D)").unwrap();
//! assert!(is_hierarchical(&q));
//!
//! // A tuple-independent database: the Fig. 1 instance, p = 1/2 each.
//! let (d, interner) = db_from_ints(&[
//!     ("R", &[&[1, 5]]),
//!     ("S", &[&[1, 1], &[1, 2]]),
//!     ("T", &[&[1, 2, 4]]),
//! ]);
//! let tid: Vec<_> = d.facts().into_iter().map(|f| (f, 0.5)).collect();
//! let p = pqe::probability(&q, &interner, &tid).unwrap();
//! assert!((p - 0.125).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hq_arith as arith;
pub use hq_baselines as baselines;
pub use hq_db as db;
pub use hq_monoid as monoid;
pub use hq_query as query;
pub use hq_unify as unify;

pub use hq_unify::{bsm, pqe, shapley};

/// The most commonly used items in one import.
pub mod prelude {
    pub use hq_arith::{Natural, Rational};
    pub use hq_db::{db_from_ints, Database, Fact, Interner, Tuple, Value};
    pub use hq_monoid::{
        BagMaxMonoid, BoolMonoid, CountMonoid, ExactProbMonoid, ProbMonoid, ProvMonoid,
        SatCountMonoid, TwoMonoid,
    };
    pub use hq_query::{
        is_hierarchical, parse_query, plan, q_hierarchical, q_non_hierarchical, Query,
    };
    pub use hq_unify::{
        bsm, evaluate, evaluate_on, pqe, provenance_tree, shapley, Backend, EngineStats, UnifyError,
    };
}
