//! Probabilistic sensor network — the PQE instantiation on a realistic
//! monitoring scenario.
//!
//! A building has noisy presence sensors. Each reading is a
//! tuple-independent probabilistic fact:
//!
//! * `Reading(room, sensor)` — sensor fired in a room (prob = sensor
//!   reliability),
//! * `Calibrated(sensor)`    — the sensor is currently calibrated,
//! * `Critical(room)`        — the room is on the critical list
//!   (certain facts, probability 1).
//!
//! The alarm condition is the hierarchical query
//! `Q() :- Critical(R), Reading(R, S), Calibrated(S)`? — careful: that
//! query is NOT hierarchical (it is the R–S–T pattern!). The example
//! demonstrates the dichotomy on real modelling choices: the safe
//! variant keys calibration by (room, sensor) pairs, restoring the
//! hierarchy, and the unifying algorithm evaluates it exactly; for the
//! non-hierarchical variant we must fall back to exponential
//! enumeration or Monte-Carlo estimation.
//!
//! Run with: `cargo run --release --example sensor_network`

use hierarchical_queries::baselines;
use hierarchical_queries::prelude::*;

fn main() {
    let mut interner = Interner::new();
    let mut rng = hierarchical_queries::db::generate::rng(2024);

    // Build the scenario: 6 rooms × 3 sensors each.
    let reading = interner.intern("Reading");
    let calibrated = interner.intern("CalibratedAt");
    let critical = interner.intern("Critical");
    let mut tid: Vec<(Fact, f64)> = Vec::new();
    for room in 0..6i64 {
        // Rooms 0 and 1 are critical (certain knowledge).
        if room < 2 {
            tid.push((Fact::new(critical, Tuple::ints(&[room])), 1.0));
        }
        for sensor in 0..3i64 {
            let sensor_id = room * 10 + sensor;
            let reliability = 0.5 + 0.1 * sensor as f64;
            tid.push((
                Fact::new(reading, Tuple::ints(&[room, sensor_id])),
                reliability,
            ));
            // Calibration recorded per (room, sensor) deployment.
            tid.push((Fact::new(calibrated, Tuple::ints(&[room, sensor_id])), 0.9));
        }
    }

    // Hierarchical variant: calibration keyed by (room, sensor).
    // at(R) ⊇ at(S): Reading(R,S), CalibratedAt(R,S), Critical(R).
    let q = parse_query("Q() :- Critical(R), Reading(R, S), CalibratedAt(R, S)").unwrap();
    assert!(is_hierarchical(&q));
    let p = pqe::probability(&q, &interner, &tid).unwrap();
    println!("alarm query: {q}");
    println!("P(some critical room has a calibrated, firing sensor) = {p:.6}");

    // Cross-check against Monte-Carlo sampling.
    let est = baselines::probability_monte_carlo(&q, &interner, &tid, 30_000, &mut rng);
    println!("Monte-Carlo (30k samples) ............................ {est:.4}");
    assert!(
        (p - est).abs() < 0.02,
        "estimator should agree with exact value"
    );

    // Non-hierarchical variant: calibration as a global per-sensor
    // table — the classic R(X), S(X,Y), T(Y) hard pattern.
    let q_bad = parse_query("Q() :- Critical(R), Reading(R, S), CalibratedGlobal(S)").unwrap();
    assert!(!is_hierarchical(&q_bad));
    println!("\nnon-hierarchical variant: {q_bad}");
    match pqe::probability(&q_bad, &interner, &tid) {
        Err(e) => println!("unifying algorithm correctly refuses: {e}"),
        Ok(_) => unreachable!("must be rejected"),
    }

    // For a small instance, the exponential baseline still works.
    let calibrated_global = interner.intern("CalibratedGlobal");
    let mut small: Vec<(Fact, f64)> = Vec::new();
    small.push((Fact::new(critical, Tuple::ints(&[0])), 1.0));
    for sensor in 0..4i64 {
        small.push((Fact::new(reading, Tuple::ints(&[0, sensor])), 0.6));
        small.push((Fact::new(calibrated_global, Tuple::ints(&[sensor])), 0.9));
    }
    let p_bad = baselines::probability_exhaustive(&q_bad, &interner, &small);
    println!(
        "small instance ({} facts) via possible worlds ........ {p_bad:.6}",
        small.len()
    );
    println!("\n(the dichotomy in practice: schema design decides which side you are on)");
}
