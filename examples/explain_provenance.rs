//! Explaining query answers with Shapley values — the third
//! instantiation, on an audit scenario.
//!
//! A compliance check fired: some employee can reach a restricted
//! resource. The access rules are fixed policy (exogenous facts); the
//! grants and group memberships were entered by admins over time
//! (endogenous facts). "Which admin-entered fact is most responsible?"
//! is exactly the Shapley attribution the paper computes:
//!
//! ```text
//! Q() :- Member(E, G), Grant(E, G, Res)
//! ```
//!
//! (hierarchical: `at(Res)` is private to `Grant`, and
//! `at(E) = at(G) = {Member, Grant}`.)
//!
//! Run with: `cargo run --release --example explain_provenance`

use hierarchical_queries::baselines;
use hierarchical_queries::prelude::*;

fn main() {
    let q = parse_query("Q() :- Member(E, G), Grant(E, G, Res)").unwrap();
    assert!(is_hierarchical(&q));
    println!("audit query: {q}\n");

    let mut interner = Interner::new();
    let member = interner.intern("Member");
    let grant = interner.intern("Grant");

    // Employees 1..3, groups 10/11, restricted resource 99.
    // Endogenous: admin-entered memberships and grants.
    let mut endo_db = Database::new();
    endo_db.insert_tuple(member, Tuple::ints(&[1, 10]));
    endo_db.insert_tuple(member, Tuple::ints(&[2, 10]));
    endo_db.insert_tuple(member, Tuple::ints(&[3, 11]));
    endo_db.insert_tuple(grant, Tuple::ints(&[1, 10, 99]));
    endo_db.insert_tuple(grant, Tuple::ints(&[2, 10, 99]));
    // A grant for a group nobody (endogenously) belongs to:
    endo_db.insert_tuple(grant, Tuple::ints(&[4, 12, 99]));
    let endogenous = endo_db.facts();

    let values = shapley::shapley_values(&q, &interner, &[], &endogenous).unwrap();
    let mut ranked: Vec<(String, Rational)> = values
        .iter()
        .map(|(f, v)| (f.display(&interner).to_string(), v.clone()))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1));
    println!("responsibility ranking (exact Shapley values):");
    for (fact, v) in &ranked {
        println!("  {:<22} {:<8} ≈ {:.4}", fact, v.to_string(), v.to_f64());
    }

    // Sanity checks every attribution method should satisfy:
    let total = ranked.iter().fold(Rational::zero(), |acc, (_, v)| &acc + v);
    println!("\nefficiency: values sum to {total} (the query flips false→true)");
    let irrelevant = ranked.last().unwrap();
    assert_eq!(irrelevant.1, Rational::zero());
    println!("null player: {} has value 0 (joins nothing)", irrelevant.0);

    // Cross-check the top fact against the permutation definition.
    let top_fact = values
        .iter()
        .max_by(|a, b| a.1.cmp(&b.1))
        .expect("non-empty")
        .0
        .clone();
    let by_perm = baselines::shapley_by_permutations(&q, &interner, &[], &endogenous, &top_fact);
    assert_eq!(
        by_perm,
        values.iter().find(|(f, _)| *f == top_fact).unwrap().1,
        "Definition 5.12 verbatim agrees with the unifying algorithm"
    );
    println!(
        "\ncross-check: permutation-walk oracle confirms {}'s value",
        top_fact.display(&interner)
    );

    // What-if: the two symmetric member facts split credit evenly; make
    // one of them exogenous (trusted policy) and credit shifts.
    let (exo, endo2): (Vec<Fact>, Vec<Fact>) = endogenous
        .iter()
        .cloned()
        .partition(|f| f.display(&interner).to_string() == "Member(1, 10)");
    let values2 = shapley::shapley_values(&q, &interner, &exo, &endo2).unwrap();
    println!("\nafter trusting Member(1, 10) as fixed policy:");
    for (f, v) in &values2 {
        println!("  {:<22} {}", f.display(&interner).to_string(), v);
    }
}
