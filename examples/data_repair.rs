//! Data repair under a budget — the Bag-Set Maximization instantiation
//! on a data-integration scenario.
//!
//! A retailer's warehouse `D` is incomplete after a partial migration.
//! A staging area `D_r` holds candidate facts recovered from backups,
//! but each fact must be manually verified before re-insertion — so
//! only `θ` of them can be added. The analyst wants to maximise the
//! number of complete `(customer, order, shipment)` join results:
//!
//! ```text
//! Q() :- Customer(C, Region), Order(C, O), Shipment(C, O, Day)
//! ```
//!
//! which is hierarchical (`at(O) ⊆ at(C)`, `at(Region)`/`at(Day)`
//! private). The unifying algorithm returns the *whole budget curve* in
//! one run — exactly the marginal-value information needed to decide
//! how much verification effort is worth paying.
//!
//! Run with: `cargo run --release --example data_repair`

use hierarchical_queries::baselines;
use hierarchical_queries::prelude::*;

fn main() {
    let q = parse_query("Q() :- Customer(C, Rg), Order(C, O), Shipment(C, O, Day)").unwrap();
    assert!(is_hierarchical(&q));
    println!("repair query: {q}\n");

    let mut interner = Interner::new();
    let customer = interner.intern("Customer");
    let order = interner.intern("Order");
    let shipment = interner.intern("Shipment");

    // The surviving warehouse: two customers, a few orders, one shipment.
    let mut d = Database::new();
    for (c, rg) in [(1i64, 10i64), (2, 20)] {
        d.insert_tuple(customer, Tuple::ints(&[c, rg]));
    }
    for (c, o) in [(1i64, 100i64), (1, 101), (2, 200)] {
        d.insert_tuple(order, Tuple::ints(&[c, o]));
    }
    d.insert_tuple(shipment, Tuple::ints(&[1, 100, 5]));

    // The staging area: recovered facts awaiting verification.
    let mut d_r = Database::new();
    d_r.insert_tuple(customer, Tuple::ints(&[3, 30]));
    d_r.insert_tuple(order, Tuple::ints(&[3, 300]));
    d_r.insert_tuple(order, Tuple::ints(&[2, 201]));
    for (c, o, day) in [
        (1i64, 101i64, 6i64),
        (2, 200, 7),
        (2, 201, 7),
        (3, 300, 8),
        (1, 100, 9), // a second shipment day for an already-joined order
    ] {
        d_r.insert_tuple(shipment, Tuple::ints(&[c, o, day]));
    }

    println!(
        "warehouse D: {} facts; staging D_r: {} candidates",
        d.fact_count(),
        d_r.fact_count()
    );

    // One run yields the entire budget curve.
    let theta_max = 6;
    let sol = bsm::maximize(&q, &interner, &d, &d_r, theta_max).unwrap();
    println!("\nbudget curve (complete join results vs verified facts):");
    let mut prev = 0;
    for i in 0..=theta_max {
        let v = sol.value_at(i);
        let marginal = v - prev;
        println!("  verify {i} facts → {v} results (marginal +{marginal})");
        prev = v;
    }

    // The witness-tracking variant also says WHICH facts to verify —
    // the concrete worklist for the verification team, per budget.
    let with_repair = bsm::maximize_with_repair(&q, &interner, &d, &d_r, theta_max).unwrap();
    println!("\noptimal verification worklist per budget (from Algorithm 1):");
    for i in 0..=theta_max {
        let names: Vec<String> = with_repair
            .repair_at(i)
            .iter()
            .map(|f| f.display(&interner).to_string())
            .collect();
        println!(
            "  θ={i}: {}",
            if names.is_empty() {
                "(nothing)".into()
            } else {
                names.join(", ")
            }
        );
        assert_eq!(with_repair.value_at(i), sol.value_at(i));
    }

    // Cross-check the θ=3 optimum against exhaustive subset search.
    let brute = baselines::maximize_bruteforce(&q, &interner, &d, &d_r, 3);
    assert_eq!(brute.optimum, sol.value_at(3), "oracle agrees");
    println!(
        "\nθ=3 optimum confirmed by exhaustive search: {}",
        brute.optimum
    );
}
