//! A tour of the dichotomy: which queries are hierarchical, why, and
//! what it costs to be on the wrong side.
//!
//! Walks a zoo of queries through all three hierarchy
//! characterisations (pairwise `at(·)`, elimination procedure, witness
//! tree), then measures the unified-vs-exponential gap on a matched
//! Bag-Set Maximization instance built from the Theorem 4.4 reduction.
//!
//! Run with: `cargo run --release --example dichotomy_tour`

use hierarchical_queries::baselines;
use hierarchical_queries::db::generate::{planted_biclique, rng};
use hierarchical_queries::prelude::*;
use hierarchical_queries::query::{plan_with_order, witness_forest, PlanOrder};
use std::time::Instant;

fn main() {
    let zoo = [
        "Q() :- R(A, B), S(A, C), T(A, C, D)", // Eq. (1) — hierarchical
        "Q() :- E(X, Y), F(Y, Z)",             // Q_h — hierarchical
        "Q() :- R(X), S(X, Y), T(Y)",          // Q_nh — the hard pattern
        "Q() :- R(A, B), S(B, C), T(C, D)",    // chain — non-hierarchical
        "Q() :- R(A), S(B)",                   // disconnected — hierarchical
        "Q() :- R(A, B), S(A, B), T(A)",       // shared pair — hierarchical
        "Q() :- R(A, B), S(B, C), T(A, C)",    // triangle — non-hierarchical
    ];
    println!("{:<42} {:>6} {:>6} {:>6}", "query", "at(·)", "elim", "tree");
    for src in zoo {
        let q = parse_query(src).unwrap();
        let by_pairs = is_hierarchical(&q);
        let by_elim = plan(&q).is_ok();
        let by_tree = witness_forest(&q).is_some();
        assert_eq!(by_pairs, by_elim);
        assert_eq!(by_pairs, by_tree);
        println!("{src:<42} {by_pairs:>6} {by_elim:>6} {by_tree:>6}");
    }

    // All plan orders agree (Proposition 5.1: any application order
    // reaches the same conclusion).
    let q = parse_query(zoo[0]).unwrap();
    for order in [
        PlanOrder::Rule1First,
        PlanOrder::Rule2First,
        PlanOrder::Rule1HighVar,
    ] {
        let p = plan_with_order(&q, order).unwrap();
        assert_eq!(p.rule1_count(), q.var_count());
        assert_eq!(p.rule2_count(), q.atom_count() - 1);
    }
    println!(
        "\nall elimination orders reduce {q} in {} steps",
        q.var_count() + q.atom_count() - 1
    );

    // The cost of the wrong side: a planted-biclique BSM instance for
    // the non-hierarchical pattern (solvable only by search) vs a
    // same-size hierarchical instance (solved by Algorithm 1).
    println!("\nthe dichotomy, measured (Theorem 4.4 reduction, k=2):");
    let q_nh = q_non_hierarchical();
    for n in [6usize, 8, 10] {
        let g = planted_biclique(n, 2, 0.2, &mut rng(9));
        let inst = baselines::reduce_bcbs_to_bsm(&q_nh, &g, 2);
        let start = Instant::now();
        let yes = baselines::decide_bruteforce(
            &q_nh,
            &inst.interner,
            &inst.d,
            &inst.d_r,
            inst.theta,
            inst.tau,
        );
        let t_brute = start.elapsed();
        assert!(yes, "the planted biclique must be found");
        // A hierarchical BSM instance with the same repair-database size.
        let q_h = parse_query("Q() :- R(X), S2(X, Y), T2(X, Y)").unwrap();
        assert!(is_hierarchical(&q_h));
        let start = Instant::now();
        let _ = bsm::maximize(&q_h, &inst.interner, &inst.d, &inst.d_r, inst.theta).unwrap();
        let t_unified = start.elapsed();
        println!(
            "  n={n:>2}: non-hierarchical search {:>9.3?} | hierarchical Algorithm 1 {:>9.3?}",
            t_brute, t_unified
        );
    }
    println!("\n(the search time grows combinatorially; Algorithm 1 stays flat)");
}
