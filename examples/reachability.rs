//! Probabilistic reachability — recursive fixpoint plans on an
//! unreliable network.
//!
//! A datacenter fabric has links that fail independently:
//! `Link(a, b) @ p` is a tuple-independent probabilistic edge. "Can
//! traffic get from `a` to `b`?" is transitive closure — a *recursive*
//! query, outside the hierarchical fragment, and exact network
//! reliability is #P-hard. The engine evaluates the deterministic
//! **first-derivation relaxation** instead: a semi-naive fixpoint
//! where each reachable pair's annotation is folded (noisy-or, in
//! ascending join-value order) from its minimal-round derivations and
//! frozen there. The relaxation is exact on forests, deterministic and
//! bit-reproducible everywhere, and is maintained incrementally under
//! edge updates.
//!
//! Run with: `cargo run --release --example reachability`

use hierarchical_queries::prelude::*;
use hierarchical_queries::unify::{transitive_closure, ColumnarRelation, ServingSession};

fn main() {
    // The fabric: two racks bridged by a pair of spine paths.
    let mut interner = Interner::new();
    let link = interner.intern("Link");
    let fabric: &[(i64, i64, f64)] = &[
        (0, 1, 0.9), // rack 0 → top-of-rack switch
        (1, 2, 0.9), // ToR → spine A
        (2, 5, 0.8), // spine A → rack 5
        (0, 3, 0.5), // rack 0 → maintenance path
        (3, 4, 0.5),
        (4, 5, 0.5), // maintenance path → rack 5
    ];
    let edges: Vec<(Tuple, f64)> = fabric
        .iter()
        .map(|&(a, b, p)| (Tuple::ints(&[a, b]), p))
        .collect();

    // One-shot kernel form: P(0 ⇝ 5) under the relaxation.
    let (p, stats) = pqe::reachability(&edges, Some(Value::Int(0)), Some(Value::Int(5))).unwrap();
    println!("P(0 ⇝ 5) = {p:.6}  ({} ⊕/⊗ ops)", stats.total_ops());

    // Open endpoints sum over the closure: total reachability mass
    // out of node 0, and the grand total over every reachable pair.
    let (out0, _) = pqe::reachability(&edges, Some(Value::Int(0)), None).unwrap();
    let (total, _) = pqe::reachability(&edges, None, None).unwrap();
    println!("Σ_d P(0 ⇝ d) = {out0:.6},  Σ P = {total:.6}");

    // The same fixpoint under the count monoid: minimal-round path
    // counts per reachable pair.
    let unit: Vec<(Tuple, u64)> = edges.iter().map(|(t, _)| (t.clone(), 1)).collect();
    let run = transitive_closure(&CountMonoid, &unit).unwrap();
    println!(
        "closure has {} reachable pairs; 0 ⇝ 5 has {} minimal-round paths",
        run.acc.len(),
        run.get(Value::Int(0), Value::Int(5)).copied().unwrap_or(0)
    );

    // Served form: the session materialises the fixpoint once, then
    // replays it — a repeated query performs zero new monoid ops, and
    // an edge insert patches the affected cone instead of rebuilding.
    let facts: Vec<(Fact, f64)> = edges
        .iter()
        .map(|(t, p)| (Fact::new(link, t.clone()), *p))
        .collect();
    let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
        ServingSession::new(ProbMonoid, &interner, facts).unwrap();
    let (served, _) = session
        .query_fix(&interner, "Link", Some(Value::Int(0)), Some(Value::Int(5)))
        .unwrap();
    assert_eq!(
        served.to_bits(),
        p.to_bits(),
        "served == kernel, bit for bit"
    );
    let warm = session.ops_performed();
    session
        .query_fix(&interner, "Link", Some(Value::Int(0)), Some(Value::Int(5)))
        .unwrap();
    assert_eq!(session.ops_performed(), warm, "cache hit: zero new ops");

    // A new cross-link appears: the maintained fixpoint is patched in
    // place (work proportional to the affected cone) and stays
    // bit-identical to a fresh run over the post-update fabric.
    session
        .update(&interner, &Fact::new(link, Tuple::ints(&[1, 4])), 0.7)
        .unwrap();
    let (after, _) = session
        .query_fix(&interner, "Link", Some(Value::Int(0)), Some(Value::Int(5)))
        .unwrap();
    println!("after adding Link(1,4) @ 0.7:  P(0 ⇝ 5) = {after:.6}");
    println!(
        "(patch cost: {} ops since the warm cache)",
        session.ops_performed() - warm
    );
}
