//! Quickstart: the full tour in fifty lines.
//!
//! Reproduces the paper's running example end-to-end: hierarchy check,
//! elimination trace, probabilistic evaluation, the Figure 1 bag-set
//! maximization instance, and Shapley values — all through the same
//! Algorithm 1 with three different 2-monoids.
//!
//! Run with: `cargo run --release --example quickstart`

use hierarchical_queries::prelude::*;

fn main() {
    // The paper's Eq. (1) query.
    let q = parse_query("Q() :- R(A,B), S(A,C), T(A,C,D)").unwrap();
    println!("query: {q}");
    println!("hierarchical: {}", is_hierarchical(&q));
    let p = plan(&q).unwrap();
    println!("\nelimination trace (Proposition 5.1):\n{}\n", p.trace(&q));

    // The Figure 1 database.
    let (d, mut interner) = db_from_ints(&[
        ("R", &[&[1, 5]]),
        ("S", &[&[1, 1], &[1, 2]]),
        ("T", &[&[1, 2, 4]]),
    ]);

    // 1. Probabilistic Query Evaluation: every fact present with p=0.5.
    let tid: Vec<(Fact, f64)> = d.facts().into_iter().map(|f| (f, 0.5)).collect();
    let prob = pqe::probability(&q, &interner, &tid).unwrap();
    println!("PQE: P(Q) with all facts at p=1/2 ........ {prob}");

    // 2. Bag-Set Maximization: the Figure 1 repair database, θ = 2.
    let mut d_r = Database::new();
    let r = interner.intern("R");
    let t = interner.intern("T");
    d_r.insert_tuple(r, Tuple::ints(&[1, 6]));
    d_r.insert_tuple(r, Tuple::ints(&[1, 7]));
    d_r.insert_tuple(t, Tuple::ints(&[1, 1, 4]));
    d_r.insert_tuple(t, Tuple::ints(&[1, 2, 9]));
    let sol = bsm::maximize(&q, &interner, &d, &d_r, 2).unwrap();
    println!(
        "BSM: best Q(D') within budget 2 .......... {} (paper: 4)",
        sol.optimum()
    );
    print!("     budget curve:");
    for i in 0..=2 {
        print!(" θ={i}→{}", sol.value_at(i));
    }
    println!();

    // 3. Shapley values: all facts endogenous; who "caused" Q to hold?
    let endo = d.facts();
    let values = shapley::shapley_values(&q, &interner, &[], &endo).unwrap();
    println!("Shapley values (exact rationals):");
    for (f, v) in &values {
        println!("     {:<12} {v}", f.display(&interner).to_string());
    }
    let total = values.iter().fold(Rational::zero(), |acc, (_, v)| &acc + v);
    println!("     total ...... {total} (efficiency: Q flips from false to true)");

    // 4. Storage backends: the same engine runs over the ordered-map
    // oracle layout or the columnar fast path — bit-identical answers.
    use hierarchical_queries::unify::{pqe, Backend};
    let p_map = pqe::probability_on(Backend::Map, &q, &interner, &tid).unwrap();
    let p_col = pqe::probability_on(Backend::Columnar, &q, &interner, &tid).unwrap();
    assert_eq!(p_map.to_bits(), p_col.to_bits());
    println!("Backends: map {p_map} == columnar {p_col} (bit-identical)");
}
