//! Minimal, dependency-free stand-in for the `rand` 0.8 API surface
//! used by this workspace: `StdRng` (here a xoshiro256++ generator),
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen`, `gen_bool`, and `gen_range` over integer and float ranges.
//!
//! The workspace only needs *seeded, deterministic, well-mixed*
//! streams (workload generation and property-test case selection), not
//! cryptographic quality or bit-compatibility with upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the type's "standard" distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly sampleable from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

fn next_u128<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

impl SampleUniform for u128 {
    fn sample_inclusive<R: RngCore + ?Sized>(lo: u128, hi: u128, rng: &mut R) -> u128 {
        let span = hi - lo; // inclusive width minus one
        if span == u128::MAX {
            return next_u128(rng);
        }
        // Modulo sampling: the bias is immaterial for workload
        // generation and far below what any statistical test here sees.
        lo + next_u128(rng) % (span + 1)
    }
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as u128) - (lo as u128);
                if span == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + (next_u128(rng) % (span + 1)) as $t
            }
        }
    )*};
}

uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as $u).wrapping_sub(lo as $u);
                if span == <$u>::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((next_u128(rng) % (span as u128 + 1)) as $t)
            }
        }
    )*};
}

uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        // Uniform in [0, 1] (endpoint reachable), then affine map.
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // Half-open: map a [0, 1) unit sample.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        f64::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! range_ints {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                <$t>::sample_inclusive(self.start, self.end - 1, rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                <$t>::sample_inclusive(lo, hi, rng)
            }
        }
    )*};
}

range_ints!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden configuration.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&z));
            let w: f64 = r.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&w));
            let u: usize = r.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn unit_floats_cover_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let mut lo = 0;
        let mut hi = 0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            if x < 0.1 {
                lo += 1;
            }
            if x > 0.9 {
                hi += 1;
            }
        }
        assert!(lo > 700 && hi > 700, "tails undersampled: {lo} {hi}");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn full_width_ranges() {
        let mut r = StdRng::seed_from_u64(4);
        let _: u128 = r.gen_range(0u128..u128::MAX);
        let _: u64 = r.gen_range(0u64..u64::MAX);
        let _: u64 = r.gen_range(1u64..u64::MAX);
    }
}
