//! Minimal, dependency-free stand-in for the `proptest` API surface
//! used by this workspace: the `proptest!` macro (with
//! `proptest_config`), range and `any::<T>()` strategies,
//! `collection::vec`, `prop_map`, and the `prop_assert*` macros.
//!
//! No shrinking is performed: every failure reports the test name, the
//! deterministic case index, and the sampled inputs, which is enough to
//! reproduce (case streams are a pure function of the case index).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng, Standard};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of test-case values.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Samples one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Copy,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Any value of `T` (uniform over the whole domain for integers).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types supporting [`any`].
pub trait ArbitraryValue {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                let hi = u128::from(rng.gen::<u64>());
                let lo = u128::from(rng.gen::<u64>());
                (((hi << 64) | lo) % (<$t>::MAX as u128 + 1).max(1)) as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl ArbitraryValue for u128 {
    fn arbitrary(rng: &mut StdRng) -> u128 {
        (u128::from(rng.gen::<u64>()) << 64) | u128::from(rng.gen::<u64>())
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        bool::sample(rng)
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        f64::sample(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Lengths acceptable to [`vec`].
    pub trait IntoLenRange {
        /// The inclusive (lo, hi) length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoLenRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty length range");
            (self.start, self.end - 1)
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// A vector of values from `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (lo, hi) = len.bounds();
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.lo..=self.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Derives the deterministic RNG for one test case.
pub fn case_rng(name: &str, case: u32) -> StdRng {
    // Mix the property name so sibling properties see distinct streams.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 1))
}

/// The commonly used exports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// item runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg), $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()), $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr), ) => {};
    (cfg = ($cfg:expr),
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                let mut __inputs = String::new();
                $(
                    let __value = $crate::Strategy::new_value(&($strat), &mut __rng);
                    __inputs.push_str(&format!(
                        "{} = {:?}; ",
                        stringify!($arg),
                        &__value
                    ));
                    let $arg = __value;
                )*
                let __result: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}\ninputs: {}\n{}",
                        stringify!($name),
                        __case,
                        config.cases,
                        __inputs,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg), $($rest)* }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), l, r
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)*), l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respected(a in 0u64..10, b in 5usize..=9) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(0u32..100, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7, "len = {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn any_u128_spans_width(x in any::<u128>()) {
            // Not a real assertion on distribution; just exercise the path.
            prop_assert_eq!(x, x);
        }

        #[test]
        fn early_ok_return(flag in any::<bool>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::case_rng("p", 3);
        let mut b = crate::case_rng("p", 3);
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
