//! Minimal, dependency-free stand-in for the `criterion` API surface
//! used by this workspace's benches: benchmark groups with
//! `sample_size`/`warm_up_time`/`measurement_time`/`throughput`,
//! `bench_with_input`/`bench_function`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Reporting is plain text: mean wall-clock per iteration (and
//! elements/second when a throughput is set). No statistics beyond the
//! mean over the sampled batches are computed.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let group = self.benchmark_group(name.to_owned());
        let mut b = Bencher::new(group.sample_size, group.warm_up, group.measurement);
        f(&mut b);
        group.report(name, &b);
        self
    }
}

/// A benchmark identifier `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Input size used to derive a rate column.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Target total measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the throughput basis for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.warm_up, self.measurement);
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    /// Benchmarks `f` without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.warm_up, self.measurement);
        f(&mut b);
        self.report(&id.label, &b);
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}

    fn report(&self, label: &str, b: &Bencher) {
        let Some(mean) = b.mean_ns() else {
            println!("{}/{label}: no measurement", self.name);
            return;
        };
        let time = format_ns(mean);
        match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                let rate = n as f64 / (mean * 1e-9);
                println!(
                    "{}/{label}: {time}/iter ({:.3} Melem/s, {} iters)",
                    self.name,
                    rate / 1e6,
                    b.total_iters
                );
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                let rate = n as f64 / (mean * 1e-9);
                println!(
                    "{}/{label}: {time}/iter ({:.3} MiB/s, {} iters)",
                    self.name,
                    rate / (1024.0 * 1024.0),
                    b.total_iters
                );
            }
            _ => println!(
                "{}/{label}: {time}/iter ({} iters)",
                self.name, b.total_iters
            ),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Runs and times the measured closure.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    total_time: Duration,
    total_iters: u64,
}

impl Bencher {
    fn new(sample_size: usize, warm_up: Duration, measurement: Duration) -> Self {
        Bencher {
            sample_size,
            warm_up,
            measurement,
            total_time: Duration::ZERO,
            total_iters: 0,
        }
    }

    /// Times repeated runs of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, estimating
        // the per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size batches so `sample_size` batches fill the measurement
        // budget.
        let budget = self.measurement.as_secs_f64();
        let batch = ((budget / self.sample_size as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.total_time = total;
        self.total_iters = iters;
    }

    fn mean_ns(&self) -> Option<f64> {
        if self.total_iters == 0 {
            return None;
        }
        Some(self.total_time.as_secs_f64() * 1e9 / self.total_iters as f64)
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(smoke, quick);

    #[test]
    fn runs_and_measures() {
        smoke();
    }
}
