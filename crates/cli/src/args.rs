//! Minimal `--key value` / `--flag` argument parsing (no external
//! dependencies; the CLI surface is small enough that a hand-rolled
//! parser is clearer than pulling in a framework).

use std::collections::BTreeMap;

/// Parsed command-line options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs and bare `--flag`s.
    ///
    /// # Errors
    /// Rejects positional arguments and repeated keys.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut iter = argv.iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{arg}'"));
            };
            if key.is_empty() {
                return Err("empty option name '--'".into());
            }
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked").clone();
                    if out.values.insert(key.to_owned(), value).is_some() {
                        return Err(format!("option '--{key}' given twice"));
                    }
                }
                _ => out.flags.push(key.to_owned()),
            }
        }
        Ok(out)
    }

    /// The value of `--key value`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// The value of a mandatory option.
    ///
    /// # Errors
    /// Returns a usage message when missing.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option '--{key}'"))
    }

    /// Whether a bare `--flag` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Args::parse(&owned)
    }

    #[test]
    fn key_values_and_flags() {
        let a = parse(&["--query", "Q() :- R(X)", "--exact", "--db", "x.facts"]).unwrap();
        assert_eq!(a.get("query"), Some("Q() :- R(X)"));
        assert_eq!(a.get("db"), Some("x.facts"));
        assert!(a.flag("exact"));
        assert!(!a.flag("missing"));
        assert_eq!(a.get("nope"), None);
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&["--db", "x"]).unwrap();
        assert!(a.require("db").is_ok());
        assert!(a.require("query").unwrap_err().contains("--query"));
    }

    #[test]
    fn rejects_positional_and_duplicates() {
        assert!(parse(&["stray"]).is_err());
        assert!(parse(&["--db", "a", "--db", "b"]).is_err());
        assert!(parse(&["--"]).is_err());
    }

    #[test]
    fn trailing_flag() {
        let a = parse(&["--theta", "2", "--verbose"]).unwrap();
        assert_eq!(a.get("theta"), Some("2"));
        assert!(a.flag("verbose"));
    }
}
