//! `hq` — command-line interface for hierarchical-query evaluation.
//!
//! ```text
//! hq check   "Q() :- R(A,B), S(A,C)"                     # hierarchy analysis + plan trace
//! hq count   --query Q --db d.facts                      # bag-set value Q(D)
//! hq pqe     --query Q --db d.facts [--exact]            # marginal probability (weights after '@')
//! hq bsm     --query Q --db d.facts --repair r.facts --theta N
//! hq shapley --query Q --db endo.facts [--exogenous x.facts]
//! ```
//!
//! Database files use the `hq-db` text format: one fact per line
//! (`R(1, alice)`), optional probability after `@`, `#` comments.
//!
//! Solver commands accept `--backend map|columnar|compressed` (alias
//! `--storage`) to pick the annotated-relation storage layout
//! (default: columnar, the fast path; all produce bit-identical
//! answers) and `--threads N|max` to shard the columnar rules over
//! worker threads (every thread count produces bit-identical answers
//! too). The compressed tier keeps block-encoded matrices resident
//! and, in serve mode, can spill evicted plan nodes to disk
//! (`--spill`).

use hq_arith::Rational;
use hq_db::text::parse_database;
use hq_db::{Database, Fact, Interner};
use hq_query::{
    is_hierarchical, non_hierarchical_witness, parse_query, plan, witness_forest, Query,
};
use hq_unify::script::{
    parse_command, parse_script, render_command, strip_comment, ScriptCommand, UpdateAction,
};
use hq_unify::{bsm, pqe, shapley, Backend, Parallelism};
use std::process::ExitCode;

mod args;
mod serve;
use args::Args;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Executes a full CLI invocation, returning the text to print.
/// Split from `main` so the test suite can drive it directly.
fn run(argv: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Ok(usage());
    };
    match cmd.as_str() {
        "check" => cmd_check(rest),
        "count" => cmd_count(&Args::parse(rest)?),
        "pqe" => cmd_pqe(&Args::parse(rest)?),
        "bsm" => cmd_bsm(&Args::parse(rest)?),
        "expected" => cmd_expected(&Args::parse(rest)?),
        "provenance" => cmd_provenance(&Args::parse(rest)?),
        "serve" => serve::cmd_serve(&Args::parse(rest)?),
        "shapley" => cmd_shapley(&Args::parse(rest)?),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command '{other}'; try 'hq help'")),
    }
}

fn usage() -> String {
    "hq — the unifying algorithm for hierarchical queries (PODS 2025)\n\
     \n\
     commands:\n\
     \x20 check   <query>                                  hierarchy analysis and elimination trace\n\
     \x20 count   --query <q> --db <file>                  bag-set value Q(D)\n\
     \x20 pqe     --query <q> --db <file> [--exact]        probabilistic query evaluation\n\
     \x20         [--mode incremental --updates <file> [--batch N]]\n\
     \x20                                                  maintain P(Q) under an update script\n\
     \x20                                                  (one `R(..) [@ p]` per line; @ 0 deletes,\n\
     \x20                                                  unseen facts insert; trajectory printed)\n\
     \x20         [--mode serve --script <file>]           multi-query serving session: a mixed\n\
     \x20                                                  script of `? <query>` lines and fact\n\
     \x20                                                  updates (`!R(..)` deletes; `@ 0` is a\n\
     \x20                                                  deprecated delete alias); overlapping\n\
     \x20                                                  queries share cached sub-plans, and\n\
     \x20                                                  updates delta-patch them in place\n\
     \x20         [--cache-rows <n>]                       bound the serve-mode plan cache to n\n\
     \x20                                                  materialised rows (LRU eviction)\n\
     \x20         [--spill]                                spill evicted plan nodes to a temp\n\
     \x20                                                  segment file and reload instead of\n\
     \x20                                                  recompute (compressed backend only)\n\
     \x20 bsm     --query <q> --db <file> --repair <file> --theta <n> [--witness]\n\
     \x20 expected --query <q> --db <file>                 expected bag-set value E[Q(D)]\n\
     \x20 provenance --query <q> --db <file>               provenance tree of Q over D\n\
     \x20 serve   --db <file> --listen <addr:port>         multi-tenant serving server: each\n\
     \x20                                                  connection is a snapshot-isolated\n\
     \x20                                                  session over one shared plan cache;\n\
     \x20                                                  the wire protocol is the script\n\
     \x20                                                  grammar, one command per line\n\
     \x20                                                  (`? <query>`, `R(..) [@ p]`,\n\
     \x20                                                  `!R(..)`, plus `pin`/`unpin`/\n\
     \x20                                                  `stats`/`quit`/`shutdown`)\n\
     \x20         [--max-sessions <n>]                     refuse connections beyond n\n\
     \x20                                                  concurrent sessions (default 64)\n\
     \x20         [--global-cache-rows <n>]                memory governor: bound the rows\n\
     \x20                                                  materialised across ALL sessions\n\
     \x20                                                  (cost-aware-LRU eviction)\n\
     \x20         [--max-live-epochs <n>]                  admission-control update bursts:\n\
     \x20                                                  a writer blocks while n epochs\n\
     \x20                                                  are still pinned by readers\n\
     \x20         [--write-queue <n>]                      bound the group-commit queue to\n\
     \x20                                                  n pending writer batches\n\
     \x20         [--write-policy block|refuse]            what a full write queue does to\n\
     \x20                                                  new submissions (default: block)\n\
     \x20 shapley --query <q> --db <file> [--exogenous <file>]\n\
     \n\
     solver options:\n\
     \x20 --backend map|columnar|compressed\n\
     \x20                           annotated-relation storage layout (default: columnar;\n\
     \x20                           `compressed` = bit-packed/RLE block-encoded matrices;\n\
     \x20                           `--storage` is an accepted alias)\n\
     \x20 --threads N|max           worker threads for the columnar backend (default: 1);\n\
     \x20                           every thread count returns bit-identical answers\n\
     \n\
     database files: one fact per line, e.g. `R(1, alice) @ 0.9`\n"
        .to_owned()
}

fn parse_query_arg(src: &str) -> Result<Query, String> {
    parse_query(src).map_err(|e| format!("query: {e}"))
}

/// The storage backend selected by `--backend` (columnar by default).
/// `--storage` is an accepted alias — the compressed tier makes the
/// flag as much about physical layout as about algorithmic backend.
pub(crate) fn backend_arg(args: &Args) -> Result<Backend, String> {
    match args.get("backend").or_else(|| args.get("storage")) {
        Some(name) => name.parse(),
        None => Ok(Backend::default()),
    }
}

/// The worker-thread count selected by `--threads` (1 by default;
/// `max` = all hardware threads). Only the columnar backend shards.
/// Warms the persistent worker pool immediately, so no evaluation —
/// not even the first — spawns a thread on its own clock.
pub(crate) fn threads_arg(args: &Args) -> Result<Parallelism, String> {
    let par: Parallelism = match args.get("threads") {
        Some(n) => n.parse()?,
        None => Parallelism::default(),
    };
    par.warm_pool();
    Ok(par)
}

pub(crate) fn load_db(
    path: &str,
    interner: &mut Interner,
) -> Result<(Database, Vec<(Fact, f64)>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let parsed = parse_database(&text, interner).map_err(|e| format!("{path}: {e}"))?;
    Ok((parsed.database, parsed.weights))
}

fn cmd_check(rest: &[String]) -> Result<String, String> {
    let Some(src) = rest.first() else {
        return Err("check: expected a query argument".into());
    };
    let q = parse_query_arg(src)?;
    let mut out = format!("query: {q}\n");
    if is_hierarchical(&q) {
        out.push_str("hierarchical: yes\n\n");
        let p = plan(&q).expect("hierarchical queries always plan");
        out.push_str("elimination trace (Prop. 5.1):\n");
        out.push_str(&p.trace(&q));
        out.push('\n');
        if let Some(forest) = witness_forest(&q) {
            out.push_str("\nwitness forest (Prop. 5.5):\n");
            for v in q.vars() {
                match forest.parent(v) {
                    Some(p) => out.push_str(&format!(
                        "  {} -> parent {}\n",
                        q.var_name(v),
                        q.var_name(p)
                    )),
                    None => out.push_str(&format!("  {} (root)\n", q.var_name(v))),
                }
            }
        }
    } else {
        out.push_str("hierarchical: no\n");
        let w = non_hierarchical_witness(&q).expect("non-hierarchical witness exists");
        out.push_str(&format!(
            "witness (Thm. 4.4 shape): vars {}, {} with atoms {}, {}, {}\n\
             all three problems are intractable for this query\n\
             (PQE #P-complete, Shapley FP#P-complete, BSM NP-complete).\n",
            q.var_name(w.a),
            q.var_name(w.b),
            q.atoms()[w.r_atom].rel,
            q.atoms()[w.s_atom].rel,
            q.atoms()[w.t_atom].rel,
        ));
    }
    Ok(out)
}

fn cmd_count(args: &Args) -> Result<String, String> {
    let q = parse_query_arg(args.require("query")?)?;
    let mut interner = Interner::new();
    let (db, _) = load_db(args.require("db")?, &mut interner)?;
    let pattern = q.to_pattern(&mut interner);
    let count = hq_db::count_matches(&db, &pattern).map_err(|e| e.to_string())?;
    Ok(format!("Q(D) = {count}\n"))
}

fn cmd_pqe(args: &Args) -> Result<String, String> {
    let backend = backend_arg(args)?;
    let par = threads_arg(args)?;
    let mut interner = Interner::new();
    let (db, weights) = load_db(args.require("db")?, &mut interner)?;
    // Facts without explicit weights default to probability 1.
    let mut tid: Vec<(Fact, f64)> = Vec::new();
    let weighted: std::collections::BTreeMap<&Fact, f64> =
        weights.iter().map(|(f, w)| (f, *w)).collect();
    for f in db.facts() {
        let p = weighted.get(&f).copied().unwrap_or(1.0);
        tid.push((f, p));
    }
    // The plan cache only exists in serve mode: reject the knobs
    // everywhere else rather than silently ignoring them.
    if args.get("cache-rows").is_some() && args.get("mode") != Some("serve") {
        return Err("--cache-rows requires --mode serve".into());
    }
    if args.flag("spill") && args.get("mode") != Some("serve") {
        return Err("--spill requires --mode serve".into());
    }
    match args.get("mode") {
        Some("incremental") => {
            let q = parse_query_arg(args.require("query")?)?;
            return cmd_pqe_incremental(args, &q, &mut interner, &tid, backend, par);
        }
        // Serve mode takes its queries from the script, not --query.
        Some("serve") => {
            return cmd_pqe_serve(args, &mut interner, &tid, backend, par);
        }
        Some(other) => {
            return Err(format!(
                "unknown mode '{other}' (expected 'incremental' or 'serve')"
            ))
        }
        None => {
            if args.get("updates").is_some() {
                return Err("--updates requires --mode incremental".into());
            }
            if args.get("script").is_some() {
                return Err("--script requires --mode serve".into());
            }
        }
    }
    let q = parse_query_arg(args.require("query")?)?;
    if args.flag("exact") {
        let exact: Vec<(Fact, Rational)> = tid
            .iter()
            .map(|(f, p)| {
                let scaled = (p * 1_000_000.0).round() as u64;
                (f.clone(), Rational::ratio(scaled, 1_000_000))
            })
            .collect();
        let prob = pqe::probability_exact_par(backend, par, &q, &interner, &exact)
            .map_err(|e| e.to_string())?;
        Ok(format!(
            "P(Q) = {prob} ≈ {:.9}\n(probabilities rounded to 1e-6 for exact mode)\n",
            prob.to_f64()
        ))
    } else {
        let prob =
            pqe::probability_par(backend, par, &q, &interner, &tid).map_err(|e| e.to_string())?;
        Ok(format!("P(Q) = {prob:.9}\n"))
    }
}

/// `hq pqe --mode incremental --updates FILE [--batch N]`: replays a
/// newline-delimited update script — one `R(v1, …) [@ p]` per line, a
/// missing weight meaning `1`, `@ 0` deleting, and facts the database
/// never held inserting — against the maintained run, printing the
/// probability trajectory. `--batch N` coalesces every `N` consecutive
/// updates into one propagation pass.
fn cmd_pqe_incremental(
    args: &Args,
    q: &Query,
    interner: &mut Interner,
    tid: &[(Fact, f64)],
    backend: Backend,
    par: Parallelism,
) -> Result<String, String> {
    let path = args.require("updates")?;
    let batch_size: usize = match args.get("batch") {
        Some(n) => n
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| "batch: expected a positive integer".to_string())?,
        None => 1,
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut updates: Vec<(Fact, UpdateAction)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let Some(line) = strip_comment(raw) else {
            continue;
        };
        match parse_command(line, lineno, path, interner)? {
            ScriptCommand::Update(fact, action) => updates.push((fact, action)),
            ScriptCommand::Query(_) | ScriptCommand::Fix { .. } => {
                return Err(format!(
                    "{path}: line {}: queries (`? …`) belong to --mode serve scripts; \
                     --updates files take only fact updates",
                    lineno + 1
                ))
            }
        }
    }
    // The three maintained-run flavours share only their update loop;
    // a tiny closure-based dispatch keeps the trajectory logic single.
    enum Maintained {
        Map(hq_unify::IncrementalPqe),
        Columnar(hq_unify::IncrementalPqe<hq_unify::ColumnarRelation<f64>>),
        Sharded(hq_unify::IncrementalPqe<hq_unify::ShardedColumnar<f64>>),
        Compressed(hq_unify::IncrementalPqe<hq_unify::CompressedColumnar<f64>>),
    }
    impl Maintained {
        fn apply(&mut self, i: &Interner, batch: &[(Fact, f64)]) -> Result<f64, String> {
            match self {
                Maintained::Map(r) => r.update_batch(i, batch),
                Maintained::Columnar(r) => r.update_batch(i, batch),
                Maintained::Sharded(r) => r.update_batch(i, batch),
                Maintained::Compressed(r) => r.update_batch(i, batch),
            }
            .map_err(|e| e.to_string())
        }
        fn probability(&self) -> f64 {
            match self {
                Maintained::Map(r) => r.probability(),
                Maintained::Columnar(r) => r.probability(),
                Maintained::Sharded(r) => r.probability(),
                Maintained::Compressed(r) => r.probability(),
            }
        }
    }
    let mut run = match (backend, par.is_parallel()) {
        (Backend::Map, _) => Maintained::Map(
            hq_unify::IncrementalPqe::new(q, interner, tid).map_err(|e| e.to_string())?,
        ),
        (Backend::Columnar, false) => Maintained::Columnar(
            hq_unify::IncrementalPqe::columnar(q, interner, tid).map_err(|e| e.to_string())?,
        ),
        (Backend::Columnar, true) => Maintained::Sharded(
            hq_unify::IncrementalPqe::sharded(q, interner, tid, par).map_err(|e| e.to_string())?,
        ),
        // The compressed kernels are sequential; the thread count only
        // affects the worker pool the other tiers shard over.
        (Backend::Compressed, _) => Maintained::Compressed(
            hq_unify::IncrementalPqe::compressed(q, interner, tid).map_err(|e| e.to_string())?,
        ),
    };
    let mut out = format!("P(Q) = {:.9}\n", run.probability());
    for batch in updates.chunks(batch_size) {
        let writes: Vec<(Fact, f64)> = batch
            .iter()
            .map(|(f, a)| (f.clone(), a.prob_weight()))
            .collect();
        let p = run.apply(interner, &writes)?;
        let label: Vec<String> = batch
            .iter()
            .map(|(f, a)| render_command(&ScriptCommand::Update(f.clone(), a.clone()), interner))
            .collect();
        out.push_str(&format!("{} -> P(Q) = {p:.9}\n", label.join(", ")));
    }
    Ok(out)
}

/// `hq pqe --mode serve --script FILE`: replays a newline-delimited
/// **mixed** query/update script against one multi-query serving
/// session. Lines starting with `?` are queries (`? Q() :- E(X,Y)`),
/// anything else is a fact update (`R(v1, …) [@ p]`; a missing weight
/// means `1`, `@ 0` deletes, unseen facts insert); `#` comments and
/// blank lines are skipped. Consecutive updates coalesce into one
/// batched cache-repair pass. Queries share every common sub-plan
/// through the session's plan cache — the trailer reports how many
/// monoid operations the sharing actually executed versus the
/// independent-evaluation total the reported stats replay.
fn cmd_pqe_serve(
    args: &Args,
    interner: &mut Interner,
    tid: &[(Fact, f64)],
    backend: Backend,
    par: Parallelism,
) -> Result<String, String> {
    use hq_unify::pqe::PqeSession;
    let path = args.require("script")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    // The shared script grammar (`hq_unify::script`) — the same parser
    // the incremental mode and the `hq serve --listen` wire protocol
    // consume. The serving session is probability-monoid: a delete and
    // a zero weight coincide (`0` means absent).
    let script: Vec<ScriptCommand> = parse_script(&text, path, interner)?;
    enum Session {
        Map(PqeSession<hq_unify::MapRelation<f64>>),
        Columnar(PqeSession),
        Sharded(PqeSession<hq_unify::ShardedColumnar<f64>>),
        Compressed(PqeSession<hq_unify::CompressedColumnar<f64>>),
    }
    /// Forwards one accessor through the four session variants.
    macro_rules! on_session {
        ($session:expr, $s:ident => $body:expr) => {
            match $session {
                Session::Map($s) => $body,
                Session::Columnar($s) => $body,
                Session::Sharded($s) => $body,
                Session::Compressed($s) => $body,
            }
        };
    }
    impl Session {
        fn query(
            &mut self,
            i: &Interner,
            q: &hq_query::Query,
        ) -> Result<(f64, hq_unify::EngineStats), String> {
            on_session!(self, s => s.query(i, q)).map_err(|e| e.to_string())
        }
        fn reachability(
            &mut self,
            i: &Interner,
            rel: &str,
            src: Option<hq_db::Value>,
            dst: Option<hq_db::Value>,
        ) -> Result<(f64, hq_unify::EngineStats), String> {
            on_session!(self, s => s.reachability(i, rel, src, dst)).map_err(|e| e.to_string())
        }
        fn update_batch(&mut self, i: &Interner, batch: &[(Fact, f64)]) -> Result<(), String> {
            on_session!(self, s => s.update_batch(i, batch).map(|_| ())).map_err(|e| e.to_string())
        }
        fn ops_performed(&self) -> u64 {
            on_session!(self, s => s.session().ops_performed())
        }
        fn cached_nodes(&self) -> usize {
            on_session!(self, s => s.session().cached_nodes())
        }
        fn set_cache_budget(&mut self, budget: usize) {
            on_session!(self, s => s.set_cache_budget(Some(budget)));
        }
        fn set_spill(&mut self, enabled: bool) -> bool {
            on_session!(self, s => s.set_spill(enabled))
        }
        fn evictions(&self) -> u64 {
            on_session!(self, s => s.session().evictions())
        }
        fn cached_rows(&self) -> usize {
            on_session!(self, s => s.session().cached_rows())
        }
        fn cached_bytes(&self) -> usize {
            on_session!(self, s => s.session().cached_bytes())
        }
        fn cached_dense_bytes(&self) -> usize {
            on_session!(self, s => s.session().cached_dense_bytes())
        }
        fn spilled_bytes(&self) -> usize {
            on_session!(self, s => s.session().spilled_bytes())
        }
        fn spill_writes(&self) -> u64 {
            on_session!(self, s => s.session().spill_writes())
        }
        fn spill_reloads(&self) -> u64 {
            on_session!(self, s => s.session().spill_reloads())
        }
        fn lower_hits(&self) -> u64 {
            on_session!(self, s => s.session().lower_hits())
        }
    }
    let mut session = match (backend, par.is_parallel()) {
        (Backend::Map, _) => {
            Session::Map(PqeSession::new(interner, tid).map_err(|e| e.to_string())?)
        }
        (Backend::Columnar, false) => {
            Session::Columnar(PqeSession::columnar(interner, tid).map_err(|e| e.to_string())?)
        }
        (Backend::Columnar, true) => {
            Session::Sharded(PqeSession::sharded(interner, tid, par).map_err(|e| e.to_string())?)
        }
        // The compressed kernels are sequential; the thread count only
        // affects the worker pool the other tiers shard over.
        (Backend::Compressed, _) => {
            Session::Compressed(PqeSession::compressed(interner, tid).map_err(|e| e.to_string())?)
        }
    };
    if let Some(n) = args.get("cache-rows") {
        let budget: usize = n
            .parse()
            .map_err(|_| "cache-rows: expected a non-negative integer".to_string())?;
        session.set_cache_budget(budget);
    }
    let spilling = if args.flag("spill") {
        let effective = session.set_spill(true);
        if !effective {
            return Err(
                "spill: only the compressed backend can spill evicted nodes \
                 (use --backend compressed)"
                    .to_string(),
            );
        }
        true
    } else {
        false
    };
    let mut out = String::new();
    let mut queries = 0usize;
    let mut replayed_ops = 0u64;
    let mut pending: Vec<(Fact, f64)> = Vec::new();
    let flush = |session: &mut Session,
                 pending: &mut Vec<(Fact, f64)>,
                 out: &mut String,
                 interner: &Interner|
     -> Result<(), String> {
        if pending.is_empty() {
            return Ok(());
        }
        session.update_batch(interner, pending)?;
        out.push_str(&format!("applied {} update(s)\n", pending.len()));
        pending.clear();
        Ok(())
    };
    for line in script {
        match line {
            ScriptCommand::Update(fact, action) => pending.push((fact, action.prob_weight())),
            ScriptCommand::Query(q) => {
                flush(&mut session, &mut pending, &mut out, interner)?;
                let (p, stats) = session.query(interner, &q)?;
                queries += 1;
                replayed_ops += stats.total_ops();
                out.push_str(&format!("{q} -> P(Q) = {p:.9}\n"));
            }
            ref fix_cmd @ ScriptCommand::Fix { ref rel, src, dst } => {
                flush(&mut session, &mut pending, &mut out, interner)?;
                let echo = hq_unify::script::render_command(fix_cmd, interner);
                let (p, stats) = session.reachability(interner, rel, src, dst)?;
                queries += 1;
                replayed_ops += stats.total_ops();
                out.push_str(&format!(
                    "{} -> P(Q) = {p:.9}\n",
                    echo.trim_start_matches("? ")
                ));
            }
        }
    }
    flush(&mut session, &mut pending, &mut out, interner)?;
    out.push_str(&format!(
        "served {queries} quer{} from {} cached plan node(s) ({} rows, {} evicted, \
         {} memo hit(s)); {} monoid ops executed vs {} replayed (independent evaluation)\n",
        if queries == 1 { "y" } else { "ies" },
        session.cached_nodes(),
        session.cached_rows(),
        session.evictions(),
        session.lower_hits(),
        session.ops_performed(),
        replayed_ops,
    ));
    // Resident footprint and compression ratio: live cached bytes vs
    // what the same nodes would occupy as dense columnar matrices.
    let resident = session.cached_bytes();
    let dense = session.cached_dense_bytes();
    let ratio = if resident > 0 {
        dense as f64 / resident as f64
    } else {
        1.0
    };
    out.push_str(&format!(
        "cache resident: {resident} B vs {dense} B dense-equivalent ({ratio:.2}x compression)\n",
    ));
    if spilling {
        out.push_str(&format!(
            "spill: {} write(s), {} reload(s), {} B on disk\n",
            session.spill_writes(),
            session.spill_reloads(),
            session.spilled_bytes(),
        ));
    }
    Ok(out)
}

fn cmd_bsm(args: &Args) -> Result<String, String> {
    let q = parse_query_arg(args.require("query")?)?;
    let backend = backend_arg(args)?;
    let par = threads_arg(args)?;
    let theta: usize = args
        .require("theta")?
        .parse()
        .map_err(|_| "theta: expected a non-negative integer".to_string())?;
    let mut interner = Interner::new();
    let (d, _) = load_db(args.require("db")?, &mut interner)?;
    let (d_r, _) = load_db(args.require("repair")?, &mut interner)?;
    if args.flag("witness") {
        let sol = bsm::maximize_with_repair_par(backend, par, &q, &interner, &d, &d_r, theta)
            .map_err(|e| e.to_string())?;
        let mut out = format!(
            "max Q(D') within budget θ={theta}: {}\n",
            sol.value_at(theta)
        );
        out.push_str("budget curve with optimal repairs:\n");
        for i in 0..=theta {
            let names: Vec<String> = sol
                .repair_at(i)
                .iter()
                .map(|f| f.display(&interner).to_string())
                .collect();
            out.push_str(&format!(
                "  θ={i}: {} via {{{}}}\n",
                sol.value_at(i),
                names.join(", ")
            ));
        }
        return Ok(out);
    }
    let sol = bsm::maximize_par(backend, par, &q, &interner, &d, &d_r, theta)
        .map_err(|e| e.to_string())?;
    let mut out = format!("max Q(D') within budget θ={theta}: {}\n", sol.optimum());
    out.push_str("budget curve:\n");
    for i in 0..=theta {
        out.push_str(&format!("  θ={i}: {}\n", sol.value_at(i)));
    }
    Ok(out)
}

fn cmd_expected(args: &Args) -> Result<String, String> {
    let q = parse_query_arg(args.require("query")?)?;
    let backend = backend_arg(args)?;
    let par = threads_arg(args)?;
    let mut interner = Interner::new();
    let (db, weights) = load_db(args.require("db")?, &mut interner)?;
    let weighted: std::collections::BTreeMap<&Fact, f64> =
        weights.iter().map(|(f, w)| (f, *w)).collect();
    let tid: Vec<(Fact, f64)> = db
        .facts()
        .into_iter()
        .map(|f| {
            let p = weighted.get(&f).copied().unwrap_or(1.0);
            (f, p)
        })
        .collect();
    let e =
        pqe::expected_count_par(backend, par, &q, &interner, &tid).map_err(|e| e.to_string())?;
    Ok(format!("E[Q(D)] = {e:.9}\n"))
}

fn cmd_provenance(args: &Args) -> Result<String, String> {
    let q = parse_query_arg(args.require("query")?)?;
    let mut interner = Interner::new();
    let (db, _) = load_db(args.require("db")?, &mut interner)?;
    let facts = db.facts();
    let prov = hq_unify::provenance_tree(&q, &interner, &facts).map_err(|e| e.to_string())?;
    let mut out = String::from("fact symbols:\n");
    for (i, f) in prov.symbols.iter().enumerate() {
        out.push_str(&format!("  f{i} = {}\n", f.display(&interner)));
    }
    out.push_str(&format!("provenance tree: {}\n", prov.tree));
    out.push_str(&format!(
        "decomposable: {}; support size: {}\n",
        prov.tree.is_decomposable(),
        prov.tree.support().len()
    ));
    Ok(out)
}

fn cmd_shapley(args: &Args) -> Result<String, String> {
    let q = parse_query_arg(args.require("query")?)?;
    let backend = backend_arg(args)?;
    let par = threads_arg(args)?;
    let mut interner = Interner::new();
    let (endo_db, _) = load_db(args.require("db")?, &mut interner)?;
    let exogenous = match args.get("exogenous") {
        Some(path) => load_db(path, &mut interner)?.0.facts(),
        None => Vec::new(),
    };
    let endogenous = endo_db.facts();
    let values = shapley::shapley_values_par(backend, par, &q, &interner, &exogenous, &endogenous)
        .map_err(|e| e.to_string())?;
    let mut out = String::from("Shapley values (exact):\n");
    let mut total = Rational::zero();
    for (f, v) in &values {
        out.push_str(&format!(
            "  {:<30} {} ≈ {:.6}\n",
            f.display(&interner).to_string(),
            v,
            v.to_f64()
        ));
        total = &total + v;
    }
    out.push_str(&format!("  total = {total} ≈ {:.6}\n", total.to_f64()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("hq-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn run_strs(args: &[&str]) -> Result<String, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        run(&owned)
    }

    #[test]
    fn check_hierarchical_query() {
        let out = run_strs(&["check", "Q() :- R(A,B), S(A,C), T(A,C,D)"]).unwrap();
        assert!(out.contains("hierarchical: yes"));
        assert!(out.contains("Rule 1"));
        assert!(out.contains("witness forest"));
    }

    #[test]
    fn check_non_hierarchical_query() {
        let out = run_strs(&["check", "Q() :- R(X), S(X,Y), T(Y)"]).unwrap();
        assert!(out.contains("hierarchical: no"));
        assert!(out.contains("NP-complete"));
    }

    #[test]
    fn count_command() {
        let db = write_temp("count.facts", "R(1,5)\nS(1,1)\nS(1,2)\nT(1,2,4)\n");
        let out = run_strs(&[
            "count",
            "--query",
            "Q() :- R(A,B), S(A,C), T(A,C,D)",
            "--db",
            &db,
        ])
        .unwrap();
        assert_eq!(out, "Q(D) = 1\n");
    }

    #[test]
    fn pqe_command() {
        let db = write_temp("pqe.facts", "E(1,2) @ 0.5\nF(2,3) @ 0.5\n");
        let out = run_strs(&["pqe", "--query", "Q() :- E(X,Y), F(Y,Z)", "--db", &db]).unwrap();
        assert!(out.contains("P(Q) = 0.25"), "{out}");
        let exact = run_strs(&[
            "pqe",
            "--query",
            "Q() :- E(X,Y), F(Y,Z)",
            "--db",
            &db,
            "--exact",
        ])
        .unwrap();
        assert!(exact.contains("1/4"), "{exact}");
    }

    #[test]
    fn bsm_command_reproduces_figure_1() {
        let d = write_temp("bsm_d.facts", "R(1,5)\nS(1,1)\nS(1,2)\nT(1,2,4)\n");
        let dr = write_temp("bsm_dr.facts", "R(1,6)\nR(1,7)\nT(1,1,4)\nT(1,2,9)\n");
        let out = run_strs(&[
            "bsm",
            "--query",
            "Q() :- R(A,B), S(A,C), T(A,C,D)",
            "--db",
            &d,
            "--repair",
            &dr,
            "--theta",
            "2",
        ])
        .unwrap();
        assert!(out.contains("budget θ=2: 4"), "{out}");
        assert!(out.contains("θ=0: 1"));
        assert!(out.contains("θ=1: 2"));
    }

    #[test]
    fn shapley_command() {
        let db = write_temp("shap.facts", "R(1)\nR(2)\n");
        let out = run_strs(&["shapley", "--query", "Q() :- R(X)", "--db", &db]).unwrap();
        assert!(out.contains("1/2"), "{out}");
        assert!(out.contains("total = 1"), "{out}");
    }

    #[test]
    fn bsm_witness_flag() {
        let d = write_temp("bsmw_d.facts", "R(1,5)\nS(1,1)\nS(1,2)\nT(1,2,4)\n");
        let dr = write_temp("bsmw_dr.facts", "R(1,6)\nR(1,7)\nT(1,1,4)\nT(1,2,9)\n");
        let out = run_strs(&[
            "bsm",
            "--query",
            "Q() :- R(A,B), S(A,C), T(A,C,D)",
            "--db",
            &d,
            "--repair",
            &dr,
            "--theta",
            "2",
            "--witness",
        ])
        .unwrap();
        assert!(out.contains("θ=2: 4 via {"), "{out}");
        assert!(out.contains("R(1, "), "{out}");
    }

    #[test]
    fn expected_command() {
        let db = write_temp("exp.facts", "R(1) @ 0.25\nR(2) @ 0.25\n");
        let out = run_strs(&["expected", "--query", "Q() :- R(X)", "--db", &db]).unwrap();
        assert!(out.contains("E[Q(D)] = 0.5"), "{out}");
    }

    #[test]
    fn provenance_command() {
        let db = write_temp("prov.facts", "E(1,2)\nF(2,3)\n");
        let out = run_strs(&[
            "provenance",
            "--query",
            "Q() :- E(X,Y), F(Y,Z)",
            "--db",
            &db,
        ])
        .unwrap();
        assert!(out.contains("f0 = E(1, 2)"), "{out}");
        assert!(out.contains("∧"), "{out}");
        assert!(out.contains("decomposable: true"), "{out}");
    }

    #[test]
    fn backend_selection_is_observably_identical() {
        let db = write_temp("backend.facts", "E(1,2) @ 0.5\nF(2,3) @ 0.5\n");
        let base = &["pqe", "--query", "Q() :- E(X,Y), F(Y,Z)", "--db", &db];
        let default_out = run_strs(base).unwrap();
        for backend in ["map", "columnar", "compressed"] {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--backend", backend]);
            assert_eq!(run_strs(&args).unwrap(), default_out, "{backend}");
            // `--storage` is an alias for `--backend`.
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--storage", backend]);
            assert_eq!(run_strs(&args).unwrap(), default_out, "storage={backend}");
        }
        let err = run_strs(&[
            "pqe",
            "--query",
            "Q() :- E(X,Y), F(Y,Z)",
            "--db",
            &db,
            "--backend",
            "btree",
        ])
        .unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
    }

    #[test]
    fn threads_flag_is_observably_identical() {
        let db = write_temp(
            "threads.facts",
            "E(1,2) @ 0.5\nE(1,3) @ 0.25\nF(2,3) @ 0.5\n",
        );
        let base = &["pqe", "--query", "Q() :- E(X,Y), F(Y,Z)", "--db", &db];
        let default_out = run_strs(base).unwrap();
        for threads in ["1", "2", "4", "max"] {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--threads", threads]);
            assert_eq!(run_strs(&args).unwrap(), default_out, "threads={threads}");
        }
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--threads", "zero"]);
        let err = run_strs(&args).unwrap_err();
        assert!(err.contains("invalid thread count"), "{err}");
    }

    #[test]
    fn bsm_backend_flag_accepted() {
        let d = write_temp("bsmb_d.facts", "R(1,5)\nS(1,1)\nS(1,2)\nT(1,2,4)\n");
        let dr = write_temp("bsmb_dr.facts", "R(1,6)\nR(1,7)\nT(1,1,4)\nT(1,2,9)\n");
        for backend in ["map", "columnar", "compressed"] {
            let out = run_strs(&[
                "bsm",
                "--query",
                "Q() :- R(A,B), S(A,C), T(A,C,D)",
                "--db",
                &d,
                "--repair",
                &dr,
                "--theta",
                "2",
                "--backend",
                backend,
            ])
            .unwrap();
            assert!(out.contains("budget θ=2: 4"), "{backend}: {out}");
        }
    }

    #[test]
    fn pqe_incremental_mode_replays_updates() {
        let db = write_temp("inc.facts", "E(1,2) @ 0.5\nF(2,3) @ 0.5\n");
        // Update the E fact, delete the F fact, re-insert it, and
        // insert a genuinely new chain (new domain values!).
        let updates = write_temp(
            "inc.updates",
            "E(1,2) @ 0.9\n\
             F(2,3) @ 0   # delete\n\
             F(2,3) @ 0.5 # re-insert\n\
             E(7,8) @ 0.5\n\
             F(8,9) @ 0.5\n",
        );
        let base = &[
            "pqe",
            "--query",
            "Q() :- E(X,Y), F(Y,Z)",
            "--db",
            &db,
            "--mode",
            "incremental",
            "--updates",
            &updates,
        ];
        let out = run_strs(base).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 6, "{out}");
        assert!(lines[0].contains("P(Q) = 0.25"), "{out}");
        assert!(lines[1].contains("E(1, 2) @ 0.9 -> P(Q) = 0.45"), "{out}");
        assert!(lines[2].contains("P(Q) = 0.0"), "{out}");
        assert!(lines[3].contains("P(Q) = 0.45"), "{out}");
        // After both new facts land, the second chain adds
        // 1 − (1 − 0.45)(1 − 0.25) = 0.5875.
        assert!(lines[5].contains("P(Q) = 0.5875"), "{out}");
        // The trajectory is identical on every backend and thread count.
        for extra in [
            vec!["--backend", "map"],
            vec!["--backend", "columnar"],
            vec!["--threads", "4"],
        ] {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(extra.iter());
            assert_eq!(run_strs(&args).unwrap(), out, "{extra:?}");
        }
        // Batched replay: same final probability, fewer trajectory rows.
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--batch", "5"]);
        let batched = run_strs(&args).unwrap();
        assert_eq!(batched.lines().count(), 2, "{batched}");
        assert!(batched.lines().last().unwrap().contains("P(Q) = 0.5875"));
        // Malformed requests fail helpfully.
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--batch", "0"]);
        assert!(run_strs(&args).unwrap_err().contains("batch"));
        let err = run_strs(&[
            "pqe",
            "--query",
            "Q() :- E(X,Y), F(Y,Z)",
            "--db",
            &db,
            "--updates",
            &updates,
        ])
        .unwrap_err();
        assert!(err.contains("--mode incremental"), "{err}");
    }

    #[test]
    fn pqe_serve_mode_mixes_queries_and_updates() {
        let db = write_temp("serve.facts", "E(1,2) @ 0.5\nF(2,3) @ 0.5\n");
        let script = write_temp(
            "serve.script",
            "? Q() :- E(X,Y), F(Y,Z)\n\
             ? Q() :- E(X,Y)          # overlaps: shares E's scan+fold\n\
             E(1,2) @ 0.9             # update\n\
             F(2,3) @ 0               # delete\n\
             ? Q() :- E(X,Y), F(Y,Z)\n\
             F(2,3) @ 0.5             # re-insert\n\
             ? Q() :- E(X,Y), F(Y,Z)\n\
             ? Q() :- E(X,Y), F(Y,Z)  # repeat: pure cache hit\n",
        );
        let base = &["pqe", "--db", &db, "--mode", "serve", "--script", &script];
        let out = run_strs(base).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 9, "{out}");
        assert!(lines[0].contains("P(Q) = 0.25"), "{out}");
        assert!(lines[1].contains("P(Q) = 0.5"), "{out}");
        assert!(lines[2].contains("applied 2 update(s)"), "{out}");
        assert!(lines[3].contains("P(Q) = 0.0"), "{out}");
        assert!(lines[4].contains("applied 1 update(s)"), "{out}");
        assert!(lines[5].contains("P(Q) = 0.45"), "{out}");
        assert!(lines[6].contains("P(Q) = 0.45"), "{out}");
        assert!(lines[7].contains("served 5 queries"), "{out}");
        assert!(lines[8].contains("compression"), "{out}");
        // Identical on every backend and thread count.
        for extra in [
            vec!["--backend", "map"],
            vec!["--backend", "columnar"],
            vec!["--backend", "compressed"],
            vec!["--threads", "4"],
        ] {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(extra.iter());
            let got = run_strs(&args).unwrap();
            assert_eq!(
                got.lines().take(7).collect::<Vec<_>>(),
                out.lines().take(7).collect::<Vec<_>>(),
                "{extra:?}"
            );
        }
        // --script without --mode serve fails helpfully.
        let err = run_strs(&[
            "pqe",
            "--query",
            "Q() :- E(X,Y)",
            "--db",
            &db,
            "--script",
            &script,
        ])
        .unwrap_err();
        assert!(err.contains("--mode serve"), "{err}");
    }

    #[test]
    fn pqe_serve_spill_reloads_evicted_nodes() {
        // A tiny cache budget forces evictions between the alternating
        // queries; with --spill the evicted nodes come back from the
        // segment file, with answers identical to the spill-less run.
        let db = write_temp("spill.facts", "E(1,2) @ 0.5\nE(1,3) @ 0.25\nF(2,3) @ 0.5\n");
        let script = write_temp(
            "spill.script",
            "? Q() :- E(X,Y), F(Y,Z)\n\
             ? Q() :- F(Y,Z)\n\
             ? Q() :- E(X,Y), F(Y,Z)\n\
             ? Q() :- F(Y,Z)\n",
        );
        let base = &[
            "pqe",
            "--db",
            &db,
            "--mode",
            "serve",
            "--script",
            &script,
            "--backend",
            "compressed",
            "--cache-rows",
            "1",
        ];
        let plain = run_strs(base).unwrap();
        let mut args: Vec<&str> = base.to_vec();
        args.push("--spill");
        let spilled = run_strs(&args).unwrap();
        // Every served probability agrees; the spill run reports its
        // disk traffic in an extra trailer line.
        assert_eq!(
            plain.lines().take(4).collect::<Vec<_>>(),
            spilled.lines().take(4).collect::<Vec<_>>(),
        );
        assert!(spilled.contains("spill:"), "{spilled}");
        // Spilling is a compressed-tier capability.
        let mut args: Vec<&str> = base.to_vec();
        let pos = args.iter().position(|a| *a == "compressed").unwrap();
        args[pos] = "columnar";
        args.push("--spill");
        let err = run_strs(&args).unwrap_err();
        assert!(err.contains("compressed"), "{err}");
        // And a serve-mode knob.
        let err =
            run_strs(&["pqe", "--query", "Q() :- E(X,Y)", "--db", &db, "--spill"]).unwrap_err();
        assert!(err.contains("--mode serve"), "{err}");
    }

    #[test]
    fn explicit_delete_form_round_trips_with_deprecated_zero_weight() {
        // The same script written with `!R(..)` deletes and with the
        // deprecated `@ 0` alias must produce identical output — in
        // both script modes.
        let db = write_temp("del.facts", "E(1,2) @ 0.5\nF(2,3) @ 0.5\n");
        let serve_bang = write_temp(
            "del_bang.script",
            "? Q() :- E(X,Y), F(Y,Z)\n\
             !F(2,3)                  # explicit delete\n\
             ? Q() :- E(X,Y), F(Y,Z)\n\
             F(2,3) @ 0.5             # re-insert\n\
             ? Q() :- E(X,Y), F(Y,Z)\n",
        );
        let serve_zero = write_temp(
            "del_zero.script",
            "? Q() :- E(X,Y), F(Y,Z)\n\
             F(2,3) @ 0               # deprecated alias\n\
             ? Q() :- E(X,Y), F(Y,Z)\n\
             F(2,3) @ 0.5\n\
             ? Q() :- E(X,Y), F(Y,Z)\n",
        );
        let bang = run_strs(&[
            "pqe",
            "--db",
            &db,
            "--mode",
            "serve",
            "--script",
            &serve_bang,
        ])
        .unwrap();
        let zero = run_strs(&[
            "pqe",
            "--db",
            &db,
            "--mode",
            "serve",
            "--script",
            &serve_zero,
        ])
        .unwrap();
        assert_eq!(bang, zero, "the two delete spellings must agree");
        assert!(bang.contains("P(Q) = 0.0"), "{bang}");
        // Incremental mode honours the same grammar.
        let upd_bang = write_temp("del_bang.updates", "!F(2,3)\nF(2,3) @ 0.5\n");
        let upd_zero = write_temp("del_zero.updates", "F(2,3) @ 0\nF(2,3) @ 0.5\n");
        let base = |upd: &str| {
            vec![
                "pqe".to_owned(),
                "--query".to_owned(),
                "Q() :- E(X,Y), F(Y,Z)".to_owned(),
                "--db".to_owned(),
                db.clone(),
                "--mode".to_owned(),
                "incremental".to_owned(),
                "--updates".to_owned(),
                upd.to_owned(),
            ]
        };
        let a = run(&base(&upd_bang)).unwrap();
        let b = run(&base(&upd_zero)).unwrap();
        // The trajectories agree line for line apart from the echoed
        // update labels (`!F` renders as weight 0).
        let probs = |s: &str| {
            s.lines()
                .map(|l| l.split("P(Q) = ").last().unwrap().to_owned())
                .collect::<Vec<_>>()
        };
        assert_eq!(probs(&a), probs(&b));
        assert!(a.lines().nth(1).unwrap().contains("P(Q) = 0.0"), "{a}");
        // A weighted delete is rejected helpfully.
        let bad = write_temp("del_bad.updates", "!F(2,3) @ 0.5\n");
        let err = run(&base(&bad)).unwrap_err();
        assert!(err.contains("takes no `@ weight`"), "{err}");
    }

    #[test]
    fn serve_mode_cache_budget_bounds_and_reports_evictions() {
        let db = write_temp(
            "budget.facts",
            "E(1,2) @ 0.5\nE(1,3) @ 0.25\nE(4,3) @ 0.5\nF(2,3) @ 0.5\nF(3,9) @ 0.5\n",
        );
        let script = write_temp(
            "budget.script",
            "? Q() :- E(X,Y)\n\
             ? Q() :- F(Y,Z)\n\
             ? Q() :- E(X,Y)\n",
        );
        let base = &[
            "pqe",
            "--db",
            &db,
            "--mode",
            "serve",
            "--script",
            &script,
            "--cache-rows",
            "2",
        ];
        let out = run_strs(base).unwrap();
        let trailer = out
            .lines()
            .find(|l| l.contains("served"))
            .expect("serve trailer");
        assert!(trailer.contains("evicted"), "{out}");
        assert!(
            !trailer.contains("0 evicted"),
            "a 2-row budget must evict under this script: {out}"
        );
        // Served values are unaffected by eviction.
        let unbounded =
            run_strs(&["pqe", "--db", &db, "--mode", "serve", "--script", &script]).unwrap();
        assert_eq!(
            out.lines().take(3).collect::<Vec<_>>(),
            unbounded.lines().take(3).collect::<Vec<_>>(),
        );
        // --cache-rows outside serve mode fails helpfully.
        let err = run_strs(&[
            "pqe",
            "--query",
            "Q() :- E(X,Y)",
            "--db",
            &db,
            "--cache-rows",
            "2",
        ])
        .unwrap_err();
        assert!(err.contains("--mode serve"), "{err}");
    }

    #[test]
    fn helpful_errors() {
        assert!(run_strs(&["frobnicate"]).is_err());
        assert!(run_strs(&["count", "--query", "R(A), R(B)"]).is_err());
        let out = run_strs(&[]).unwrap();
        assert!(out.contains("commands:"));
    }
}
