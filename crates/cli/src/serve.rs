//! `hq serve --listen` — the multi-tenant wire front-end.
//!
//! Each TCP connection becomes one snapshot-isolated
//! [`hq_unify::Session`] over a single shared [`hq_unify::Server`]
//! (one `EncodedDb`, one plan-node cache, one writer). The wire
//! protocol **is** the script grammar of [`hq_unify::script`], one
//! command per line, one response line per command:
//!
//! * `? <query>` → `<query> -> P(Q) = <p>` — evaluated against the
//!   epoch current when the query starts (or the pinned one);
//! * `R(v1, …) [@ p]` / `!R(v1, …)` → `ok epoch <e>` — a write,
//!   submitted to the server's group-commit queue; concurrent
//!   connections' writes coalesce into one delta-patch pass and one
//!   epoch publication, and `<e>` is the **ticket's** epoch (the one
//!   this write's commit group published), not whatever epoch happens
//!   to be current by reply time;
//! * `pin` → `pinned epoch <e>` / `unpin` → `ok` — hold one snapshot
//!   across writer activity;
//! * `stats` → one line of server counters, write pipeline included
//!   (group commits, coalesced batches, queue depth/high-water,
//!   rejected batches);
//! * `quit` (close this session), `shutdown` (stop the server);
//! * `# …` comments and blank lines are skipped without a response.
//!
//! Errors answer `error: …` and keep the connection open — including
//! `error: write queue full …` when `--write-queue N --write-policy
//! refuse` backpressure refuses a burst. Connections beyond
//! `--max-sessions` are refused with `error: server full`.

use crate::args::Args;
use hq_db::{Fact, Interner, Value};
use hq_monoid::ProbMonoid;
use hq_unify::script::{parse_command, render_command, strip_comment, ScriptCommand};
use hq_unify::{
    ColumnarRelation, CompressedColumnar, MapRelation, Server, ServingBackend, Session,
    ShardedColumnar,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// The four storage tiers behind one wire server. Mirrors the serve
/// mode's `Session` dispatch: `--backend` + `--threads` select the
/// variant once at startup.
enum WireServer {
    Map(Server<ProbMonoid, MapRelation<f64>>),
    Columnar(Server<ProbMonoid, ColumnarRelation<f64>>),
    Sharded(Server<ProbMonoid, ShardedColumnar<f64>>),
    Compressed(Server<ProbMonoid, CompressedColumnar<f64>>),
}

/// One connection's session, matching its server's variant.
enum WireSession {
    Map(Session<ProbMonoid, MapRelation<f64>>),
    Columnar(Session<ProbMonoid, ColumnarRelation<f64>>),
    Sharded(Session<ProbMonoid, ShardedColumnar<f64>>),
    Compressed(Session<ProbMonoid, CompressedColumnar<f64>>),
}

/// Forwards one accessor through the four variants.
macro_rules! on_wire {
    ($value:expr, $s:ident => $body:expr) => {
        match $value {
            WireServer::Map($s) => $body,
            WireServer::Columnar($s) => $body,
            WireServer::Sharded($s) => $body,
            WireServer::Compressed($s) => $body,
        }
    };
}

macro_rules! on_wire_session {
    ($value:expr, $s:ident => $body:expr) => {
        match $value {
            WireSession::Map($s) => $body,
            WireSession::Columnar($s) => $body,
            WireSession::Sharded($s) => $body,
            WireSession::Compressed($s) => $body,
        }
    };
}

impl Clone for WireServer {
    fn clone(&self) -> Self {
        match self {
            WireServer::Map(s) => WireServer::Map(s.clone()),
            WireServer::Columnar(s) => WireServer::Columnar(s.clone()),
            WireServer::Sharded(s) => WireServer::Sharded(s.clone()),
            WireServer::Compressed(s) => WireServer::Compressed(s.clone()),
        }
    }
}

impl WireServer {
    fn build(
        backend: hq_unify::Backend,
        par: hq_unify::Parallelism,
        interner: &Interner,
        tid: &[(Fact, f64)],
    ) -> Result<WireServer, String> {
        fn mk<R: ServingBackend<Ann = f64>>(
            interner: &Interner,
            tid: &[(Fact, f64)],
            par: hq_unify::Parallelism,
        ) -> Result<Server<ProbMonoid, R>, String> {
            Server::with_parallelism(ProbMonoid, interner, tid.iter().cloned(), par)
                .map_err(|e| e.to_string())
        }
        Ok(match (backend, par.is_parallel()) {
            (hq_unify::Backend::Map, _) => WireServer::Map(mk(interner, tid, par)?),
            (hq_unify::Backend::Columnar, false) => WireServer::Columnar(mk(interner, tid, par)?),
            (hq_unify::Backend::Columnar, true) => WireServer::Sharded(mk(interner, tid, par)?),
            // The compressed kernels are sequential; the thread count
            // only affects the worker pool the other tiers shard over.
            (hq_unify::Backend::Compressed, _) => WireServer::Compressed(mk(interner, tid, par)?),
        })
    }

    fn session(&self) -> WireSession {
        match self {
            WireServer::Map(s) => WireSession::Map(s.session()),
            WireServer::Columnar(s) => WireSession::Columnar(s.session()),
            WireServer::Sharded(s) => WireSession::Sharded(s.session()),
            WireServer::Compressed(s) => WireSession::Compressed(s.session()),
        }
    }

    fn set_global_cache_rows(&self, budget: Option<usize>) {
        on_wire!(self, s => s.set_global_cache_rows(budget));
    }

    fn set_max_live_epochs(&self, max: Option<usize>) {
        on_wire!(self, s => s.set_max_live_epochs(max));
    }

    fn set_write_queue(&self, depth: Option<usize>, policy: hq_unify::WritePolicy) {
        on_wire!(self, s => s.set_write_queue(depth, policy));
    }

    fn current_epoch(&self) -> u64 {
        on_wire!(self, s => s.current_epoch())
    }

    fn stats_line(&self) -> String {
        on_wire!(self, s => {
            let w = s.write_stats();
            format!(
                "epoch {}; {} live epoch(s); {} cached node(s), {} rows, {} B; \
                 {} evicted; {} ops performed; {} plan hit(s); \
                 writes: {} commit(s), {} batch(es), max group {}, \
                 queue {} (hw {}), rejected {} invalid / {} full",
                s.current_epoch(),
                s.live_epochs(),
                s.cached_nodes(),
                s.materialised_rows(),
                s.storage_bytes(),
                s.evictions(),
                s.ops_performed(),
                s.plan_hits(),
                w.commits,
                w.batches_committed,
                w.max_group,
                w.queue_depth,
                w.queue_high_water,
                w.rejected_invalid,
                w.rejected_full,
            )
        })
    }
}

impl WireSession {
    fn query(&self, i: &Interner, q: &hq_query::Query) -> Result<f64, String> {
        on_wire_session!(self, s => s.query(i, q).map(|(p, _)| p)).map_err(|e| e.to_string())
    }

    /// Serves a `? fix` recursive reachability query.
    fn query_fix(
        &self,
        i: &Interner,
        rel: &str,
        src: Option<Value>,
        dst: Option<Value>,
    ) -> Result<f64, String> {
        on_wire_session!(self, s => s.query_fix(i, rel, src, dst).map(|(p, _)| p))
            .map_err(|e| e.to_string())
    }

    /// Commits one write through the group-commit queue, returning the
    /// epoch the write's commit group published.
    fn update(&self, i: &Interner, fact: Fact, weight: f64) -> Result<u64, String> {
        on_wire_session!(self, s => s.commit_batch(i, &[(fact, weight)]).map(|r| r.epoch))
            .map_err(|e| e.to_string())
    }

    fn pin(&mut self) -> u64 {
        on_wire_session!(self, s => s.pin())
    }

    fn unpin(&mut self) {
        on_wire_session!(self, s => s.unpin());
    }
}

/// `hq serve --db FILE --listen ADDR [--backend B] [--threads N]
/// [--max-sessions N] [--global-cache-rows N] [--max-live-epochs N]
/// [--write-queue N] [--write-policy block|refuse]`.
/// Binds, prints the bound address to stderr (so `--listen 127.0.0.1:0`
/// is scriptable), and serves until a connection sends `shutdown`.
pub(crate) fn cmd_serve(args: &Args) -> Result<String, String> {
    let backend = crate::backend_arg(args)?;
    let par = crate::threads_arg(args)?;
    let mut interner = Interner::new();
    let (db, weights) = crate::load_db(args.require("db")?, &mut interner)?;
    let weighted: std::collections::BTreeMap<&Fact, f64> =
        weights.iter().map(|(f, w)| (f, *w)).collect();
    let tid: Vec<(Fact, f64)> = db
        .facts()
        .into_iter()
        .map(|f| {
            let p = weighted.get(&f).copied().unwrap_or(1.0);
            (f, p)
        })
        .collect();
    let listen = args.require("listen")?;
    let max_sessions: usize = match args.get("max-sessions") {
        Some(n) => n
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| "max-sessions: expected a positive integer".to_string())?,
        None => 64,
    };
    let server = WireServer::build(backend, par, &interner, &tid)?;
    if let Some(n) = args.get("global-cache-rows") {
        let budget: usize = n
            .parse()
            .map_err(|_| "global-cache-rows: expected a non-negative integer".to_string())?;
        server.set_global_cache_rows(Some(budget));
    }
    if let Some(n) = args.get("max-live-epochs") {
        let max: usize = n
            .parse()
            .ok()
            .filter(|&n| n >= 2)
            .ok_or_else(|| "max-live-epochs: expected an integer >= 2".to_string())?;
        server.set_max_live_epochs(Some(max));
    }
    let write_policy: hq_unify::WritePolicy = match args.get("write-policy") {
        Some(p) => p.parse().map_err(|e| format!("write-policy: {e}"))?,
        None => hq_unify::WritePolicy::default(),
    };
    match args.get("write-queue") {
        Some(n) => {
            let depth: usize = n
                .parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| "write-queue: expected a positive integer".to_string())?;
            server.set_write_queue(Some(depth), write_policy);
        }
        // A policy without a bound still applies (it matters once a
        // bound is set later via future admin surface; harmless now).
        None => server.set_write_queue(None, write_policy),
    }
    let listener = TcpListener::bind(listen).map_err(|e| format!("{listen}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!("hq serve: listening on {addr} ({max_sessions} session(s) max)");
    let interner = Arc::new(RwLock::new(interner));
    let served = serve_loop(listener, &server, &interner, max_sessions)?;
    Ok(format!(
        "served {served} connection(s); final epoch {}\n",
        server.current_epoch()
    ))
}

/// Accepts connections until a handler observes `shutdown`. One thread
/// per **connection** — never per request; all query evaluation inside
/// a connection fans out over the shared worker pool warmed at server
/// construction. Split from [`cmd_serve`] so tests can drive a bound
/// `127.0.0.1:0` listener directly.
fn serve_loop(
    listener: TcpListener,
    server: &WireServer,
    interner: &Arc<RwLock<Interner>>,
    max_sessions: usize,
) -> Result<usize, String> {
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    let mut served = 0usize;
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        if active.load(Ordering::SeqCst) >= max_sessions {
            let mut stream = stream;
            let _ = writeln!(stream, "error: server full ({max_sessions} session(s) max)");
            continue;
        }
        served += 1;
        active.fetch_add(1, Ordering::SeqCst);
        let session = server.session();
        let server = server.clone();
        let interner = interner.clone();
        let stop = stop.clone();
        let active = active.clone();
        handles.push(std::thread::spawn(move || {
            let _ = handle_conn(stream, &server, session, &interner, &stop);
            active.fetch_sub(1, Ordering::SeqCst);
            if stop.load(Ordering::SeqCst) {
                // Wake the acceptor so it observes the stop flag.
                let _ = TcpStream::connect(addr);
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(served)
}

/// Serves one connection: parse each line through the shared script
/// grammar, answer one line per command. Parsing takes the interner
/// write lock (fact values may intern novel symbols); evaluation and
/// updates run under the read lock, so concurrent sessions evaluate
/// in parallel.
fn handle_conn(
    stream: TcpStream,
    server: &WireServer,
    mut session: WireSession,
    interner: &Arc<RwLock<Interner>>,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let Some(cmd) = strip_comment(&line) else {
            continue;
        };
        let reply = match cmd {
            "quit" | "exit" => break,
            "shutdown" => {
                stop.store(true, Ordering::SeqCst);
                writeln!(out, "ok: shutting down")?;
                break;
            }
            "pin" => format!("pinned epoch {}", session.pin()),
            "unpin" => {
                session.unpin();
                "ok".to_owned()
            }
            "stats" => server.stats_line(),
            _ => {
                let parsed = {
                    let mut i = interner.write().expect("interner lock");
                    parse_command(cmd, lineno, "wire", &mut i)
                };
                match parsed {
                    Err(e) => format!("error: {e}"),
                    Ok(ScriptCommand::Query(q)) => {
                        let i = interner.read().expect("interner lock");
                        match session.query(&i, &q) {
                            Ok(p) => format!("{q} -> P(Q) = {p:.9}"),
                            Err(e) => format!("error: {e}"),
                        }
                    }
                    Ok(ref fix_cmd @ ScriptCommand::Fix { ref rel, src, dst }) => {
                        let i = interner.read().expect("interner lock");
                        let echo = render_command(fix_cmd, &i);
                        match session.query_fix(&i, rel, src, dst) {
                            Ok(p) => {
                                format!("{} -> P(Q) = {p:.9}", echo.trim_start_matches("? "))
                            }
                            Err(e) => format!("error: {e}"),
                        }
                    }
                    Ok(ScriptCommand::Update(fact, action)) => {
                        // Probability monoid: a delete and a zero
                        // weight coincide.
                        let i = interner.read().expect("interner lock");
                        match session.update(&i, fact, action.prob_weight()) {
                            Ok(epoch) => format!("ok epoch {epoch}"),
                            Err(e) => format!("error: {e}"),
                        }
                    }
                }
            }
        };
        writeln!(out, "{reply}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn boot(
        db_lines: &str,
        extra: &[(&str, &str)],
    ) -> (
        std::net::SocketAddr,
        std::thread::JoinHandle<Result<usize, String>>,
    ) {
        static NEXT_DB: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let dir = std::env::temp_dir().join("hq-serve-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "db_{}_{}.facts",
            std::process::id(),
            NEXT_DB.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::write(&path, db_lines).unwrap();
        let mut interner = Interner::new();
        let (db, weights) = crate::load_db(path.to_str().unwrap(), &mut interner).unwrap();
        let weighted: std::collections::BTreeMap<&Fact, f64> =
            weights.iter().map(|(f, w)| (f, *w)).collect();
        let tid: Vec<(Fact, f64)> = db
            .facts()
            .into_iter()
            .map(|f| (f.clone(), weighted.get(&f).copied().unwrap_or(1.0)))
            .collect();
        let server = WireServer::build(
            hq_unify::Backend::Columnar,
            hq_unify::Parallelism::default(),
            &interner,
            &tid,
        )
        .unwrap();
        for (k, v) in extra {
            match *k {
                "global-cache-rows" => server.set_global_cache_rows(Some(v.parse().unwrap())),
                "max-live-epochs" => server.set_max_live_epochs(Some(v.parse().unwrap())),
                "write-queue" => {
                    server.set_write_queue(Some(v.parse().unwrap()), Default::default());
                }
                _ => unreachable!(),
            }
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let interner = Arc::new(RwLock::new(interner));
        let handle = std::thread::spawn(move || serve_loop(listener, &server, &interner, 2));
        (addr, handle)
    }

    fn roundtrip(addr: std::net::SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).unwrap();
        for l in lines {
            // A refused connection may already be closed server-side;
            // the refusal line is still readable below.
            let _ = writeln!(stream, "{l}");
        }
        let reader = BufReader::new(stream);
        reader.lines().map(|l| l.unwrap()).collect()
    }

    #[test]
    fn wire_protocol_serves_queries_updates_and_verbs() {
        let (addr, handle) = boot("E(1,2) @ 0.5\nF(2,3) @ 0.5\n", &[]);
        let replies = roundtrip(
            addr,
            &[
                "? Q() :- E(X,Y), F(Y,Z)",
                "# a comment line draws no response",
                "E(1,2) @ 0.9",
                "? Q() :- E(X,Y), F(Y,Z)",
                "!F(2,3)",
                "? Q() :- E(X,Y), F(Y,Z)",
                "stats",
                "nonsense(((",
                "quit",
            ],
        );
        assert_eq!(replies.len(), 7, "{replies:?}");
        assert!(replies[0].contains("P(Q) = 0.25"), "{replies:?}");
        assert!(replies[1].starts_with("ok epoch"), "{replies:?}");
        assert!(replies[2].contains("P(Q) = 0.45"), "{replies:?}");
        assert!(replies[3].starts_with("ok epoch"), "{replies:?}");
        assert!(replies[4].contains("P(Q) = 0.0"), "{replies:?}");
        assert!(replies[5].contains("cached node(s)"), "{replies:?}");
        assert!(replies[6].starts_with("error:"), "{replies:?}");
        let shut = roundtrip(addr, &["shutdown"]);
        assert_eq!(shut, vec!["ok: shutting down".to_owned()]);
        let served = handle.join().unwrap().unwrap();
        assert_eq!(served, 2);
    }

    #[test]
    fn wire_protocol_serves_recursive_fix_queries() {
        let (addr, handle) = boot("E(1,2) @ 0.5\nE(2,3) @ 0.5\n", &[]);
        let replies = roundtrip(
            addr,
            &[
                "? fix E 1 3",  // one 2-hop path: 0.25
                "? fix E 1 2",  // the direct edge
                "? fix E 3 1",  // unreachable
                "E(1,3) @ 0.5", // short-circuit edge joins round 0
                "? fix E 1 3",  // direct edge now freezes the pair
                "? fix",        // malformed: no relation
                "quit",
            ],
        );
        assert_eq!(replies.len(), 6, "{replies:?}");
        assert!(
            replies[0].contains("fix E 1 3 -> P(Q) = 0.25"),
            "{replies:?}"
        );
        assert!(
            replies[1].contains("fix E 1 2 -> P(Q) = 0.5"),
            "{replies:?}"
        );
        assert!(
            replies[2].contains("fix E 3 1 -> P(Q) = 0.0"),
            "{replies:?}"
        );
        assert!(replies[3].starts_with("ok epoch"), "{replies:?}");
        // Min-round semantics: the direct edge derives (1,3) at round
        // 0, so the round-1 two-hop derivation no longer folds in.
        assert!(
            replies[4].contains("fix E 1 3 -> P(Q) = 0.5"),
            "{replies:?}"
        );
        assert!(replies[5].starts_with("error:"), "{replies:?}");
        let _ = roundtrip(addr, &["shutdown"]);
        let _ = handle.join().unwrap();
    }

    #[test]
    fn pinned_wire_session_is_isolated_and_server_full_refuses() {
        let (addr, handle) = boot("E(1,2) @ 0.5\nF(2,3) @ 0.5\n", &[]);
        // Reader A pins, reader B writes; A still sees the snapshot.
        let mut a = TcpStream::connect(addr).unwrap();
        writeln!(a, "pin").unwrap();
        let mut a_reader = BufReader::new(a.try_clone().unwrap());
        let mut line = String::new();
        a_reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("pinned epoch"), "{line}");
        let b_replies = roundtrip(addr, &["E(1,2) @ 0.9", "? Q() :- E(X,Y), F(Y,Z)", "quit"]);
        assert!(b_replies[1].contains("P(Q) = 0.45"), "{b_replies:?}");
        // A third connection is refused: both slots are taken (the
        // pinned session plus the acceptor's bookkeeping lags B's
        // close) — retry until the pinned session is the only one.
        writeln!(a, "? Q() :- E(X,Y), F(Y,Z)").unwrap();
        line.clear();
        a_reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("P(Q) = 0.25"),
            "pinned read saw the write: {line}"
        );
        writeln!(a, "unpin").unwrap();
        line.clear();
        a_reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "ok");
        writeln!(a, "? Q() :- E(X,Y), F(Y,Z)").unwrap();
        line.clear();
        a_reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("P(Q) = 0.45"),
            "unpinned read is current: {line}"
        );
        writeln!(a, "shutdown").unwrap();
        drop(a);
        drop(a_reader);
        let _ = handle.join().unwrap();
    }

    #[test]
    fn wire_updates_report_ticket_epochs_and_write_stats() {
        let (addr, handle) = boot("E(1,2) @ 0.5\nF(2,3) @ 0.5\n", &[("write-queue", "4")]);
        let replies = roundtrip(
            addr,
            &[
                "E(1,2) @ 0.9",
                "E(1,2) @ 0.9", // no-op: state unchanged, epoch stays
                "F(2,3) @ 0.8",
                "E(1,2,3) @ 0.4", // arity mismatch: rejected at enqueue
                "stats",
                "quit",
            ],
        );
        assert_eq!(replies.len(), 5, "{replies:?}");
        assert_eq!(replies[0], "ok epoch 1", "{replies:?}");
        assert_eq!(replies[1], "ok epoch 1", "{replies:?}");
        assert_eq!(replies[2], "ok epoch 2", "{replies:?}");
        assert!(replies[3].starts_with("error:"), "{replies:?}");
        assert!(replies[3].contains("arity"), "{replies:?}");
        let stats = &replies[4];
        assert!(
            stats.contains("writes: 3 commit(s), 3 batch(es)"),
            "{stats}"
        );
        assert!(stats.contains("rejected 1 invalid / 0 full"), "{stats}");
        let shut = roundtrip(addr, &["shutdown"]);
        assert_eq!(shut, vec!["ok: shutting down".to_owned()]);
        let _ = handle.join().unwrap();
    }

    #[test]
    fn server_full_refusal() {
        let (addr, handle) = boot("E(1,2) @ 0.5\n", &[]);
        // Hold both session slots open.
        let mut s1 = TcpStream::connect(addr).unwrap();
        writeln!(s1, "pin").unwrap();
        let mut r1 = BufReader::new(s1.try_clone().unwrap());
        let mut line = String::new();
        r1.read_line(&mut line).unwrap();
        let mut s2 = TcpStream::connect(addr).unwrap();
        writeln!(s2, "pin").unwrap();
        let mut r2 = BufReader::new(s2.try_clone().unwrap());
        line.clear();
        r2.read_line(&mut line).unwrap();
        // The third is refused. Read without writing first: the server
        // answers and closes on accept, and a close with unread inbound
        // bytes would RST away the refusal line.
        let third = TcpStream::connect(addr).unwrap();
        let replies: Vec<String> = BufReader::new(third).lines().map(|l| l.unwrap()).collect();
        assert_eq!(replies.len(), 1, "{replies:?}");
        assert!(replies[0].contains("server full"), "{replies:?}");
        writeln!(s1, "shutdown").unwrap();
        // `try_clone` readers share the fd: the handlers only see EOF
        // once both halves drop.
        drop(s1);
        drop(r1);
        drop(s2);
        drop(r2);
        let _ = handle.join().unwrap();
    }
}
