//! The shared query-plan IR: Algorithm 1's Rule 1/Rule 2 step
//! sequence as first-class, **hash-consed** plan nodes.
//!
//! An [`EliminationPlan`](hq_query::EliminationPlan) is a per-query
//! recipe expressed in that query's private vocabulary (atom slots,
//! variable ids). Two different queries can nevertheless demand the
//! *same physical work* — scanning relation `R` into the same column
//! order, folding the same column away, joining the same pair of
//! intermediates. [`PlanIr`] makes that sharing explicit: lowering a
//! query rewrites its plan into [`PlanExpr`] nodes whose vocabulary is
//! purely *structural* (relation names and column positions — no
//! variable ids, which are query-local numbering accidents), and
//! interning structurally identical nodes gives them one stable
//! [`PlanId`]. A batch of queries lowered into one arena therefore
//! deduplicates common sub-plans for free: every shared intermediate
//! is evaluated **once per backend** and its annotated relation (plus
//! its exact ⊕/⊗ op counts) reused by every query that contains the
//! node — the multi-query planner of the serving layer
//! ([`crate::serving::ServingSession`]).
//!
//! Structural identity is chosen so that equal nodes are guaranteed
//! equal *evaluations*: a [`PlanExpr::Scan`] is keyed by relation name
//! and the written-order → key-order column permutation (two atoms
//! whose variables sort differently produce genuinely different
//! relations and correctly do not share); [`PlanExpr::Project`] by
//! input node and dropped column index; [`PlanExpr::Join`] by the
//! ordered input pair (order fixes the ⊗ operand sides, part of the
//! bit-identity contract).

use hq_query::{EliminationPlan, Query, Step, Var};
use std::collections::{BTreeSet, HashMap};

/// A stable structural identity: the index of a hash-consed
/// [`PlanExpr`] in its [`PlanIr`] arena. Equal ids ⇔ structurally
/// identical sub-plans ⇔ identical evaluation over one database state.
pub type PlanId = usize;

/// One node of the shared plan IR, in structural (query-independent)
/// vocabulary.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlanExpr {
    /// Materialise one relation as a K-annotated slot: `positions[j]`
    /// is the written-order column that lands in key column `j`
    /// (ascending variable order). The arity is `positions.len()`.
    Scan {
        /// Relation name (interner-independent identity).
        rel: String,
        /// Written-order → key-order column permutation.
        positions: Vec<usize>,
    },
    /// Rule 1: ⊕-fold key column `col` of `input` away.
    Project {
        /// The node whose output is folded.
        input: PlanId,
        /// The dropped key-column index.
        col: usize,
    },
    /// Rule 2: ⊗-outer-join two nodes with equal key schemas. The
    /// operand order is part of the identity (it fixes each ⊗'s left
    /// and right arguments).
    Join {
        /// Left operand (the surviving slot of the step).
        left: PlanId,
        /// Right operand (the slot the step kills).
        right: PlanId,
    },
    /// The loop variable of an enclosing [`PlanExpr::Fixpoint`]: stands
    /// for "the previous round's delta" inside the recursive step plan.
    /// It has no payload (one recursion at a time; mutual recursion is
    /// a ROADMAP follow-up) and no base-relation deps of its own.
    Rec,
    /// Relational composition of two binary relations:
    /// `T(x, z) = ⊕_y L(x, y) ⊗ R(y, z)` — the one join shape a linear
    /// recursive step needs (it is *not* a Rule 2 equal-schema join,
    /// which is why it is a distinct node kind).
    Compose {
        /// Left operand `L(x, y)`.
        left: PlanId,
        /// Right operand `R(y, z)`.
        right: PlanId,
    },
    /// Datalog-style recursion: the least fixpoint of
    /// `acc = base ⊕ step(acc)`, evaluated semi-naively — each round
    /// runs `step` over the previous round's *delta* only (the
    /// [`PlanExpr::Rec`] placeholder inside `step`), ⊕-merges novel
    /// tuples into the accumulator, and terminates when a round's
    /// delta annihilates (produces no tuple absent from the
    /// accumulator's support).
    Fixpoint {
        /// The round-0 plan (also the round-0 delta).
        base: PlanId,
        /// The recursive step, containing exactly one [`PlanExpr::Rec`].
        step: PlanId,
    },
}

/// A hash-consing arena of [`PlanExpr`] nodes shared by every query
/// lowered into it.
#[derive(Debug, Default)]
pub struct PlanIr {
    nodes: Vec<PlanExpr>,
    /// Base relation names each node reads — the invalidation footprint
    /// used when updates dirty a relation.
    deps: Vec<BTreeSet<String>>,
    index: HashMap<PlanExpr, PlanId>,
}

impl PlanIr {
    /// An empty arena.
    pub fn new() -> Self {
        PlanIr::default()
    }

    /// Interns `expr`, returning the existing id when a structurally
    /// identical node was interned before.
    ///
    /// Ids are assigned in interning order and a node can only refer
    /// to already-interned inputs, so **every input id is smaller than
    /// its consumer's**: ascending id order is a topological order of
    /// the DAG. The serving layer's update walk patches cached nodes
    /// in exactly that order, guaranteeing each node sees its inputs'
    /// post-patch state and change sets.
    pub fn intern(&mut self, expr: PlanExpr) -> PlanId {
        if let Some(&id) = self.index.get(&expr) {
            return id;
        }
        debug_assert!(
            match &expr {
                PlanExpr::Scan { .. } | PlanExpr::Rec => true,
                PlanExpr::Project { input, .. } => *input < self.nodes.len(),
                PlanExpr::Join { left, right } | PlanExpr::Compose { left, right } =>
                    *left < self.nodes.len() && *right < self.nodes.len(),
                PlanExpr::Fixpoint { base, step } =>
                    *base < self.nodes.len() && *step < self.nodes.len(),
            },
            "plan nodes must be interned after their inputs"
        );
        let deps = match &expr {
            PlanExpr::Scan { rel, .. } => BTreeSet::from([rel.clone()]),
            // The loop variable is bound by the enclosing Fixpoint; it
            // reads no base relation by itself.
            PlanExpr::Rec => BTreeSet::new(),
            PlanExpr::Project { input, .. } => self.deps[*input].clone(),
            PlanExpr::Join { left, right } | PlanExpr::Compose { left, right } => {
                let mut d = self.deps[*left].clone();
                d.extend(self.deps[*right].iter().cloned());
                d
            }
            PlanExpr::Fixpoint { base, step } => {
                let mut d = self.deps[*base].clone();
                d.extend(self.deps[*step].iter().cloned());
                d
            }
        };
        let id = self.nodes.len();
        self.nodes.push(expr.clone());
        self.deps.push(deps);
        self.index.insert(expr, id);
        id
    }

    /// The node behind an id.
    pub fn node(&self, id: PlanId) -> &PlanExpr {
        &self.nodes[id]
    }

    /// The base relation names node `id` transitively reads. An update
    /// touching none of them cannot change the node's output — the
    /// cache-invalidation contract of the serving layer.
    pub fn deps(&self, id: PlanId) -> &BTreeSet<String> {
        &self.deps[id]
    }

    /// Number of distinct nodes interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// One step of a lowered query: which original atom slot the step
/// rewrites, the node id holding that slot's state afterwards, and the
/// slot a merge kills (for support-trajectory replay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredStep {
    /// The atom slot the step writes (`ProjectOut.atom` / `Merge.left`).
    pub touched: usize,
    /// The hash-consed node for the slot's state after this step.
    pub node: PlanId,
    /// The slot a [`Step::Merge`] consumes (`None` for Rule 1 steps).
    pub killed: Option<usize>,
}

/// A query lowered onto a [`PlanIr`]: scan nodes per atom slot, one
/// node per plan step, and the root node holding the nullary result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredQuery {
    /// The scan node of each atom slot, in atom order.
    pub scans: Vec<PlanId>,
    /// The steps in execution order.
    pub steps: Vec<LoweredStep>,
    /// The node holding the final nullary relation.
    pub root: PlanId,
}

impl LoweredQuery {
    /// Every node the query evaluates, in dependency order (scans
    /// first, then step outputs).
    pub fn nodes(&self) -> impl Iterator<Item = PlanId> + '_ {
        self.scans
            .iter()
            .copied()
            .chain(self.steps.iter().map(|s| s.node))
    }
}

/// Lowers `(q, plan)` onto the arena, interning every intermediate
/// state as a structural node. Queries lowered onto the **same** arena
/// share ids for common sub-plans — the multi-query deduplication.
pub fn lower(ir: &mut PlanIr, q: &Query, plan: &EliminationPlan) -> LoweredQuery {
    // Per-slot schema (ascending variable ids) and current node.
    let mut schemas: Vec<Vec<Var>> = Vec::with_capacity(q.atom_count());
    let mut states: Vec<PlanId> = Vec::with_capacity(q.atom_count());
    for atom in q.atoms() {
        // One shared definition of the written→key permutation
        // (`Atom::key_schema`) keeps scan identities aligned with the
        // annotation and encoded-cache layers.
        let (sorted, positions) = atom.key_schema();
        let id = ir.intern(PlanExpr::Scan {
            rel: atom.rel.clone(),
            positions,
        });
        schemas.push(sorted);
        states.push(id);
    }
    let scans = states.clone();
    let mut steps = Vec::with_capacity(plan.steps().len());
    for step in plan.steps() {
        match *step {
            Step::ProjectOut { atom, var } => {
                let col = schemas[atom]
                    .iter()
                    .position(|&v| v == var)
                    .expect("projected variable in schema");
                schemas[atom].remove(col);
                let node = ir.intern(PlanExpr::Project {
                    input: states[atom],
                    col,
                });
                states[atom] = node;
                steps.push(LoweredStep {
                    touched: atom,
                    node,
                    killed: None,
                });
            }
            Step::Merge { left, right } => {
                debug_assert_eq!(
                    schemas[left], schemas[right],
                    "Rule 2 merges equal variable sets"
                );
                let node = ir.intern(PlanExpr::Join {
                    left: states[left],
                    right: states[right],
                });
                states[left] = node;
                steps.push(LoweredStep {
                    touched: left,
                    node,
                    killed: Some(right),
                });
            }
        }
    }
    LoweredQuery {
        scans,
        steps,
        root: states[plan.root()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_query::{parse_query, plan};

    fn lowered(ir: &mut PlanIr, src: &str) -> LoweredQuery {
        let q = parse_query(src).unwrap();
        let p = plan(&q).unwrap();
        lower(ir, &q, &p)
    }

    #[test]
    fn identical_queries_share_every_node() {
        let mut ir = PlanIr::new();
        let a = lowered(&mut ir, "Q() :- E(X,Y), F(Y,Z)");
        let n = ir.len();
        let b = lowered(&mut ir, "Q() :- E(X,Y), F(Y,Z)");
        assert_eq!(a, b, "same query must lower to the same node ids");
        assert_eq!(ir.len(), n, "no new nodes for an identical query");
    }

    #[test]
    fn overlapping_queries_share_common_prefixes() {
        // Both queries scan E(X,Y) and fold X (the private variable
        // with the lowest id) first: the scan and the first projection
        // must be shared, the rest not.
        let mut ir = PlanIr::new();
        let full = lowered(&mut ir, "Q() :- E(X,Y), F(Y,Z)");
        let sub = lowered(&mut ir, "Q() :- E(X,Y)");
        assert_eq!(full.scans[0], sub.scans[0], "shared E scan");
        assert_eq!(
            full.steps[0].node, sub.steps[0].node,
            "shared fold of X out of E"
        );
        assert_ne!(full.root, sub.root);
    }

    #[test]
    fn different_column_orders_do_not_share() {
        // E(X,Y) with X first vs E written against reversed variable
        // numbering produce different key permutations — distinct scan
        // nodes, because their physical relations genuinely differ.
        let mut ir = PlanIr::new();
        let a = lowered(&mut ir, "Q() :- E(X,Y), F(Y,Z)");
        // Here Y is interned first, so E(X,Y)'s key order is (Y, X).
        let b = lowered(&mut ir, "Q() :- F(Y,Z), E(X,Y)");
        assert_ne!(a.scans[0], b.scans[1], "permuted scans must not share");
        // F's own key order is (Y, Z) in both queries: that scan shares.
        assert_eq!(a.scans[1], b.scans[0], "identical F scans share");
    }

    #[test]
    fn deps_track_base_relations() {
        let mut ir = PlanIr::new();
        let q = lowered(&mut ir, "Q() :- E(X,Y), F(Y,Z)");
        assert_eq!(
            ir.deps(q.root).iter().cloned().collect::<Vec<_>>(),
            vec!["E".to_owned(), "F".to_owned()]
        );
        assert_eq!(
            ir.deps(q.scans[0]).iter().cloned().collect::<Vec<_>>(),
            vec!["E".to_owned()]
        );
    }

    #[test]
    fn lowered_scans_are_initial_states() {
        let mut ir = PlanIr::new();
        let q = lowered(&mut ir, "Q() :- E(X,Y), F(Y,Z)");
        for &s in &q.scans {
            assert!(matches!(ir.node(s), PlanExpr::Scan { .. }));
        }
        assert!(matches!(ir.node(q.root), PlanExpr::Project { .. }));
    }
}
