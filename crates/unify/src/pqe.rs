//! Probabilistic Query Evaluation front-end (Theorem 5.8).
//!
//! Given a tuple-independent probabilistic database — a set of facts
//! each carrying an independent presence probability — computes the
//! marginal probability that a hierarchical SJF-BCQ evaluates to true,
//! in time `O(|D|)`. This instantiation of Algorithm 1 specialises
//! exactly to the Dalvi–Suciu algorithm.

use crate::engine::{
    evaluate_columnar_par, evaluate_compressed_par, evaluate_on_par, EngineStats, UnifyError,
};
use crate::fixpoint::{transitive_closure, transitive_closure_on, FixpointRun};
use crate::incremental::{IncrementalError, IncrementalRun};
use crate::serving::{ServingBackend, ServingError, ServingSession, UpdateOutcome};
use crate::storage::{
    Backend, ColumnarRelation, CompressedColumnar, MapRelation, Parallelism, ShardedColumnar,
    Storage,
};
use hq_arith::Rational;
use hq_db::{Fact, Interner, Tuple, Value};
use hq_monoid::{ExactProbMonoid, ProbMonoid, TwoMonoid};
use hq_query::Query;
use std::fmt;

/// Errors specific to PQE inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum PqeError {
    /// A probability was outside `[0, 1]` (or not finite).
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// Planning or annotation failed.
    Unify(UnifyError),
    /// An incremental update was rejected.
    Incremental(IncrementalError),
    /// A serving-session call was rejected.
    Serving(ServingError),
}

impl fmt::Display for PqeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PqeError::InvalidProbability { value } => {
                write!(f, "probability {value} outside [0, 1]")
            }
            PqeError::Unify(e) => write!(f, "{e}"),
            PqeError::Incremental(e) => write!(f, "{e}"),
            PqeError::Serving(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PqeError {}

impl From<UnifyError> for PqeError {
    fn from(e: UnifyError) -> Self {
        PqeError::Unify(e)
    }
}

impl From<IncrementalError> for PqeError {
    fn from(e: IncrementalError) -> Self {
        PqeError::Incremental(e)
    }
}

impl From<ServingError> for PqeError {
    fn from(e: ServingError) -> Self {
        PqeError::Serving(e)
    }
}

/// Computes `P(Q = true)` over the tuple-independent database given as
/// `(fact, probability)` pairs, along with engine statistics.
///
/// # Errors
/// Rejects non-hierarchical queries, malformed fact lists, and
/// probabilities outside `[0, 1]`.
pub fn probability_with_stats(
    q: &Query,
    interner: &Interner,
    tid: &[(Fact, f64)],
) -> Result<(f64, EngineStats), PqeError> {
    probability_with_stats_on(Backend::Map, q, interner, tid)
}

/// [`probability_with_stats`] on an explicit storage backend. All
/// backends return bit-identical probabilities and identical stats.
///
/// # Errors
/// See [`probability_with_stats`].
pub fn probability_with_stats_on(
    backend: Backend,
    q: &Query,
    interner: &Interner,
    tid: &[(Fact, f64)],
) -> Result<(f64, EngineStats), PqeError> {
    probability_with_stats_par(backend, Parallelism::default(), q, interner, tid)
}

/// [`probability_with_stats_on`] with an explicit [`Parallelism`]
/// degree: shard kernels run on the persistent worker
/// [`pool`](crate::pool) (no per-call thread spawns) and the ψ-fold
/// takes [`hq_monoid::DenseFold`]'s vectorisable fast path, yet
/// probabilities and stats stay bit-identical at every thread count.
///
/// # Errors
/// See [`probability_with_stats`].
pub fn probability_with_stats_par(
    backend: Backend,
    par: Parallelism,
    q: &Query,
    interner: &Interner,
    tid: &[(Fact, f64)],
) -> Result<(f64, EngineStats), PqeError> {
    for &(_, p) in tid {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(PqeError::InvalidProbability { value: p });
        }
    }
    // The columnar path annotates straight from the borrowed fact
    // list — no per-fact tuple clone.
    let out = match backend {
        Backend::Columnar => evaluate_columnar_par(
            par,
            &ProbMonoid,
            q,
            interner,
            tid.iter().map(|(f, p)| (f.rel, &f.tuple, *p)),
        )?,
        Backend::Compressed => evaluate_compressed_par(
            par,
            &ProbMonoid,
            q,
            interner,
            tid.iter().map(|(f, p)| (f.rel, &f.tuple, *p)),
        )?,
        Backend::Map => evaluate_on_par(
            backend,
            par,
            &ProbMonoid,
            q,
            interner,
            tid.iter().map(|(f, p)| (f.clone(), *p)),
        )?,
    };
    Ok(out)
}

/// Computes `P(Q = true)` (probability only).
///
/// ```
/// use hq_db::db_from_ints;
/// use hq_query::parse_query;
///
/// // Two fact-disjoint witnesses, each holding with probability
/// // 1/2 · 1/2 = 1/4, so P(Q) = 1 − (1 − 1/4)² = 0.4375.
/// let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
/// let (db, i) = db_from_ints(&[
///     ("E", &[&[1, 2], &[7, 8]]),
///     ("F", &[&[2, 3], &[8, 9]]),
/// ]);
/// let tid: Vec<_> = db.facts().into_iter().map(|f| (f, 0.5)).collect();
/// let p = hq_unify::pqe::probability(&q, &i, &tid).unwrap();
/// assert!((p - 0.4375).abs() < 1e-12);
/// ```
///
/// # Errors
/// See [`probability_with_stats`].
pub fn probability(q: &Query, interner: &Interner, tid: &[(Fact, f64)]) -> Result<f64, PqeError> {
    probability_with_stats(q, interner, tid).map(|(p, _)| p)
}

/// [`probability`] on an explicit storage backend.
///
/// # Errors
/// See [`probability_with_stats`].
pub fn probability_on(
    backend: Backend,
    q: &Query,
    interner: &Interner,
    tid: &[(Fact, f64)],
) -> Result<f64, PqeError> {
    probability_with_stats_on(backend, q, interner, tid).map(|(p, _)| p)
}

/// [`probability`] on an explicit backend and [`Parallelism`] degree.
///
/// # Errors
/// See [`probability_with_stats`].
pub fn probability_par(
    backend: Backend,
    par: Parallelism,
    q: &Query,
    interner: &Interner,
    tid: &[(Fact, f64)],
) -> Result<f64, PqeError> {
    probability_with_stats_par(backend, par, q, interner, tid).map(|(p, _)| p)
}

/// Exact-rational PQE: same algorithm over the exact probability
/// 2-monoid. Used as the oracle in differential tests and by the CLI's
/// `--exact` mode.
///
/// # Errors
/// Rejects non-hierarchical queries and malformed fact lists.
pub fn probability_exact(
    q: &Query,
    interner: &Interner,
    tid: &[(Fact, Rational)],
) -> Result<Rational, UnifyError> {
    probability_exact_on(Backend::Map, q, interner, tid)
}

/// [`probability_exact`] on an explicit storage backend.
///
/// # Errors
/// Rejects non-hierarchical queries and malformed fact lists.
pub fn probability_exact_on(
    backend: Backend,
    q: &Query,
    interner: &Interner,
    tid: &[(Fact, Rational)],
) -> Result<Rational, UnifyError> {
    probability_exact_par(backend, Parallelism::default(), q, interner, tid)
}

/// [`probability_exact`] on an explicit backend and [`Parallelism`]
/// degree.
///
/// # Errors
/// Rejects non-hierarchical queries and malformed fact lists.
pub fn probability_exact_par(
    backend: Backend,
    par: Parallelism,
    q: &Query,
    interner: &Interner,
    tid: &[(Fact, Rational)],
) -> Result<Rational, UnifyError> {
    let (p, _) = match backend {
        Backend::Columnar => evaluate_columnar_par(
            par,
            &ExactProbMonoid,
            q,
            interner,
            tid.iter().map(|(f, p)| (f.rel, &f.tuple, p.clone())),
        )?,
        Backend::Compressed => evaluate_compressed_par(
            par,
            &ExactProbMonoid,
            q,
            interner,
            tid.iter().map(|(f, p)| (f.rel, &f.tuple, p.clone())),
        )?,
        Backend::Map => evaluate_on_par(
            backend,
            par,
            &ExactProbMonoid,
            q,
            interner,
            tid.iter().map(|(f, p)| (f.clone(), p.clone())),
        )?,
    };
    Ok(p)
}

/// Computes the **expected bag-set value** `E[Q(D)]` — the expected
/// number of distinct satisfying assignments over the possible worlds
/// of the tuple-independent database. Runs Algorithm 1 over the real
/// sum-product semiring; by linearity of expectation this equals
/// `Σ_assignments Π p(fact)`.
///
/// # Errors
/// Same failure modes as [`probability`].
pub fn expected_count(
    q: &Query,
    interner: &Interner,
    tid: &[(Fact, f64)],
) -> Result<f64, PqeError> {
    expected_count_on(Backend::Map, q, interner, tid)
}

/// [`expected_count`] on an explicit storage backend.
///
/// # Errors
/// Same failure modes as [`probability`].
pub fn expected_count_on(
    backend: Backend,
    q: &Query,
    interner: &Interner,
    tid: &[(Fact, f64)],
) -> Result<f64, PqeError> {
    expected_count_par(backend, Parallelism::default(), q, interner, tid)
}

/// [`expected_count`] on an explicit backend and [`Parallelism`]
/// degree.
///
/// # Errors
/// Same failure modes as [`probability`].
pub fn expected_count_par(
    backend: Backend,
    par: Parallelism,
    q: &Query,
    interner: &Interner,
    tid: &[(Fact, f64)],
) -> Result<f64, PqeError> {
    for &(_, p) in tid {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(PqeError::InvalidProbability { value: p });
        }
    }
    let (e, _) = match backend {
        Backend::Columnar => evaluate_columnar_par(
            par,
            &hq_monoid::RealSemiring,
            q,
            interner,
            tid.iter().map(|(f, p)| (f.rel, &f.tuple, *p)),
        )?,
        Backend::Compressed => evaluate_compressed_par(
            par,
            &hq_monoid::RealSemiring,
            q,
            interner,
            tid.iter().map(|(f, p)| (f.rel, &f.tuple, *p)),
        )?,
        Backend::Map => evaluate_on_par(
            backend,
            par,
            &hq_monoid::RealSemiring,
            q,
            interner,
            tid.iter().map(|(f, p)| (f.clone(), *p)),
        )?,
    };
    Ok(e)
}

fn validate(tid: &[(Fact, f64)]) -> Result<(), PqeError> {
    for &(_, p) in tid {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(PqeError::InvalidProbability { value: p });
        }
    }
    Ok(())
}

/// The probability readout of a recursive [`FixpointRun`]: both
/// endpoints fixed → that pair's reachability probability; one fixed →
/// the noisy-or fold over its slice; neither → the run's ⊕-total.
fn fix_readout(run: &FixpointRun<f64>, src: Option<Value>, dst: Option<Value>) -> f64 {
    match (src, dst) {
        (Some(s), Some(d)) => run.get(s, d).copied().unwrap_or(0.0),
        (Some(s), None) => ProbMonoid.sum(
            run.acc
                .range((s, Value::Int(i64::MIN))..)
                .take_while(|(&(a, _), _)| a == s)
                .map(|(_, (k, _))| k),
        ),
        (None, Some(d)) => ProbMonoid.sum(
            run.acc
                .iter()
                .filter(|(&(_, b), _)| b == d)
                .map(|(_, (k, _))| k),
        ),
        (None, None) => run.total,
    }
}

/// Recursive reachability over an independent probabilistic edge
/// relation: the left-linear transitive-closure fixpoint
/// `T = E ⊕ (T ∘ E)` under the probability 2-monoid, read out at the
/// requested endpoints (`None` = any; see [`fix_readout`] semantics in
/// the return description). Returns the probability and the kernel's
/// [`EngineStats`].
///
/// **Semantics.** Exact probabilistic reachability is `#P`-hard, so
/// the fixpoint computes the paper-consistent *min-round* relaxation:
/// each pair's annotation freezes at its first derivation round, and ⊕
/// (noisy-or) folds over that round's derivations in ascending
/// join-value order — a deterministic, backend- and thread-independent
/// value, bit-identical everywhere the differential suite looks.
///
/// # Errors
/// Rejects probabilities outside `[0, 1]`, non-binary edge tuples, and
/// duplicate edge keys.
pub fn reachability(
    edges: &[(Tuple, f64)],
    src: Option<Value>,
    dst: Option<Value>,
) -> Result<(f64, EngineStats), PqeError> {
    for &(_, p) in edges {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(PqeError::InvalidProbability { value: p });
        }
    }
    let run = transitive_closure(&ProbMonoid, edges).map_err(ServingError::from)?;
    Ok((fix_readout(&run, src, dst), run.stats))
}

/// [`reachability`] with the edges and the accumulator round-tripped
/// through an explicit storage [`Backend`]
/// ([`transitive_closure_on`]) — values, trajectories and stats are
/// bit-identical to the oracle form by construction.
///
/// # Errors
/// See [`reachability`].
pub fn reachability_on(
    backend: Backend,
    edges: &[(Tuple, f64)],
    src: Option<Value>,
    dst: Option<Value>,
) -> Result<(f64, EngineStats), PqeError> {
    for &(_, p) in edges {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(PqeError::InvalidProbability { value: p });
        }
    }
    let run = transitive_closure_on(backend, &ProbMonoid, edges).map_err(ServingError::from)?;
    Ok((fix_readout(&run, src, dst), run.stats))
}

/// An incrementally-maintained PQE instance: build once over a
/// tuple-independent database, then stream probability updates,
/// deletions (probability `0`) and genuinely new facts, each served in
/// time proportional to the dirty groups it touches — not `|D|`.
/// The maintained probability stays **bit-identical** to a fresh
/// [`probability`] evaluation of the current state, on every backend.
pub struct IncrementalPqe<R: Storage<Ann = f64> = MapRelation<f64>> {
    run: IncrementalRun<ProbMonoid, R>,
}

impl IncrementalPqe<MapRelation<f64>> {
    /// Builds the maintained instance on the ordered-map backend (the
    /// point-update oracle).
    ///
    /// # Errors
    /// Rejects non-hierarchical queries, schema mismatches, and
    /// probabilities outside `[0, 1]`.
    pub fn new(q: &Query, interner: &Interner, tid: &[(Fact, f64)]) -> Result<Self, PqeError> {
        validate(tid)?;
        let run = IncrementalRun::with_storage(ProbMonoid, q, interner, tid.iter().cloned())?;
        Ok(IncrementalPqe { run })
    }
}

impl IncrementalPqe<ColumnarRelation<f64>> {
    /// Builds the maintained instance on the columnar backend.
    ///
    /// # Errors
    /// See [`IncrementalPqe::new`].
    pub fn columnar(q: &Query, interner: &Interner, tid: &[(Fact, f64)]) -> Result<Self, PqeError> {
        validate(tid)?;
        let run = IncrementalRun::with_storage(ProbMonoid, q, interner, tid.iter().cloned())?;
        Ok(IncrementalPqe { run })
    }
}

impl IncrementalPqe<CompressedColumnar<f64>> {
    /// Builds the maintained instance on the compressed columnar
    /// backend (block-encoded code matrices; point updates rewrite one
    /// block at a time).
    ///
    /// # Errors
    /// See [`IncrementalPqe::new`].
    pub fn compressed(
        q: &Query,
        interner: &Interner,
        tid: &[(Fact, f64)],
    ) -> Result<Self, PqeError> {
        validate(tid)?;
        let run = IncrementalRun::with_storage(ProbMonoid, q, interner, tid.iter().cloned())?;
        Ok(IncrementalPqe { run })
    }
}

impl IncrementalPqe<ShardedColumnar<f64>> {
    /// Builds the maintained instance on the sharded columnar backend:
    /// the initial materialisation runs shard-parallel at the given
    /// [`Parallelism`] degree; results stay bit-identical.
    ///
    /// # Errors
    /// See [`IncrementalPqe::new`].
    pub fn sharded(
        q: &Query,
        interner: &Interner,
        tid: &[(Fact, f64)],
        par: Parallelism,
    ) -> Result<Self, PqeError> {
        validate(tid)?;
        let run =
            IncrementalRun::with_parallelism(ProbMonoid, q, interner, tid.iter().cloned(), par)?;
        Ok(IncrementalPqe { run })
    }
}

impl<R: Storage<Ann = f64>> IncrementalPqe<R> {
    /// The current `P(Q = true)`.
    pub fn probability(&self) -> f64 {
        *self.run.result()
    }

    /// Updates one fact's probability (`0` deletes; unseen facts over
    /// query relations are admitted) and returns the new probability.
    ///
    /// # Errors
    /// Rejects probabilities outside `[0, 1]` and facts over relations
    /// the query does not mention.
    pub fn update(&mut self, interner: &Interner, fact: &Fact, p: f64) -> Result<f64, PqeError> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(PqeError::InvalidProbability { value: p });
        }
        Ok(*self.run.update(interner, fact, p)?)
    }

    /// Applies a batch of probability updates in one propagation pass
    /// (later entries for the same fact win) and returns the new
    /// probability.
    ///
    /// # Errors
    /// See [`IncrementalPqe::update`]; all-or-nothing on rejection.
    pub fn update_batch(
        &mut self,
        interner: &Interner,
        updates: &[(Fact, f64)],
    ) -> Result<f64, PqeError> {
        validate(updates)?;
        Ok(*self.run.update_batch(interner, updates)?)
    }

    /// The underlying maintained run (work accounting, replayed stats).
    pub fn run(&self) -> &IncrementalRun<ProbMonoid, R> {
        &self.run
    }
}

/// A multi-query PQE serving session: one tuple-independent database,
/// many (possibly overlapping) probability queries, interleaved
/// probability updates. The PQE front-end *builds plans* into the
/// session's shared [`crate::plan_ir::PlanIr`]; common sub-plans across
/// queries are evaluated once per backend, and every returned
/// probability and [`EngineStats`] is bit-identical to an independent
/// [`probability_with_stats_par`] evaluation of the current state.
pub struct PqeSession<R: ServingBackend<Ann = f64> = ColumnarRelation<f64>> {
    session: ServingSession<ProbMonoid, R>,
}

impl PqeSession<MapRelation<f64>> {
    /// Builds the session on the ordered-map oracle backend.
    ///
    /// # Errors
    /// Rejects probabilities outside `[0, 1]` and inconsistent arities.
    pub fn new(interner: &Interner, tid: &[(Fact, f64)]) -> Result<Self, PqeError> {
        validate(tid)?;
        Ok(PqeSession {
            session: ServingSession::new(ProbMonoid, interner, tid.iter().cloned())?,
        })
    }
}

impl PqeSession<ColumnarRelation<f64>> {
    /// Builds the session on the columnar backend (the fast path:
    /// scans assemble from the cached [`crate::EncodedDb`] codes).
    ///
    /// # Errors
    /// Rejects probabilities outside `[0, 1]` and inconsistent arities.
    pub fn columnar(interner: &Interner, tid: &[(Fact, f64)]) -> Result<Self, PqeError> {
        validate(tid)?;
        Ok(PqeSession {
            session: ServingSession::new(ProbMonoid, interner, tid.iter().cloned())?,
        })
    }
}

impl PqeSession<CompressedColumnar<f64>> {
    /// Builds the session on the compressed columnar backend: cached
    /// nodes hold block-encoded matrices, and eviction victims may
    /// spill to disk ([`PqeSession::set_spill`]).
    ///
    /// # Errors
    /// Rejects probabilities outside `[0, 1]` and inconsistent arities.
    pub fn compressed(interner: &Interner, tid: &[(Fact, f64)]) -> Result<Self, PqeError> {
        validate(tid)?;
        Ok(PqeSession {
            session: ServingSession::new(ProbMonoid, interner, tid.iter().cloned())?,
        })
    }
}

impl PqeSession<ShardedColumnar<f64>> {
    /// Builds the session on the sharded columnar backend at the given
    /// [`Parallelism`] degree; results stay bit-identical.
    ///
    /// # Errors
    /// Rejects probabilities outside `[0, 1]` and inconsistent arities.
    pub fn sharded(
        interner: &Interner,
        tid: &[(Fact, f64)],
        par: Parallelism,
    ) -> Result<Self, PqeError> {
        validate(tid)?;
        Ok(PqeSession {
            session: ServingSession::with_parallelism(
                ProbMonoid,
                interner,
                tid.iter().cloned(),
                par,
            )?,
        })
    }
}

impl<R: ServingBackend<Ann = f64>> PqeSession<R> {
    /// Evaluates `P(Q = true)` for one query, sharing sub-plans with
    /// every query this session has served.
    ///
    /// # Errors
    /// Rejects non-hierarchical queries and schema mismatches.
    pub fn query(
        &mut self,
        interner: &Interner,
        q: &Query,
    ) -> Result<(f64, EngineStats), PqeError> {
        Ok(self.session.query(interner, q)?)
    }

    /// Serves the recursive reachability query over binary relation
    /// `rel` (see [`reachability`] for the min-round noisy-or
    /// semantics). The materialised fixpoint is cached and maintained
    /// incrementally under [`PqeSession::update_batch`]; repeats
    /// replay it with zero monoid operations.
    ///
    /// # Errors
    /// Rejects non-binary relations (and, structurally, non-convergent
    /// monoids — never the case for probabilities).
    pub fn reachability(
        &mut self,
        interner: &Interner,
        rel: &str,
        src: Option<Value>,
        dst: Option<Value>,
    ) -> Result<(f64, EngineStats), PqeError> {
        Ok(self.session.query_fix(interner, rel, src, dst)?)
    }

    /// Evaluates a batch of queries; common sub-plans are evaluated
    /// once.
    ///
    /// # Errors
    /// Fails on the first erroneous query.
    pub fn query_batch(
        &mut self,
        interner: &Interner,
        queries: &[Query],
    ) -> Result<Vec<(f64, EngineStats)>, PqeError> {
        Ok(self.session.query_batch(interner, queries)?)
    }

    /// Updates one fact's probability (`0` deletes, unseen facts
    /// insert), invalidating only the cached intermediates that read
    /// the fact's relation.
    ///
    /// # Errors
    /// Rejects probabilities outside `[0, 1]` and schema mismatches.
    pub fn update(
        &mut self,
        interner: &Interner,
        fact: &Fact,
        p: f64,
    ) -> Result<UpdateOutcome, PqeError> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(PqeError::InvalidProbability { value: p });
        }
        Ok(self.session.update(interner, fact, p)?)
    }

    /// Applies a batch of probability updates (later writes win) in one
    /// cache-repair pass.
    ///
    /// # Errors
    /// See [`PqeSession::update`]; all-or-nothing on rejection.
    pub fn update_batch(
        &mut self,
        interner: &Interner,
        updates: &[(Fact, f64)],
    ) -> Result<UpdateOutcome, PqeError> {
        validate(updates)?;
        Ok(self.session.update_batch(interner, updates)?)
    }

    /// The underlying session (sharing/caching introspection).
    pub fn session(&self) -> &ServingSession<ProbMonoid, R> {
        &self.session
    }

    /// Bounds the session's node cache (see
    /// [`ServingSession::set_cache_budget`]). Only the serving knobs
    /// are forwarded mutably — the session itself stays behind the
    /// wrapper so probability validation cannot be bypassed.
    pub fn set_cache_budget(&mut self, budget: Option<usize>) {
        self.session.set_cache_budget(budget);
    }

    /// Enables or disables spill-on-evict (see
    /// [`ServingSession::set_spill`]); returns the effective state.
    pub fn set_spill(&mut self, enabled: bool) -> bool {
        self.session.set_spill(enabled)
    }

    /// Sets the rebuild-fallback threshold (see
    /// [`ServingSession::set_patch_fraction`]).
    pub fn set_patch_fraction(&mut self, fraction: f64) {
        self.session.set_patch_fraction(fraction);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_db::db_from_ints;
    use hq_query::{example_query, q_hierarchical, q_non_hierarchical, Query};

    fn tid_uniform(db: &hq_db::Database, p: f64) -> Vec<(Fact, f64)> {
        db.facts().into_iter().map(|f| (f, p)).collect()
    }

    #[test]
    fn single_atom_query_is_disjunction() {
        // Q() :- R(X) with facts p each: P = 1 - (1-p)^n.
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let (db, i) = db_from_ints(&[("R", &[&[1], &[2], &[3]])]);
        let p = probability(&q, &i, &tid_uniform(&db, 0.5)).unwrap();
        assert!((p - (1.0 - 0.125)).abs() < 1e-12);
    }

    #[test]
    fn dalvi_suciu_example_structure() {
        // Eq. (4)-(9) on the Fig. 1 database with p = 1/2 everywhere.
        // Hand evaluation:
        //   T'(1,2) = 1/2; S'(1,1) = 1/2*0 = 0 (no T fact), so only
        //   S'(1,2) = 1/4 → S''(1) = 1/4; R'(1) = 1/2;
        //   R''(1) = 1/8 → P = 1/8.
        let q = example_query();
        let (db, i) = db_from_ints(&[
            ("R", &[&[1, 5]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4]]),
        ]);
        let p = probability(&q, &i, &tid_uniform(&db, 0.5)).unwrap();
        assert!((p - 0.125).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn exact_matches_float() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[
            ("E", &[&[1, 2], &[1, 3], &[4, 3]]),
            ("F", &[&[2, 9], &[3, 8], &[3, 9]]),
        ]);
        let tid = tid_uniform(&db, 0.25);
        let p = probability(&q, &i, &tid).unwrap();
        let exact: Vec<(Fact, Rational)> = tid
            .iter()
            .map(|(f, _)| (f.clone(), Rational::ratio(1, 4)))
            .collect();
        let pe = probability_exact(&q, &i, &exact).unwrap();
        assert!((p - pe.to_f64()).abs() < 1e-12);
    }

    #[test]
    fn certain_and_impossible_facts() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        assert_eq!(probability(&q, &i, &tid_uniform(&db, 1.0)).unwrap(), 1.0);
        assert_eq!(probability(&q, &i, &tid_uniform(&db, 0.0)).unwrap(), 0.0);
    }

    #[test]
    fn rejects_bad_probability() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]])]);
        let tid = tid_uniform(&db, 1.5);
        assert!(matches!(
            probability(&q, &i, &tid),
            Err(PqeError::InvalidProbability { .. })
        ));
        let tid = tid_uniform(&db, f64::NAN);
        assert!(probability(&q, &i, &tid).is_err());
    }

    #[test]
    fn rejects_non_hierarchical() {
        let q = q_non_hierarchical();
        let i = Interner::new();
        assert!(matches!(
            probability(&q, &i, &[]),
            Err(PqeError::Unify(UnifyError::NotHierarchical(_)))
        ));
        assert!(expected_count(&q, &i, &[]).is_err());
    }

    #[test]
    fn expected_count_single_atom() {
        // E[Q] for Q() :- R(X) over n facts with probability p is n·p.
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let (db, i) = db_from_ints(&[("R", &[&[1], &[2], &[3]])]);
        let e = expected_count(&q, &i, &tid_uniform(&db, 0.25)).unwrap();
        assert!((e - 0.75).abs() < 1e-12);
    }

    #[test]
    fn expected_count_product_structure() {
        // Q() :- E(X,Y), F(Y,Z): each joined pair contributes the
        // product of its two probabilities.
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 8], &[2, 9]])]);
        let e = expected_count(&q, &i, &tid_uniform(&db, 0.5)).unwrap();
        // Two assignments, each with probability 1/2 * 1/2.
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn expected_count_with_certain_facts_is_plain_count() {
        let q = example_query();
        let (db, mut i) = db_from_ints(&[
            ("R", &[&[1, 5], &[1, 6]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4]]),
        ]);
        let e = expected_count(&q, &i, &tid_uniform(&db, 1.0)).unwrap();
        let pattern = q.to_pattern(&mut i);
        let exact = hq_db::count_matches(&db, &pattern).unwrap();
        assert!((e - exact as f64).abs() < 1e-12);
    }

    #[test]
    fn incremental_pqe_tracks_fresh_evaluation() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[
            ("E", &[&[1, 2], &[1, 3], &[4, 3]]),
            ("F", &[&[2, 9], &[3, 8], &[3, 9]]),
        ]);
        let tid = tid_uniform(&db, 0.5);
        let mut map = IncrementalPqe::new(&q, &i, &tid).unwrap();
        let mut col = IncrementalPqe::columnar(&q, &i, &tid).unwrap();
        let mut sh = IncrementalPqe::sharded(&q, &i, &tid, Parallelism::fine_grained(3)).unwrap();
        let mut current = tid.clone();
        current[0].1 = 0.8;
        current[3].1 = 0.1;
        let batch = vec![(current[0].0.clone(), 0.8), (current[3].0.clone(), 0.1)];
        let fresh = probability(&q, &i, &current).unwrap();
        for p in [
            map.update_batch(&i, &batch).unwrap(),
            col.update_batch(&i, &batch).unwrap(),
            sh.update_batch(&i, &batch).unwrap(),
        ] {
            assert_eq!(p.to_bits(), fresh.to_bits());
        }
        // Invalid probabilities are rejected before any state changes.
        let before = map.probability();
        assert!(map.update(&i, &tid[0].0, 1.5).is_err());
        assert_eq!(map.probability().to_bits(), before.to_bits());
    }

    #[test]
    fn pqe_session_shares_plans_and_tracks_updates() {
        let q_full = q_hierarchical();
        let q_sub = Query::new(&[("E", &["X", "Y"])]).unwrap();
        let (db, i) = db_from_ints(&[
            ("E", &[&[1, 2], &[1, 3], &[4, 3]]),
            ("F", &[&[2, 9], &[3, 8], &[3, 9]]),
        ]);
        let tid = tid_uniform(&db, 0.5);
        let mut map = PqeSession::new(&i, &tid).unwrap();
        let mut col = PqeSession::columnar(&i, &tid).unwrap();
        let mut sh = PqeSession::sharded(&i, &tid, Parallelism::fine_grained(2)).unwrap();
        for q in [&q_full, &q_sub] {
            let (want, want_stats) =
                probability_with_stats_on(Backend::Columnar, q, &i, &tid).unwrap();
            for (p, stats) in [
                map.query(&i, q).unwrap(),
                col.query(&i, q).unwrap(),
                sh.query(&i, q).unwrap(),
            ] {
                assert_eq!(p.to_bits(), want.to_bits());
                assert_eq!(stats, want_stats);
            }
        }
        // The sub-query shares E's scan+fold with the full query.
        let independent: u64 = [&q_full, &q_sub]
            .iter()
            .map(|q| {
                probability_with_stats_on(Backend::Columnar, q, &i, &tid)
                    .unwrap()
                    .1
                    .total_ops()
            })
            .sum();
        assert!(col.session().ops_performed() < independent);
        // An update flows through; invalid probabilities are rejected.
        let mut current = tid.clone();
        current[0].1 = 0.9;
        col.update(&i, &current[0].0, 0.9).unwrap();
        let (fresh, _) =
            probability_with_stats_on(Backend::Columnar, &q_full, &i, &current).unwrap();
        let (got, _) = col.query(&i, &q_full).unwrap();
        assert_eq!(got.to_bits(), fresh.to_bits());
        assert!(col.update(&i, &current[0].0, 1.5).is_err());
    }

    #[test]
    fn expectation_bounds_probability() {
        // Markov: P(Q) = P(count ≥ 1) ≤ E[count].
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[
            ("E", &[&[1, 2], &[1, 3], &[4, 3]]),
            ("F", &[&[2, 9], &[3, 8], &[3, 9]]),
        ]);
        let tid = tid_uniform(&db, 0.35);
        let p = probability(&q, &i, &tid).unwrap();
        let e = expected_count(&q, &i, &tid).unwrap();
        assert!(p <= e + 1e-12, "P={p} E={e}");
    }
}
