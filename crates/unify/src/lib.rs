//! # hq-unify — the unifying algorithm for hierarchical queries
//!
//! Algorithm 1 of *A Unifying Algorithm for Hierarchical Queries*
//! (PODS 2025): a single polynomial-time engine over K-annotated
//! relations, parameterized by a 2-monoid, that solves —
//!
//! * **Probabilistic Query Evaluation** ([`pqe`], Theorem 5.8, `O(|D|)`),
//! * **Bag-Set Maximization** ([`bsm`], Theorem 5.11,
//!   `O((|D|+|D_r|)·|D_r|²)`),
//! * **Shapley value computation** ([`shapley`], Theorem 5.16,
//!   `O((|D_x|+|D_n|)·|D_n|²)`),
//!
//! plus classical semiring evaluation and the universal
//! [`provenance`] instantiation used by the generic correctness proof.
//!
//! ```
//! use hq_db::{db_from_ints};
//! use hq_query::parse_query;
//! use hq_unify::bsm;
//!
//! // Figure 1 of the paper: repair D with ≤ 2 facts from D_r.
//! let q = parse_query("Q() :- R(A,B), S(A,C), T(A,C,D)").unwrap();
//! let (d, mut interner) = db_from_ints(&[
//!     ("R", &[&[1, 5]]),
//!     ("S", &[&[1, 1], &[1, 2]]),
//!     ("T", &[&[1, 2, 4]]),
//! ]);
//! let (d_r, _) = {
//!     let r = interner.intern("R");
//!     let t = interner.intern("T");
//!     let mut d_r = hq_db::Database::new();
//!     d_r.insert_tuple(r, hq_db::Tuple::ints(&[1, 6]));
//!     d_r.insert_tuple(r, hq_db::Tuple::ints(&[1, 7]));
//!     d_r.insert_tuple(t, hq_db::Tuple::ints(&[1, 1, 4]));
//!     d_r.insert_tuple(t, hq_db::Tuple::ints(&[1, 2, 9]));
//!     (d_r, ())
//! };
//! let solution = bsm::maximize(&q, &interner, &d, &d_r, 2).unwrap();
//! assert_eq!(solution.optimum(), 4); // the paper's optimal repair
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotated;
pub mod bsm;
pub mod engine;
pub mod incremental;
pub mod pqe;
pub mod provenance;
pub mod shapley;

pub use annotated::{annotate, AnnotateError, AnnotatedDb, AnnotatedRelation};
pub use bsm::{maximize, maximize_with_repair, BsmRepairSolution, BsmSolution};
pub use engine::{evaluate, run_plan, EngineStats, UnifyError};
pub use incremental::{IncrementalError, IncrementalRun};
pub use pqe::{expected_count, probability, probability_exact, PqeError};
pub use provenance::{provenance_tree, Provenance};
pub use shapley::{sat_counts, shapley_value, shapley_values, ShapleyError};
