//! # hq-unify — the unifying algorithm for hierarchical queries
//!
//! Algorithm 1 of *A Unifying Algorithm for Hierarchical Queries*
//! (PODS 2025): a single polynomial-time engine over K-annotated
//! relations, parameterized by a 2-monoid, that solves —
//!
//! * **Probabilistic Query Evaluation** ([`pqe`], Theorem 5.8, `O(|D|)`),
//! * **Bag-Set Maximization** ([`bsm`], Theorem 5.11,
//!   `O((|D|+|D_r|)·|D_r|²)`),
//! * **Shapley value computation** ([`shapley`], Theorem 5.16,
//!   `O((|D_x|+|D_n|)·|D_n|²)`),
//!
//! plus classical semiring evaluation and the universal
//! [`provenance`] instantiation used by the generic correctness proof.
//!
//! ## The storage layer
//!
//! Theorem 6.7 bounds Algorithm 1 at *linearly many* ⊕/⊗ operations —
//! so in practice the physical layout of the annotated relations, not
//! the algorithm, decides the runtime. The engine is therefore generic
//! over a [`storage::Storage`] backend:
//!
//! * [`storage::MapRelation`] — the ordered-map layout
//!   (`BTreeMap<Tuple, K>`): the deterministic differential oracle,
//!   and the default for the point-update-heavy [`incremental`]
//!   maintainer;
//! * [`storage::ColumnarRelation`] — the columnar layout: dense sorted
//!   row-major matrices of dictionary codes
//!   ([`hq_db::ValueDict`]) with a parallel annotation column. Rule 1
//!   is a single-pass grouped fold (re-sorting a scratch matrix only
//!   when the dropped column breaks the order), Rule 2 a linear
//!   sort-merge outer join; no per-tuple allocation on the hot path.
//!
//! Both backends apply the same monoid operations in the same order,
//! so results are **bit-identical** (floats included) and
//! [`EngineStats`] agree exactly; the workspace's
//! `differential_backends` suite pins this down on random hierarchical
//! instances. Every front-end takes a runtime [`Backend`] in its
//! `*_on` variant ([`pqe::probability_on`], [`bsm::maximize_on`],
//! [`shapley::shapley_values_on`], …); the plain entry points run the
//! ordered-map oracle. The `hq` CLI selects with
//! `--backend map|columnar` and the criterion benches in `hq-bench`
//! race the two layouts on identical workloads.
//!
//! ## Parallel sharded execution
//!
//! The columnar layout is partition-ready: sorted matrices cut into
//! contiguous shards on key boundaries, so Rule 1 folds and Rule 2
//! merges decompose into independent per-shard kernels
//! ([`storage::ShardedColumnar`]). Every front-end takes a
//! [`Parallelism`] degree in its `*_par` variant
//! ([`pqe::probability_par`], [`bsm::maximize_par`],
//! [`shapley::shapley_values_par`],
//! [`IncrementalRun::with_parallelism`], …), and the CLI exposes
//! `--threads N|max`. Shard kernels run on a persistent process-wide
//! work-stealing worker [`pool`] (warmed once, zero thread spawns per
//! rule application afterwards); the general-column argsort runs as a
//! parallel merge sort over the same pool, and the prob/count folds
//! take a dense auto-vectorisable fast path
//! ([`hq_monoid::DenseFold`]). Shard outputs and per-shard op counts
//! are recombined in fixed shard order and per-group folds stay
//! sequential, so **every thread count returns bit-identical results
//! and identical [`EngineStats`]** — pinned by the
//! `differential_parallel` suite.
//!
//! ## Batched multi-query serving
//!
//! [`EncodedDb`] caches a database's dictionary encoding (the
//! dominant cost of building columnar relations) so that repeated
//! queries over one database skip re-encoding entirely; see
//! [`evaluate_encoded`]. On top of it, [`ServingSession`] (typed
//! wrappers [`pqe::PqeSession`], [`bsm::BsmSession`],
//! [`shapley::SatSession`]; CLI `pqe --mode serve`) is a full
//! multi-query server: queries are lowered onto a hash-consed plan IR
//! ([`plan_ir`]) so overlapping queries evaluate each common sub-plan
//! **once per backend** (a repeated query performs zero monoid ops),
//! and `update`/`update_batch` calls delta-refresh the encoding,
//! patch cached scans in place, and invalidate only the cached
//! intermediates whose input relations changed — with every served
//! value and [`EngineStats`] bit-identical to independent fresh
//! evaluation (pinned by `tests/differential_serving.rs`).
//!
//! ## Incremental serving
//!
//! [`IncrementalRun`] maintains a materialised pipeline under
//! annotation updates, batched updates and dynamic fact inserts,
//! refolding dirty groups through the delta-indexed
//! [`storage::Storage::group_rows`] lookup in time proportional to the
//! dirty set — bit-identical to fresh evaluation on every backend and
//! thread count. Typed front-ends: [`pqe::IncrementalPqe`],
//! [`bsm::IncrementalBsm`], [`shapley::IncrementalSatCounts`]; the CLI
//! exposes `--mode incremental --updates FILE`.
//!
//! ```
//! use hq_db::{db_from_ints};
//! use hq_query::parse_query;
//! use hq_unify::bsm;
//!
//! // Figure 1 of the paper: repair D with ≤ 2 facts from D_r.
//! let q = parse_query("Q() :- R(A,B), S(A,C), T(A,C,D)").unwrap();
//! let (d, mut interner) = db_from_ints(&[
//!     ("R", &[&[1, 5]]),
//!     ("S", &[&[1, 1], &[1, 2]]),
//!     ("T", &[&[1, 2, 4]]),
//! ]);
//! let (d_r, _) = {
//!     let r = interner.intern("R");
//!     let t = interner.intern("T");
//!     let mut d_r = hq_db::Database::new();
//!     d_r.insert_tuple(r, hq_db::Tuple::ints(&[1, 6]));
//!     d_r.insert_tuple(r, hq_db::Tuple::ints(&[1, 7]));
//!     d_r.insert_tuple(t, hq_db::Tuple::ints(&[1, 1, 4]));
//!     d_r.insert_tuple(t, hq_db::Tuple::ints(&[1, 2, 9]));
//!     (d_r, ())
//! };
//! let solution = bsm::maximize(&q, &interner, &d, &d_r, 2).unwrap();
//! assert_eq!(solution.optimum(), 4); // the paper's optimal repair
//!
//! // Same instance on the columnar backend: identical answer.
//! use hq_unify::Backend;
//! let fast = bsm::maximize_on(Backend::Columnar, &q, &interner, &d, &d_r, 2).unwrap();
//! assert_eq!(fast.curve, solution.curve);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotated;
pub mod bsm;
pub mod engine;
pub mod fixpoint;
pub mod incremental;
pub mod plan_ir;
pub mod pool;
pub mod pqe;
pub mod provenance;
pub mod script;
pub mod server;
pub mod serving;
pub mod shapley;
pub mod storage;

pub use annotated::{
    annotate, annotate_columnar, annotate_with, AnnotateError, AnnotatedDb, AnnotatedRelation,
};
pub use bsm::{
    maximize, maximize_with_repair, BsmRepairSolution, BsmSolution, IncrementalBsm, PsiClass,
};
pub use engine::{
    evaluate, evaluate_compressed_par, evaluate_encoded, evaluate_on, evaluate_on_par, run_plan,
    EngineStats, UnifyError,
};
pub use fixpoint::{
    patch_inserts, semi_naive, transitive_closure, transitive_closure_on, validate_fixpoint,
    FixSpec, FixpointError, FixpointRun, PatchOutcome, PatchStats, StepShape,
};
pub use incremental::{coalesce_batches, IncrementalError, IncrementalRun, UpdateStats};
pub use plan_ir::{lower, LoweredQuery, PlanExpr, PlanId, PlanIr};
pub use pqe::{
    expected_count, probability, probability_exact, reachability, reachability_on, IncrementalPqe,
    PqeError,
};
pub use provenance::{provenance_tree, Provenance};
pub use script::{parse_command, parse_script, render_command, ScriptCommand, UpdateAction};
pub use server::{
    CommitReceipt, CommitTicket, EpochState, Server, Session, WritePolicy, WriteStats,
};
pub use serving::{ServingBackend, ServingError, ServingSession, UpdateOutcome};
pub use shapley::{
    sat_counts, shapley_value, shapley_values, FactRole, IncrementalSatCounts, ShapleyError,
};
pub use storage::{
    Backend, ColumnarRelation, CompressedAnn, CompressedBuilder, CompressedColumnar, EncodedDb,
    MapRelation, Parallelism, RefreshOutcome, ShardedColumnar, Storage,
};
