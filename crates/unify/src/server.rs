//! Multi-tenant serving server: N snapshot-isolated reader sessions
//! and one writer over a single shared plan-node cache.
//!
//! A [`Server`] owns one **master** [`ServingSession`] (the writer's
//! state: the hash-consed plan IR, the lowering memo, and the
//! delta-patch/refold machinery of [`crate::serving`]) and multiplexes
//! any number of reader [`Session`] handles over it. The concurrency
//! model is **single-writer / multi-reader snapshot isolation**:
//!
//! * **Epochs.** Every committed [`Server::update_batch`] publishes an
//!   immutable [`EpochState`] — a copy-on-write snapshot of the
//!   database, the annotation map, the [`EncodedDb`] code matrices and
//!   the per-relation dirty epochs. Readers evaluate against the
//!   epoch current when their query starts (or one explicitly pinned
//!   with [`Session::pin`]); the writer patches the master in place
//!   and publishes the next epoch without ever touching a published
//!   one. An epoch retires (its matrices free) when its last reader
//!   drops.
//! * **Shared node cache.** Materialised plan nodes live in one
//!   process-wide cache keyed by `(plan node, code generation, dep
//!   stamp)`, where the *stamp* is the maximum dirty epoch over the
//!   node's input relations and the *code generation* counts
//!   dictionary extensions (a novel domain value renumbers every
//!   cached matrix without touching any stamp, so the generation must
//!   be part of the key). Stamps are injective along the single
//!   writer history: every epoch in which a node's inputs carry the
//!   same stamps holds bit-identical input relations, so a cache hit
//!   is exact regardless of which session — at which epoch — computed
//!   the entry. Cache hits on shared sub-plans are **zero-op across
//!   clients**; two sessions racing to materialise the same key both
//!   compute bit-identical nodes and the first insert wins.
//! * **Write path: group commit.** Writers never take the master
//!   mutex directly. [`Server::submit_batch`] validates a batch's
//!   arities at enqueue time (against a grow-only registry, so a bad
//!   batch fails on its own [`CommitTicket`] without poisoning
//!   anyone) and pushes it onto a bounded commit queue; the first
//!   ticket-waiter to acquire commit leadership drains *every*
//!   pending batch, coalesces them last-write-wins
//!   ([`crate::incremental::coalesce_batches`] — the per-batch
//!   dirty-key coalescing lifted across sessions), runs **one**
//!   delta-patch pass and publishes **one** epoch for the whole
//!   group. Within the pass the committer first *adopts* any
//!   reader-materialised nodes that are current for the master state,
//!   so nodes warmed by any reader stay warm across the write, then
//!   *exports* the patched nodes back to the shared cache at their
//!   post-batch stamps. Groups commit in arrival-sequence order, so
//!   the final state equals a serial replay of the batches in `seq`
//!   order ([`CommitReceipt::seq`]).
//! * **Burst backpressure.** Above the epoch admission bound,
//!   [`Server::set_write_queue`] bounds the commit-queue depth with a
//!   blocking or refusing policy ([`WritePolicy`]), and
//!   [`Server::write_stats`] exposes commits, coalesced batches,
//!   queue depth/high-water and rejected-batch counters.
//! * **Memory governor.** [`Server::set_global_cache_rows`] bounds the
//!   total materialised rows across all sessions (cost-aware-LRU
//!   eviction, like the per-session budget of
//!   [`ServingSession::set_cache_budget`]);
//!   [`Session::set_cache_budget`] additionally bounds the rows a
//!   single session may keep materialised; and
//!   [`Server::set_max_live_epochs`] admission-controls update bursts
//!   — a writer blocks until enough pinned epochs retire.
//!
//! **Determinism contract.** Unchanged from [`crate::serving`]: every
//! query's value and reported [`EngineStats`] are bit-identical to an
//! independent fresh evaluation over its epoch's state, on every
//! backend and thread count. Concurrency never enters the numerics:
//! per-query stats are *replayed* from recorded per-node op counts,
//! and all kernel execution fans out over the persistent
//! [`crate::pool`] (zero thread spawns per request once
//! [`Server::with_parallelism`] has warmed it). The
//! `tests/differential_server.rs` suite pins N concurrent readers + 1
//! writer against a serial replay of the same interleaved script.

use crate::annotated::AnnotateError;
use crate::engine::EngineStats;
use crate::fixpoint::{semi_naive, validate_fixpoint_in, FixpointError, FixpointRun};
use crate::incremental::coalesce_batches;
use crate::plan_ir::{LoweredQuery, PlanExpr, PlanId};
use crate::serving::{
    query_shape, QueryShape, ServingBackend, ServingError, ServingSession, UpdateOutcome,
};
use crate::storage::{ColumnarRelation, EncodedDb, Parallelism};
use hq_db::{Database, Fact, Interner, RowCode, Sym, Tuple, Value};
use hq_monoid::TwoMonoid;
use hq_query::{Query, Var};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock, Weak};
use std::time::Duration;

/// The writer's session id in shared-cache owner tags (real sessions
/// start at 1).
const WRITER: u64 = 0;

/// One immutable published snapshot: everything a reader needs to
/// evaluate queries without taking the master lock. Readers holding an
/// `Arc<EpochState>` (pinned, or just for the duration of one query)
/// keep the epoch's copy-on-write matrices alive; dropping the last
/// reference retires the epoch and wakes any writer blocked on
/// [`Server::set_max_live_epochs`] admission.
pub struct EpochState<M: TwoMonoid> {
    epoch: u64,
    code_gen: u64,
    db: Database,
    ann: BTreeMap<Fact, M::Elem>,
    enc: EncodedDb,
    rel_epoch: HashMap<String, u64>,
    retire: Weak<RetireSignal>,
}

impl<M: TwoMonoid> EpochState<M> {
    /// The monotone update-batch counter this snapshot was published
    /// at (`0` is the construction state).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl<M: TwoMonoid> Drop for EpochState<M> {
    fn drop(&mut self) {
        // Retirement: wake a writer waiting for epoch-count admission.
        if let Some(sig) = self.retire.upgrade() {
            sig.notify();
        }
    }
}

/// Wakes admission-blocked writers when an epoch retires or a pinned
/// session closes.
struct RetireSignal {
    lock: Mutex<()>,
    cvar: Condvar,
}

impl RetireSignal {
    fn notify(&self) {
        let _guard = self.lock.lock().unwrap();
        self.cvar.notify_all();
    }
}

/// One immutable materialised plan node in the shared cache. `rel` is
/// never mutated after insertion — epochs that need a different
/// version of the node live under a different `(generation, stamp)`
/// key — so readers clone relations out of it without locks.
struct SharedNode<R: ServingBackend> {
    rel: R,
    add_ops: u64,
    mul_ops: u64,
    rows: usize,
    /// Base relations the node transitively reads (stamp vocabulary).
    deps: Arc<BTreeSet<String>>,
    /// Session that materialised the node (per-session budgets evict
    /// a session's own nodes first).
    owner: u64,
    /// Global LRU clock value of the last touch.
    last_used: AtomicU64,
    /// The recorded kernel run of a [`PlanExpr::Fixpoint`] node —
    /// replayed for recursive readouts and handed back to the master
    /// on adoption so the writer keeps delta-patching across commits.
    /// `None` for every non-recursive node.
    fix: Option<FixpointRun<R::Ann>>,
}

/// Shared-cache key: `(plan node, code generation, dep stamp)`.
type NodeKey = (PlanId, u64, u64);

/// One node the writer exports into the shared cache after a batch:
/// `(plan node, relation, ⊕ ops, ⊗ ops, dependency set, fixpoint
/// run)`.
type Export<R> = (
    PlanId,
    R,
    u64,
    u64,
    Arc<BTreeSet<String>>,
    Option<FixpointRun<<R as crate::storage::Storage>::Ann>>,
);

/// One reader-warmed node adopted back into the master before a write:
/// `(plan node, relation, ⊕ ops, ⊗ ops, fixpoint run)` — the dep set
/// is recomputed master-side.
type Adopted<R> = (
    PlanId,
    R,
    u64,
    u64,
    Option<FixpointRun<<R as crate::storage::Storage>::Ann>>,
);

/// A query resolved against the master IR once and memoised for every
/// session: the lowering plus each node's structural expression and
/// dep set, so reader evaluation never takes the master lock on a
/// plan-memo hit.
struct ResolvedPlan {
    lowered: LoweredQuery,
    exprs: HashMap<PlanId, PlanExpr>,
    deps: HashMap<PlanId, Arc<BTreeSet<String>>>,
}

/// Memory-governor knobs (see [`Server::set_global_cache_rows`],
/// [`Server::set_max_live_epochs`]).
struct Governor {
    global_rows: Option<usize>,
    max_live_epochs: Option<usize>,
}

/// How a full commit queue treats a new submission (see
/// [`Server::set_write_queue`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WritePolicy {
    /// Block the submitter until the committer drains space free.
    #[default]
    Block,
    /// Refuse immediately with [`ServingError::WriteQueueFull`].
    Refuse,
}

impl std::str::FromStr for WritePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "block" => Ok(WritePolicy::Block),
            "refuse" => Ok(WritePolicy::Refuse),
            other => Err(format!("unknown write policy `{other}` (block|refuse)")),
        }
    }
}

impl std::fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WritePolicy::Block => "block",
            WritePolicy::Refuse => "refuse",
        })
    }
}

/// What one group commit told a submitter about its batch: delivered
/// through the batch's [`CommitTicket`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitReceipt {
    /// The epoch the batch's group published — or the epoch already
    /// current when the whole group turned out to be a no-op.
    pub epoch: u64,
    /// The batch's arrival sequence number (assigned at enqueue;
    /// groups commit in sequence order, so sorting receipts by `seq`
    /// reconstructs the serial-replay order).
    pub seq: u64,
    /// How many batches the group coalesced into the one commit.
    pub group_batches: usize,
    /// The *group's* combined [`UpdateOutcome`] (one delta-patch pass
    /// serves every batch in the group).
    pub outcome: UpdateOutcome,
}

/// Writer-side pipeline counters (see [`Server::write_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Group commits performed (each is one delta-patch pass and at
    /// most one epoch publication).
    pub commits: u64,
    /// Batches those commits coalesced (`batches_committed / commits`
    /// is the mean group size — the amortisation win).
    pub batches_committed: u64,
    /// Largest group coalesced into a single commit so far.
    pub max_group: usize,
    /// Batches currently waiting in the commit queue.
    pub queue_depth: usize,
    /// High-water mark of the queue depth.
    pub queue_high_water: usize,
    /// Batches rejected by enqueue-time arity validation.
    pub rejected_invalid: u64,
    /// Batches refused by a full queue under [`WritePolicy::Refuse`].
    pub rejected_full: u64,
}

/// One enqueued-but-uncommitted writer batch.
struct PendingBatch<M: TwoMonoid> {
    seq: u64,
    updates: Vec<(Fact, M::Elem)>,
    done: mpsc::Sender<Result<CommitReceipt, ServingError>>,
}

/// The commit queue plus its policy knobs, counters, and the grow-only
/// relation→arity registry enqueue-time validation checks against
/// (declared arities are monotone: [`Database`] keeps a relation's
/// arity even after every fact is deleted, so the registry never has
/// to shrink and validation never takes the master lock).
struct WriteState<M: TwoMonoid> {
    pending: VecDeque<PendingBatch<M>>,
    queue_cap: Option<usize>,
    policy: WritePolicy,
    declared: HashMap<Sym, usize>,
    next_seq: u64,
    commits: u64,
    batches_committed: u64,
    max_group: usize,
    queue_high_water: usize,
    rejected_invalid: u64,
    rejected_full: u64,
}

/// One submitted batch's handle on the group-commit pipeline: redeem
/// it with [`CommitTicket::wait`] to learn the batch's epoch. Tickets
/// are independent per submitter — an invalid batch was already
/// rejected at [`Server::submit_batch`] time, so a ticket only ever
/// resolves to its group's shared commit result.
pub struct CommitTicket<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    shared: Arc<ServerShared<M, R>>,
    seq: u64,
    rx: mpsc::Receiver<Result<CommitReceipt, ServingError>>,
}

/// The shared state behind every [`Server`] and [`Session`] handle.
struct ServerShared<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    monoid: M,
    par: Parallelism,
    /// The writer's state: plan IR, lowering memo, delta-patch
    /// machinery. Readers lock it only on a plan-memo miss.
    master: Mutex<ServingSession<M, R>>,
    /// The latest published snapshot.
    current: RwLock<Arc<EpochState<M>>>,
    /// The shared materialised-node cache.
    cache: Mutex<HashMap<NodeKey, Arc<SharedNode<R>>>>,
    /// Cross-session resolved-plan memo (structural key: alpha-renamed
    /// restatements share one entry, exactly like the master's
    /// lowering memo).
    plans: RwLock<HashMap<QueryShape, Arc<ResolvedPlan>>>,
    /// Cross-session resolved-plan memo for recursive
    /// (transitive-closure) queries, keyed by relation name.
    fix_plans: RwLock<HashMap<String, Arc<ResolvedPlan>>>,
    /// Every epoch ever published (weak; pruned by [`gc`]).
    ///
    /// [`gc`]: ServerShared::gc
    epochs: Mutex<Vec<Weak<EpochState<M>>>>,
    retire: Arc<RetireSignal>,
    governor: Mutex<Governor>,
    /// The group-commit queue (see [`Server::submit_batch`]).
    writes: Mutex<WriteState<M>>,
    /// Paired with `writes`: wakes submitters blocked on queue space.
    space: Condvar,
    /// Group-commit leadership: the ticket-waiter (or
    /// [`Server::flush_writes`] caller) holding it drains and commits
    /// every pending batch. Receipts are delivered before it is
    /// released, so a waiter that acquires it and still has no receipt
    /// knows its batch is in the queue it is now leader of.
    commit_lock: Mutex<()>,
    performed_add: AtomicU64,
    performed_mul: AtomicU64,
    plan_hits: AtomicU64,
    evictions: AtomicU64,
    /// Global LRU clock, bumped once per query.
    tick: AtomicU64,
    next_session: AtomicU64,
}

/// The dep stamp of a node under one epoch's per-relation dirty
/// epochs: the maximum dirty epoch over the node's base relations.
fn stamp(rel_epoch: &HashMap<String, u64>, deps: &BTreeSet<String>) -> u64 {
    deps.iter()
        .map(|d| rel_epoch.get(d).copied().unwrap_or(0))
        .max()
        .unwrap_or(0)
}

impl<M, R> ServerShared<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    /// Snapshots the master state as a new immutable epoch.
    fn snapshot(&self, master: &ServingSession<M, R>, code_gen: u64) -> Arc<EpochState<M>> {
        Arc::new(EpochState {
            epoch: master.session_epoch(),
            code_gen,
            db: master.database().clone(),
            ann: master.annotations().clone(),
            enc: master.encoded_db().clone(),
            rel_epoch: master.rel_epochs().clone(),
            retire: Arc::downgrade(&self.retire),
        })
    }

    /// Resolves a query against the master IR, memoised per query
    /// shape. Only a memo miss locks the master.
    fn resolve(&self, q: &Query) -> Result<Arc<ResolvedPlan>, ServingError> {
        let key = query_shape(q);
        if let Some(p) = self.plans.read().unwrap().get(&key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(p.clone());
        }
        let resolved = {
            let mut master = self.master.lock().unwrap();
            let lowered = master.lower_query(q)?;
            let mut exprs = HashMap::new();
            let mut deps = HashMap::new();
            for id in lowered.nodes() {
                exprs.insert(id, master.plan_node(id));
                deps.insert(id, Arc::new(master.node_deps(id).clone()));
            }
            Arc::new(ResolvedPlan {
                lowered,
                exprs,
                deps,
            })
        };
        // Racing resolutions of one shape produce structurally equal
        // plans (the master lowering memo hands both the same node
        // ids); first insert wins.
        let mut plans = self.plans.write().unwrap();
        let entry = plans.entry(key).or_insert(resolved);
        Ok(entry.clone())
    }

    /// Resolves the transitive-closure plan for `rel` against the
    /// master IR, memoised per relation name — the recursive
    /// counterpart of [`resolve`].
    ///
    /// [`resolve`]: ServerShared::resolve
    fn resolve_fix(&self, rel: &str) -> Arc<ResolvedPlan> {
        if let Some(p) = self.fix_plans.read().unwrap().get(rel) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            return p.clone();
        }
        let resolved = {
            let mut master = self.master.lock().unwrap();
            let root = master.lower_fix(rel);
            let mut exprs = HashMap::new();
            let mut deps = HashMap::new();
            let mut todo = vec![root];
            while let Some(id) = todo.pop() {
                if exprs.contains_key(&id) {
                    continue;
                }
                let expr = master.plan_node(id);
                match &expr {
                    PlanExpr::Fixpoint { base, step } => todo.extend([*base, *step]),
                    PlanExpr::Compose { left, right } | PlanExpr::Join { left, right } => {
                        todo.extend([*left, *right]);
                    }
                    PlanExpr::Project { input, .. } => todo.push(*input),
                    PlanExpr::Scan { .. } | PlanExpr::Rec => {}
                }
                deps.insert(id, Arc::new(master.node_deps(id).clone()));
                exprs.insert(id, expr);
            }
            let scan = match &exprs[&root] {
                PlanExpr::Fixpoint { base, .. } => *base,
                _ => unreachable!("lower_fix returns a fixpoint node"),
            };
            Arc::new(ResolvedPlan {
                lowered: LoweredQuery {
                    scans: vec![scan],
                    steps: vec![],
                    root,
                },
                exprs,
                deps,
            })
        };
        let mut plans = self.fix_plans.write().unwrap();
        plans.entry(rel.to_owned()).or_insert(resolved).clone()
    }

    /// Materialises (or fetches) one plan node for `epoch`, recording
    /// it in the query's `local` node map. Inputs are present in
    /// `local` first because lowered node lists are in dependency
    /// order. The cache lock is never held across kernel execution.
    #[allow(clippy::too_many_arguments)]
    fn ensure_node(
        &self,
        epoch: &EpochState<M>,
        plan: &ResolvedPlan,
        id: PlanId,
        interner: &Interner,
        tick: u64,
        owner: u64,
        local: &mut HashMap<PlanId, Arc<SharedNode<R>>>,
    ) -> Result<(), ServingError> {
        let deps = &plan.deps[&id];
        let key = (id, epoch.code_gen, stamp(&epoch.rel_epoch, deps));
        if let Some(node) = self.cache.lock().unwrap().get(&key) {
            node.last_used.store(tick, Ordering::Relaxed);
            local.insert(id, node.clone());
            return Ok(());
        }
        let mut stats = EngineStats::default();
        let mut fix = None;
        let rel = match &plan.exprs[&id] {
            PlanExpr::Scan { rel, positions } => {
                let vars: Vec<Var> = (0..positions.len()).map(Var).collect();
                let ann_map = &epoch.ann;
                let mut ann = |sym: Sym, t: &Tuple| -> M::Elem {
                    ann_map
                        .get(&Fact::new(sym, t.clone()))
                        .cloned()
                        .expect("epoch database and annotation map stay in sync")
                };
                R::scan(
                    &epoch.enc, &epoch.db, interner, rel, positions, vars, &mut ann, self.par,
                )?
            }
            PlanExpr::Project { input, col } => {
                let input_rel = local[input].rel.clone();
                let var = input_rel.vars()[*col];
                input_rel.project_out(&self.monoid, var, &mut stats)
            }
            PlanExpr::Join { left, right } => {
                let l = local[left].rel.clone();
                let mut r = local[right].rel.clone();
                // Shared nodes are label-free; align labels as pure
                // metadata (see `ServingSession::ensure`).
                r.relabel(l.vars().to_vec());
                l.merge(&self.monoid, r, &mut stats)
            }
            PlanExpr::Rec | PlanExpr::Compose { .. } => {
                unreachable!("loop variables and compose steps are never materialised")
            }
            PlanExpr::Fixpoint { .. } => {
                let spec = validate_fixpoint_in(&|n| plan.exprs[&n].clone(), id)?;
                self.ensure_node(epoch, plan, spec.base, interner, tick, owner, local)?;
                self.ensure_node(epoch, plan, spec.edges, interner, tick, owner, local)?;
                let base_rows = local[&spec.base].rel.rows();
                let edge_rows = if spec.edges == spec.base {
                    base_rows.clone()
                } else {
                    local[&spec.edges].rel.rows()
                };
                let run = semi_naive(&self.monoid, &base_rows, &edge_rows, spec.shape)?;
                stats.add_ops = run.stats.add_ops;
                stats.mul_ops = run.stats.mul_ops;
                // Materialise the accumulator in the backend's layout,
                // then move it into the epoch's *shared* dictionary
                // numbering (`build_slots` encodes against a private
                // dict), exactly like `ServingSession::ensure` — the
                // node must renumber like every other cached matrix.
                let rows = run.rows();
                let mut rel = R::build_slots(vec![(vec![Var(0), Var(1)], rows.clone())])
                    .map_err(|d| FixpointError::DuplicateKey { key: d.key })?
                    .into_iter()
                    .next()
                    .expect("one slot in, one slot out");
                if R::USES_ENCODING {
                    let mut values: Vec<Value> = rows
                        .iter()
                        .flat_map(|(t, _)| t.values().iter().copied())
                        .collect();
                    values.sort_unstable();
                    values.dedup();
                    let shared = epoch.enc.shared_dict();
                    let translation: Vec<RowCode> = values
                        .iter()
                        .map(|&v| {
                            shared
                                .code(v)
                                .expect("accumulator values are instance values")
                        })
                        .collect();
                    rel.translate_codes(&shared, &translation);
                }
                fix = Some(run);
                rel
            }
        };
        self.performed_add
            .fetch_add(stats.add_ops, Ordering::Relaxed);
        self.performed_mul
            .fetch_add(stats.mul_ops, Ordering::Relaxed);
        let node = Arc::new(SharedNode {
            rows: rel.support_size(),
            rel,
            add_ops: stats.add_ops,
            mul_ops: stats.mul_ops,
            deps: deps.clone(),
            owner,
            last_used: AtomicU64::new(tick),
            fix,
        });
        // Insert-if-absent: a racing session may have materialised the
        // key meanwhile — its node is bit-identical (same immutable
        // inputs, same kernels, deterministic at every thread count),
        // so adopting whichever Arc won keeps every session serving
        // literally the same node.
        let entry = self
            .cache
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(node)
            .clone();
        entry.last_used.store(tick, Ordering::Relaxed);
        local.insert(id, entry);
        Ok(())
    }

    /// Replays a lowered query's value, op counts and support
    /// trajectory from the query's node map — zero monoid operations,
    /// same walk as `ServingSession::replay`.
    fn replay(
        &self,
        lowered: &LoweredQuery,
        nodes: &HashMap<PlanId, Arc<SharedNode<R>>>,
    ) -> (M::Elem, EngineStats) {
        let mut stats = EngineStats::default();
        let mut slot_nodes = lowered.scans.clone();
        let mut alive = vec![true; slot_nodes.len()];
        let support = |slot_nodes: &[PlanId], alive: &[bool]| -> usize {
            slot_nodes
                .iter()
                .zip(alive)
                .filter(|&(_, &a)| a)
                .map(|(id, _)| nodes[id].rel.support_size())
                .sum()
        };
        stats.support_sizes.push(support(&slot_nodes, &alive));
        for step in &lowered.steps {
            let n = &nodes[&step.node];
            stats.add_ops += n.add_ops;
            stats.mul_ops += n.mul_ops;
            if let Some(k) = step.killed {
                alive[k] = false;
            }
            slot_nodes[step.touched] = step.node;
            stats.support_sizes.push(support(&slot_nodes, &alive));
        }
        let value = nodes[&lowered.root].rel.nullary_value(&self.monoid);
        (value, stats)
    }

    /// Prunes dead epochs from the registry and drops shared-cache
    /// entries no live epoch can ever hit again (their `(generation,
    /// stamp)` matches no surviving snapshot) — this is what actually
    /// frees a retired epoch's copy-on-write matrices.
    fn gc(&self) {
        let live: Vec<Arc<EpochState<M>>> = {
            let mut epochs = self.epochs.lock().unwrap();
            epochs.retain(|w| w.strong_count() > 0);
            epochs.iter().filter_map(Weak::upgrade).collect()
        };
        let mut cache = self.cache.lock().unwrap();
        cache.retain(|&(_, gen, s), node| {
            live.iter()
                .any(|e| e.code_gen == gen && stamp(&e.rel_epoch, &node.deps) == s)
        });
    }

    /// Live (still referenced) published epochs, the current one
    /// included.
    fn live_epochs(&self) -> usize {
        self.epochs
            .lock()
            .unwrap()
            .iter()
            .filter(|w| w.strong_count() > 0)
            .count()
    }

    /// Blocks a writer until the live-epoch count admits one more
    /// publication (no-op without a [`Server::set_max_live_epochs`]
    /// bound). Woken by epoch retirements; re-polls on a short timeout
    /// so a pin released without a drop notification cannot wedge it.
    fn admit_writer(&self) {
        loop {
            let Some(max) = self.governor.lock().unwrap().max_live_epochs else {
                return;
            };
            self.gc();
            if self.live_epochs() < max {
                return;
            }
            let guard = self.retire.lock.lock().unwrap();
            let _ = self
                .retire
                .cvar
                .wait_timeout(guard, Duration::from_millis(25))
                .unwrap();
        }
    }

    /// Evicts cost-aware-LRU victims (stalest first; among equally
    /// stale, the node freeing the most rows) from the set selected by
    /// `mine` until their total rows fit `budget`. In-flight queries
    /// hold `Arc`s to their nodes, so eviction never invalidates a
    /// running evaluation — evicted nodes rebuild lazily.
    fn evict_where(&self, budget: usize, mine: impl Fn(&SharedNode<R>) -> bool) {
        let mut cache = self.cache.lock().unwrap();
        let mut total: usize = cache.values().filter(|n| mine(n)).map(|n| n.rows).sum();
        if total <= budget {
            return;
        }
        let mut order: Vec<(u64, Reverse<usize>, NodeKey)> = cache
            .iter()
            .filter(|(_, n)| mine(n) && n.rows > 0)
            .map(|(k, n)| (n.last_used.load(Ordering::Relaxed), Reverse(n.rows), *k))
            .collect();
        order.sort_unstable();
        for (_, _, key) in order {
            if total <= budget {
                break;
            }
            if let Some(n) = cache.remove(&key) {
                total -= n.rows;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Enforces the global-rows governor bound, if one is set.
    fn evict_global(&self) {
        if let Some(budget) = self.governor.lock().unwrap().global_rows {
            self.evict_where(budget, |_| true);
        }
    }

    /// Enqueue-time arity validation against the grow-only registry:
    /// the same all-or-nothing check [`ServingSession::update_batch`]
    /// performs, run before queue admission so a malformed batch is
    /// rejected on its own ticket and never poisons a commit group.
    /// Returns the brand-new `(relation, arity)` declarations the
    /// batch introduces; the caller records them only once the batch
    /// is actually admitted. Deletes are exempt, exactly as in the
    /// session (an arity-mismatched fact can never be stored, so
    /// deleting it is a no-op).
    fn validate_for_enqueue(
        &self,
        declared: &HashMap<Sym, usize>,
        interner: &Interner,
        updates: &[(Fact, M::Elem)],
    ) -> Result<Vec<(Sym, usize)>, ServingError> {
        let mut fresh: Vec<(Sym, usize)> = Vec::new();
        for (fact, value) in updates {
            if self.monoid.is_zero(value) {
                continue;
            }
            let expected = declared
                .get(&fact.rel)
                .copied()
                .or_else(|| fresh.iter().find(|(r, _)| *r == fact.rel).map(|&(_, a)| a));
            match expected {
                Some(arity) if arity != fact.tuple.arity() => {
                    return Err(ServingError::Annotate(AnnotateError::ArityMismatch {
                        rel: interner.resolve(fact.rel).to_owned(),
                        atom_arity: arity,
                        fact_arity: fact.tuple.arity(),
                    }));
                }
                Some(_) => {}
                None => fresh.push((fact.rel, fact.tuple.arity())),
            }
        }
        Ok(fresh)
    }

    /// Drains every pending batch and commits the whole group as one
    /// coalesced `update_batch` — one delta-patch pass, at most one
    /// epoch publication — then delivers each drained ticket its
    /// receipt. Returns the number of batches committed (`0`: the
    /// queue was empty). **Caller must hold `commit_lock`.**
    fn commit_group(&self, interner: &Interner) -> usize {
        let drained: Vec<PendingBatch<M>> = {
            let mut writes = self.writes.lock().unwrap();
            writes.pending.drain(..).collect()
        };
        if drained.is_empty() {
            return 0;
        }
        // Space freed: wake submitters blocked on the queue cap.
        self.space.notify_all();
        let batches: Vec<&[(Fact, M::Elem)]> =
            drained.iter().map(|b| b.updates.as_slice()).collect();
        // Cross-session coalescing: the group's batches merge
        // last-write-wins into one batch, so a key every writer
        // touched refolds once at its final value.
        let merged = coalesce_batches(&batches);
        let result = self.commit_updates(interner, &merged);
        let epoch = self.current.read().unwrap().epoch;
        let n = drained.len();
        {
            let mut writes = self.writes.lock().unwrap();
            writes.commits += 1;
            writes.batches_committed += n as u64;
            writes.max_group = writes.max_group.max(n);
        }
        for batch in drained {
            // Enqueue validation already vetted every batch, so a
            // commit error here is group-level (and in practice
            // unreachable); each ticket receives the shared result.
            let receipt = result.clone().map(|outcome| CommitReceipt {
                epoch,
                seq: batch.seq,
                group_batches: n,
                outcome,
            });
            let _ = batch.done.send(receipt);
        }
        n
    }

    /// The actual write path (one commit group's merged batch): waits
    /// for epoch admission, adopts current reader-materialised nodes
    /// into the master cache, delta-patches the master through
    /// [`ServingSession::update_batch`], exports the patched nodes to
    /// the shared cache at their new stamps, and publishes the next
    /// epoch. In-flight readers keep evaluating against their pinned
    /// snapshots throughout; a no-op batch publishes nothing.
    fn commit_updates(
        &self,
        interner: &Interner,
        updates: &[(Fact, M::Elem)],
    ) -> Result<UpdateOutcome, ServingError> {
        self.admit_writer();
        let mut master = self.master.lock().unwrap();
        let gen = self.current.read().unwrap().code_gen;
        // Adopt: shared nodes current for the master state (same code
        // generation, same dep stamps) feed the delta-patcher, so
        // nodes warmed by *any* reader stay warm across the write
        // instead of dropping to a cold rebuild.
        {
            let rel_epoch = master.rel_epochs().clone();
            let adopt: Vec<Adopted<R>> = {
                let cache = self.cache.lock().unwrap();
                cache
                    .iter()
                    .filter(|&(&(id, g, s), node)| {
                        g == gen && s == stamp(&rel_epoch, &node.deps) && !master.has_cached(id)
                    })
                    .map(|(&(id, _, _), node)| {
                        (
                            id,
                            node.rel.clone(),
                            node.add_ops,
                            node.mul_ops,
                            node.fix.clone(),
                        )
                    })
                    .collect()
            };
            for (id, rel, add_ops, mul_ops, fix) in adopt {
                match fix {
                    // A fixpoint node travels with its kernel run so
                    // the master can delta-patch it in place.
                    Some(run) => master.adopt_fix_node(id, rel, run),
                    None => master.adopt_node(id, rel, add_ops, mul_ops),
                }
            }
        }
        let outcome = master.update_batch(interner, updates)?;
        if outcome.touched.is_empty() {
            return Ok(outcome);
        }
        // A dictionary extension renumbered every cached matrix (the
        // master's were translated in place) without moving any stamp:
        // bump the code generation so the renumbered exports can never
        // collide with entries pinned epochs still read.
        let gen = gen + u64::from(outcome.refresh.dict_extended);
        let rel_epoch = master.rel_epochs().clone();
        let exports: Vec<Export<R>> = master
            .cache_entries()
            .map(|(id, rel, add_ops, mul_ops)| {
                (
                    id,
                    rel.clone(),
                    add_ops,
                    mul_ops,
                    Arc::new(master.node_deps(id).clone()),
                    master.fix_run(id).cloned(),
                )
            })
            .collect();
        let state = self.snapshot(&master, gen);
        drop(master);
        {
            let tick = self.tick.load(Ordering::Relaxed);
            let mut cache = self.cache.lock().unwrap();
            for (id, rel, add_ops, mul_ops, deps, fix) in exports {
                let key = (id, gen, stamp(&rel_epoch, &deps));
                cache.entry(key).or_insert_with(|| {
                    Arc::new(SharedNode {
                        rows: rel.support_size(),
                        rel,
                        add_ops,
                        mul_ops,
                        deps,
                        owner: WRITER,
                        last_used: AtomicU64::new(tick),
                        fix,
                    })
                });
            }
        }
        *self.current.write().unwrap() = state.clone();
        self.epochs.lock().unwrap().push(Arc::downgrade(&state));
        drop(state);
        self.gc();
        self.evict_global();
        Ok(outcome)
    }
}

/// The multi-tenant serving server. Cheap to clone (a shared handle);
/// hand out reader [`Session`]s with [`Server::session`] and apply
/// writes through [`Server::update_batch`].
pub struct Server<M, R = ColumnarRelation<<M as TwoMonoid>::Elem>>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    shared: Arc<ServerShared<M, R>>,
}

impl<M, R> Clone for Server<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    fn clone(&self) -> Self {
        Server {
            shared: self.shared.clone(),
        }
    }
}

impl<M, R> Server<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    /// Builds a server over `(fact, annotation)` pairs. See
    /// [`ServingSession::new`] for the input contract.
    ///
    /// # Errors
    /// Rejects fact lists that give one relation two different
    /// arities.
    pub fn new(
        monoid: M,
        interner: &Interner,
        facts: impl IntoIterator<Item = (Fact, M::Elem)>,
    ) -> Result<Self, ServingError> {
        Self::with_parallelism(monoid, interner, facts, Parallelism::default())
    }

    /// [`Server::new`] with an explicit [`Parallelism`] degree. The
    /// worker pool is warmed here, once: no request served afterwards
    /// ever spawns a thread (pinned by the differential suite via
    /// [`crate::pool::WorkerPool::spawn_count`]).
    ///
    /// # Errors
    /// Rejects fact lists that give one relation two different
    /// arities.
    pub fn with_parallelism(
        monoid: M,
        interner: &Interner,
        facts: impl IntoIterator<Item = (Fact, M::Elem)>,
        par: Parallelism,
    ) -> Result<Self, ServingError> {
        par.warm_pool();
        let master = ServingSession::with_parallelism(monoid.clone(), interner, facts, par)?;
        let retire = Arc::new(RetireSignal {
            lock: Mutex::new(()),
            cvar: Condvar::new(),
        });
        // Seed the enqueue-validation registry with the construction
        // state's declared arities.
        let declared: HashMap<Sym, usize> = master
            .database()
            .relations()
            .map(|(sym, rel)| (sym, rel.arity()))
            .collect();
        let shared = ServerShared {
            monoid,
            par,
            current: RwLock::new(Arc::new(EpochState {
                epoch: 0,
                code_gen: 0,
                db: master.database().clone(),
                ann: master.annotations().clone(),
                enc: master.encoded_db().clone(),
                rel_epoch: master.rel_epochs().clone(),
                retire: Arc::downgrade(&retire),
            })),
            master: Mutex::new(master),
            cache: Mutex::new(HashMap::new()),
            plans: RwLock::new(HashMap::new()),
            fix_plans: RwLock::new(HashMap::new()),
            epochs: Mutex::new(Vec::new()),
            retire,
            governor: Mutex::new(Governor {
                global_rows: None,
                max_live_epochs: None,
            }),
            writes: Mutex::new(WriteState {
                pending: VecDeque::new(),
                queue_cap: None,
                policy: WritePolicy::default(),
                declared,
                next_seq: 0,
                commits: 0,
                batches_committed: 0,
                max_group: 0,
                queue_high_water: 0,
                rejected_invalid: 0,
                rejected_full: 0,
            }),
            space: Condvar::new(),
            commit_lock: Mutex::new(()),
            performed_add: AtomicU64::new(0),
            performed_mul: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            next_session: AtomicU64::new(1),
        };
        shared
            .epochs
            .lock()
            .unwrap()
            .push(Arc::downgrade(&shared.current.read().unwrap().clone()));
        Ok(Server {
            shared: Arc::new(shared),
        })
    }

    /// Opens a reader session. Sessions are independent handles (one
    /// per client/thread); their queries share the one node cache.
    pub fn session(&self) -> Session<M, R> {
        Session {
            shared: self.shared.clone(),
            id: self.shared.next_session.fetch_add(1, Ordering::Relaxed),
            budget_rows: None,
            pinned: None,
        }
    }

    /// Applies one fact write. See [`Server::update_batch`].
    ///
    /// # Errors
    /// Arity mismatch with the stored relation.
    pub fn update(
        &self,
        interner: &Interner,
        fact: &Fact,
        value: M::Elem,
    ) -> Result<UpdateOutcome, ServingError> {
        self.update_batch(interner, &[(fact.clone(), value)])
    }

    /// The write path: submits the batch to the group-commit queue and
    /// waits for its commit. Equivalent to
    /// `submit_batch(…)?.wait(…)` — concurrent callers' batches
    /// coalesce into one delta-patch pass and one epoch publication
    /// (see [`Server::submit_batch`]).
    ///
    /// # Errors
    /// Arity mismatch with the stored relation (all-or-nothing, as in
    /// the underlying session — checked at enqueue time, before the
    /// batch can join a commit group); a full queue under
    /// [`WritePolicy::Refuse`].
    pub fn update_batch(
        &self,
        interner: &Interner,
        updates: &[(Fact, M::Elem)],
    ) -> Result<UpdateOutcome, ServingError> {
        Ok(self.commit_batch(interner, updates)?.outcome)
    }

    /// [`Server::update_batch`], returning the full [`CommitReceipt`]
    /// (the batch's epoch and group size) instead of just the outcome.
    ///
    /// # Errors
    /// See [`Server::update_batch`].
    pub fn commit_batch(
        &self,
        interner: &Interner,
        updates: &[(Fact, M::Elem)],
    ) -> Result<CommitReceipt, ServingError> {
        self.submit_batch(interner, updates)?.wait(interner)
    }

    /// Enqueues one writer batch into the bounded commit queue and
    /// returns its [`CommitTicket`] without waiting for the commit.
    ///
    /// The batch is **validated here**, against a grow-only
    /// relation→arity registry (the committed declarations plus every
    /// already-admitted pending batch's), so a malformed batch fails
    /// on its own ticket and can never poison a commit group. A full
    /// queue blocks or refuses per [`Server::set_write_queue`]. The
    /// commit itself is driven by whichever ticket-waiter acquires
    /// commit leadership first (or by [`Server::flush_writes`]): the
    /// leader drains *every* pending batch, coalesces them
    /// last-write-wins into one batch, runs a single delta-patch pass
    /// and publishes **one** epoch for the whole group.
    ///
    /// # Errors
    /// Arity mismatch (enqueue validation);
    /// [`ServingError::WriteQueueFull`] under [`WritePolicy::Refuse`].
    pub fn submit_batch(
        &self,
        interner: &Interner,
        updates: &[(Fact, M::Elem)],
    ) -> Result<CommitTicket<M, R>, ServingError> {
        let shared = &self.shared;
        let mut writes = shared.writes.lock().unwrap();
        let fresh = loop {
            // (Re-)validate under the queue lock: while a blocked
            // submitter waited, admitted batches may have declared new
            // relations its batch must agree with — exactly as if it
            // had been submitted serially after them.
            let fresh = match shared.validate_for_enqueue(&writes.declared, interner, updates) {
                Ok(fresh) => fresh,
                Err(e) => {
                    writes.rejected_invalid += 1;
                    return Err(e);
                }
            };
            let full = writes
                .queue_cap
                .is_some_and(|cap| writes.pending.len() >= cap);
            if !full {
                break fresh;
            }
            match writes.policy {
                WritePolicy::Refuse => {
                    writes.rejected_full += 1;
                    return Err(ServingError::WriteQueueFull {
                        pending: writes.pending.len(),
                    });
                }
                WritePolicy::Block => writes = shared.space.wait(writes).unwrap(),
            }
        };
        // Admission: the batch's new declarations become visible to
        // every later submission (committed or not — all-or-nothing
        // already held above, so they are final).
        writes.declared.extend(fresh);
        let seq = writes.next_seq;
        writes.next_seq += 1;
        let (done, rx) = mpsc::channel();
        writes.pending.push_back(PendingBatch {
            seq,
            updates: updates.to_vec(),
            done,
        });
        writes.queue_high_water = writes.queue_high_water.max(writes.pending.len());
        drop(writes);
        Ok(CommitTicket {
            shared: shared.clone(),
            seq,
            rx,
        })
    }

    /// Commits every batch currently in the queue as one group without
    /// submitting anything — acts as the commit leader on behalf of
    /// outstanding [`CommitTicket`]s (their `wait` calls then find
    /// their receipts already delivered). Returns the number of
    /// batches committed (`0`: the queue was empty).
    pub fn flush_writes(&self, interner: &Interner) -> usize {
        let _leader = self.shared.commit_lock.lock().unwrap();
        self.shared.commit_group(interner)
    }

    /// Bounds the commit-queue depth (`None`: unbounded, the default;
    /// `Some(n)` is clamped up to 1) and sets what a full queue does
    /// to new submissions: [`WritePolicy::Block`] parks the submitter
    /// until the committer drains space free, [`WritePolicy::Refuse`]
    /// fails fast with [`ServingError::WriteQueueFull`]. This is the
    /// burst backpressure *above* [`Server::set_max_live_epochs`]: the
    /// epoch bound throttles publication, the queue bound throttles
    /// admission.
    pub fn set_write_queue(&self, depth: Option<usize>, policy: WritePolicy) {
        let mut writes = self.shared.writes.lock().unwrap();
        writes.queue_cap = depth.map(|d| d.max(1));
        writes.policy = policy;
        drop(writes);
        // A raised (or removed) cap admits blocked submitters.
        self.shared.space.notify_all();
    }

    /// Writer-side pipeline counters: group commits, coalesced
    /// batches, queue depth and high-water mark, rejected batches.
    pub fn write_stats(&self) -> WriteStats {
        let writes = self.shared.writes.lock().unwrap();
        WriteStats {
            commits: writes.commits,
            batches_committed: writes.batches_committed,
            max_group: writes.max_group,
            queue_depth: writes.pending.len(),
            queue_high_water: writes.queue_high_water,
            rejected_invalid: writes.rejected_invalid,
            rejected_full: writes.rejected_full,
        }
    }

    /// Total ⊕/⊗ applications the *writer* has executed delta-patching
    /// the master across all commits (the reader-side counterpart is
    /// [`Server::ops_performed`]). Grouped commits make this grow
    /// strictly slower than per-batch serial commits on overlapping
    /// batches — the write_throughput bench asserts it.
    pub fn writer_ops_performed(&self) -> u64 {
        self.shared.master.lock().unwrap().ops_performed()
    }

    /// The latest published epoch counter.
    pub fn current_epoch(&self) -> u64 {
        self.shared.current.read().unwrap().epoch
    }

    /// Published epochs still referenced (the current one included).
    pub fn live_epochs(&self) -> usize {
        self.shared.gc();
        self.shared.live_epochs()
    }

    /// Total rows materialised across the shared node cache — the
    /// quantity the global governor bounds.
    pub fn materialised_rows(&self) -> usize {
        self.shared
            .cache
            .lock()
            .unwrap()
            .values()
            .map(|n| n.rows)
            .sum()
    }

    /// Approximate payload bytes of the shared node cache
    /// ([`crate::storage::Storage::storage_bytes`] summed; the shared
    /// dictionary is excluded).
    pub fn storage_bytes(&self) -> usize {
        self.shared
            .cache
            .lock()
            .unwrap()
            .values()
            .map(|n| n.rel.storage_bytes())
            .sum()
    }

    /// Materialised plan nodes currently in the shared cache.
    pub fn cached_nodes(&self) -> usize {
        self.shared.cache.lock().unwrap().len()
    }

    /// Nodes evicted by the governor or per-session budgets so far.
    pub fn evictions(&self) -> u64 {
        self.shared.evictions.load(Ordering::Relaxed)
    }

    /// Total ⊕/⊗ applications actually executed by reader misses
    /// (writer delta-patches execute inside the master session and are
    /// counted by it). Cache hits replay recorded counts without
    /// performing any — the cross-client sharing win is
    /// `Σ reported stats − ops_performed`.
    pub fn ops_performed(&self) -> u64 {
        self.shared.performed_add.load(Ordering::Relaxed)
            + self.shared.performed_mul.load(Ordering::Relaxed)
    }

    /// Queries served from the cross-session resolved-plan memo
    /// without taking the master lock.
    pub fn plan_hits(&self) -> u64 {
        self.shared.plan_hits.load(Ordering::Relaxed)
    }

    /// Bounds the total rows materialised across all sessions
    /// (`None`: unbounded). Enforced after every query and every
    /// update publication with cost-aware-LRU eviction; evicted nodes
    /// rebuild lazily, so only the sharing win shrinks.
    pub fn set_global_cache_rows(&self, budget: Option<usize>) {
        self.shared.governor.lock().unwrap().global_rows = budget;
        self.shared.evict_global();
    }

    /// Admission-controls update bursts: a writer blocks until fewer
    /// than `max` published epochs are still referenced. The current
    /// epoch always counts, so the floor is 2 (`max` is clamped up) —
    /// `Some(2)` means "at most one retired-but-pinned epoch at a
    /// time". `None` (the default) never blocks the writer.
    pub fn set_max_live_epochs(&self, max: Option<usize>) {
        self.shared.governor.lock().unwrap().max_live_epochs = max.map(|m| m.max(2));
        self.shared.retire.notify();
    }

    /// Forwards [`ServingSession::set_patch_fraction`] to the master
    /// (the writer's patch-vs-rebuild policy).
    pub fn set_patch_fraction(&self, fraction: f64) {
        self.shared
            .master
            .lock()
            .unwrap()
            .set_patch_fraction(fraction);
    }

    /// Prunes retired epochs and the shared-cache entries only they
    /// could hit — freeing their copy-on-write matrices. Runs
    /// automatically after every publication; exposed for tests and
    /// idle housekeeping.
    pub fn gc(&self) {
        self.shared.gc();
    }
}

impl<M, R> std::fmt::Debug for CommitTicket<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitTicket")
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl<M, R> CommitTicket<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    /// The batch's arrival sequence number (commit order).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Waits for the batch's group to commit and returns its receipt.
    ///
    /// There is no dedicated committer thread: the first waiter to
    /// acquire commit leadership drains and commits the whole queue on
    /// everyone's behalf (its receipt included), so a group of k
    /// concurrent writers pays one delta-patch pass and one epoch
    /// publication, and nobody waits on a thread that might not exist.
    ///
    /// # Errors
    /// The group's commit error, delivered to every ticket of the
    /// group (enqueue validation makes this unreachable in practice).
    pub fn wait(self, interner: &Interner) -> Result<CommitReceipt, ServingError> {
        if let Ok(result) = self.rx.try_recv() {
            return result;
        }
        let leader = self.shared.commit_lock.lock().unwrap();
        // A previous leader may have committed this batch's group
        // while we waited for leadership — receipts are delivered
        // before the lock is released, so check again.
        if let Ok(result) = self.rx.try_recv() {
            return result;
        }
        self.shared.commit_group(interner);
        drop(leader);
        self.rx
            .recv()
            .expect("the commit group just drained included this ticket's batch")
    }
}

/// One reader's handle on a [`Server`]: snapshot-isolated queries, an
/// optional long-lived pin, and a per-session cache budget. Open one
/// per client (sessions are `Send`; share the server handle, not the
/// session).
pub struct Session<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    shared: Arc<ServerShared<M, R>>,
    id: u64,
    budget_rows: Option<usize>,
    pinned: Option<Arc<EpochState<M>>>,
}

impl<M, R> Session<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    /// This session's id (stable for its lifetime; `1`-based — `0` is
    /// the writer's owner tag).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The epoch the next query will read: the pinned one, else the
    /// latest published.
    fn read_epoch(&self) -> Arc<EpochState<M>> {
        self.pinned
            .clone()
            .unwrap_or_else(|| self.shared.current.read().unwrap().clone())
    }

    /// Pins the current epoch: every subsequent query reads this
    /// snapshot — regardless of writer activity — until
    /// [`Session::unpin`]. Returns the pinned epoch counter.
    pub fn pin(&mut self) -> u64 {
        let state = self.shared.current.read().unwrap().clone();
        let epoch = state.epoch;
        self.pinned = Some(state);
        epoch
    }

    /// Releases the pin; the epoch retires when its last reader
    /// drops. Subsequent queries read the latest published epoch.
    pub fn unpin(&mut self) {
        self.pinned = None;
        self.shared.gc();
    }

    /// The pinned epoch counter, if a pin is in force.
    pub fn pinned_epoch(&self) -> Option<u64> {
        self.pinned.as_ref().map(|s| s.epoch)
    }

    /// Bounds the rows this session's own materialisations may keep in
    /// the shared cache (`None`: unbounded). Nodes materialised by
    /// other sessions (or exported by the writer) never count against
    /// it.
    pub fn set_cache_budget(&mut self, budget: Option<usize>) {
        self.budget_rows = budget;
        if let Some(b) = budget {
            let id = self.id;
            self.shared.evict_where(b, |n| n.owner == id);
        }
    }

    /// Evaluates one query against this session's read epoch, sharing
    /// every sub-plan any session already materialised for compatible
    /// state. Returns the value and the [`EngineStats`] an independent
    /// fresh evaluation over the epoch's state would report —
    /// bit-identical, support trajectory included.
    ///
    /// # Errors
    /// Non-hierarchical queries and annotation failures.
    pub fn query(
        &self,
        interner: &Interner,
        q: &Query,
    ) -> Result<(M::Elem, EngineStats), ServingError> {
        let epoch = self.read_epoch();
        let plan = self.shared.resolve(q)?;
        let tick = self.shared.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut local = HashMap::new();
        for id in plan.lowered.nodes().collect::<Vec<_>>() {
            self.shared
                .ensure_node(&epoch, &plan, id, interner, tick, self.id, &mut local)?;
        }
        let out = self.shared.replay(&plan.lowered, &local);
        drop(local);
        drop(epoch);
        if let Some(b) = self.budget_rows {
            let id = self.id;
            self.shared.evict_where(b, |n| n.owner == id);
        }
        self.shared.evict_global();
        Ok(out)
    }

    /// Evaluates the recursive reachability query over binary relation
    /// `rel` against this session's read epoch — the multi-tenant
    /// counterpart of [`ServingSession::query_fix`], with the same
    /// readout semantics (both endpoints → the pair's annotation;
    /// one → an ⊕-fold over the matching slice; neither → the ⊕-total)
    /// and the same replayed [`EngineStats`]. The materialised
    /// fixpoint node lives in the shared cache: a second session
    /// querying the same relation at the same epoch replays it with
    /// zero monoid operations.
    ///
    /// # Errors
    /// [`ServingError::Fixpoint`] on a non-convergent monoid or a
    /// non-binary relation.
    pub fn query_fix(
        &self,
        interner: &Interner,
        rel: &str,
        src: Option<Value>,
        dst: Option<Value>,
    ) -> Result<(M::Elem, EngineStats), ServingError> {
        let epoch = self.read_epoch();
        let plan = self.shared.resolve_fix(rel);
        let tick = self.shared.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut local = HashMap::new();
        self.shared.ensure_node(
            &epoch,
            &plan,
            plan.lowered.root,
            interner,
            tick,
            self.id,
            &mut local,
        )?;
        let node = &local[&plan.lowered.root];
        let run = node
            .fix
            .as_ref()
            .expect("fixpoint nodes always carry their kernel run");
        let monoid = &self.shared.monoid;
        let value = match (src, dst) {
            (Some(s), Some(d)) => run.get(s, d).cloned().unwrap_or_else(|| monoid.zero()),
            (Some(s), None) => monoid.sum(
                run.acc
                    .range((s, Value::Int(i64::MIN))..)
                    .take_while(|(&(a, _), _)| a == s)
                    .map(|(_, (k, _))| k),
            ),
            (None, Some(d)) => monoid.sum(
                run.acc
                    .iter()
                    .filter(|(&(_, b), _)| b == d)
                    .map(|(_, (k, _))| k),
            ),
            (None, None) => run.total.clone(),
        };
        let stats = run.stats.clone();
        drop(local);
        drop(epoch);
        if let Some(b) = self.budget_rows {
            let id = self.id;
            self.shared.evict_where(b, |n| n.owner == id);
        }
        self.shared.evict_global();
        Ok((value, stats))
    }

    /// Evaluates a batch of queries in order against one consistent
    /// snapshot (the epoch current when the batch starts, or the
    /// pinned one).
    ///
    /// # Errors
    /// Fails on the first erroneous query.
    pub fn query_batch(
        &mut self,
        interner: &Interner,
        queries: &[Query],
    ) -> Result<Vec<(M::Elem, EngineStats)>, ServingError> {
        let had_pin = self.pinned.is_some();
        if !had_pin {
            self.pin();
        }
        let out = queries.iter().map(|q| self.query(interner, q)).collect();
        if !had_pin {
            self.unpin();
        }
        out
    }

    /// Applies a write through the server's group-commit queue (a
    /// convenience for single-connection scripts that mix reads and
    /// writes; see [`Server::update_batch`]).
    ///
    /// # Errors
    /// See [`Server::update_batch`].
    pub fn update_batch(
        &self,
        interner: &Interner,
        updates: &[(Fact, M::Elem)],
    ) -> Result<UpdateOutcome, ServingError> {
        Ok(self.commit_batch(interner, updates)?.outcome)
    }

    /// [`Session::update_batch`], returning the full
    /// [`CommitReceipt`] — the wire front-end uses the receipt's epoch
    /// so each writer reports *its* commit, not whatever epoch is
    /// current by the time it replies.
    ///
    /// # Errors
    /// See [`Server::update_batch`].
    pub fn commit_batch(
        &self,
        interner: &Interner,
        updates: &[(Fact, M::Elem)],
    ) -> Result<CommitReceipt, ServingError> {
        Server {
            shared: self.shared.clone(),
        }
        .commit_batch(interner, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{MapRelation, ShardedColumnar};
    use hq_db::db_from_ints;
    use hq_monoid::ProbMonoid;
    use hq_query::parse_query;

    fn chain_tid() -> (Vec<(Fact, f64)>, Interner) {
        let (db, i) = db_from_ints(&[
            ("E", &[&[1, 2], &[1, 3], &[4, 3], &[5, 5]]),
            ("F", &[&[2, 9], &[3, 8], &[3, 9], &[5, 1]]),
        ]);
        let tid = db
            .facts()
            .into_iter()
            .enumerate()
            .map(|(j, f)| (f, 0.15 + 0.09 * j as f64))
            .collect();
        (tid, i)
    }

    fn serial_expect(tid: &[(Fact, f64)], i: &Interner, q: &Query) -> (f64, EngineStats) {
        let mut s: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, i, tid.iter().cloned()).unwrap();
        s.query(i, q).unwrap()
    }

    #[test]
    fn single_session_matches_serial_serving() {
        let (tid, i) = chain_tid();
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        let (want, want_stats) = serial_expect(&tid, &i, &q);
        let server: Server<ProbMonoid> = Server::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let s = server.session();
        let (got, stats) = s.query(&i, &q).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
        // Second session: full cache hit, zero additional ops.
        let performed = server.ops_performed();
        let s2 = server.session();
        let (got2, stats2) = s2.query(&i, &q).unwrap();
        assert_eq!(got2.to_bits(), want.to_bits());
        assert_eq!(stats2, want_stats);
        assert_eq!(server.ops_performed(), performed, "hit must be zero-op");
        assert_eq!(server.plan_hits(), 1);
    }

    #[test]
    fn pinned_reader_is_isolated_from_writer() {
        let (tid, mut i) = chain_tid();
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        let server: Server<ProbMonoid, ShardedColumnar<f64>> = Server::with_parallelism(
            ProbMonoid,
            &i,
            tid.iter().cloned(),
            Parallelism::fine_grained(2),
        )
        .unwrap();
        let mut pinned = server.session();
        let (before, before_stats) = pinned.query(&i, &q).unwrap();
        pinned.pin();
        // The writer inserts a novel domain value (dictionary
        // extension: every cached matrix renumbers).
        let e = i.intern("E");
        let novel = Fact::new(e, Tuple::ints(&[77, 78]));
        server.update(&i, &novel, 0.5).unwrap();
        // The pinned reader still sees the old state, bit-identically.
        let (got, stats) = pinned.query(&i, &q).unwrap();
        assert_eq!(got.to_bits(), before.to_bits());
        assert_eq!(stats, before_stats);
        // An unpinned session sees the new state — and matches a
        // serial session replaying the same history.
        let fresh = server.session();
        let (new_got, new_stats) = fresh.query(&i, &q).unwrap();
        let mut serial: ServingSession<ProbMonoid, ShardedColumnar<f64>> =
            ServingSession::with_parallelism(
                ProbMonoid,
                &i,
                tid.iter().cloned(),
                Parallelism::fine_grained(2),
            )
            .unwrap();
        serial.query(&i, &q).unwrap();
        serial.update(&i, &novel, 0.5).unwrap();
        let (serial_got, serial_stats) = serial.query(&i, &q).unwrap();
        assert_eq!(new_got.to_bits(), serial_got.to_bits());
        assert_eq!(new_stats, serial_stats);
        // Unpinning retires the old epoch; gc frees its nodes.
        assert!(server.live_epochs() >= 2);
        pinned.unpin();
        server.gc();
        assert_eq!(server.live_epochs(), 1);
    }

    #[test]
    fn recursive_query_matches_serial_and_survives_commit() {
        let (db, mut i) = db_from_ints(&[("E", &[&[1, 2], &[2, 3], &[3, 4], &[5, 1]])]);
        let tid: Vec<(Fact, f64)> = db
            .facts()
            .into_iter()
            .enumerate()
            .map(|(j, f)| (f, 0.2 + 0.07 * j as f64))
            .collect();
        let mut serial: ServingSession<ProbMonoid, ShardedColumnar<f64>> =
            ServingSession::with_parallelism(
                ProbMonoid,
                &i,
                tid.iter().cloned(),
                Parallelism::fine_grained(2),
            )
            .unwrap();
        let server: Server<ProbMonoid, ShardedColumnar<f64>> = Server::with_parallelism(
            ProbMonoid,
            &i,
            tid.iter().cloned(),
            Parallelism::fine_grained(2),
        )
        .unwrap();
        let s = server.session();
        for (src, dst) in [
            (None, None),
            (Some(Value::Int(1)), None),
            (Some(Value::Int(1)), Some(Value::Int(4))),
            (None, Some(Value::Int(3))),
        ] {
            let (want, want_stats) = serial.query_fix(&i, "E", src, dst).unwrap();
            let (got, stats) = s.query_fix(&i, "E", src, dst).unwrap();
            assert_eq!(got.to_bits(), want.to_bits());
            assert_eq!(stats, want_stats);
        }
        // A second session replays the shared fixpoint node zero-op.
        let performed = server.ops_performed();
        let s2 = server.session();
        s2.query_fix(&i, "E", None, None).unwrap();
        assert_eq!(server.ops_performed(), performed, "hit must be zero-op");
        // A commit publishes a new epoch; recursive queries against it
        // still match a serial session replaying the same history.
        let e = i.intern("E");
        let novel = Fact::new(e, Tuple::ints(&[4, 6]));
        serial.update(&i, &novel, 0.5).unwrap();
        server.update(&i, &novel, 0.5).unwrap();
        let (want, want_stats) = serial.query_fix(&i, "E", None, None).unwrap();
        let (got, stats) = s.query_fix(&i, "E", None, None).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn governor_bounds_global_rows() {
        let (tid, i) = chain_tid();
        let server: Server<ProbMonoid, MapRelation<f64>> =
            Server::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        server.set_global_cache_rows(Some(3));
        let s = server.session();
        for src in ["Q() :- E(X,Y), F(Y,Z)", "Q() :- E(X,Y)", "Q() :- F(Y,Z)"] {
            s.query(&i, &parse_query(src).unwrap()).unwrap();
        }
        assert!(server.materialised_rows() <= 3);
        assert!(server.evictions() > 0);
    }
}
