//! Multi-tenant serving server: N snapshot-isolated reader sessions
//! and one writer over a single shared plan-node cache.
//!
//! A [`Server`] owns one **master** [`ServingSession`] (the writer's
//! state: the hash-consed plan IR, the lowering memo, and the
//! delta-patch/refold machinery of [`crate::serving`]) and multiplexes
//! any number of reader [`Session`] handles over it. The concurrency
//! model is **single-writer / multi-reader snapshot isolation**:
//!
//! * **Epochs.** Every committed [`Server::update_batch`] publishes an
//!   immutable [`EpochState`] — a copy-on-write snapshot of the
//!   database, the annotation map, the [`EncodedDb`] code matrices and
//!   the per-relation dirty epochs. Readers evaluate against the
//!   epoch current when their query starts (or one explicitly pinned
//!   with [`Session::pin`]); the writer patches the master in place
//!   and publishes the next epoch without ever touching a published
//!   one. An epoch retires (its matrices free) when its last reader
//!   drops.
//! * **Shared node cache.** Materialised plan nodes live in one
//!   process-wide cache keyed by `(plan node, code generation, dep
//!   stamp)`, where the *stamp* is the maximum dirty epoch over the
//!   node's input relations and the *code generation* counts
//!   dictionary extensions (a novel domain value renumbers every
//!   cached matrix without touching any stamp, so the generation must
//!   be part of the key). Stamps are injective along the single
//!   writer history: every epoch in which a node's inputs carry the
//!   same stamps holds bit-identical input relations, so a cache hit
//!   is exact regardless of which session — at which epoch — computed
//!   the entry. Cache hits on shared sub-plans are **zero-op across
//!   clients**; two sessions racing to materialise the same key both
//!   compute bit-identical nodes and the first insert wins.
//! * **Write path.** The writer first *adopts* any reader-materialised
//!   nodes that are current for the master state into the master
//!   cache, so [`ServingSession::update_batch`]'s delta-patch
//!   machinery patches warm nodes instead of recomputing them; it
//!   then *exports* the patched nodes back to the shared cache at
//!   their post-batch stamps and publishes the new epoch.
//! * **Memory governor.** [`Server::set_global_cache_rows`] bounds the
//!   total materialised rows across all sessions (cost-aware-LRU
//!   eviction, like the per-session budget of
//!   [`ServingSession::set_cache_budget`]);
//!   [`Session::set_cache_budget`] additionally bounds the rows a
//!   single session may keep materialised; and
//!   [`Server::set_max_live_epochs`] admission-controls update bursts
//!   — a writer blocks until enough pinned epochs retire.
//!
//! **Determinism contract.** Unchanged from [`crate::serving`]: every
//! query's value and reported [`EngineStats`] are bit-identical to an
//! independent fresh evaluation over its epoch's state, on every
//! backend and thread count. Concurrency never enters the numerics:
//! per-query stats are *replayed* from recorded per-node op counts,
//! and all kernel execution fans out over the persistent
//! [`crate::pool`] (zero thread spawns per request once
//! [`Server::with_parallelism`] has warmed it). The
//! `tests/differential_server.rs` suite pins N concurrent readers + 1
//! writer against a serial replay of the same interleaved script.

use crate::engine::EngineStats;
use crate::plan_ir::{LoweredQuery, PlanExpr, PlanId};
use crate::serving::{
    query_shape, QueryShape, ServingBackend, ServingError, ServingSession, UpdateOutcome,
};
use crate::storage::{ColumnarRelation, EncodedDb, Parallelism};
use hq_db::{Database, Fact, Interner, Sym, Tuple};
use hq_monoid::TwoMonoid;
use hq_query::{Query, Var};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::time::Duration;

/// The writer's session id in shared-cache owner tags (real sessions
/// start at 1).
const WRITER: u64 = 0;

/// One immutable published snapshot: everything a reader needs to
/// evaluate queries without taking the master lock. Readers holding an
/// `Arc<EpochState>` (pinned, or just for the duration of one query)
/// keep the epoch's copy-on-write matrices alive; dropping the last
/// reference retires the epoch and wakes any writer blocked on
/// [`Server::set_max_live_epochs`] admission.
pub struct EpochState<M: TwoMonoid> {
    epoch: u64,
    code_gen: u64,
    db: Database,
    ann: BTreeMap<Fact, M::Elem>,
    enc: EncodedDb,
    rel_epoch: HashMap<String, u64>,
    retire: Weak<RetireSignal>,
}

impl<M: TwoMonoid> EpochState<M> {
    /// The monotone update-batch counter this snapshot was published
    /// at (`0` is the construction state).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl<M: TwoMonoid> Drop for EpochState<M> {
    fn drop(&mut self) {
        // Retirement: wake a writer waiting for epoch-count admission.
        if let Some(sig) = self.retire.upgrade() {
            sig.notify();
        }
    }
}

/// Wakes admission-blocked writers when an epoch retires or a pinned
/// session closes.
struct RetireSignal {
    lock: Mutex<()>,
    cvar: Condvar,
}

impl RetireSignal {
    fn notify(&self) {
        let _guard = self.lock.lock().unwrap();
        self.cvar.notify_all();
    }
}

/// One immutable materialised plan node in the shared cache. `rel` is
/// never mutated after insertion — epochs that need a different
/// version of the node live under a different `(generation, stamp)`
/// key — so readers clone relations out of it without locks.
struct SharedNode<R> {
    rel: R,
    add_ops: u64,
    mul_ops: u64,
    rows: usize,
    /// Base relations the node transitively reads (stamp vocabulary).
    deps: Arc<BTreeSet<String>>,
    /// Session that materialised the node (per-session budgets evict
    /// a session's own nodes first).
    owner: u64,
    /// Global LRU clock value of the last touch.
    last_used: AtomicU64,
}

/// Shared-cache key: `(plan node, code generation, dep stamp)`.
type NodeKey = (PlanId, u64, u64);

/// One node the writer exports into the shared cache after a batch:
/// `(plan node, relation, ⊕ ops, ⊗ ops, dependency set)`.
type Export<R> = (PlanId, R, u64, u64, Arc<BTreeSet<String>>);

/// A query resolved against the master IR once and memoised for every
/// session: the lowering plus each node's structural expression and
/// dep set, so reader evaluation never takes the master lock on a
/// plan-memo hit.
struct ResolvedPlan {
    lowered: LoweredQuery,
    exprs: HashMap<PlanId, PlanExpr>,
    deps: HashMap<PlanId, Arc<BTreeSet<String>>>,
}

/// Memory-governor knobs (see [`Server::set_global_cache_rows`],
/// [`Server::set_max_live_epochs`]).
struct Governor {
    global_rows: Option<usize>,
    max_live_epochs: Option<usize>,
}

/// The shared state behind every [`Server`] and [`Session`] handle.
struct ServerShared<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    monoid: M,
    par: Parallelism,
    /// The writer's state: plan IR, lowering memo, delta-patch
    /// machinery. Readers lock it only on a plan-memo miss.
    master: Mutex<ServingSession<M, R>>,
    /// The latest published snapshot.
    current: RwLock<Arc<EpochState<M>>>,
    /// The shared materialised-node cache.
    cache: Mutex<HashMap<NodeKey, Arc<SharedNode<R>>>>,
    /// Cross-session resolved-plan memo (structural key: alpha-renamed
    /// restatements share one entry, exactly like the master's
    /// lowering memo).
    plans: RwLock<HashMap<QueryShape, Arc<ResolvedPlan>>>,
    /// Every epoch ever published (weak; pruned by [`gc`]).
    ///
    /// [`gc`]: ServerShared::gc
    epochs: Mutex<Vec<Weak<EpochState<M>>>>,
    retire: Arc<RetireSignal>,
    governor: Mutex<Governor>,
    performed_add: AtomicU64,
    performed_mul: AtomicU64,
    plan_hits: AtomicU64,
    evictions: AtomicU64,
    /// Global LRU clock, bumped once per query.
    tick: AtomicU64,
    next_session: AtomicU64,
}

/// The dep stamp of a node under one epoch's per-relation dirty
/// epochs: the maximum dirty epoch over the node's base relations.
fn stamp(rel_epoch: &HashMap<String, u64>, deps: &BTreeSet<String>) -> u64 {
    deps.iter()
        .map(|d| rel_epoch.get(d).copied().unwrap_or(0))
        .max()
        .unwrap_or(0)
}

impl<M, R> ServerShared<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    /// Snapshots the master state as a new immutable epoch.
    fn snapshot(&self, master: &ServingSession<M, R>, code_gen: u64) -> Arc<EpochState<M>> {
        Arc::new(EpochState {
            epoch: master.session_epoch(),
            code_gen,
            db: master.database().clone(),
            ann: master.annotations().clone(),
            enc: master.encoded_db().clone(),
            rel_epoch: master.rel_epochs().clone(),
            retire: Arc::downgrade(&self.retire),
        })
    }

    /// Resolves a query against the master IR, memoised per query
    /// shape. Only a memo miss locks the master.
    fn resolve(&self, q: &Query) -> Result<Arc<ResolvedPlan>, ServingError> {
        let key = query_shape(q);
        if let Some(p) = self.plans.read().unwrap().get(&key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(p.clone());
        }
        let resolved = {
            let mut master = self.master.lock().unwrap();
            let lowered = master.lower_query(q)?;
            let mut exprs = HashMap::new();
            let mut deps = HashMap::new();
            for id in lowered.nodes() {
                exprs.insert(id, master.plan_node(id));
                deps.insert(id, Arc::new(master.node_deps(id).clone()));
            }
            Arc::new(ResolvedPlan {
                lowered,
                exprs,
                deps,
            })
        };
        // Racing resolutions of one shape produce structurally equal
        // plans (the master lowering memo hands both the same node
        // ids); first insert wins.
        let mut plans = self.plans.write().unwrap();
        let entry = plans.entry(key).or_insert(resolved);
        Ok(entry.clone())
    }

    /// Materialises (or fetches) one plan node for `epoch`, recording
    /// it in the query's `local` node map. Inputs are present in
    /// `local` first because lowered node lists are in dependency
    /// order. The cache lock is never held across kernel execution.
    #[allow(clippy::too_many_arguments)]
    fn ensure_node(
        &self,
        epoch: &EpochState<M>,
        plan: &ResolvedPlan,
        id: PlanId,
        interner: &Interner,
        tick: u64,
        owner: u64,
        local: &mut HashMap<PlanId, Arc<SharedNode<R>>>,
    ) -> Result<(), ServingError> {
        let deps = &plan.deps[&id];
        let key = (id, epoch.code_gen, stamp(&epoch.rel_epoch, deps));
        if let Some(node) = self.cache.lock().unwrap().get(&key) {
            node.last_used.store(tick, Ordering::Relaxed);
            local.insert(id, node.clone());
            return Ok(());
        }
        let mut stats = EngineStats::default();
        let rel = match &plan.exprs[&id] {
            PlanExpr::Scan { rel, positions } => {
                let vars: Vec<Var> = (0..positions.len()).map(Var).collect();
                let ann_map = &epoch.ann;
                let mut ann = |sym: Sym, t: &Tuple| -> M::Elem {
                    ann_map
                        .get(&Fact::new(sym, t.clone()))
                        .cloned()
                        .expect("epoch database and annotation map stay in sync")
                };
                R::scan(
                    &epoch.enc, &epoch.db, interner, rel, positions, vars, &mut ann, self.par,
                )?
            }
            PlanExpr::Project { input, col } => {
                let input_rel = local[input].rel.clone();
                let var = input_rel.vars()[*col];
                input_rel.project_out(&self.monoid, var, &mut stats)
            }
            PlanExpr::Join { left, right } => {
                let l = local[left].rel.clone();
                let mut r = local[right].rel.clone();
                // Shared nodes are label-free; align labels as pure
                // metadata (see `ServingSession::ensure`).
                r.relabel(l.vars().to_vec());
                l.merge(&self.monoid, r, &mut stats)
            }
        };
        self.performed_add
            .fetch_add(stats.add_ops, Ordering::Relaxed);
        self.performed_mul
            .fetch_add(stats.mul_ops, Ordering::Relaxed);
        let node = Arc::new(SharedNode {
            rows: rel.support_size(),
            rel,
            add_ops: stats.add_ops,
            mul_ops: stats.mul_ops,
            deps: deps.clone(),
            owner,
            last_used: AtomicU64::new(tick),
        });
        // Insert-if-absent: a racing session may have materialised the
        // key meanwhile — its node is bit-identical (same immutable
        // inputs, same kernels, deterministic at every thread count),
        // so adopting whichever Arc won keeps every session serving
        // literally the same node.
        let entry = self
            .cache
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(node)
            .clone();
        entry.last_used.store(tick, Ordering::Relaxed);
        local.insert(id, entry);
        Ok(())
    }

    /// Replays a lowered query's value, op counts and support
    /// trajectory from the query's node map — zero monoid operations,
    /// same walk as `ServingSession::replay`.
    fn replay(
        &self,
        lowered: &LoweredQuery,
        nodes: &HashMap<PlanId, Arc<SharedNode<R>>>,
    ) -> (M::Elem, EngineStats) {
        let mut stats = EngineStats::default();
        let mut slot_nodes = lowered.scans.clone();
        let mut alive = vec![true; slot_nodes.len()];
        let support = |slot_nodes: &[PlanId], alive: &[bool]| -> usize {
            slot_nodes
                .iter()
                .zip(alive)
                .filter(|&(_, &a)| a)
                .map(|(id, _)| nodes[id].rel.support_size())
                .sum()
        };
        stats.support_sizes.push(support(&slot_nodes, &alive));
        for step in &lowered.steps {
            let n = &nodes[&step.node];
            stats.add_ops += n.add_ops;
            stats.mul_ops += n.mul_ops;
            if let Some(k) = step.killed {
                alive[k] = false;
            }
            slot_nodes[step.touched] = step.node;
            stats.support_sizes.push(support(&slot_nodes, &alive));
        }
        let value = nodes[&lowered.root].rel.nullary_value(&self.monoid);
        (value, stats)
    }

    /// Prunes dead epochs from the registry and drops shared-cache
    /// entries no live epoch can ever hit again (their `(generation,
    /// stamp)` matches no surviving snapshot) — this is what actually
    /// frees a retired epoch's copy-on-write matrices.
    fn gc(&self) {
        let live: Vec<Arc<EpochState<M>>> = {
            let mut epochs = self.epochs.lock().unwrap();
            epochs.retain(|w| w.strong_count() > 0);
            epochs.iter().filter_map(Weak::upgrade).collect()
        };
        let mut cache = self.cache.lock().unwrap();
        cache.retain(|&(_, gen, s), node| {
            live.iter()
                .any(|e| e.code_gen == gen && stamp(&e.rel_epoch, &node.deps) == s)
        });
    }

    /// Live (still referenced) published epochs, the current one
    /// included.
    fn live_epochs(&self) -> usize {
        self.epochs
            .lock()
            .unwrap()
            .iter()
            .filter(|w| w.strong_count() > 0)
            .count()
    }

    /// Blocks a writer until the live-epoch count admits one more
    /// publication (no-op without a [`Server::set_max_live_epochs`]
    /// bound). Woken by epoch retirements; re-polls on a short timeout
    /// so a pin released without a drop notification cannot wedge it.
    fn admit_writer(&self) {
        loop {
            let Some(max) = self.governor.lock().unwrap().max_live_epochs else {
                return;
            };
            self.gc();
            if self.live_epochs() < max {
                return;
            }
            let guard = self.retire.lock.lock().unwrap();
            let _ = self
                .retire
                .cvar
                .wait_timeout(guard, Duration::from_millis(25))
                .unwrap();
        }
    }

    /// Evicts cost-aware-LRU victims (stalest first; among equally
    /// stale, the node freeing the most rows) from the set selected by
    /// `mine` until their total rows fit `budget`. In-flight queries
    /// hold `Arc`s to their nodes, so eviction never invalidates a
    /// running evaluation — evicted nodes rebuild lazily.
    fn evict_where(&self, budget: usize, mine: impl Fn(&SharedNode<R>) -> bool) {
        let mut cache = self.cache.lock().unwrap();
        let mut total: usize = cache.values().filter(|n| mine(n)).map(|n| n.rows).sum();
        if total <= budget {
            return;
        }
        let mut order: Vec<(u64, Reverse<usize>, NodeKey)> = cache
            .iter()
            .filter(|(_, n)| mine(n) && n.rows > 0)
            .map(|(k, n)| (n.last_used.load(Ordering::Relaxed), Reverse(n.rows), *k))
            .collect();
        order.sort_unstable();
        for (_, _, key) in order {
            if total <= budget {
                break;
            }
            if let Some(n) = cache.remove(&key) {
                total -= n.rows;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Enforces the global-rows governor bound, if one is set.
    fn evict_global(&self) {
        if let Some(budget) = self.governor.lock().unwrap().global_rows {
            self.evict_where(budget, |_| true);
        }
    }
}

/// The multi-tenant serving server. Cheap to clone (a shared handle);
/// hand out reader [`Session`]s with [`Server::session`] and apply
/// writes through [`Server::update_batch`].
pub struct Server<M, R = ColumnarRelation<<M as TwoMonoid>::Elem>>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    shared: Arc<ServerShared<M, R>>,
}

impl<M, R> Clone for Server<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    fn clone(&self) -> Self {
        Server {
            shared: self.shared.clone(),
        }
    }
}

impl<M, R> Server<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    /// Builds a server over `(fact, annotation)` pairs. See
    /// [`ServingSession::new`] for the input contract.
    ///
    /// # Errors
    /// Rejects fact lists that give one relation two different
    /// arities.
    pub fn new(
        monoid: M,
        interner: &Interner,
        facts: impl IntoIterator<Item = (Fact, M::Elem)>,
    ) -> Result<Self, ServingError> {
        Self::with_parallelism(monoid, interner, facts, Parallelism::default())
    }

    /// [`Server::new`] with an explicit [`Parallelism`] degree. The
    /// worker pool is warmed here, once: no request served afterwards
    /// ever spawns a thread (pinned by the differential suite via
    /// [`crate::pool::WorkerPool::spawn_count`]).
    ///
    /// # Errors
    /// Rejects fact lists that give one relation two different
    /// arities.
    pub fn with_parallelism(
        monoid: M,
        interner: &Interner,
        facts: impl IntoIterator<Item = (Fact, M::Elem)>,
        par: Parallelism,
    ) -> Result<Self, ServingError> {
        par.warm_pool();
        let master = ServingSession::with_parallelism(monoid.clone(), interner, facts, par)?;
        let retire = Arc::new(RetireSignal {
            lock: Mutex::new(()),
            cvar: Condvar::new(),
        });
        let shared = ServerShared {
            monoid,
            par,
            current: RwLock::new(Arc::new(EpochState {
                epoch: 0,
                code_gen: 0,
                db: master.database().clone(),
                ann: master.annotations().clone(),
                enc: master.encoded_db().clone(),
                rel_epoch: master.rel_epochs().clone(),
                retire: Arc::downgrade(&retire),
            })),
            master: Mutex::new(master),
            cache: Mutex::new(HashMap::new()),
            plans: RwLock::new(HashMap::new()),
            epochs: Mutex::new(Vec::new()),
            retire,
            governor: Mutex::new(Governor {
                global_rows: None,
                max_live_epochs: None,
            }),
            performed_add: AtomicU64::new(0),
            performed_mul: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            next_session: AtomicU64::new(1),
        };
        shared
            .epochs
            .lock()
            .unwrap()
            .push(Arc::downgrade(&shared.current.read().unwrap().clone()));
        Ok(Server {
            shared: Arc::new(shared),
        })
    }

    /// Opens a reader session. Sessions are independent handles (one
    /// per client/thread); their queries share the one node cache.
    pub fn session(&self) -> Session<M, R> {
        Session {
            shared: self.shared.clone(),
            id: self.shared.next_session.fetch_add(1, Ordering::Relaxed),
            budget_rows: None,
            pinned: None,
        }
    }

    /// Applies one fact write. See [`Server::update_batch`].
    ///
    /// # Errors
    /// Arity mismatch with the stored relation.
    pub fn update(
        &self,
        interner: &Interner,
        fact: &Fact,
        value: M::Elem,
    ) -> Result<UpdateOutcome, ServingError> {
        self.update_batch(interner, &[(fact.clone(), value)])
    }

    /// The write path: waits for epoch admission, adopts current
    /// reader-materialised nodes into the master cache, delta-patches
    /// the master through [`ServingSession::update_batch`], exports
    /// the patched nodes to the shared cache at their new stamps, and
    /// publishes the next epoch. In-flight readers keep evaluating
    /// against their pinned snapshots throughout; a no-op batch
    /// (nothing changed) publishes nothing.
    ///
    /// # Errors
    /// Arity mismatch with the stored relation; all-or-nothing, as in
    /// the underlying session.
    pub fn update_batch(
        &self,
        interner: &Interner,
        updates: &[(Fact, M::Elem)],
    ) -> Result<UpdateOutcome, ServingError> {
        let shared = &self.shared;
        shared.admit_writer();
        let mut master = shared.master.lock().unwrap();
        let gen = shared.current.read().unwrap().code_gen;
        // Adopt: shared nodes current for the master state (same code
        // generation, same dep stamps) feed the delta-patcher, so
        // nodes warmed by *any* reader stay warm across the write
        // instead of dropping to a cold rebuild.
        {
            let rel_epoch = master.rel_epochs().clone();
            let adopt: Vec<(PlanId, R, u64, u64)> = {
                let cache = shared.cache.lock().unwrap();
                cache
                    .iter()
                    .filter(|&(&(id, g, s), node)| {
                        g == gen && s == stamp(&rel_epoch, &node.deps) && !master.has_cached(id)
                    })
                    .map(|(&(id, _, _), node)| (id, node.rel.clone(), node.add_ops, node.mul_ops))
                    .collect()
            };
            for (id, rel, add_ops, mul_ops) in adopt {
                master.adopt_node(id, rel, add_ops, mul_ops);
            }
        }
        let outcome = master.update_batch(interner, updates)?;
        if outcome.touched.is_empty() {
            return Ok(outcome);
        }
        // A dictionary extension renumbered every cached matrix (the
        // master's were translated in place) without moving any stamp:
        // bump the code generation so the renumbered exports can never
        // collide with entries pinned epochs still read.
        let gen = gen + u64::from(outcome.refresh.dict_extended);
        let rel_epoch = master.rel_epochs().clone();
        let exports: Vec<Export<R>> = master
            .cache_entries()
            .map(|(id, rel, add_ops, mul_ops)| {
                (
                    id,
                    rel.clone(),
                    add_ops,
                    mul_ops,
                    Arc::new(master.node_deps(id).clone()),
                )
            })
            .collect();
        let state = shared.snapshot(&master, gen);
        drop(master);
        {
            let tick = shared.tick.load(Ordering::Relaxed);
            let mut cache = shared.cache.lock().unwrap();
            for (id, rel, add_ops, mul_ops, deps) in exports {
                let key = (id, gen, stamp(&rel_epoch, &deps));
                cache.entry(key).or_insert_with(|| {
                    Arc::new(SharedNode {
                        rows: rel.support_size(),
                        rel,
                        add_ops,
                        mul_ops,
                        deps,
                        owner: WRITER,
                        last_used: AtomicU64::new(tick),
                    })
                });
            }
        }
        *shared.current.write().unwrap() = state.clone();
        shared.epochs.lock().unwrap().push(Arc::downgrade(&state));
        drop(state);
        shared.gc();
        shared.evict_global();
        Ok(outcome)
    }

    /// The latest published epoch counter.
    pub fn current_epoch(&self) -> u64 {
        self.shared.current.read().unwrap().epoch
    }

    /// Published epochs still referenced (the current one included).
    pub fn live_epochs(&self) -> usize {
        self.shared.gc();
        self.shared.live_epochs()
    }

    /// Total rows materialised across the shared node cache — the
    /// quantity the global governor bounds.
    pub fn materialised_rows(&self) -> usize {
        self.shared
            .cache
            .lock()
            .unwrap()
            .values()
            .map(|n| n.rows)
            .sum()
    }

    /// Approximate payload bytes of the shared node cache
    /// ([`crate::storage::Storage::storage_bytes`] summed; the shared
    /// dictionary is excluded).
    pub fn storage_bytes(&self) -> usize {
        self.shared
            .cache
            .lock()
            .unwrap()
            .values()
            .map(|n| n.rel.storage_bytes())
            .sum()
    }

    /// Materialised plan nodes currently in the shared cache.
    pub fn cached_nodes(&self) -> usize {
        self.shared.cache.lock().unwrap().len()
    }

    /// Nodes evicted by the governor or per-session budgets so far.
    pub fn evictions(&self) -> u64 {
        self.shared.evictions.load(Ordering::Relaxed)
    }

    /// Total ⊕/⊗ applications actually executed by reader misses
    /// (writer delta-patches execute inside the master session and are
    /// counted by it). Cache hits replay recorded counts without
    /// performing any — the cross-client sharing win is
    /// `Σ reported stats − ops_performed`.
    pub fn ops_performed(&self) -> u64 {
        self.shared.performed_add.load(Ordering::Relaxed)
            + self.shared.performed_mul.load(Ordering::Relaxed)
    }

    /// Queries served from the cross-session resolved-plan memo
    /// without taking the master lock.
    pub fn plan_hits(&self) -> u64 {
        self.shared.plan_hits.load(Ordering::Relaxed)
    }

    /// Bounds the total rows materialised across all sessions
    /// (`None`: unbounded). Enforced after every query and every
    /// update publication with cost-aware-LRU eviction; evicted nodes
    /// rebuild lazily, so only the sharing win shrinks.
    pub fn set_global_cache_rows(&self, budget: Option<usize>) {
        self.shared.governor.lock().unwrap().global_rows = budget;
        self.shared.evict_global();
    }

    /// Admission-controls update bursts: a writer blocks until fewer
    /// than `max` published epochs are still referenced. The current
    /// epoch always counts, so the floor is 2 (`max` is clamped up) —
    /// `Some(2)` means "at most one retired-but-pinned epoch at a
    /// time". `None` (the default) never blocks the writer.
    pub fn set_max_live_epochs(&self, max: Option<usize>) {
        self.shared.governor.lock().unwrap().max_live_epochs = max.map(|m| m.max(2));
        self.shared.retire.notify();
    }

    /// Forwards [`ServingSession::set_patch_fraction`] to the master
    /// (the writer's patch-vs-rebuild policy).
    pub fn set_patch_fraction(&self, fraction: f64) {
        self.shared
            .master
            .lock()
            .unwrap()
            .set_patch_fraction(fraction);
    }

    /// Prunes retired epochs and the shared-cache entries only they
    /// could hit — freeing their copy-on-write matrices. Runs
    /// automatically after every publication; exposed for tests and
    /// idle housekeeping.
    pub fn gc(&self) {
        self.shared.gc();
    }
}

/// One reader's handle on a [`Server`]: snapshot-isolated queries, an
/// optional long-lived pin, and a per-session cache budget. Open one
/// per client (sessions are `Send`; share the server handle, not the
/// session).
pub struct Session<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    shared: Arc<ServerShared<M, R>>,
    id: u64,
    budget_rows: Option<usize>,
    pinned: Option<Arc<EpochState<M>>>,
}

impl<M, R> Session<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    /// This session's id (stable for its lifetime; `1`-based — `0` is
    /// the writer's owner tag).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The epoch the next query will read: the pinned one, else the
    /// latest published.
    fn read_epoch(&self) -> Arc<EpochState<M>> {
        self.pinned
            .clone()
            .unwrap_or_else(|| self.shared.current.read().unwrap().clone())
    }

    /// Pins the current epoch: every subsequent query reads this
    /// snapshot — regardless of writer activity — until
    /// [`Session::unpin`]. Returns the pinned epoch counter.
    pub fn pin(&mut self) -> u64 {
        let state = self.shared.current.read().unwrap().clone();
        let epoch = state.epoch;
        self.pinned = Some(state);
        epoch
    }

    /// Releases the pin; the epoch retires when its last reader
    /// drops. Subsequent queries read the latest published epoch.
    pub fn unpin(&mut self) {
        self.pinned = None;
        self.shared.gc();
    }

    /// The pinned epoch counter, if a pin is in force.
    pub fn pinned_epoch(&self) -> Option<u64> {
        self.pinned.as_ref().map(|s| s.epoch)
    }

    /// Bounds the rows this session's own materialisations may keep in
    /// the shared cache (`None`: unbounded). Nodes materialised by
    /// other sessions (or exported by the writer) never count against
    /// it.
    pub fn set_cache_budget(&mut self, budget: Option<usize>) {
        self.budget_rows = budget;
        if let Some(b) = budget {
            let id = self.id;
            self.shared.evict_where(b, |n| n.owner == id);
        }
    }

    /// Evaluates one query against this session's read epoch, sharing
    /// every sub-plan any session already materialised for compatible
    /// state. Returns the value and the [`EngineStats`] an independent
    /// fresh evaluation over the epoch's state would report —
    /// bit-identical, support trajectory included.
    ///
    /// # Errors
    /// Non-hierarchical queries and annotation failures.
    pub fn query(
        &self,
        interner: &Interner,
        q: &Query,
    ) -> Result<(M::Elem, EngineStats), ServingError> {
        let epoch = self.read_epoch();
        let plan = self.shared.resolve(q)?;
        let tick = self.shared.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut local = HashMap::new();
        for id in plan.lowered.nodes().collect::<Vec<_>>() {
            self.shared
                .ensure_node(&epoch, &plan, id, interner, tick, self.id, &mut local)?;
        }
        let out = self.shared.replay(&plan.lowered, &local);
        drop(local);
        drop(epoch);
        if let Some(b) = self.budget_rows {
            let id = self.id;
            self.shared.evict_where(b, |n| n.owner == id);
        }
        self.shared.evict_global();
        Ok(out)
    }

    /// Evaluates a batch of queries in order against one consistent
    /// snapshot (the epoch current when the batch starts, or the
    /// pinned one).
    ///
    /// # Errors
    /// Fails on the first erroneous query.
    pub fn query_batch(
        &mut self,
        interner: &Interner,
        queries: &[Query],
    ) -> Result<Vec<(M::Elem, EngineStats)>, ServingError> {
        let had_pin = self.pinned.is_some();
        if !had_pin {
            self.pin();
        }
        let out = queries.iter().map(|q| self.query(interner, q)).collect();
        if !had_pin {
            self.unpin();
        }
        out
    }

    /// Applies a write through the server (writes are serialised by
    /// the master lock; this is a convenience for single-connection
    /// scripts that mix reads and writes).
    ///
    /// # Errors
    /// See [`Server::update_batch`].
    pub fn update_batch(
        &self,
        interner: &Interner,
        updates: &[(Fact, M::Elem)],
    ) -> Result<UpdateOutcome, ServingError> {
        Server {
            shared: self.shared.clone(),
        }
        .update_batch(interner, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{MapRelation, ShardedColumnar};
    use hq_db::db_from_ints;
    use hq_monoid::ProbMonoid;
    use hq_query::parse_query;

    fn chain_tid() -> (Vec<(Fact, f64)>, Interner) {
        let (db, i) = db_from_ints(&[
            ("E", &[&[1, 2], &[1, 3], &[4, 3], &[5, 5]]),
            ("F", &[&[2, 9], &[3, 8], &[3, 9], &[5, 1]]),
        ]);
        let tid = db
            .facts()
            .into_iter()
            .enumerate()
            .map(|(j, f)| (f, 0.15 + 0.09 * j as f64))
            .collect();
        (tid, i)
    }

    fn serial_expect(tid: &[(Fact, f64)], i: &Interner, q: &Query) -> (f64, EngineStats) {
        let mut s: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, i, tid.iter().cloned()).unwrap();
        s.query(i, q).unwrap()
    }

    #[test]
    fn single_session_matches_serial_serving() {
        let (tid, i) = chain_tid();
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        let (want, want_stats) = serial_expect(&tid, &i, &q);
        let server: Server<ProbMonoid> = Server::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let s = server.session();
        let (got, stats) = s.query(&i, &q).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
        // Second session: full cache hit, zero additional ops.
        let performed = server.ops_performed();
        let s2 = server.session();
        let (got2, stats2) = s2.query(&i, &q).unwrap();
        assert_eq!(got2.to_bits(), want.to_bits());
        assert_eq!(stats2, want_stats);
        assert_eq!(server.ops_performed(), performed, "hit must be zero-op");
        assert_eq!(server.plan_hits(), 1);
    }

    #[test]
    fn pinned_reader_is_isolated_from_writer() {
        let (tid, mut i) = chain_tid();
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        let server: Server<ProbMonoid, ShardedColumnar<f64>> = Server::with_parallelism(
            ProbMonoid,
            &i,
            tid.iter().cloned(),
            Parallelism::fine_grained(2),
        )
        .unwrap();
        let mut pinned = server.session();
        let (before, before_stats) = pinned.query(&i, &q).unwrap();
        pinned.pin();
        // The writer inserts a novel domain value (dictionary
        // extension: every cached matrix renumbers).
        let e = i.intern("E");
        let novel = Fact::new(e, Tuple::ints(&[77, 78]));
        server.update(&i, &novel, 0.5).unwrap();
        // The pinned reader still sees the old state, bit-identically.
        let (got, stats) = pinned.query(&i, &q).unwrap();
        assert_eq!(got.to_bits(), before.to_bits());
        assert_eq!(stats, before_stats);
        // An unpinned session sees the new state — and matches a
        // serial session replaying the same history.
        let fresh = server.session();
        let (new_got, new_stats) = fresh.query(&i, &q).unwrap();
        let mut serial: ServingSession<ProbMonoid, ShardedColumnar<f64>> =
            ServingSession::with_parallelism(
                ProbMonoid,
                &i,
                tid.iter().cloned(),
                Parallelism::fine_grained(2),
            )
            .unwrap();
        serial.query(&i, &q).unwrap();
        serial.update(&i, &novel, 0.5).unwrap();
        let (serial_got, serial_stats) = serial.query(&i, &q).unwrap();
        assert_eq!(new_got.to_bits(), serial_got.to_bits());
        assert_eq!(new_stats, serial_stats);
        // Unpinning retires the old epoch; gc frees its nodes.
        assert!(server.live_epochs() >= 2);
        pinned.unpin();
        server.gc();
        assert_eq!(server.live_epochs(), 1);
    }

    #[test]
    fn governor_bounds_global_rows() {
        let (tid, i) = chain_tid();
        let server: Server<ProbMonoid, MapRelation<f64>> =
            Server::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        server.set_global_cache_rows(Some(3));
        let s = server.session();
        for src in ["Q() :- E(X,Y), F(Y,Z)", "Q() :- E(X,Y)", "Q() :- F(Y,Z)"] {
            s.query(&i, &parse_query(src).unwrap()).unwrap();
        }
        assert!(server.materialised_rows() <= 3);
        assert!(server.evictions() > 0);
    }
}
