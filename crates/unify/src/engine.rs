//! Algorithm 1: the general-purpose unifying algorithm for
//! hierarchical queries.
//!
//! The engine replays a precompiled [`EliminationPlan`] over a
//! K-annotated database:
//!
//! * **Rule 1** (`ProjectOut`) becomes a ⊕-aggregating projection:
//!   `R'(x̄') = ⊕_y R(x̄', y)`, restricted to the support since `0` is
//!   the ⊕-identity (line 4 of Algorithm 1).
//! * **Rule 2** (`Merge`) becomes a ⊗-*outer* join on the shared
//!   variable set: `R'(x̄) = R₁(x̄) ⊗ R₂(x̄)` over the **union** of the
//!   two supports, filling the missing side with `0` — required because
//!   2-monoids need not annihilate (`a ⊗ 0 ≠ 0` in the Shapley monoid);
//!   tuples absent from *both* sides stay absent thanks to `0 ⊗ 0 = 0`
//!   (Lemma 6.6). For annihilating (semiring) monoids the 0-fill is
//!   skipped outright, keeping the op counts on the Theorem 6.7 budget.
//!
//! The physical relation layout is pluggable ([`crate::storage`]):
//! [`run_plan`] is generic over any [`Storage`] backend, and
//! [`evaluate_on`] dispatches on a runtime [`Backend`] choice. The
//! engine counts ⊕/⊗ operations and tracks support sizes per step,
//! making Theorem 6.7 (linearly many operations) and Lemma 6.6
//! (support never grows) directly measurable — identically on every
//! backend.

use crate::annotated::{annotate_columnar, annotate_with, AnnotateError, AnnotatedDb, EncodedDb};
use crate::storage::{
    Backend, ColumnarRelation, CompressedAnn, CompressedColumnar, MapRelation, Parallelism, Storage,
};
use hq_db::{Database, Fact, Interner, Sym, Tuple};
use hq_monoid::TwoMonoid;
use hq_query::{plan, EliminationPlan, NotHierarchical, Query, Step};
use std::fmt;

/// Instrumentation collected by a run of Algorithm 1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of ⊕ applications.
    pub add_ops: u64,
    /// Number of ⊗ applications.
    pub mul_ops: u64,
    /// Total support size after each step (index 0 = initial).
    pub support_sizes: Vec<usize>,
}

impl EngineStats {
    /// Lemma 6.6: the K-annotated database size never increases.
    pub fn support_never_grew(&self) -> bool {
        self.support_sizes.windows(2).all(|w| w[1] <= w[0])
    }

    /// Total ⊕ + ⊗ operations (Theorem 6.7 bounds this by `O(|D|)`).
    pub fn total_ops(&self) -> u64 {
        self.add_ops + self.mul_ops
    }
}

/// Errors from the high-level entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnifyError {
    /// The query is not hierarchical; Algorithm 1 does not apply
    /// (and the problem is intractable in general — Theorem 4.4).
    NotHierarchical(NotHierarchical),
    /// The fact list did not match the query schema.
    Annotate(AnnotateError),
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnifyError::NotHierarchical(e) => write!(f, "{e}"),
            UnifyError::Annotate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for UnifyError {}

impl From<NotHierarchical> for UnifyError {
    fn from(e: NotHierarchical) -> Self {
        UnifyError::NotHierarchical(e)
    }
}

impl From<AnnotateError> for UnifyError {
    fn from(e: AnnotateError) -> Self {
        UnifyError::Annotate(e)
    }
}

/// Executes a compiled plan over an annotated database of any storage
/// backend, returning the final annotation of the nullary tuple `()`
/// and the run statistics.
///
/// The result is `0` when the final relation has empty support (no
/// fact combination reaches the root), mirroring `⊕` over an empty
/// index set.
pub fn run_plan<M, R>(
    monoid: &M,
    plan: &EliminationPlan,
    mut db: AnnotatedDb<R>,
) -> (M::Elem, EngineStats)
where
    M: TwoMonoid,
    R: Storage<Ann = M::Elem>,
{
    let mut stats = EngineStats::default();
    stats.support_sizes.push(db.support_size());
    for step in plan.steps() {
        match *step {
            Step::ProjectOut { atom, var } => {
                let rel = db.slots[atom].take().expect("plan references alive slot");
                db.slots[atom] = Some(rel.project_out(monoid, var, &mut stats));
            }
            Step::Merge { left, right } => {
                let l = db.slots[left].take().expect("plan references alive slot");
                let r = db.slots[right].take().expect("plan references alive slot");
                db.slots[left] = Some(l.merge(monoid, r, &mut stats));
            }
        }
        stats.support_sizes.push(db.support_size());
    }
    let root = db.slots[plan.root()]
        .take()
        .expect("root slot alive at end");
    debug_assert!(root.vars().is_empty(), "root must be nullary");
    (root.nullary_value(monoid), stats)
}

/// One-call entry point on the ordered-map backend: plans the query,
/// annotates the facts, and runs Algorithm 1. Kept as the oracle path;
/// see [`evaluate_on`] for backend selection.
///
/// # Errors
/// Returns [`UnifyError::NotHierarchical`] for non-hierarchical
/// queries, or [`UnifyError::Annotate`] if the facts do not fit the
/// query schema.
pub fn evaluate<M: TwoMonoid>(
    monoid: &M,
    q: &Query,
    interner: &Interner,
    facts: impl IntoIterator<Item = (Fact, M::Elem)>,
) -> Result<(M::Elem, EngineStats), UnifyError> {
    let p = plan(q)?;
    let db = annotate_with::<MapRelation<M::Elem>>(q, interner, facts)?;
    Ok(run_plan(monoid, &p, db))
}

/// One-call entry point with runtime backend selection. All backends
/// produce bit-identical results and identical [`EngineStats`]; they
/// differ only in constants (the columnar backend is the fast path).
///
/// # Errors
/// Same failure modes as [`evaluate`].
pub fn evaluate_on<M: TwoMonoid>(
    backend: Backend,
    monoid: &M,
    q: &Query,
    interner: &Interner,
    facts: impl IntoIterator<Item = (Fact, M::Elem)>,
) -> Result<(M::Elem, EngineStats), UnifyError>
where
    M::Elem: CompressedAnn,
{
    evaluate_on_par(backend, Parallelism::default(), monoid, q, interner, facts)
}

/// [`evaluate_on`] with an explicit [`Parallelism`] degree. When the
/// columnar backend is selected and `par.threads > 1`, every Rule 1
/// fold and Rule 2 merge runs shard-parallel on the persistent worker
/// [`pool`](crate::pool)
/// ([`crate::storage::ShardedColumnar`]); results and stats stay
/// bit-identical to the sequential run at every thread count. The
/// ordered-map oracle ignores the knob (documented sequential).
///
/// # Errors
/// Same failure modes as [`evaluate`].
pub fn evaluate_on_par<M: TwoMonoid>(
    backend: Backend,
    par: Parallelism,
    monoid: &M,
    q: &Query,
    interner: &Interner,
    facts: impl IntoIterator<Item = (Fact, M::Elem)>,
) -> Result<(M::Elem, EngineStats), UnifyError>
where
    M::Elem: CompressedAnn,
{
    let p = plan(q)?;
    match backend {
        Backend::Map => {
            let db = annotate_with::<MapRelation<M::Elem>>(q, interner, facts)?;
            Ok(run_plan(monoid, &p, db))
        }
        Backend::Columnar => {
            let db = annotate_with::<ColumnarRelation<M::Elem>>(q, interner, facts)?;
            Ok(run_columnar_plan(monoid, &p, db, par))
        }
        Backend::Compressed => {
            let db = annotate_with::<CompressedColumnar<M::Elem>>(q, interner, facts)?;
            Ok(run_plan(monoid, &p, db))
        }
    }
}

/// Runs a compiled plan over an annotated columnar database at the
/// given parallelism degree: sequential when `par.threads == 1`,
/// sharded otherwise. This is the single dispatch point every columnar
/// entry path funnels through; it warms the persistent worker
/// [`pool`](crate::pool) up front, so the shard kernels themselves
/// never spawn a thread.
pub fn run_columnar_plan<M: TwoMonoid>(
    monoid: &M,
    plan: &EliminationPlan,
    db: AnnotatedDb<ColumnarRelation<M::Elem>>,
    par: Parallelism,
) -> (M::Elem, EngineStats) {
    if par.is_parallel() {
        par.warm_pool();
        run_plan(monoid, plan, db.into_sharded(par))
    } else {
        run_plan(monoid, plan, db)
    }
}

/// The borrowed-fact fast path on the columnar backend: plans the
/// query, builds the columnar relations **directly from borrowed key
/// tuples** (no clone, no re-boxing — see
/// [`crate::annotated::annotate_columnar`]), and runs Algorithm 1.
/// This is what the solver front-ends use when
/// [`Backend::Columnar`] is selected.
///
/// # Errors
/// Same failure modes as [`evaluate`].
pub fn evaluate_columnar<'a, M: TwoMonoid>(
    monoid: &M,
    q: &Query,
    interner: &Interner,
    rows: impl IntoIterator<Item = (Sym, &'a Tuple, M::Elem)>,
) -> Result<(M::Elem, EngineStats), UnifyError> {
    evaluate_columnar_par(Parallelism::default(), monoid, q, interner, rows)
}

/// [`evaluate_columnar`] with an explicit [`Parallelism`] degree.
///
/// # Errors
/// Same failure modes as [`evaluate`].
pub fn evaluate_columnar_par<'a, M: TwoMonoid>(
    par: Parallelism,
    monoid: &M,
    q: &Query,
    interner: &Interner,
    rows: impl IntoIterator<Item = (Sym, &'a Tuple, M::Elem)>,
) -> Result<(M::Elem, EngineStats), UnifyError> {
    let p = plan(q)?;
    let db = annotate_columnar(q, interner, rows)?;
    Ok(run_columnar_plan(monoid, &p, db, par))
}

/// The borrowed-fact fast path on the compressed tier: the columnar
/// build (instance dictionary, scatter encode) runs as usual, each
/// slot is block-compressed immediately, and the plan executes the
/// streaming kernels. The `par` degree is accepted for interface
/// symmetry but ignored — the compressed kernels are sequential
/// (documented; the tier trades CPU fan-out for memory footprint).
///
/// # Errors
/// Same failure modes as [`evaluate`].
pub fn evaluate_compressed_par<'a, M: TwoMonoid>(
    par: Parallelism,
    monoid: &M,
    q: &Query,
    interner: &Interner,
    rows: impl IntoIterator<Item = (Sym, &'a Tuple, M::Elem)>,
) -> Result<(M::Elem, EngineStats), UnifyError>
where
    M::Elem: CompressedAnn,
{
    let _ = par;
    let p = plan(q)?;
    let db = annotate_columnar(q, interner, rows)?;
    Ok(run_plan(monoid, &p, db.into_compressed()))
}

/// Evaluates a query over a database whose dictionary encoding was
/// built once with [`EncodedDb::new`] and is reused across calls — the
/// batched multi-query fast path: repeated queries against the same
/// database skip the value sort and dictionary build entirely.
/// `ann` supplies each fact's annotation (facts are visited in each
/// relation's sorted tuple order).
///
/// Results and [`EngineStats`] are bit-identical to
/// [`evaluate_on_par`] on the columnar backend: the cached dictionary
/// covers the whole database rather than just the query's relations,
/// but codes are order-preserving either way, so every comparison,
/// fold and merge runs in the same sequence.
///
/// # Errors
/// Same failure modes as [`evaluate`], plus an arity mismatch when the
/// query disagrees with the encoded schema.
pub fn evaluate_encoded<M: TwoMonoid>(
    par: Parallelism,
    monoid: &M,
    q: &Query,
    interner: &Interner,
    db: &Database,
    enc: &EncodedDb,
    ann: impl FnMut(Sym, &Tuple) -> M::Elem,
) -> Result<(M::Elem, EngineStats), UnifyError> {
    let p = plan(q)?;
    let adb = enc.annotate(db, q, interner, ann)?;
    Ok(run_columnar_plan(monoid, &p, adb, par))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_db::db_from_ints;
    use hq_monoid::{BoolMonoid, CountMonoid, ProbMonoid, TropicalMinMonoid, TROPICAL_INF};
    use hq_query::{example_query, q_hierarchical, q_non_hierarchical, Query};

    fn fig1_db() -> (hq_db::Database, Interner) {
        db_from_ints(&[
            ("R", &[&[1, 5]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4]]),
        ])
    }

    #[test]
    fn counting_monoid_matches_join_engine() {
        // Algorithm 1 over (ℕ, +, ×) computes the bag-set value Q(D).
        let q = example_query();
        let (db, mut i) = fig1_db();
        let (count, stats) = evaluate(
            &CountMonoid,
            &q,
            &i,
            db.facts().into_iter().map(|f| (f, 1u64)),
        )
        .unwrap();
        assert_eq!(count, 1);
        assert!(stats.support_never_grew(), "{:?}", stats.support_sizes);
        let pattern = q.to_pattern(&mut i);
        assert_eq!(hq_db::count_matches(&db, &pattern).unwrap(), count);
    }

    #[test]
    fn bool_monoid_decides_satisfiability() {
        let q = q_hierarchical(); // E(X,Y), F(Y,Z)
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        let (sat, _) = evaluate(
            &BoolMonoid,
            &q,
            &i,
            db.facts().into_iter().map(|f| (f, true)),
        )
        .unwrap();
        assert!(sat);
        // Break the join: F(9, 3) does not connect.
        let (db2, i2) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[9, 3]])]);
        let (sat2, _) = evaluate(
            &BoolMonoid,
            &q,
            &i2,
            db2.facts().into_iter().map(|f| (f, true)),
        )
        .unwrap();
        assert!(!sat2);
    }

    #[test]
    fn prob_monoid_single_chain() {
        // Q_h over E(1,2) (p=0.5) and F(2,3) (p=0.5): P(Q) = 0.25.
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        let (p, _) = evaluate(
            &ProbMonoid,
            &q,
            &i,
            db.facts().into_iter().map(|f| (f, 0.5f64)),
        )
        .unwrap();
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn prob_monoid_fig1_structure() {
        // All facts p = 1 → query certainly true.
        let q = example_query();
        let (db, i) = fig1_db();
        let (p, _) = evaluate(
            &ProbMonoid,
            &q,
            &i,
            db.facts().into_iter().map(|f| (f, 1.0f64)),
        )
        .unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_database_yields_zero() {
        let q = q_hierarchical();
        let i = Interner::new();
        let (p, _) = evaluate(&ProbMonoid, &q, &i, Vec::<(Fact, f64)>::new()).unwrap();
        assert_eq!(p, 0.0);
        let (c, _) = evaluate(&CountMonoid, &q, &i, Vec::<(Fact, u64)>::new()).unwrap();
        assert_eq!(c, 0);
    }

    #[test]
    fn non_hierarchical_query_rejected() {
        let q = q_non_hierarchical();
        let i = Interner::new();
        let err = evaluate(&BoolMonoid, &q, &i, Vec::<(Fact, bool)>::new()).unwrap_err();
        assert!(matches!(err, UnifyError::NotHierarchical(_)));
        for backend in Backend::ALL {
            let err =
                evaluate_on(backend, &BoolMonoid, &q, &i, Vec::<(Fact, bool)>::new()).unwrap_err();
            assert!(matches!(err, UnifyError::NotHierarchical(_)));
        }
    }

    #[test]
    fn tropical_monoid_finds_cheapest_witness() {
        // Two disjoint witnesses with different total weights.
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2], &[7, 8]]), ("F", &[&[2, 3], &[8, 9]])]);
        let weights = |f: &Fact| {
            // Witness 1-2-3 costs 10+1; witness 7-8-9 costs 2+3.
            let first = f.tuple.get(0);
            match first {
                hq_db::Value::Int(1) => 10u64,
                hq_db::Value::Int(2) => 1,
                hq_db::Value::Int(7) => 2,
                hq_db::Value::Int(8) => 3,
                _ => TROPICAL_INF,
            }
        };
        for backend in Backend::ALL {
            let (cost, _) = evaluate_on(
                backend,
                &TropicalMinMonoid,
                &q,
                &i,
                db.facts().into_iter().map(|f| {
                    let w = weights(&f);
                    (f, w)
                }),
            )
            .unwrap();
            assert_eq!(cost, 5, "{backend}");
        }
    }

    #[test]
    fn op_counts_scale_linearly() {
        // Theorem 6.7: #ops = O(|D|). Build Q_h over n chained pairs and
        // check ops grow linearly (ratio between sizes ~ size ratio).
        let q = q_hierarchical();
        for backend in Backend::ALL {
            let mut ops = Vec::new();
            for n in [50i64, 100, 200] {
                let mut i = Interner::new();
                let e = i.intern("E");
                let f = i.intern("F");
                let mut db = hq_db::Database::new();
                for k in 0..n {
                    db.insert_tuple(e, hq_db::Tuple::ints(&[k, k]));
                    db.insert_tuple(f, hq_db::Tuple::ints(&[k, k + 1]));
                }
                let (_, stats) = evaluate_on(
                    backend,
                    &CountMonoid,
                    &q,
                    &i,
                    db.facts().into_iter().map(|fact| (fact, 1u64)),
                )
                .unwrap();
                assert!(stats.support_never_grew());
                ops.push(stats.total_ops() as f64);
            }
            let r1 = ops[1] / ops[0];
            let r2 = ops[2] / ops[1];
            assert!((1.5..=2.5).contains(&r1), "ops not linear: {ops:?}");
            assert!((1.5..=2.5).contains(&r2), "ops not linear: {ops:?}");
        }
    }

    #[test]
    fn disconnected_query_multiplies_components() {
        // Q() :- A(X), B(Y) over 3 A-facts and 2 B-facts: count = 6.
        let q = Query::new(&[("A", &["X"]), ("B", &["Y"])]).unwrap();
        let (db, i) = db_from_ints(&[("A", &[&[1], &[2], &[3]]), ("B", &[&[7], &[8]])]);
        for backend in Backend::ALL {
            let (count, _) = evaluate_on(
                backend,
                &CountMonoid,
                &q,
                &i,
                db.facts().into_iter().map(|f| (f, 1u64)),
            )
            .unwrap();
            assert_eq!(count, 6, "{backend}");
        }
    }

    #[test]
    fn zero_annotations_prune_support() {
        // A fact annotated exactly 0 behaves as absent.
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        for backend in Backend::ALL {
            let (p, stats) = evaluate_on(
                backend,
                &ProbMonoid,
                &q,
                &i,
                db.facts().into_iter().map(|f| {
                    let p = if f.tuple.arity() == 2 && f.tuple.get(0) == hq_db::Value::Int(1) {
                        0.0
                    } else {
                        0.9
                    };
                    (f, p)
                }),
            )
            .unwrap();
            assert_eq!(p, 0.0, "{backend}");
            assert!(stats.support_never_grew());
        }
    }

    #[test]
    fn backends_agree_bit_for_bit_on_fig1() {
        let q = example_query();
        let (db, i) = fig1_db();
        let facts: Vec<(Fact, f64)> = db
            .facts()
            .into_iter()
            .enumerate()
            .map(|(j, f)| (f, 0.17 + 0.19 * j as f64))
            .collect();
        let (pm, sm) = evaluate_on(Backend::Map, &ProbMonoid, &q, &i, facts.clone()).unwrap();
        let (pc, sc) = evaluate_on(Backend::Columnar, &ProbMonoid, &q, &i, facts).unwrap();
        assert_eq!(pm.to_bits(), pc.to_bits(), "map {pm} vs columnar {pc}");
        assert_eq!(sm, sc);
    }
}
