//! Pluggable storage for K-annotated relations.
//!
//! Algorithm 1 only ever performs two relation-level operations — the
//! Rule 1 ⊕-aggregating projection and the Rule 2 ⊗-outer-join on
//! identical variable sets — plus support-size accounting and the final
//! nullary read-out. [`Storage`] captures exactly that contract, so the
//! engine, the incremental maintainer, and every front-end are generic
//! over the physical layout:
//!
//! * [`MapRelation`] — the ordered-map backend (`BTreeMap<Tuple, K>`),
//!   kept as the deterministic differential oracle and for workloads
//!   dominated by point updates;
//! * [`ColumnarRelation`] — the columnar backend: one dense, sorted
//!   row-major matrix of dictionary codes plus a parallel annotation
//!   column. Rule 1 is a single-pass grouped fold, Rule 2 a linear
//!   sort-merge outer join; no per-tuple allocation on the hot path.
//! * [`ShardedColumnar`] — the columnar backend in parallel execution
//!   mode: the sorted matrices are cut into contiguous shards on
//!   key/group boundaries and each rule runs the sequential kernels
//!   per shard on the persistent worker [`pool`](crate::pool),
//!   recombining in fixed shard order (degree set by
//!   [`Parallelism`]).
//!
//! All backends — and every thread count — perform **the same ⊕/⊗
//! applications in the same order**, so results (including
//! floating-point ones) are bit-identical and `EngineStats` agree
//! exactly — the property the `differential_backends` and
//! `differential_parallel` suites pin down.
//!
//! [`EncodedDb`] additionally caches a database's dictionary encoding
//! so repeated queries over one database skip the columnar build's
//! dominant cost (batched multi-query serving).

mod columnar;
mod compressed;
mod encoded;
mod map;
mod sharded;

pub use columnar::{BorrowedSlot, ColumnarRelation};
pub use compressed::{CompressedAnn, CompressedBuilder, CompressedColumnar};
pub use encoded::{EncodedDb, RefreshOutcome};
pub use map::MapRelation;
pub use sharded::ShardedColumnar;

use crate::engine::EngineStats;
use hq_db::{Tuple, Value};
use hq_monoid::TwoMonoid;
use hq_query::Var;
use std::fmt;
use std::str::FromStr;

/// The physical layout of the annotated relations in one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Ordered-map backend (`BTreeMap<Tuple, K>` per relation).
    Map,
    /// Columnar backend (sorted code matrix + annotation column).
    #[default]
    Columnar,
    /// Compressed columnar backend (bit-packed/RLE sorted blocks with
    /// streaming kernels — see [`CompressedColumnar`]).
    Compressed,
}

impl Backend {
    /// All backends, for exhaustive differential sweeps.
    pub const ALL: [Backend; 3] = [Backend::Map, Backend::Columnar, Backend::Compressed];
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Map => write!(f, "map"),
            Backend::Columnar => write!(f, "columnar"),
            Backend::Compressed => write!(f, "compressed"),
        }
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "map" => Ok(Backend::Map),
            "columnar" => Ok(Backend::Columnar),
            "compressed" => Ok(Backend::Compressed),
            other => Err(format!(
                "unknown backend '{other}' (expected 'map', 'columnar' or 'compressed')"
            )),
        }
    }
}

/// The degree of intra-query parallelism for one run: how many worker
/// threads each Rule 1 fold / Rule 2 merge may fan out over.
///
/// Parallelism is orthogonal to the [`Backend`] layout choice: today
/// only the columnar layout shards (see [`ShardedColumnar`]); the
/// ordered-map oracle ignores the knob. `threads == 1` is exactly the
/// sequential engine, and every thread count produces **bit-identical
/// results and identical [`EngineStats`]** — shard boundaries are
/// chosen on key boundaries and shard outputs (and per-shard op
/// counts) are concatenated/summed in fixed shard order, so the global
/// ⊕/⊗ application sequence never depends on scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Number of worker threads (≥ 1).
    pub threads: usize,
    /// Minimum rows a shard must carry before fanning out; relations
    /// below `2 × min_shard_rows` run sequentially, so parallel mode
    /// never pessimizes small folds/merges with scheduling overhead.
    min_shard_rows: usize,
}

/// Default work-size floor per shard: submitting, waking and joining
/// pool tasks costs microseconds while the kernels process a row in
/// well under a microsecond, so shards below a few thousand rows lose
/// more to scheduling than they gain.
const DEFAULT_MIN_SHARD_ROWS: usize = 4096;

impl Parallelism {
    /// A parallelism degree of `threads` (clamped up to 1), with the
    /// default work-size floor.
    pub fn new(threads: usize) -> Self {
        Parallelism {
            threads: threads.max(1),
            min_shard_rows: DEFAULT_MIN_SHARD_ROWS,
        }
    }

    /// A degree that shards any relation with at least two rows,
    /// ignoring the work-size floor. Sharding tiny inputs costs far
    /// more in thread spawns than it saves, so this exists for tests
    /// and diagnostics that must exercise the shard paths on small
    /// data — production callers want [`Parallelism::new`].
    pub fn fine_grained(threads: usize) -> Self {
        Parallelism {
            threads: threads.max(1),
            min_shard_rows: 1,
        }
    }

    /// Sequential execution (the default).
    pub const fn sequential() -> Self {
        Parallelism {
            threads: 1,
            min_shard_rows: DEFAULT_MIN_SHARD_ROWS,
        }
    }

    /// One worker per hardware thread reported by the OS (1 if the
    /// query fails).
    pub fn available() -> Self {
        Parallelism::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Whether more than one worker may be used.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// The work-size floor: minimum rows per shard.
    pub fn min_shard_rows(&self) -> usize {
        self.min_shard_rows.max(1)
    }

    /// Resolves this degree to the shared persistent worker pool,
    /// spawning any workers still missing for it (none, once warmed —
    /// after this call no rule application at this degree ever spawns
    /// a thread again). Sequential degrees are a no-op. Returns the
    /// resolved pool handle for introspection.
    pub fn warm_pool(&self) -> &'static crate::pool::WorkerPool {
        let pool = crate::pool::global();
        if self.is_parallel() {
            pool.ensure_capacity(self.threads);
        }
        pool
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::sequential()
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.threads)
    }
}

impl FromStr for Parallelism {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "max" {
            return Ok(Parallelism::available());
        }
        match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Parallelism::new(n)),
            _ => Err(format!(
                "invalid thread count '{s}' (expected a positive integer or 'max')"
            )),
        }
    }
}

/// A duplicate key found while building storage: the slot index and
/// the offending key (in sorted-var order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateRow {
    /// Index of the slot (query atom) holding the duplicate.
    pub slot: usize,
    /// The duplicated key, in ascending variable-id column order.
    pub key: Tuple,
}

/// One slot of input to [`Storage::build_slots`]: the sorted schema
/// plus owned rows keyed in that column order.
pub type OwnedSlot<K> = (Vec<Var>, Vec<(Tuple, K)>);

/// A K-annotated relation layout the engine can run Algorithm 1 over.
///
/// Implementations store the *support* only (annotation ≠ 0 under the
/// monoid's [`TwoMonoid::is_zero`]) with rows keyed in ascending
/// variable-id order, and must apply ⊕/⊗ in ascending key order so that
/// all backends produce bit-identical results.
///
/// The carrier is `Send + 'static` and monoids clone into `'static`
/// task closures, so that sharded backends ([`ShardedColumnar`]) can
/// fan Rule 1/Rule 2 out over the persistent worker [`crate::pool`].
/// Every carrier and monoid in the workspace is a plain owned value
/// (no interior mutability, no borrows), so these bounds cost nothing.
pub trait Storage: Clone + fmt::Debug + Sized {
    /// The annotation carrier `K`.
    type Ann: Clone + PartialEq + fmt::Debug + Send + Sync + 'static + 'static;

    /// The backend-native row key used by the incremental maintainer's
    /// dirty sets: [`Tuple`] on the ordered-map oracle, a dictionary
    /// code row (`Vec<RowCode>`) on the columnar layouts — so the dirty
    /// walk compares/projects 4-byte codes instead of decoding and
    /// re-encoding boxed tuples at every probe.
    ///
    /// Code keys are only meaningful while every relation they flow
    /// between shares one dictionary *content*. The build paths
    /// establish this (one instance-wide dictionary); a batch of
    /// updates whose keys carry novel domain values must call
    /// [`Storage::prepare_values`] on every live relation **before**
    /// encoding keys, which keeps the contents aligned (and makes
    /// [`Storage::set_key`] extension-free).
    type Key: Ord + Clone + fmt::Debug;

    /// Builds one relation per `(vars, rows)` slot. `rows` are keyed in
    /// `vars` order but arrive in **arbitrary order**: the backend owns
    /// sorting (in its own key representation — much cheaper than a
    /// tuple sort for the columnar layout, and adaptive-linear for
    /// presorted input everywhere) and rejects duplicate keys. Slots
    /// are built together so backends may share instance-wide
    /// structures (e.g. the value dictionary).
    ///
    /// # Errors
    /// Returns the first [`DuplicateRow`] encountered.
    fn build_slots(slots: Vec<OwnedSlot<Self::Ann>>) -> Result<Vec<Self>, DuplicateRow>;

    /// The schema: variable ids in ascending order.
    fn vars(&self) -> &[Var];

    /// Support size `|supp(R)|` (Definition 6.5).
    fn support_size(&self) -> usize;

    /// Rule 1: `R'(x̄') = ⊕_y R(x̄', y)` over the support, pruning
    /// zeros. Counts one ⊕ per combine into an existing group.
    ///
    /// # Panics
    /// Panics if `var` is not in the schema.
    fn project_out<M: TwoMonoid<Elem = Self::Ann>>(
        self,
        monoid: &M,
        var: Var,
        stats: &mut EngineStats,
    ) -> Self;

    /// Rule 2: `R'(x̄) = R₁(x̄) ⊗ R₂(x̄)` over the union of supports with
    /// 0-fill for one-sided rows. When the monoid is
    /// [annihilating](TwoMonoid::annihilating), one-sided rows are
    /// skipped outright (result `0`, pruned) without counting a ⊗ —
    /// the Theorem 6.7 accounting for semirings.
    ///
    /// # Panics
    /// Panics if the two schemas differ.
    fn merge<M: TwoMonoid<Elem = Self::Ann>>(
        self,
        monoid: &M,
        right: Self,
        stats: &mut EngineStats,
    ) -> Self;

    /// The annotation of the nullary tuple `()` (or `0` when the
    /// support is empty). Only meaningful on nullary relations.
    fn nullary_value<M: TwoMonoid<Elem = Self::Ann>>(&self, monoid: &M) -> Self::Ann;

    /// Materialises the rows in ascending key order (diagnostics,
    /// differential tests, and the incremental refold path).
    fn rows(&self) -> Vec<(Tuple, Self::Ann)>;

    /// Point read of one key (in `vars` order).
    fn get(&self, key: &Tuple) -> Option<Self::Ann>;

    /// Point write: `Some(v)` inserts/overwrites, `None` deletes.
    /// Used by the incremental maintainer; backends admit keys with
    /// genuinely new domain values (the columnar layout extends its
    /// dictionary and renumbers, keeping codes value-ordered).
    fn set(&mut self, key: &Tuple, value: Option<Self::Ann>);

    /// Group-range access for the incremental maintainer's dirty
    /// refolds: the annotations of every row whose projection onto the
    /// (strictly ascending) column positions `keep` equals `group`, in
    /// ascending full-key order — **exactly** the ⊕-fold sequence the
    /// batch Rule 1 applies within that group, so a refold from this
    /// iterator reproduces the batch result bit for bit.
    ///
    /// Backends resolve the *leading literal run* of `keep` (the
    /// positions `i` with `keep[i] == i`) with an `O(log n)` range
    /// lookup — a `BTreeMap` range query on the ordered-map oracle, a
    /// binary search over the sorted code matrix on the columnar
    /// layouts — and scan only inside that range. When the projected
    /// column is the least-significant sort key (`keep` is a literal
    /// prefix — the contiguous case) the cost is `O(log n + |group|)`;
    /// a dropped leading column degrades gracefully to a filtered scan
    /// of the rows sharing the remaining literal prefix.
    ///
    /// Only the annotations are returned: the group key is the
    /// caller's own input and the full keys are irrelevant to the
    /// ⊕-fold.
    fn group_rows(&self, keep: &[usize], group: &Tuple) -> Vec<Self::Ann>;

    /// Encodes a key tuple (in `vars` order) into the backend-native
    /// [`Storage::Key`]. Returns `None` when a value lies outside the
    /// backend's dictionary — after [`Storage::prepare_values`] covered
    /// the batch this cannot happen, so the incremental maintainer
    /// treats `None` as a contract violation.
    fn key_of(&self, key: &Tuple) -> Option<Self::Key>;

    /// Projects a native key onto the (strictly ascending) column
    /// positions `keep` — the code-space equivalent of
    /// [`Tuple::project`], allocation-light on the columnar layouts.
    fn project_key(key: &Self::Key, keep: &[usize]) -> Self::Key;

    /// Point read by native key (see [`Storage::get`]).
    fn get_key(&self, key: &Self::Key) -> Option<Self::Ann>;

    /// Point write by native key (see [`Storage::set`]). Unlike `set`,
    /// this never extends the dictionary: native keys are already in
    /// code space, so the write is a pure splice.
    fn set_key(&mut self, key: &Self::Key, value: Option<Self::Ann>);

    /// Group-range access by native group key (see
    /// [`Storage::group_rows`]), skipping the per-probe tuple encode.
    fn group_rows_key(&self, keep: &[usize], group: &Self::Key) -> Vec<Self::Ann>;

    /// Batch-level dictionary extension: admits every value of `values`
    /// into the backend's dictionary **once**, remapping the relation's
    /// code matrix a single time — instead of one extension (and one
    /// full remap) per novel-value [`Storage::set`] call. Returns
    /// `true` iff the dictionary actually grew (the ordered-map oracle
    /// has no dictionary and always returns `false`).
    fn prepare_values(&mut self, values: &[Value]) -> bool;

    /// Approximate resident payload bytes of this relation — keys,
    /// annotations and encoding metadata, excluding the shared value
    /// dictionary. Vector-valued annotation carriers count at their
    /// inline size (heap payloads behind them are not chased), so the
    /// figure is an accounting estimate, not an allocator measurement;
    /// it feeds the serving cache budget/compression-ratio reporting
    /// and the memory-capped bench.
    fn storage_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_monoid::{CountMonoid, ProbMonoid};

    fn rows_u64(rows: &[(&[i64], u64)]) -> Vec<(Tuple, u64)> {
        rows.iter().map(|&(t, k)| (Tuple::ints(t), k)).collect()
    }

    fn both(vars: &[usize], rows: Vec<(Tuple, u64)>) -> (MapRelation<u64>, ColumnarRelation<u64>) {
        let vars: Vec<Var> = vars.iter().map(|&v| Var(v)).collect();
        let m = MapRelation::build_slots(vec![(vars.clone(), rows.clone())]).unwrap();
        let c = ColumnarRelation::build_slots(vec![(vars, rows)]).unwrap();
        (m.into_iter().next().unwrap(), c.into_iter().next().unwrap())
    }

    #[test]
    fn duplicate_rows_rejected_by_every_backend() {
        let rows = rows_u64(&[(&[7], 1), (&[3], 2), (&[7], 3)]);
        let vars = vec![Var(0)];
        let m = MapRelation::build_slots(vec![(vars.clone(), rows.clone())]);
        let c = ColumnarRelation::build_slots(vec![(vars, rows)]);
        let expect = DuplicateRow {
            slot: 0,
            key: Tuple::ints(&[7]),
        };
        assert_eq!(m.unwrap_err(), expect);
        assert_eq!(c.unwrap_err(), expect);
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("map".parse::<Backend>().unwrap(), Backend::Map);
        assert_eq!("columnar".parse::<Backend>().unwrap(), Backend::Columnar);
        assert_eq!(
            "compressed".parse::<Backend>().unwrap(),
            Backend::Compressed
        );
        assert!("btree".parse::<Backend>().is_err());
        assert_eq!(Backend::Columnar.to_string(), "columnar");
        assert_eq!(Backend::Compressed.to_string(), "compressed");
        assert_eq!(Backend::default(), Backend::Columnar);
    }

    #[test]
    fn project_out_agrees_across_backends() {
        let rows = rows_u64(&[(&[1, 10], 2), (&[1, 20], 3), (&[2, 10], 5), (&[3, 30], 7)]);
        for var in [0usize, 1] {
            let (m, c) = both(&[0, 1], rows.clone());
            let mut sm = EngineStats::default();
            let mut sc = EngineStats::default();
            let pm = m.project_out(&CountMonoid, Var(var), &mut sm);
            let pc = c.project_out(&CountMonoid, Var(var), &mut sc);
            assert_eq!(pm.rows(), pc.rows(), "var {var}");
            assert_eq!(sm.add_ops, sc.add_ops);
        }
    }

    #[test]
    fn merge_agrees_across_backends() {
        let left = rows_u64(&[(&[1], 2), (&[2], 3)]);
        let right = rows_u64(&[(&[2], 5), (&[3], 7)]);
        let slots_m = MapRelation::build_slots(vec![
            (vec![Var(0)], left.clone()),
            (vec![Var(0)], right.clone()),
        ])
        .unwrap();
        let slots_c =
            ColumnarRelation::build_slots(vec![(vec![Var(0)], left), (vec![Var(0)], right)])
                .unwrap();
        let mut sm = EngineStats::default();
        let mut sc = EngineStats::default();
        let [lm, rm]: [MapRelation<u64>; 2] = slots_m.try_into().unwrap();
        let [lc, rc]: [ColumnarRelation<u64>; 2] = slots_c.try_into().unwrap();
        let mm = lm.merge(&CountMonoid, rm, &mut sm);
        let mc = lc.merge(&CountMonoid, rc, &mut sc);
        assert_eq!(mm.rows(), mc.rows());
        assert_eq!(sm.mul_ops, sc.mul_ops);
        // Counting is annihilating: only the both-sided row costs a ⊗.
        assert_eq!(sm.mul_ops, 1);
        assert_eq!(mm.rows(), vec![(Tuple::ints(&[2]), 15u64)]);
    }

    #[test]
    fn group_rows_agrees_across_backends_and_scans() {
        // Rows over (v0, v1, v2); groups taken along every projected
        // column, including the non-contiguous (dropped-leading-column)
        // cases, must match a brute-force filter on both backends.
        let rows = rows_u64(&[
            (&[1, 10, 5], 2),
            (&[1, 10, 7], 3),
            (&[1, 20, 5], 5),
            (&[2, 10, 5], 7),
            (&[2, 20, 7], 11),
            (&[3, 10, 7], 13),
        ]);
        let (m, c) = both(&[0, 1, 2], rows.clone());
        for pos in 0..3usize {
            let keep: Vec<usize> = (0..3).filter(|&i| i != pos).collect();
            let groups: std::collections::BTreeSet<Tuple> =
                rows.iter().map(|(t, _)| t.project(&keep)).collect();
            for g in groups {
                let brute: Vec<u64> = rows
                    .iter()
                    .filter(|(t, _)| t.project(&keep) == g)
                    .map(|&(_, k)| k)
                    .collect();
                assert_eq!(m.group_rows(&keep, &g), brute, "map pos {pos} group {g:?}");
                assert_eq!(
                    c.group_rows(&keep, &g),
                    brute,
                    "columnar pos {pos} group {g:?}"
                );
            }
            // A group that cannot exist (value outside the instance).
            let absent = Tuple::ints(&[99, 99]);
            assert!(m.group_rows(&keep, &absent).is_empty());
            assert!(c.group_rows(&keep, &absent).is_empty());
        }
        // Nullary grouping (projecting a unary relation away): every
        // row belongs to the single empty group.
        let (m1, c1) = both(&[4], rows_u64(&[(&[3], 1), (&[1], 2), (&[2], 4)]));
        assert_eq!(m1.group_rows(&[], &Tuple::empty()), vec![2, 4, 1]);
        assert_eq!(c1.group_rows(&[], &Tuple::empty()), vec![2, 4, 1]);
    }

    #[test]
    fn set_admits_novel_values_identically() {
        // Inserting a key whose values are outside the build-time
        // dictionary must work on every backend and leave the rows
        // (and their order) identical.
        let rows: Vec<(Tuple, u64)> = rows_u64(&[(&[2, 5], 1), (&[4, 5], 2)]);
        let (mut m, mut c) = both(&[0, 1], rows);
        for key in [
            Tuple::ints(&[3, 9]),  // one novel value between existing ones
            Tuple::ints(&[0, 5]),  // novel value below the range
            Tuple::ints(&[7, 11]), // novel values above the range
        ] {
            m.set(&key, Some(42));
            c.set(&key, Some(42));
            assert_eq!(m.rows(), c.rows(), "after inserting {key:?}");
            assert_eq!(m.get(&key), Some(42));
            assert_eq!(c.get(&key), Some(42));
        }
        assert_eq!(c.support_size(), 5);
        // group_rows still answers correctly through the extended
        // dictionary.
        assert_eq!(m.group_rows(&[0], &Tuple::ints(&[3])), vec![42]);
        assert_eq!(c.group_rows(&[0], &Tuple::ints(&[3])), vec![42]);
    }

    #[test]
    fn point_access_agrees_across_backends() {
        let rows: Vec<(Tuple, f64)> = vec![(Tuple::ints(&[1]), 0.25), (Tuple::ints(&[3]), 0.5)];
        let mut m = MapRelation::build_slots(vec![(vec![Var(0)], rows.clone())])
            .unwrap()
            .pop()
            .unwrap();
        let mut c = ColumnarRelation::build_slots(vec![(vec![Var(0)], rows)])
            .unwrap()
            .pop()
            .unwrap();
        for rel_get in [m.get(&Tuple::ints(&[3])), c.get(&Tuple::ints(&[3]))] {
            assert_eq!(rel_get, Some(0.5));
        }
        m.set(&Tuple::ints(&[3]), Some(0.75));
        c.set(&Tuple::ints(&[3]), Some(0.75));
        m.set(&Tuple::ints(&[1]), None);
        c.set(&Tuple::ints(&[1]), None);
        assert_eq!(m.rows(), c.rows());
        assert_eq!(m.support_size(), 1);
        assert_eq!(c.support_size(), 1);
        assert_eq!(c.nullary_value(&ProbMonoid), 0.0); // empty () read
    }
}
