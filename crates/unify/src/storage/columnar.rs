//! The columnar storage backend.
//!
//! One relation = one dense row-major matrix of dictionary codes
//! (`Vec<RowCode>`, `len × width`, rows sorted lexicographically and
//! unique) plus a parallel annotation column (`Vec<K>`). The
//! [`ValueDict`] is built once per problem instance and shared by all
//! slots (`Arc`), with codes assigned **in value order**, so code-wise
//! lexicographic comparison equals tuple-wise comparison — the map
//! backend's iteration order — and both backends fold ⊕ in exactly the
//! same sequence (bit-identical floats).
//!
//! * **Rule 1** (`project_out`): when the projected column is the
//!   least-significant sort key, surviving rows stay sorted and groups
//!   are contiguous — a single pass with zero allocation per row. Any
//!   other column re-sorts a scratch matrix of projected rows with a
//!   *stable* argsort (ties keep full-row order, preserving the fold
//!   sequence) before the same grouped fold.
//! * **Rule 2** (`merge`): a linear two-pointer sort-merge outer join
//!   with 0-fill, skipping one-sided rows outright for annihilating
//!   monoids.
//!
//! No `Tuple` is ever materialised on the hot path; decoding happens
//! only in [`Storage::rows`] and the point-access methods used by the
//! incremental maintainer.

use super::{DuplicateRow, OwnedSlot, Storage};
use crate::engine::EngineStats;
use hq_db::{RowCode, Tuple, Value, ValueDict};
use hq_monoid::TwoMonoid;
use hq_query::Var;
use std::cmp::Ordering;
use std::sync::Arc;

/// A K-annotated relation stored as a sorted code matrix plus an
/// annotation column.
///
/// Fields are `pub(super)` so the sharded executor
/// ([`super::ShardedColumnar`]) can partition the matrices without an
/// accessor layer; outside the storage module the layout is opaque.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarRelation<K> {
    pub(super) vars: Vec<Var>,
    /// Row width (`== vars.len()`), kept separately because nullary
    /// relations have `width == 0` but up to one row.
    pub(super) width: usize,
    /// Number of rows (the support size).
    pub(super) len: usize,
    /// The instance-wide value dictionary (shared across slots).
    pub(super) dict: Arc<ValueDict>,
    /// Row-major codes, `len * width` entries, rows sorted ascending.
    pub(super) keys: Vec<RowCode>,
    /// Annotations, parallel to the rows.
    pub(super) anns: Vec<K>,
}

impl<K> ColumnarRelation<K> {
    #[inline]
    pub(super) fn row(&self, i: usize) -> &[RowCode] {
        &self.keys[i * self.width..(i + 1) * self.width]
    }

    /// The shared value dictionary (tests and diagnostics).
    pub fn dict(&self) -> &ValueDict {
        &self.dict
    }

    /// Overwrites the schema labels — pure metadata; the serving
    /// layer's shared (label-free) plan nodes use this to align a
    /// cached relation with the consuming kernel's variable naming.
    pub(crate) fn set_vars(&mut self, vars: Vec<Var>) {
        debug_assert_eq!(vars.len(), self.width);
        self.vars = vars;
    }

    /// Re-expresses the matrix under an extended dictionary:
    /// `translation[old_code] == new_code` must come from
    /// [`ValueDict::extend_with`] on this relation's current
    /// dictionary, so the map is order-preserving and the remapped
    /// rows stay sorted. This is how the serving layer keeps cached
    /// plan nodes warm across a novel-domain-value insert instead of
    /// dropping them: only the code *numbering* moved, not the data.
    pub(crate) fn remap_codes(&mut self, dict: &Arc<ValueDict>, translation: &[RowCode]) {
        debug_assert_eq!(self.dict.len(), translation.len());
        for c in &mut self.keys {
            *c = translation[*c as usize];
        }
        self.dict = Arc::clone(dict);
    }
}

/// Order-preserving 65-bit encoding of a [`Value`] into a `u128`
/// (`Int` sign-flipped below, `Str` tagged above), so the dictionary
/// build sorts branchless integer keys instead of enum comparators.
#[inline]
fn value_key(v: Value) -> u128 {
    match v {
        Value::Int(i) => u128::from(i as u64 ^ (1u64 << 63)),
        Value::Str(s) => (1u128 << 64) | u128::from(s.0),
    }
}

/// Inverse of [`value_key`].
#[inline]
fn key_value(k: u128) -> Value {
    if k >> 64 == 0 {
        Value::Int((k as u64 ^ (1u64 << 63)) as i64)
    } else {
        Value::Str(hq_db::Sym(k as u32))
    }
}

/// Sorts the `(value key, destination)` instance list. Only the key
/// order matters (destinations are distinct and the code-assignment
/// scan groups by key), so a counting sort over the key range is used
/// whenever the domain is dense enough — the common case for
/// dictionary-encodable data — and the comparison sort is the fallback.
fn sort_instances(v: &mut Vec<(u128, u64)>) {
    let Some(&(first, _)) = v.first() else { return };
    let (mut min, mut max) = (first, first);
    for &(k, _) in v.iter() {
        min = min.min(k);
        max = max.max(k);
    }
    let spread = max - min;
    if spread <= (4 * v.len() as u128).max(1 << 20) {
        let mut counts = vec![0u32; spread as usize + 2];
        for &(k, _) in v.iter() {
            counts[(k - min) as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut out = vec![(0u128, 0u64); v.len()];
        for &(k, d) in v.iter() {
            let slot = &mut counts[(k - min) as usize];
            out[*slot as usize] = (k, d);
            *slot += 1;
        }
        *v = out;
    } else {
        v.sort_unstable();
    }
}

/// One slot of input to [`ColumnarRelation::build_slots_borrowed`]:
/// the sorted schema, the written-order → sorted-order column
/// permutation (`None` when they coincide), and borrowed key tuples in
/// *written* column order with owned annotations.
pub type BorrowedSlot<'a, K> = (Vec<Var>, Option<Vec<usize>>, Vec<(&'a Tuple, K)>);

impl<K: Clone + PartialEq + std::fmt::Debug + Send + Sync> ColumnarRelation<K> {
    /// Builds slots directly from borrowed tuples — the fused annotate
    /// fast path: no key tuple is cloned, re-boxed, or re-ordered in
    /// memory; the column permutation is applied while scattering codes.
    ///
    /// # Errors
    /// Returns the first duplicate key found.
    pub fn build_slots_borrowed(
        slots: Vec<BorrowedSlot<'_, K>>,
    ) -> Result<Vec<Self>, DuplicateRow> {
        // One dictionary over every value of the instance: Rule 2 merges
        // rows originating from different slots, so codes must be
        // comparable across slots. Algorithm 1 never invents new values,
        // so the dictionary is closed under the whole run.
        //
        // Scatter encoding: instead of sorting the distinct values and
        // binary-searching every occurrence, sort `(value, destination)`
        // pairs once and assign codes in a single scan — each
        // occurrence's code lands directly in its slot matrix. This is
        // the only value-ordered sort in the build; everything after
        // compares 4-byte codes.
        let mut offsets = Vec::with_capacity(slots.len() + 1);
        let mut total = 0usize;
        for (vars, _, rows) in &slots {
            offsets.push(total);
            total += vars.len() * rows.len();
        }
        offsets.push(total);
        // Sorted rows carry long per-column runs of equal values; a cell
        // equal to the one above it reuses that cell's code, so only run
        // starts become sort instances (`RowCode::MAX` marks the cells
        // to forward-fill — codes are `< len ≤ u32::MAX`, so the
        // sentinel cannot collide).
        let mut instances: Vec<(u128, u64)> = Vec::with_capacity(total);
        for (s, (vars, positions, rows)) in slots.iter().enumerate() {
            let width = vars.len();
            let mut dest = offsets[s] as u64;
            let mut prev: Option<&Tuple> = None;
            for (tuple, _) in rows {
                let vals = tuple.values();
                for j in 0..width {
                    let col = match positions {
                        None => j,
                        Some(p) => p[j],
                    };
                    let v = vals[col];
                    let repeat = prev.is_some_and(|pt| pt.values()[col] == v);
                    if !repeat {
                        instances.push((value_key(v), dest));
                    }
                    dest += 1;
                }
                prev = Some(tuple);
            }
        }
        sort_instances(&mut instances);
        let mut all_keys: Vec<RowCode> = vec![RowCode::MAX; total];
        let mut sorted_values: Vec<Value> = Vec::new();
        let mut prev_key: Option<u128> = None;
        for &(k, dest) in &instances {
            if prev_key != Some(k) {
                sorted_values.push(key_value(k));
                prev_key = Some(k);
            }
            all_keys[dest as usize] = (sorted_values.len() - 1) as RowCode;
        }
        let dict = Arc::new(ValueDict::from_sorted(sorted_values));
        drop(instances);
        // Forward-fill the repeated cells from the row above.
        for (s, (vars, _, rows)) in slots.iter().enumerate() {
            let width = vars.len();
            let start = offsets[s];
            for idx in start + width..start + width * rows.len() {
                if all_keys[idx] == RowCode::MAX {
                    all_keys[idx] = all_keys[idx - width];
                }
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(s, (vars, _, rows))| {
                let width = vars.len();
                let len = rows.len();
                let mut keys = all_keys[offsets[s]..offsets[s + 1]].to_vec();
                let mut anns: Vec<K> = rows.into_iter().map(|(_, k)| k).collect();
                // Rows usually arrive in key order (database iteration is
                // sorted); detect that with one linear scan and argsort
                // by code rows — 4-byte comparisons — only when needed.
                let sorted = (1..len)
                    .all(|i| keys[(i - 1) * width..i * width] <= keys[i * width..(i + 1) * width]);
                if !sorted {
                    let mut order: Vec<u32> = (0..len as u32).collect();
                    order.sort_by(|&a, &b| {
                        let (a, b) = (a as usize, b as usize);
                        keys[a * width..(a + 1) * width].cmp(&keys[b * width..(b + 1) * width])
                    });
                    let mut new_keys = Vec::with_capacity(keys.len());
                    let mut old_anns: Vec<Option<K>> = anns.into_iter().map(Some).collect();
                    let mut new_anns = Vec::with_capacity(old_anns.len());
                    for &i in &order {
                        let i = i as usize;
                        new_keys.extend_from_slice(&keys[i * width..(i + 1) * width]);
                        new_anns.push(old_anns[i].take().expect("each row moved once"));
                    }
                    keys = new_keys;
                    anns = new_anns;
                }
                // Equal adjacent rows = the same fact annotated twice.
                if let Some(i) = (1..len)
                    .find(|&i| keys[(i - 1) * width..i * width] == keys[i * width..(i + 1) * width])
                {
                    return Err(DuplicateRow {
                        slot: s,
                        key: dict.decode(&keys[i * width..(i + 1) * width]),
                    });
                }
                Ok(ColumnarRelation {
                    vars,
                    width,
                    len,
                    dict: Arc::clone(&dict),
                    keys,
                    anns,
                })
            })
            .collect()
    }
}

impl<K: Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static> Storage
    for ColumnarRelation<K>
{
    type Ann = K;
    /// A dictionary code row (`width` codes): comparable across every
    /// relation sharing the instance dictionary, 4 bytes per column,
    /// no boxed values.
    type Key = Vec<RowCode>;

    fn build_slots(slots: Vec<OwnedSlot<K>>) -> Result<Vec<Self>, DuplicateRow> {
        // Split each slot into (owned tuples, owned annotations) so the
        // tuples can be lent to the borrowed build path while the
        // annotations move into it.
        let mut vars_list = Vec::with_capacity(slots.len());
        let mut tuple_store: Vec<Vec<Tuple>> = Vec::with_capacity(slots.len());
        let mut ann_store: Vec<Vec<K>> = Vec::with_capacity(slots.len());
        for (vars, rows) in slots {
            let (ts, ks): (Vec<Tuple>, Vec<K>) = rows.into_iter().unzip();
            vars_list.push(vars);
            tuple_store.push(ts);
            ann_store.push(ks);
        }
        let borrowed: Vec<BorrowedSlot<'_, K>> = vars_list
            .into_iter()
            .zip(tuple_store.iter())
            .zip(ann_store)
            .map(|((vars, ts), ks)| (vars, None, ts.iter().zip(ks).collect()))
            .collect();
        Self::build_slots_borrowed(borrowed)
    }

    fn vars(&self) -> &[Var] {
        &self.vars
    }

    fn support_size(&self) -> usize {
        self.len
    }

    fn project_out<M: TwoMonoid<Elem = K>>(
        self,
        monoid: &M,
        var: Var,
        stats: &mut EngineStats,
    ) -> Self {
        let pos = self
            .vars
            .iter()
            .position(|&v| v == var)
            .expect("projected variable must be in the relation schema");
        let ColumnarRelation {
            mut vars,
            width,
            len: _,
            dict,
            keys,
            anns,
        } = self;
        vars.remove(pos);
        let nw = width - 1;
        let (out_keys, out_anns) = if pos == width - 1 {
            // Dropping the least-significant sort column keeps the
            // remaining prefix sorted: groups are contiguous runs.
            fold_drop_last(monoid, &keys, width, 0, anns, stats)
        } else {
            // General column: project into a scratch matrix, stable
            // argsort (ties keep full-row order, so the per-group fold
            // sequence matches the ordered-map backend), then fold.
            let (scratch, order) = project_scratch(&keys, width, pos);
            let mut anns: Vec<Option<K>> = anns.into_iter().map(Some).collect();
            let mut take = |idx: usize| anns[idx].take().expect("each row folded once");
            fold_sorted_groups(monoid, &scratch, nw, &order, &mut take, stats)
        };
        let out_len = out_anns.len();
        ColumnarRelation {
            vars,
            width: nw,
            len: out_len,
            dict,
            keys: out_keys,
            anns: out_anns,
        }
    }

    fn merge<M: TwoMonoid<Elem = K>>(
        self,
        monoid: &M,
        right: Self,
        stats: &mut EngineStats,
    ) -> Self {
        assert_eq!(
            self.vars, right.vars,
            "Rule 2 merges atoms with identical variable sets"
        );
        debug_assert_eq!(
            *self.dict, *right.dict,
            "merged relations must share one instance dictionary"
        );
        let (out_keys, out_anns) =
            merge_ranges(monoid, &self, &right, 0..self.len, 0..right.len, stats);
        let len = out_anns.len();
        ColumnarRelation {
            vars: self.vars,
            width: self.width,
            len,
            dict: self.dict,
            keys: out_keys,
            anns: out_anns,
        }
    }

    fn nullary_value<M: TwoMonoid<Elem = K>>(&self, monoid: &M) -> K {
        if self.width == 0 && self.len > 0 {
            debug_assert_eq!(self.len, 1, "nullary support is at most one row");
            self.anns[0].clone()
        } else {
            monoid.zero()
        }
    }

    fn rows(&self) -> Vec<(Tuple, K)> {
        (0..self.len)
            .map(|i| (self.dict.decode(self.row(i)), self.anns[i].clone()))
            .collect()
    }

    fn get(&self, key: &Tuple) -> Option<K> {
        let mut codes = Vec::with_capacity(self.width);
        if !self.dict.encode_into(key, &mut codes) {
            return None; // value outside the instance: cannot be stored
        }
        self.find(&codes).ok().map(|i| self.anns[i].clone())
    }

    fn set(&mut self, key: &Tuple, value: Option<K>) {
        let mut codes = Vec::with_capacity(self.width);
        if !self.dict.encode_into(key, &mut codes) {
            if value.is_none() {
                return; // deleting a key that cannot exist: no-op
            }
            // A genuinely new domain value. Codes are assigned in value
            // order (load-bearing: code-wise comparison must equal
            // value-wise comparison so fold sequences match the batch
            // engine bit for bit), so admitting the value renumbers:
            // extend the dictionary and remap this relation's matrix
            // through the old→new translation. `O(len · width)`, the
            // same order as the splice below, and paid only on
            // novel-value inserts.
            let (dict, translation) = self.dict.extend_with(key.values().iter().copied());
            for c in &mut self.keys {
                *c = translation[*c as usize];
            }
            self.dict = Arc::new(dict);
            codes.clear();
            let admitted = self.dict.encode_into(key, &mut codes);
            debug_assert!(admitted, "extended dictionary must cover the key");
        }
        self.set_key(&codes, value);
    }

    fn group_rows(&self, keep: &[usize], group: &Tuple) -> Vec<K> {
        debug_assert_eq!(keep.len(), group.arity());
        let mut codes = Vec::with_capacity(group.arity());
        if !self.dict.encode_into(group, &mut codes) {
            return Vec::new(); // a value outside the dictionary cannot be stored
        }
        self.group_rows_key(keep, &codes)
    }

    fn key_of(&self, key: &Tuple) -> Option<Vec<RowCode>> {
        let mut codes = Vec::with_capacity(key.arity());
        if self.dict.encode_into(key, &mut codes) {
            Some(codes)
        } else {
            None
        }
    }

    fn project_key(key: &Vec<RowCode>, keep: &[usize]) -> Vec<RowCode> {
        keep.iter().map(|&p| key[p]).collect()
    }

    fn get_key(&self, key: &Vec<RowCode>) -> Option<K> {
        self.find(key).ok().map(|i| self.anns[i].clone())
    }

    fn set_key(&mut self, codes: &Vec<RowCode>, value: Option<K>) {
        match (self.find(codes), value) {
            (Ok(i), Some(v)) => self.anns[i] = v,
            (Ok(i), None) => {
                let w = self.width;
                self.keys.drain(i * w..(i + 1) * w);
                self.anns.remove(i);
                self.len -= 1;
            }
            (Err(i), Some(v)) => {
                let w = self.width;
                self.keys.splice(i * w..i * w, codes.iter().copied());
                self.anns.insert(i, v);
                self.len += 1;
            }
            (Err(_), None) => {}
        }
    }

    fn group_rows_key(&self, keep: &[usize], codes: &Vec<RowCode>) -> Vec<K> {
        debug_assert_eq!(keep.len(), codes.len());
        debug_assert!(keep.windows(2).all(|w| w[0] < w[1]));
        // The leading literal run of `keep` is a sort-key prefix: its
        // row range is found by binary search (the group-offset index
        // is the sorted matrix itself), and only that range is scanned
        // for the remaining column constraints. When the projection
        // drops the last column the range *is* the group.
        let lead = keep
            .iter()
            .enumerate()
            .take_while(|&(i, &p)| i == p)
            .count();
        let (lo, hi) = self.prefix_range(&codes[..lead]);
        (lo..hi)
            .filter(|&i| {
                let row = self.row(i);
                keep[lead..]
                    .iter()
                    .zip(&codes[lead..])
                    .all(|(&p, &c)| row[p] == c)
            })
            .map(|i| self.anns[i].clone())
            .collect()
    }

    fn prepare_values(&mut self, values: &[Value]) -> bool {
        if values.iter().all(|v| self.dict.code(*v).is_some()) {
            return false; // dictionary already covers the batch
        }
        // One extension and one matrix remap for the whole batch —
        // versus one of each per novel-value `set` call. Codes stay
        // value-ordered (the bit-identity invariant), and because the
        // extension is a deterministic function of (dictionary content,
        // value set), applying it to every relation of an instance
        // keeps their dictionary *contents* aligned, which is what
        // makes code keys comparable across relations.
        let (dict, translation) = self.dict.extend_with(values.iter().copied());
        for c in &mut self.keys {
            *c = translation[*c as usize];
        }
        self.dict = Arc::new(dict);
        true
    }

    fn storage_bytes(&self) -> usize {
        self.vars.len() * std::mem::size_of::<Var>()
            + self.keys.len() * std::mem::size_of::<RowCode>()
            + self.anns.len() * std::mem::size_of::<K>()
    }
}

/// Rule 1, least-significant-column case: the grouped ⊕-fold over the
/// contiguous row range `base .. base + anns.len()` of a sorted matrix
/// (annotations arrive already sliced to that range). Zero groups are
/// pruned at flush (Lemma 6.6); one ⊕ is counted per combine into an
/// existing group.
///
/// The fold is run-structured: each group's run boundary is found
/// first by prefix comparison, then the whole contiguous annotation
/// run feeds [`TwoMonoid::fold_assign`] — whose default loops
/// `add_assign` in the same left-to-right order as a one-at-a-time
/// fold (bit-identical by construction), and whose
/// [`hq_monoid::DenseFold`] overrides (prob, count, real) execute the
/// same per-element expression as a tight auto-vectorisable slice
/// loop.
///
/// This single implementation serves both the sequential projection
/// (full range) and the sharded executor (one call per shard, with
/// shard boundaries on group boundaries so no group straddles a
/// range) — which is what makes sharded output provably identical to
/// sequential output.
pub(super) fn fold_drop_last<M, K>(
    monoid: &M,
    keys: &[RowCode],
    width: usize,
    base: usize,
    mut anns: Vec<K>,
    stats: &mut EngineStats,
) -> (Vec<RowCode>, Vec<K>)
where
    M: TwoMonoid<Elem = K>,
    K: Clone + PartialEq + std::fmt::Debug,
{
    let nw = width - 1;
    let len = anns.len();
    let mut out_keys: Vec<RowCode> = Vec::with_capacity(len * nw);
    let mut out_anns: Vec<K> = Vec::with_capacity(len.min(16));
    let mut start = 0usize;
    while start < len {
        let g = base + start;
        let prefix = &keys[g * width..g * width + nw];
        let mut end = start + 1;
        while end < len {
            let i = base + end;
            if keys[i * width..i * width + nw] != *prefix {
                break;
            }
            end += 1;
        }
        // Move the group leader out (a zero placeholder is never read
        // again) and fold the rest of the run densely onto it.
        let mut acc = std::mem::replace(&mut anns[start], monoid.zero());
        monoid.fold_assign(&mut acc, &anns[start + 1..end]);
        stats.add_ops += (end - start - 1) as u64;
        if !monoid.is_zero(&acc) {
            out_keys.extend_from_slice(prefix);
            out_anns.push(acc);
        }
        start = end;
    }
    (out_keys, out_anns)
}

/// Rule 1, general-column case, step 1: project column `pos` away into
/// a scratch matrix and stable-argsort the projected rows (ties keep
/// full-row order, preserving the fold sequence of the ordered-map
/// backend). Returns `(scratch, order)`.
pub(super) fn project_scratch(
    keys: &[RowCode],
    width: usize,
    pos: usize,
) -> (Vec<RowCode>, Vec<u32>) {
    let scratch = project_scratch_matrix(keys, width, pos);
    let nw = width - 1;
    let len = keys.len() / width;
    let mut order: Vec<u32> = (0..len as u32).collect();
    order.sort_by(|&a, &b| scratch_row_cmp(&scratch, nw, a, b));
    (scratch, order)
}

/// Builds only the projected scratch matrix of [`project_scratch`],
/// leaving the argsort to the caller — the sharded executor sorts it
/// in parallel over the worker pool instead.
pub(super) fn project_scratch_matrix(keys: &[RowCode], width: usize, pos: usize) -> Vec<RowCode> {
    debug_assert!(width >= 2, "general column implies a non-last column");
    let len = keys.len() / width;
    let nw = width - 1;
    let keep: Vec<usize> = (0..width).filter(|&i| i != pos).collect();
    let mut scratch: Vec<RowCode> = Vec::with_capacity(len * nw);
    for i in 0..len {
        let row = &keys[i * width..(i + 1) * width];
        for &k in &keep {
            scratch.push(row[k]);
        }
    }
    scratch
}

/// The argsort comparison of [`project_scratch`]: scratch rows `a`
/// and `b` by their full `nw`-column prefix. Equal rows compare
/// `Equal`, and every sort over this comparator must be *stable* so
/// ties keep ascending original-row order — the fold sequence of the
/// ordered-map backend.
pub(super) fn scratch_row_cmp(
    scratch: &[RowCode],
    nw: usize,
    a: u32,
    b: u32,
) -> std::cmp::Ordering {
    let (a, b) = (a as usize, b as usize);
    scratch[a * nw..(a + 1) * nw].cmp(&scratch[b * nw..(b + 1) * nw])
}

/// Rule 1, general-column case, step 2: the grouped ⊕-fold over a
/// contiguous slice of the argsorted `order` (groups are contiguous in
/// `order`, so a slice whose boundaries fall on group boundaries folds
/// exactly the groups it contains). `take(idx)` surrenders the
/// annotation of input row `idx` — a move for the sequential caller, a
/// clone from a shared slice for shard workers.
pub(super) fn fold_sorted_groups<M, K>(
    monoid: &M,
    scratch: &[RowCode],
    nw: usize,
    order: &[u32],
    take: &mut dyn FnMut(usize) -> K,
    stats: &mut EngineStats,
) -> (Vec<RowCode>, Vec<K>)
where
    M: TwoMonoid<Elem = K>,
    K: Clone + PartialEq + std::fmt::Debug,
{
    let mut out_keys: Vec<RowCode> = Vec::with_capacity(order.len() * nw);
    let mut out_anns: Vec<K> = Vec::with_capacity(order.len().min(16));
    let mut current: Option<(usize, K)> = None; // (scratch row, acc)
    macro_rules! flush {
        ($group:expr, $acc:expr) => {
            if !monoid.is_zero(&$acc) {
                out_keys.extend_from_slice($group);
                out_anns.push($acc);
            }
        };
    }
    for &idx in order {
        let idx = idx as usize;
        let key = &scratch[idx * nw..(idx + 1) * nw];
        let ann = take(idx);
        match current {
            Some((g, ref mut acc)) if scratch[g * nw..g * nw + nw] == *key => {
                stats.add_ops += 1;
                monoid.add_assign(acc, &ann);
            }
            _ => {
                if let Some((g, acc)) = current.take() {
                    flush!(&scratch[g * nw..g * nw + nw], acc);
                }
                current = Some((idx, ann));
            }
        }
    }
    if let Some((g, acc)) = current.take() {
        flush!(&scratch[g * nw..g * nw + nw], acc);
    }
    (out_keys, out_anns)
}

/// Rule 2: the linear two-pointer sort-merge outer join over one
/// co-partitioned key range of both sides (0-fill for one-sided rows;
/// one-sided rows of annihilating monoids are skipped outright without
/// counting a ⊗ — the Theorem 6.7 accounting for semirings).
///
/// The sequential merge is the full-range call; the sharded executor
/// calls it once per shard with both sides partitioned at the same
/// boundary keys, so equal keys always meet in the same shard and the
/// concatenated shard outputs equal the sequential output exactly.
pub(super) fn merge_ranges<M, K>(
    monoid: &M,
    left: &ColumnarRelation<K>,
    right: &ColumnarRelation<K>,
    li: std::ops::Range<usize>,
    ri: std::ops::Range<usize>,
    stats: &mut EngineStats,
) -> (Vec<RowCode>, Vec<K>)
where
    M: TwoMonoid<Elem = K>,
    K: Clone + PartialEq + std::fmt::Debug,
{
    let zero = monoid.zero();
    let annihilating = monoid.annihilating();
    let rows = li.len().max(ri.len());
    let mut out_keys: Vec<RowCode> = Vec::with_capacity(rows * left.width);
    let mut out_anns: Vec<K> = Vec::with_capacity(rows);
    let (mut i, mut j) = (li.start, ri.start);
    let mut push = |row: &[RowCode], v: K| {
        if !monoid.is_zero(&v) {
            out_keys.extend_from_slice(row);
            out_anns.push(v);
        }
    };
    // Linear sort-merge outer join over the union of supports.
    while i < li.end && j < ri.end {
        let (lr, rr) = (left.row(i), right.row(j));
        match lr.cmp(rr) {
            Ordering::Equal => {
                stats.mul_ops += 1;
                push(lr, monoid.mul(&left.anns[i], &right.anns[j]));
                i += 1;
                j += 1;
            }
            Ordering::Less => {
                if !annihilating {
                    stats.mul_ops += 1;
                    push(lr, monoid.mul(&left.anns[i], &zero));
                }
                i += 1;
            }
            Ordering::Greater => {
                if !annihilating {
                    stats.mul_ops += 1;
                    push(rr, monoid.mul(&zero, &right.anns[j]));
                }
                j += 1;
            }
        }
    }
    if !annihilating {
        while i < li.end {
            stats.mul_ops += 1;
            push(left.row(i), monoid.mul(&left.anns[i], &zero));
            i += 1;
        }
        while j < ri.end {
            stats.mul_ops += 1;
            push(right.row(j), monoid.mul(&zero, &right.anns[j]));
            j += 1;
        }
    }
    (out_keys, out_anns)
}

impl<K> ColumnarRelation<K> {
    /// The contiguous row range whose leading columns equal `prefix`
    /// (two binary searches over the sorted matrix — the group-offset
    /// lookup of the incremental refold path). The empty prefix spans
    /// every row.
    fn prefix_range(&self, prefix: &[RowCode]) -> (usize, usize) {
        let w = self.width;
        if prefix.is_empty() || w == 0 {
            return (0, self.len);
        }
        debug_assert!(prefix.len() <= w);
        let bound = |strict: bool| -> usize {
            let (mut lo, mut hi) = (0usize, self.len);
            while lo < hi {
                let mid = (lo + hi) / 2;
                let cell = &self.keys[mid * w..mid * w + prefix.len()];
                let below = if strict {
                    cell <= prefix
                } else {
                    cell < prefix
                };
                if below {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        (bound(false), bound(true))
    }

    /// Binary search for a code row: `Ok(row)` if present, `Err(row)`
    /// with the insertion position otherwise.
    fn find(&self, codes: &[RowCode]) -> Result<usize, usize> {
        let w = self.width;
        if w == 0 {
            return if self.len > 0 { Ok(0) } else { Err(0) };
        }
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.keys[mid * w..(mid + 1) * w].cmp(codes) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_monoid::{CountMonoid, ProbMonoid};

    fn rel(vars: &[usize], rows: &[(&[i64], u64)]) -> ColumnarRelation<u64> {
        ColumnarRelation::build_slots(vec![(
            vars.iter().map(|&v| Var(v)).collect(),
            rows.iter().map(|&(t, k)| (Tuple::ints(t), k)).collect(),
        )])
        .unwrap()
        .pop()
        .unwrap()
    }

    #[test]
    fn contiguous_projection_single_pass() {
        // Dropping the last sort column: groups are adjacent runs.
        let r = rel(&[0, 1], &[(&[1, 10], 2), (&[1, 20], 3), (&[2, 5], 7)]);
        let mut stats = EngineStats::default();
        let out = r.project_out(&CountMonoid, Var(1), &mut stats);
        assert_eq!(
            out.rows(),
            vec![(Tuple::ints(&[1]), 5u64), (Tuple::ints(&[2]), 7u64)]
        );
        assert_eq!(stats.add_ops, 1);
        assert_eq!(out.vars(), &[Var(0)]);
    }

    #[test]
    fn reordering_projection_stays_sorted_and_stable() {
        // Dropping column 0 breaks the order: 1,10 / 1,20 / 2,5 project
        // to 10 / 20 / 5 which must re-sort to 5 / 10 / 20.
        let r = rel(&[0, 1], &[(&[1, 10], 2), (&[1, 20], 3), (&[2, 5], 7)]);
        let mut stats = EngineStats::default();
        let out = r.project_out(&CountMonoid, Var(0), &mut stats);
        assert_eq!(
            out.rows(),
            vec![
                (Tuple::ints(&[5]), 7u64),
                (Tuple::ints(&[10]), 2),
                (Tuple::ints(&[20]), 3),
            ]
        );
        assert_eq!(stats.add_ops, 0);
    }

    #[test]
    fn projection_to_nullary_folds_everything() {
        let r = rel(&[3], &[(&[1], 2), (&[2], 3), (&[9], 4)]);
        let mut stats = EngineStats::default();
        let out = r.project_out(&CountMonoid, Var(3), &mut stats);
        assert_eq!(out.support_size(), 1);
        assert_eq!(out.nullary_value(&CountMonoid), 9);
        assert_eq!(stats.add_ops, 2);
        // And an empty relation folds to empty support.
        let empty = rel(&[3], &[]);
        let out = empty.project_out(&CountMonoid, Var(3), &mut EngineStats::default());
        assert_eq!(out.support_size(), 0);
        assert_eq!(out.nullary_value(&CountMonoid), 0);
    }

    #[test]
    fn point_updates_keep_rows_sorted() {
        let mut r = ColumnarRelation::build_slots(vec![(
            vec![Var(0)],
            vec![
                (Tuple::ints(&[1]), 0.5f64),
                (Tuple::ints(&[2]), 0.25),
                (Tuple::ints(&[3]), 0.75),
            ],
        )])
        .unwrap()
        .pop()
        .unwrap();
        r.set(&Tuple::ints(&[2]), None);
        assert_eq!(r.get(&Tuple::ints(&[2])), None);
        r.set(&Tuple::ints(&[2]), Some(0.9));
        assert_eq!(r.get(&Tuple::ints(&[2])), Some(0.9));
        let keys: Vec<Tuple> = r.rows().into_iter().map(|(t, _)| t).collect();
        assert_eq!(
            keys,
            vec![Tuple::ints(&[1]), Tuple::ints(&[2]), Tuple::ints(&[3])]
        );
        // Deleting a key whose values are outside the dictionary is a
        // no-op rather than an error.
        r.set(&Tuple::ints(&[77]), None);
        assert_eq!(r.support_size(), 3);
    }

    #[test]
    fn zero_prune_uses_monoid_predicate() {
        let r = ColumnarRelation::build_slots(vec![(
            vec![Var(0), Var(1)],
            vec![
                (Tuple::ints(&[1, 1]), 0.5f64),
                (Tuple::ints(&[1, 2]), -0.5),
                (Tuple::ints(&[2, 1]), -0.0),
            ],
        )])
        .unwrap()
        .pop()
        .unwrap();
        let mut stats = EngineStats::default();
        let out = r.project_out(&ProbMonoid, Var(1), &mut stats);
        // Group 2's fold is -0.0 → pruned; group 1 is non-zero.
        assert_eq!(out.support_size(), 1);
    }
}
