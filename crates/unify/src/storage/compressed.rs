//! The compressed columnar storage backend.
//!
//! One relation = a sequence of fixed-size **blocks** (up to
//! [`BLOCK_ROWS`] sorted rows each). Every block carries a small header
//! (row count plus the first and last row — the per-block min/max,
//! since rows are sorted) and stores each code column under the
//! cheapest of three lightweight encodings:
//!
//! * **RLE** — `(code, run length)` pairs; wins on low-cardinality
//!   grouped prefix columns;
//! * **FOR** — frame-of-reference bit-packing (`min` + fixed-width
//!   packed deltas from it); wins on general columns with a narrow
//!   value range;
//! * **Delta** — first value + bit-packed consecutive deltas; wins on
//!   sorted (non-decreasing) key columns.
//!
//! Annotations are dictionary-compressed per block when few distinct
//! values repeat (compared with [`CompressedAnn::exact_eq`], *not*
//! `PartialEq` — `-0.0` and `0.0` must stay distinct for bit-identity)
//! and stored dense otherwise, so an all-distinct column degrades to
//! the dense layout instead of blowing up.
//!
//! The Rule 1 fold and Rule 2 merge kernels stream block-decoded runs
//! through a small reusable scratch buffer — at no point is a full
//! decompressed column materialised. Block min/max headers let point
//! and group lookups binary-search straight to the right block, and
//! let the annihilating-monoid merge skip non-overlapping blocks
//! without decoding them. All ⊕/⊗ applications happen in exactly the
//! order of the dense columnar backend, so results (including floats)
//! and [`EngineStats`] are bit-identical — the property the
//! differential suites pin down.

use super::columnar::ColumnarRelation;
use super::{DuplicateRow, OwnedSlot, Storage};
use crate::engine::EngineStats;
use hq_db::{RowCode, Tuple, Value, ValueDict};
use hq_monoid::TwoMonoid;
use hq_query::Var;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Rows per block: large enough that header and per-block dispatch
/// costs amortise away, small enough that one decoded block (keys +
/// annotations) stays cache-resident scratch.
pub(crate) const BLOCK_ROWS: usize = 4096;

/// A point edit rewrites its block; blocks that grow past twice the
/// nominal size are split back into [`BLOCK_ROWS`] chunks.
const SPLIT_ROWS: usize = 2 * BLOCK_ROWS;

/// Maximum distinct annotation values per block before the annotation
/// dictionary gives up and stores the column dense.
const DICT_ANN_MAX: usize = 16;

/// How many input blocks are decoded, projected and sorted together
/// into one run by the general (non-last-column) projection before the
/// streaming k-way merge; bounds transient scratch to
/// `RUN_BLOCKS × BLOCK_ROWS` rows.
const RUN_BLOCKS: usize = 16;

/// Annotation carriers the compressed tier can block-encode.
///
/// [`CompressedAnn::exact_eq`] must be *representation* equality: two
/// values may only be deduplicated into one dictionary slot if they
/// are interchangeable bit for bit under every monoid operation.
/// `PartialEq` is not enough — IEEE `-0.0 == 0.0`, yet folding with
/// one instead of the other changes downstream sign bits and breaks
/// the cross-backend bit-identity bar, so `f64` compares `to_bits`.
pub trait CompressedAnn: Sized {
    /// Representation equality (see the trait docs).
    fn exact_eq(&self, other: &Self) -> bool;

    /// Whether the carrier has a byte serialisation, making relations
    /// over it eligible for the serving layer's spill-on-evict path.
    const SPILLABLE: bool = false;

    /// Appends the carrier's byte serialisation (little-endian,
    /// fixed-width for the provided impls). Only called when
    /// [`CompressedAnn::SPILLABLE`] is `true`.
    fn write_bytes(&self, _out: &mut Vec<u8>) {
        unreachable!("annotation carrier is not spillable")
    }

    /// Reads one carrier back from the cursor, advancing it. Returns
    /// `None` on malformed input (and always for non-spillable
    /// carriers).
    fn read_bytes(_input: &mut &[u8]) -> Option<Self> {
        None
    }
}

impl CompressedAnn for f64 {
    fn exact_eq(&self, other: &Self) -> bool {
        self.to_bits() == other.to_bits()
    }
    const SPILLABLE: bool = true;
    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_bytes(input: &mut &[u8]) -> Option<Self> {
        let (head, rest) = input.split_first_chunk::<8>()?;
        *input = rest;
        Some(f64::from_le_bytes(*head))
    }
}

impl CompressedAnn for u64 {
    fn exact_eq(&self, other: &Self) -> bool {
        self == other
    }
    const SPILLABLE: bool = true;
    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_bytes(input: &mut &[u8]) -> Option<Self> {
        let (head, rest) = input.split_first_chunk::<8>()?;
        *input = rest;
        Some(u64::from_le_bytes(*head))
    }
}

impl CompressedAnn for i64 {
    fn exact_eq(&self, other: &Self) -> bool {
        self == other
    }
    const SPILLABLE: bool = true;
    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_bytes(input: &mut &[u8]) -> Option<Self> {
        let (head, rest) = input.split_first_chunk::<8>()?;
        *input = rest;
        Some(i64::from_le_bytes(*head))
    }
}

impl CompressedAnn for u32 {
    fn exact_eq(&self, other: &Self) -> bool {
        self == other
    }
    const SPILLABLE: bool = true;
    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_bytes(input: &mut &[u8]) -> Option<Self> {
        let (head, rest) = input.split_first_chunk::<4>()?;
        *input = rest;
        Some(u32::from_le_bytes(*head))
    }
}

impl CompressedAnn for bool {
    fn exact_eq(&self, other: &Self) -> bool {
        self == other
    }
    const SPILLABLE: bool = true;
    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn read_bytes(input: &mut &[u8]) -> Option<Self> {
        let (&b, rest) = input.split_first()?;
        *input = rest;
        match b {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

// Exact rationals: `==` is true value equality on a canonical
// representation, so it is representation equality too.
impl CompressedAnn for hq_arith::Rational {
    fn exact_eq(&self, other: &Self) -> bool {
        self == other
    }
}

impl CompressedAnn for hq_monoid::BudgetVec {
    fn exact_eq(&self, other: &Self) -> bool {
        self == other
    }
}

impl CompressedAnn for hq_monoid::SatVec {
    fn exact_eq(&self, other: &Self) -> bool {
        self == other
    }
}

impl CompressedAnn for hq_monoid::WitnessVec {
    fn exact_eq(&self, other: &Self) -> bool {
        self == other
    }
}

impl CompressedAnn for hq_monoid::Prov {
    fn exact_eq(&self, other: &Self) -> bool {
        self == other
    }
}

// ---------------------------------------------------------------------------
// Bit-packing primitives
// ---------------------------------------------------------------------------

/// Bits needed to store values in `0..=max` (0 for `max == 0`).
#[inline]
fn bits_for(max: u32) -> u8 {
    (32 - max.leading_zeros()) as u8
}

/// `u64` words needed to pack `count` values of `bits` bits each.
#[inline]
fn packed_words(count: usize, bits: u8) -> usize {
    if bits == 0 {
        0
    } else {
        (count * bits as usize).div_ceil(64)
    }
}

/// Packs `count` values (each `< 2^bits`, `bits ≤ 32`) little-endian
/// across consecutive `u64` words, values straddling word boundaries.
/// The bit offset runs incrementally — no per-value multiply/divide.
fn pack_values(values: impl Iterator<Item = u32>, count: usize, bits: u8) -> Vec<u64> {
    let mut out = vec![0u64; packed_words(count, bits)];
    if bits == 0 {
        return out;
    }
    let bits = bits as usize;
    let (mut w, mut off) = (0usize, 0usize);
    for v in values {
        out[w] |= u64::from(v) << off;
        if off + bits > 64 {
            out[w + 1] |= u64::from(v) >> (64 - off);
        }
        off += bits;
        if off >= 64 {
            off -= 64;
            w += 1;
        }
    }
    out
}

/// Streams every packed value into `f`, with the same incremental bit
/// offset as [`pack_values`] — the bulk-decode counterpart of the
/// random-access [`unpack_value`].
#[inline]
fn unpack_each(packed: &[u64], bits: u8, count: usize, mut f: impl FnMut(u32)) {
    if bits == 0 {
        for _ in 0..count {
            f(0);
        }
        return;
    }
    let bits = bits as usize;
    let mask = (1u64 << bits) - 1;
    let (mut w, mut off) = (0usize, 0usize);
    for _ in 0..count {
        let mut v = packed[w] >> off;
        if off + bits > 64 {
            v |= packed[w + 1] << (64 - off);
        }
        f((v & mask) as u32);
        off += bits;
        if off >= 64 {
            off -= 64;
            w += 1;
        }
    }
}

/// Reads value `i` back out of a [`pack_values`] buffer.
#[inline]
fn unpack_value(packed: &[u64], bits: u8, i: usize) -> u32 {
    if bits == 0 {
        return 0;
    }
    let bits = bits as usize;
    let bit = i * bits;
    let (w, off) = (bit / 64, bit % 64);
    let mut v = packed[w] >> off;
    if off + bits > 64 {
        v |= packed[w + 1] << (64 - off);
    }
    (v & ((1u64 << bits) - 1)) as u32
}

// ---------------------------------------------------------------------------
// Column and annotation encodings
// ---------------------------------------------------------------------------

/// One encoded code column of one block (see the module docs for when
/// each variant wins). The encoder picks the smallest serialised
/// footprint, breaking ties RLE < Delta < FOR (deterministic layout).
#[derive(Debug, Clone, PartialEq)]
enum ColEnc {
    /// `(code, run length)` pairs covering the block top to bottom.
    Rle(Vec<(RowCode, u32)>),
    /// Frame-of-reference: `min` plus bit-packed `code - min`.
    For {
        min: RowCode,
        bits: u8,
        packed: Vec<u64>,
    },
    /// Sorted column: `first` plus bit-packed consecutive deltas
    /// (`rows - 1` of them).
    Delta {
        first: RowCode,
        bits: u8,
        packed: Vec<u64>,
    },
}

/// Encodes one column of `col.len()` codes (non-empty).
#[cfg(test)]
fn encode_col(col: &[RowCode]) -> ColEnc {
    encode_col_iter(col.iter().copied(), col.len())
}

/// Encodes one column streamed from a (re-startable) iterator of `n`
/// codes: one stats pass picks the smallest encoding, one build pass
/// produces it. Callers pass strided slice iterators directly, so no
/// gather buffer is ever materialised.
fn encode_col_iter<I>(it: I, n: usize) -> ColEnc
where
    I: Iterator<Item = RowCode> + Clone,
{
    debug_assert!(n > 0);
    let mut stats_it = it.clone();
    let first = stats_it.next().expect("encode_col_iter: non-empty column");
    let (mut min, mut max) = (first, first);
    let mut runs = 1usize;
    let mut sorted = true;
    let mut max_delta = 0u32;
    let mut prev = first;
    for b in stats_it {
        if b != prev {
            runs += 1;
        }
        if b < prev {
            sorted = false;
        } else {
            max_delta = max_delta.max(b - prev);
        }
        min = min.min(b);
        max = max.max(b);
        prev = b;
    }
    let rle_bytes = runs * 8;
    let for_bits = bits_for(max - min);
    let for_bytes = 8 + packed_words(n, for_bits) * 8;
    let delta = sorted.then(|| {
        let bits = bits_for(max_delta);
        (bits, 8 + packed_words(n - 1, bits) * 8)
    });
    let delta_bytes = delta.map_or(usize::MAX, |(_, b)| b);
    if rle_bytes <= for_bytes && rle_bytes <= delta_bytes {
        let mut pairs = Vec::with_capacity(runs);
        let mut cur = first;
        let mut run = 0u32;
        for c in it {
            if c == cur {
                run += 1;
            } else {
                pairs.push((cur, run));
                cur = c;
                run = 1;
            }
        }
        pairs.push((cur, run));
        ColEnc::Rle(pairs)
    } else if delta_bytes <= for_bytes {
        let (bits, _) = delta.expect("delta chosen only when the column is sorted");
        let mut prev = first;
        let deltas = it.skip(1).map(move |c| {
            let d = c - prev;
            prev = c;
            d
        });
        ColEnc::Delta {
            first,
            bits,
            packed: pack_values(deltas, n - 1, bits),
        }
    } else {
        ColEnc::For {
            min,
            bits: for_bits,
            packed: pack_values(it.map(|c| c - min), n, for_bits),
        }
    }
}

/// Unpacks `out.len()` values into the slice, adding `base` to each —
/// the bulk-decode fast path: sequential writes through `iter_mut`,
/// no per-value capacity or bounds checks.
#[inline]
fn unpack_slice(packed: &[u64], bits: u8, base: u32, out: &mut [RowCode]) {
    if bits == 0 {
        out.fill(base);
        return;
    }
    let bits = bits as usize;
    let mask = (1u64 << bits) - 1;
    let (mut w, mut off) = (0usize, 0usize);
    for slot in out.iter_mut() {
        let mut v = packed[w] >> off;
        if off + bits > 64 {
            v |= packed[w + 1] << (64 - off);
        }
        *slot = base + (v & mask) as u32;
        off += bits;
        if off >= 64 {
            off -= 64;
            w += 1;
        }
    }
}

/// Decodes a column back into `out` (appending `rows` codes).
fn decode_col(enc: &ColEnc, rows: usize, out: &mut Vec<RowCode>) {
    let start = out.len();
    out.resize(start + rows, 0);
    let dst = &mut out[start..];
    match enc {
        ColEnc::Rle(pairs) => {
            let mut i = 0usize;
            for &(code, run) in pairs {
                dst[i..i + run as usize].fill(code);
                i += run as usize;
            }
        }
        ColEnc::For { min, bits, packed } => {
            unpack_slice(packed, *bits, *min, dst);
        }
        ColEnc::Delta {
            first,
            bits,
            packed,
        } => {
            dst[0] = *first;
            let mut v = *first;
            let bits_n = *bits as usize;
            if bits_n == 0 {
                dst[1..].fill(v);
            } else {
                let mask = (1u64 << bits_n) - 1;
                let (mut w, mut off) = (0usize, 0usize);
                for slot in dst[1..].iter_mut() {
                    let mut d = packed[w] >> off;
                    if off + bits_n > 64 {
                        d |= packed[w + 1] << (64 - off);
                    }
                    v += (d & mask) as u32;
                    *slot = v;
                    off += bits_n;
                    if off >= 64 {
                        off -= 64;
                        w += 1;
                    }
                }
            }
        }
    }
}

/// Decodes a set of columns row-major into `out` (replacing its
/// contents): each column streams into its own scratch vector, then
/// one sequential-write pass interleaves them — faster than strided
/// per-column scatter.
fn decode_cols_interleaved(cols: &[ColEnc], rows: usize, out: &mut Vec<RowCode>) {
    out.clear();
    let width = cols.len();
    if width == 0 {
        return;
    }
    if width == 1 {
        decode_col(&cols[0], rows, out);
        return;
    }
    let bufs: Vec<Vec<RowCode>> = cols
        .iter()
        .map(|enc| {
            let mut b = Vec::with_capacity(rows);
            decode_col(enc, rows, &mut b);
            b
        })
        .collect();
    out.resize(rows * width, 0);
    if let [a, b] = bufs.as_slice() {
        for ((o, &x), &y) in out.chunks_exact_mut(2).zip(a).zip(b) {
            o[0] = x;
            o[1] = y;
        }
    } else {
        for (i, o) in out.chunks_exact_mut(width).enumerate() {
            for (slot, b) in o.iter_mut().zip(&bufs) {
                *slot = b[i];
            }
        }
    }
}

/// Serialised payload bytes of one column encoding (the footprint the
/// encoder minimised; heap bookkeeping excluded).
fn col_bytes(enc: &ColEnc) -> usize {
    match enc {
        ColEnc::Rle(pairs) => pairs.len() * 8,
        ColEnc::For { packed, .. } | ColEnc::Delta { packed, .. } => 8 + packed.len() * 8,
    }
}

/// The per-block annotation column: dictionary-compressed when at most
/// [`DICT_ANN_MAX`] distinct values repeat (by
/// [`CompressedAnn::exact_eq`]), dense otherwise.
#[derive(Debug, Clone, PartialEq)]
enum AnnEnc<K> {
    /// One stored value per row.
    Dense(Vec<K>),
    /// Distinct values plus a bit-packed per-row index column.
    Dict {
        values: Vec<K>,
        bits: u8,
        packed: Vec<u64>,
    },
}

/// Encodes one block's annotation column.
fn encode_anns<K: CompressedAnn + Clone>(anns: Vec<K>) -> AnnEnc<K> {
    let mut values: Vec<K> = Vec::new();
    let mut codes: Vec<u32> = Vec::with_capacity(anns.len());
    // Hot loop: try the previous row's code first (sorted blocks run),
    // then a manual break-on-hit scan of the small dictionary.
    let mut prev = u32::MAX;
    for a in &anns {
        if prev != u32::MAX && values[prev as usize].exact_eq(a) {
            codes.push(prev);
            continue;
        }
        let mut code = u32::MAX;
        for (i, v) in values.iter().enumerate() {
            if v.exact_eq(a) {
                code = i as u32;
                break;
            }
        }
        if code == u32::MAX {
            if values.len() >= DICT_ANN_MAX {
                return AnnEnc::Dense(anns);
            }
            code = values.len() as u32;
            values.push(a.clone());
        }
        codes.push(code);
        prev = code;
    }
    let bits = bits_for(values.len().saturating_sub(1) as u32);
    let n = codes.len();
    AnnEnc::Dict {
        values,
        bits,
        packed: pack_values(codes.into_iter(), n, bits),
    }
}

// ---------------------------------------------------------------------------
// Blocks
// ---------------------------------------------------------------------------

/// One block: up to [`SPLIT_ROWS`] sorted rows, column-encoded, with a
/// row count and the first/last row (min/max — rows are sorted) as the
/// search header.
#[derive(Debug, Clone, PartialEq)]
struct Block<K> {
    rows: usize,
    min_row: Vec<RowCode>,
    max_row: Vec<RowCode>,
    cols: Vec<ColEnc>,
    anns: AnnEnc<K>,
}

impl<K: CompressedAnn + Clone> Block<K> {
    /// Encodes `rows × width` row-major sorted codes plus their
    /// annotations into one block.
    fn encode(width: usize, keys: &[RowCode], anns: Vec<K>) -> Self {
        let rows = anns.len();
        debug_assert_eq!(keys.len(), rows * width);
        debug_assert!(rows > 0);
        let min_row = keys[..width].to_vec();
        let max_row = keys[(rows - 1) * width..rows * width].to_vec();
        let cols = (0..width)
            .map(|j| encode_col_iter(keys[j..].iter().step_by(width).copied(), rows))
            .collect();
        Block {
            rows,
            min_row,
            max_row,
            cols,
            anns: encode_anns(anns),
        }
    }

    /// Decodes the key matrix row-major into `out` (replacing its
    /// contents).
    fn decode_keys(&self, width: usize, out: &mut Vec<RowCode>) {
        debug_assert_eq!(self.cols.len(), width);
        decode_cols_interleaved(&self.cols, self.rows, out);
    }

    /// Decodes only the first `nw` key columns, `nw`-wide row-major —
    /// the drop-last fold never looks at the projected-away column, so
    /// it skips that column's unpack entirely.
    fn decode_prefix(&self, nw: usize, out: &mut Vec<RowCode>) {
        decode_cols_interleaved(&self.cols[..nw], self.rows, out);
    }

    /// Decodes the annotation column.
    fn decode_anns(&self) -> Vec<K> {
        let mut out = Vec::new();
        self.decode_anns_into(&mut out);
        out
    }

    /// Decodes the annotation column into a reusable buffer.
    fn decode_anns_into(&self, out: &mut Vec<K>) {
        out.clear();
        match &self.anns {
            AnnEnc::Dense(v) => out.extend_from_slice(v),
            AnnEnc::Dict {
                values,
                bits,
                packed,
            } => {
                out.reserve(self.rows);
                unpack_each(packed, *bits, self.rows, |c| {
                    out.push(values[c as usize].clone());
                });
            }
        }
    }

    /// One annotation, without decoding the whole column (point reads).
    fn ann_at(&self, i: usize) -> K {
        match &self.anns {
            AnnEnc::Dense(v) => v[i].clone(),
            AnnEnc::Dict {
                values,
                bits,
                packed,
            } => values[unpack_value(packed, *bits, i) as usize].clone(),
        }
    }

    /// Re-encodes the key columns (and the min/max header) from a
    /// freshly remapped decoded matrix, leaving the annotation
    /// encoding untouched — the dictionary-translation path.
    fn reencode_keys(&mut self, width: usize, keys: &[RowCode]) {
        debug_assert_eq!(keys.len(), self.rows * width);
        self.min_row = keys[..width].to_vec();
        self.max_row = keys[(self.rows - 1) * width..self.rows * width].to_vec();
        self.cols = (0..width)
            .map(|j| encode_col_iter(keys[j..].iter().step_by(width).copied(), self.rows))
            .collect();
    }

    /// Serialised payload bytes (header + columns + annotations);
    /// vector-valued annotation carriers count at their inline size.
    fn payload_bytes(&self, width: usize) -> usize {
        let header = 2 * width * 4 + std::mem::size_of::<Self>();
        let cols: usize = self.cols.iter().map(col_bytes).sum();
        let anns = match &self.anns {
            AnnEnc::Dense(v) => v.len() * std::mem::size_of::<K>(),
            AnnEnc::Dict { values, packed, .. } => {
                values.len() * std::mem::size_of::<K>() + packed.len() * 8
            }
        };
        header + cols + anns
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Streams sorted `(code row, annotation)` pairs into compressed
/// blocks without ever materialising the full dense matrix — the
/// construction path for huge inputs (and for every kernel output).
#[derive(Debug)]
pub struct CompressedBuilder<K> {
    width: usize,
    len: usize,
    blocks: Vec<Block<K>>,
    key_buf: Vec<RowCode>,
    ann_buf: Vec<K>,
}

impl<K: CompressedAnn + Clone> CompressedBuilder<K> {
    /// A builder for rows of `width` codes.
    pub fn new(width: usize) -> Self {
        CompressedBuilder {
            width,
            len: 0,
            blocks: Vec::new(),
            key_buf: Vec::with_capacity(BLOCK_ROWS * width),
            ann_buf: Vec::with_capacity(BLOCK_ROWS),
        }
    }

    /// Appends one row. Rows must arrive in non-decreasing code order
    /// (duplicates are allowed mid-stream only for the projection's
    /// internal sorted runs; finished relations have unique rows).
    pub fn push(&mut self, row: &[RowCode], ann: K) {
        debug_assert_eq!(row.len(), self.width);
        debug_assert!(
            self.ann_buf.is_empty() || self.key_buf[self.key_buf.len() - self.width..] <= *row,
            "builder rows must be non-decreasing"
        );
        self.key_buf.extend_from_slice(row);
        self.ann_buf.push(ann);
        self.len += 1;
        if self.ann_buf.len() == BLOCK_ROWS {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.ann_buf.is_empty() {
            return;
        }
        let anns = std::mem::take(&mut self.ann_buf);
        self.blocks
            .push(Block::encode(self.width, &self.key_buf, anns));
        self.key_buf.clear();
    }

    /// Whether no rows are buffered (the next push starts a block).
    fn buffer_is_empty(&self) -> bool {
        self.ann_buf.is_empty()
    }

    /// Appends a whole block reusing `blk`'s already-encoded key
    /// columns verbatim — the merge's pass-through fast path when every
    /// row of an input block survives. Only the annotations (one per
    /// row, in row order) are encoded. Callers must be block-aligned
    /// (`buffer_is_empty`) and globally sorted, as with `push`.
    fn push_passthrough(&mut self, blk: &Block<K>, anns: Vec<K>) {
        debug_assert!(self.ann_buf.is_empty());
        debug_assert_eq!(anns.len(), blk.rows);
        self.len += blk.rows;
        self.blocks.push(Block {
            rows: blk.rows,
            min_row: blk.min_row.clone(),
            max_row: blk.max_row.clone(),
            cols: blk.cols.clone(),
            anns: encode_anns(anns),
        });
    }

    fn into_blocks(mut self) -> (usize, Vec<Block<K>>) {
        self.flush();
        (self.len, self.blocks)
    }

    /// Finishes the stream into a relation over `vars` (the schema,
    /// `vars.len() == width`) sharing the instance dictionary `dict`.
    pub fn finish(self, vars: Vec<Var>, dict: Arc<ValueDict>) -> CompressedColumnar<K> {
        let width = self.width;
        debug_assert_eq!(vars.len(), width);
        let (len, blocks) = self.into_blocks();
        CompressedColumnar {
            vars,
            width,
            len,
            dict,
            blocks,
        }
    }
}

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

/// A streaming read cursor over a block sequence: decodes one block at
/// a time into a reusable scratch buffer. Both the Rule 2 merge and
/// the projection's k-way run merge drive their inputs through this.
struct Cursor<'a, K> {
    blocks: &'a [Block<K>],
    width: usize,
    block: usize,
    row: usize,
    keys: Vec<RowCode>,
    anns: Vec<K>,
    decoded: bool,
}

impl<'a, K: CompressedAnn + Clone> Cursor<'a, K> {
    fn new(blocks: &'a [Block<K>], width: usize) -> Self {
        Cursor {
            blocks,
            width,
            block: 0,
            row: 0,
            keys: Vec::new(),
            anns: Vec::new(),
            decoded: false,
        }
    }

    #[inline]
    fn is_done(&self) -> bool {
        self.block >= self.blocks.len()
    }

    fn ensure_decoded(&mut self) {
        if !self.decoded {
            let blk = &self.blocks[self.block];
            blk.decode_keys(self.width, &mut self.keys);
            blk.decode_anns_into(&mut self.anns);
            self.decoded = true;
        }
    }

    /// The current row's codes (decoding the block on first touch).
    fn key(&mut self) -> &[RowCode] {
        self.ensure_decoded();
        &self.keys[self.row * self.width..(self.row + 1) * self.width]
    }

    /// The current row's annotation.
    fn ann(&mut self) -> K {
        self.ensure_decoded();
        self.anns[self.row].clone()
    }

    fn advance(&mut self) {
        self.row += 1;
        if self.row >= self.blocks[self.block].rows {
            self.block += 1;
            self.row = 0;
            self.decoded = false;
        }
    }

    /// The current block's max row — readable without decoding.
    fn block_max(&self) -> &[RowCode] {
        &self.blocks[self.block].max_row
    }

    /// Skips the rest of the current block (valid mid-block: callers
    /// use it only when every remaining row is provably one-sided
    /// under an annihilating monoid).
    fn skip_block(&mut self) {
        self.block += 1;
        self.row = 0;
        self.decoded = false;
    }
}

// ---------------------------------------------------------------------------
// The relation
// ---------------------------------------------------------------------------

/// A K-annotated relation stored as compressed sorted blocks (see the
/// module docs for the layout and kernels).
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedColumnar<K> {
    vars: Vec<Var>,
    width: usize,
    len: usize,
    dict: Arc<ValueDict>,
    blocks: Vec<Block<K>>,
}

impl<K: CompressedAnn + Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static>
    CompressedColumnar<K>
{
    /// Compresses a dense columnar relation block by block.
    pub fn from_columnar(rel: ColumnarRelation<K>) -> Self {
        let ColumnarRelation {
            vars,
            width,
            len,
            dict,
            keys,
            anns,
        } = rel;
        let mut builder = CompressedBuilder::new(width);
        for (i, ann) in anns.into_iter().enumerate() {
            builder.push(&keys[i * width..(i + 1) * width], ann);
        }
        let _ = len;
        builder.finish(vars, dict)
    }

    /// Decompresses back into the dense columnar layout (differential
    /// tests and the in-bench bit-identity assertion).
    pub fn to_columnar(&self) -> ColumnarRelation<K> {
        let mut keys: Vec<RowCode> = Vec::with_capacity(self.len * self.width);
        let mut anns: Vec<K> = Vec::with_capacity(self.len);
        let mut buf: Vec<RowCode> = Vec::new();
        for blk in &self.blocks {
            blk.decode_keys(self.width, &mut buf);
            keys.extend_from_slice(&buf);
            anns.extend(blk.decode_anns());
        }
        ColumnarRelation {
            vars: self.vars.clone(),
            width: self.width,
            len: self.len,
            dict: Arc::clone(&self.dict),
            keys,
            anns,
        }
    }

    /// The shared value dictionary (tests and diagnostics).
    pub fn dict(&self) -> &ValueDict {
        &self.dict
    }

    /// Overwrites the schema labels — pure metadata (see
    /// [`ColumnarRelation::set_vars`]'s serving-layer use).
    pub(crate) fn set_vars(&mut self, vars: Vec<Var>) {
        debug_assert_eq!(vars.len(), self.width);
        self.vars = vars;
    }

    /// Re-expresses every block under an extended dictionary (the
    /// order-preserving `translation` of [`ValueDict::extend_with`]):
    /// key columns are decoded, translated and re-encoded one block at
    /// a time; annotation encodings are untouched.
    pub(crate) fn remap_codes(&mut self, dict: &Arc<ValueDict>, translation: &[RowCode]) {
        debug_assert_eq!(self.dict.len(), translation.len());
        let mut buf: Vec<RowCode> = Vec::new();
        for blk in &mut self.blocks {
            blk.decode_keys(self.width, &mut buf);
            for c in &mut buf {
                *c = translation[*c as usize];
            }
            if self.width > 0 {
                blk.reencode_keys(self.width, &buf);
            }
        }
        self.dict = Arc::clone(dict);
    }

    /// Locates a code row: `Ok((block, row))` if present,
    /// `Err((block, row))` with the insertion position otherwise
    /// (`block == blocks.len()` means "after everything").
    fn locate(&self, codes: &[RowCode]) -> Result<(usize, usize), (usize, usize)> {
        if self.width == 0 {
            return if self.len > 0 {
                Ok((0, 0))
            } else {
                Err((0, 0))
            };
        }
        let b = self
            .blocks
            .partition_point(|blk| blk.max_row.as_slice() < codes);
        if b == self.blocks.len() {
            return Err((b, 0));
        }
        let blk = &self.blocks[b];
        let mut keys: Vec<RowCode> = Vec::new();
        blk.decode_keys(self.width, &mut keys);
        let w = self.width;
        let (mut lo, mut hi) = (0usize, blk.rows);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match keys[mid * w..(mid + 1) * w].cmp(codes) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Ok((b, mid)),
            }
        }
        Err((b, lo))
    }

    /// Rewrites block `b` through `edit` (decoded keys + annotations),
    /// re-encoding the result — dropped entirely when emptied, split
    /// into [`BLOCK_ROWS`] chunks when grown past [`SPLIT_ROWS`].
    fn edit_block(&mut self, b: usize, edit: impl FnOnce(&mut Vec<RowCode>, &mut Vec<K>)) {
        let mut keys: Vec<RowCode> = Vec::new();
        let mut anns = self.blocks[b].decode_anns();
        self.blocks[b].decode_keys(self.width, &mut keys);
        edit(&mut keys, &mut anns);
        let rows = anns.len();
        let replacement: Vec<Block<K>> = if rows == 0 {
            Vec::new()
        } else if rows > SPLIT_ROWS {
            let w = self.width;
            anns.chunks(BLOCK_ROWS)
                .enumerate()
                .map(|(c, chunk)| {
                    let start = c * BLOCK_ROWS;
                    Block::encode(
                        w,
                        &keys[start * w..(start + chunk.len()) * w],
                        chunk.to_vec(),
                    )
                })
                .collect()
        } else {
            vec![Block::encode(self.width, &keys, anns)]
        };
        self.blocks.splice(b..=b, replacement);
    }

    /// The contiguous candidate block range whose rows can match the
    /// leading sort-key `prefix` (empty prefix spans every block).
    fn prefix_blocks(&self, prefix: &[RowCode]) -> (usize, usize) {
        if prefix.is_empty() || self.width == 0 {
            return (0, self.blocks.len());
        }
        let lo = self
            .blocks
            .partition_point(|b| &b.max_row[..prefix.len()] < prefix);
        let hi = self
            .blocks
            .partition_point(|b| &b.min_row[..prefix.len()] <= prefix);
        (lo, hi)
    }

    /// Approximate resident payload bytes (see
    /// [`Storage::storage_bytes`]).
    fn payload_bytes(&self) -> usize {
        self.vars.len() * std::mem::size_of::<Var>()
            + self
                .blocks
                .iter()
                .map(|b| b.payload_bytes(self.width))
                .sum::<usize>()
    }
}

// ---------------------------------------------------------------------------
// Streaming kernels
// ---------------------------------------------------------------------------

/// Folds one maximal single-column group run `anns[start..end)` keyed
/// by `code` into the open accumulator, with exactly the dense fold's
/// ⊕ order and op counts: continue the open group if the code matches,
/// otherwise flush it (pruning zeros) and seat the run leader.
#[allow(clippy::too_many_arguments)]
#[inline]
fn fold_code_run<M, K>(
    monoid: &M,
    code: RowCode,
    start: usize,
    end: usize,
    anns: &mut [K],
    acc: &mut Option<K>,
    group: &mut Vec<RowCode>,
    stats: &mut EngineStats,
    out: &mut CompressedBuilder<K>,
) where
    M: TwoMonoid<Elem = K>,
    K: CompressedAnn + Clone + PartialEq + std::fmt::Debug,
{
    match acc {
        Some(a) if group.first() == Some(&code) => {
            stats.add_ops += (end - start) as u64;
            monoid.fold_assign(a, &anns[start..end]);
        }
        _ => {
            if let Some(a) = acc.take() {
                if !monoid.is_zero(&a) {
                    out.push(group, a);
                }
            }
            let mut a = std::mem::replace(&mut anns[start], monoid.zero());
            stats.add_ops += (end - start - 1) as u64;
            monoid.fold_assign(&mut a, &anns[start + 1..end]);
            group.clear();
            group.push(code);
            *acc = Some(a);
        }
    }
}

/// Rule 1, least-significant-column case, streamed: one pass over the
/// blocks with the open group carried across block boundaries. Applies
/// ⊕ combines in exactly the order (and with exactly the counts) of
/// the dense [`super::columnar`] `fold_drop_last`, pruning zero groups
/// at flush.
fn fold_drop_last_stream<M, K>(
    monoid: &M,
    blocks: &[Block<K>],
    width: usize,
    stats: &mut EngineStats,
    out: &mut CompressedBuilder<K>,
) where
    M: TwoMonoid<Elem = K>,
    K: CompressedAnn + Clone + PartialEq + std::fmt::Debug,
{
    let nw = width - 1;
    let mut acc: Option<K> = None;
    let mut group: Vec<RowCode> = Vec::new();
    let mut keys: Vec<RowCode> = Vec::new();
    let mut anns: Vec<K> = Vec::new();
    for blk in blocks {
        let rows = blk.rows;
        // Single-prefix-column fast paths: for RLE the runs ARE the
        // groups, and for Delta the group boundaries are exactly the
        // non-zero packed deltas — either way the annotation slices
        // fold directly with no key materialisation and no run scan.
        if nw == 1 {
            match &blk.cols[0] {
                ColEnc::Rle(pairs) => {
                    blk.decode_anns_into(&mut anns);
                    let mut start = 0usize;
                    for &(code, run) in pairs {
                        let end = start + run as usize;
                        fold_code_run(
                            monoid, code, start, end, &mut anns, &mut acc, &mut group, stats, out,
                        );
                        start = end;
                    }
                    continue;
                }
                ColEnc::Delta {
                    first,
                    bits,
                    packed,
                } => {
                    blk.decode_anns_into(&mut anns);
                    let bits_n = *bits as usize;
                    let mut code = *first;
                    if bits_n == 0 {
                        // All deltas zero: one run spanning the block.
                        fold_code_run(
                            monoid, code, 0, rows, &mut anns, &mut acc, &mut group, stats, out,
                        );
                    } else {
                        let mask = (1u64 << bits_n) - 1;
                        let (mut w, mut off) = (0usize, 0usize);
                        let mut start = 0usize;
                        for i in 1..rows {
                            let mut d = packed[w] >> off;
                            if off + bits_n > 64 {
                                d |= packed[w + 1] << (64 - off);
                            }
                            let d = (d & mask) as RowCode;
                            off += bits_n;
                            if off >= 64 {
                                off -= 64;
                                w += 1;
                            }
                            if d != 0 {
                                fold_code_run(
                                    monoid, code, start, i, &mut anns, &mut acc, &mut group, stats,
                                    out,
                                );
                                code += d;
                                start = i;
                            }
                        }
                        fold_code_run(
                            monoid, code, start, rows, &mut anns, &mut acc, &mut group, stats, out,
                        );
                    }
                    continue;
                }
                ColEnc::For { .. } => {}
            }
        }
        blk.decode_prefix(nw, &mut keys);
        blk.decode_anns_into(&mut anns);
        let mut i = 0usize;
        while i < rows {
            let prefix = &keys[i * nw..(i + 1) * nw];
            // Find the end of the run of rows sharing this prefix, then
            // fold the whole run densely — the same `fold_assign` slice
            // fast path the dense columnar fold uses.
            let mut j = i + 1;
            while j < rows && keys[j * nw..(j + 1) * nw] == *prefix {
                j += 1;
            }
            match acc {
                Some(ref mut a) if group[..] == *prefix => {
                    stats.add_ops += (j - i) as u64;
                    monoid.fold_assign(a, &anns[i..j]);
                }
                _ => {
                    if let Some(a) = acc.take() {
                        if !monoid.is_zero(&a) {
                            out.push(&group, a);
                        }
                    }
                    // Move the run leader out (the zero placeholder is
                    // never read again) and fold the rest onto it.
                    let mut a = std::mem::replace(&mut anns[i], monoid.zero());
                    stats.add_ops += (j - i - 1) as u64;
                    monoid.fold_assign(&mut a, &anns[i + 1..j]);
                    group.clear();
                    group.extend_from_slice(prefix);
                    acc = Some(a);
                }
            }
            i = j;
        }
    }
    if let Some(a) = acc.take() {
        if !monoid.is_zero(&a) {
            out.push(&group, a);
        }
    }
}

/// Rule 1, general-column case, streamed as an external sort: decode
/// [`RUN_BLOCKS`] blocks at a time, project the column away, stable
/// in-run argsort (ties keep original row order), re-encode each run
/// compressed, then k-way-merge the runs through block cursors with
/// the grouped ⊕-fold inlined. Run boundaries follow original row
/// order and heap ties break on run index, so the merged sequence is
/// exactly the global stable sort — the dense backend's fold order.
fn project_general<M, K>(
    monoid: &M,
    blocks: &[Block<K>],
    width: usize,
    pos: usize,
    stats: &mut EngineStats,
    out: &mut CompressedBuilder<K>,
) where
    M: TwoMonoid<Elem = K>,
    K: CompressedAnn + Clone + PartialEq + std::fmt::Debug,
{
    let nw = width - 1;
    let mut runs: Vec<(usize, Vec<Block<K>>)> = Vec::new();
    let mut keys: Vec<RowCode> = Vec::new();
    for chunk in blocks.chunks(RUN_BLOCKS) {
        let mut scratch: Vec<RowCode> = Vec::new();
        let mut anns: Vec<Option<K>> = Vec::new();
        for blk in chunk {
            blk.decode_keys(width, &mut keys);
            for i in 0..blk.rows {
                let row = &keys[i * width..(i + 1) * width];
                for (j, &c) in row.iter().enumerate() {
                    if j != pos {
                        scratch.push(c);
                    }
                }
            }
            anns.extend(blk.decode_anns().into_iter().map(Some));
        }
        let n = anns.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            scratch[a * nw..(a + 1) * nw].cmp(&scratch[b * nw..(b + 1) * nw])
        });
        let mut rb = CompressedBuilder::new(nw);
        for &i in &order {
            let i = i as usize;
            rb.push(
                &scratch[i * nw..(i + 1) * nw],
                anns[i].take().expect("each row moved once"),
            );
        }
        runs.push(rb.into_blocks());
    }
    let mut cursors: Vec<Cursor<'_, K>> = runs.iter().map(|(_, r)| Cursor::new(r, nw)).collect();
    let mut heap: BinaryHeap<Reverse<(Vec<RowCode>, usize)>> = BinaryHeap::new();
    for (r, c) in cursors.iter_mut().enumerate() {
        if !c.is_done() {
            heap.push(Reverse((c.key().to_vec(), r)));
        }
    }
    let mut cur: Option<(Vec<RowCode>, K)> = None;
    while let Some(Reverse((key, r))) = heap.pop() {
        let ann = cursors[r].ann();
        cursors[r].advance();
        if !cursors[r].is_done() {
            heap.push(Reverse((cursors[r].key().to_vec(), r)));
        }
        match cur {
            Some((ref g, ref mut acc)) if *g == key => {
                stats.add_ops += 1;
                monoid.add_assign(acc, &ann);
            }
            _ => {
                if let Some((g, acc)) = cur.take() {
                    if !monoid.is_zero(&acc) {
                        out.push(&g, acc);
                    }
                }
                cur = Some((key, ann));
            }
        }
    }
    if let Some((g, acc)) = cur.take() {
        if !monoid.is_zero(&acc) {
            out.push(&g, acc);
        }
    }
}

/// Rule 2, streamed: the linear two-pointer sort-merge outer join of
/// the dense backend's `merge_ranges`, driven through block cursors.
/// For annihilating monoids, a block whose max row is below the other
/// side's current row cannot contain a both-sided key, so it is
/// skipped without decoding — exactly the rows the dense merge would
/// step over one by one with no ⊗ counted and no output.
fn merge_stream<M, K>(
    monoid: &M,
    left: &[Block<K>],
    right: &[Block<K>],
    width: usize,
    stats: &mut EngineStats,
    out: &mut CompressedBuilder<K>,
) where
    M: TwoMonoid<Elem = K>,
    K: CompressedAnn + Clone + PartialEq + std::fmt::Debug,
{
    let zero = monoid.zero();
    let annihilating = monoid.annihilating();
    let mut l = Cursor::new(left, width);
    let mut r = Cursor::new(right, width);
    while !l.is_done() && !r.is_done() {
        if annihilating {
            if l.block_max() < r.key() {
                l.skip_block();
                continue;
            }
            if r.block_max() < l.key() {
                r.skip_block();
                continue;
            }
        }
        // Both current blocks overlap: decode once and run the
        // two-pointer loop over the scratch slices directly — no
        // per-row cursor dispatch on the hot path.
        l.ensure_decoded();
        r.ensure_decoded();
        let lrows = l.blocks[l.block].rows;
        let rrows = r.blocks[r.block].rows;
        let (mut li, mut ri) = (l.row, r.row);
        // Pass-through fast path: under an annihilating monoid, when a
        // whole left block survives the merge intact (every row matched
        // with a non-zero product), its already-encoded key columns are
        // reused verbatim and only the annotations are re-encoded.
        if annihilating && li == 0 && out.buffer_is_empty() {
            let mut prods: Vec<K> = Vec::with_capacity(lrows);
            let (mut fi, mut fj) = (0usize, ri);
            let mut intact = true;
            while fi < lrows && fj < rrows {
                let lk = &l.keys[fi * width..(fi + 1) * width];
                let rk = &r.keys[fj * width..(fj + 1) * width];
                match lk.cmp(rk) {
                    Ordering::Equal => {
                        stats.mul_ops += 1;
                        let v = monoid.mul(&l.anns[fi], &r.anns[fj]);
                        fi += 1;
                        fj += 1;
                        if monoid.is_zero(&v) {
                            intact = false;
                            break;
                        }
                        prods.push(v);
                    }
                    Ordering::Less => {
                        fi += 1;
                        intact = false;
                        break;
                    }
                    Ordering::Greater => fj += 1,
                }
            }
            if intact && fi >= lrows {
                out.push_passthrough(&l.blocks[l.block], prods);
                l.skip_block();
                r.row = fj;
                if fj >= rrows {
                    r.skip_block();
                }
                continue;
            }
            // Partial attempt: the first `prods.len()` left rows all
            // matched with non-zero products — replay them through the
            // row path, then resume the general loop where it stopped.
            for (k, v) in prods.into_iter().enumerate() {
                out.push(&l.keys[k * width..(k + 1) * width], v);
            }
            li = fi;
            ri = fj;
        }
        while li < lrows && ri < rrows {
            let lk = &l.keys[li * width..(li + 1) * width];
            let rk = &r.keys[ri * width..(ri + 1) * width];
            match lk.cmp(rk) {
                Ordering::Equal => {
                    stats.mul_ops += 1;
                    let v = monoid.mul(&l.anns[li], &r.anns[ri]);
                    if !monoid.is_zero(&v) {
                        out.push(lk, v);
                    }
                    li += 1;
                    ri += 1;
                }
                Ordering::Less => {
                    if !annihilating {
                        stats.mul_ops += 1;
                        let v = monoid.mul(&l.anns[li], &zero);
                        if !monoid.is_zero(&v) {
                            out.push(lk, v);
                        }
                    }
                    li += 1;
                }
                Ordering::Greater => {
                    if !annihilating {
                        stats.mul_ops += 1;
                        let v = monoid.mul(&zero, &r.anns[ri]);
                        if !monoid.is_zero(&v) {
                            out.push(rk, v);
                        }
                    }
                    ri += 1;
                }
            }
        }
        l.row = li;
        r.row = ri;
        if li >= lrows {
            l.skip_block();
        }
        if ri >= rrows {
            r.skip_block();
        }
    }
    if !annihilating {
        while !l.is_done() {
            stats.mul_ops += 1;
            let a = l.ann();
            let v = monoid.mul(&a, &zero);
            if !monoid.is_zero(&v) {
                out.push(l.key(), v);
            }
            l.advance();
        }
        while !r.is_done() {
            stats.mul_ops += 1;
            let b = r.ann();
            let v = monoid.mul(&zero, &b);
            if !monoid.is_zero(&v) {
                out.push(r.key(), v);
            }
            r.advance();
        }
    }
}

// ---------------------------------------------------------------------------
// Storage impl
// ---------------------------------------------------------------------------

impl<K> Storage for CompressedColumnar<K>
where
    K: CompressedAnn + Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static,
{
    type Ann = K;
    /// Same native key as the dense columnar layout: a dictionary code
    /// row, comparable across every relation sharing the instance
    /// dictionary.
    type Key = Vec<RowCode>;

    fn build_slots(slots: Vec<OwnedSlot<K>>) -> Result<Vec<Self>, DuplicateRow> {
        // Reuse the dense build (instance-wide dictionary, scatter
        // encode, duplicate detection), then compress block by block —
        // the dense matrix of each slot is transient.
        Ok(ColumnarRelation::build_slots(slots)?
            .into_iter()
            .map(Self::from_columnar)
            .collect())
    }

    fn vars(&self) -> &[Var] {
        &self.vars
    }

    fn support_size(&self) -> usize {
        self.len
    }

    fn project_out<M: TwoMonoid<Elem = K>>(
        self,
        monoid: &M,
        var: Var,
        stats: &mut EngineStats,
    ) -> Self {
        let pos = self
            .vars
            .iter()
            .position(|&v| v == var)
            .expect("projected variable must be in the relation schema");
        let CompressedColumnar {
            mut vars,
            width,
            len: _,
            dict,
            blocks,
        } = self;
        vars.remove(pos);
        let mut out = CompressedBuilder::new(width - 1);
        if pos == width - 1 {
            fold_drop_last_stream(monoid, &blocks, width, stats, &mut out);
        } else {
            project_general(monoid, &blocks, width, pos, stats, &mut out);
        }
        out.finish(vars, dict)
    }

    fn merge<M: TwoMonoid<Elem = K>>(
        self,
        monoid: &M,
        right: Self,
        stats: &mut EngineStats,
    ) -> Self {
        assert_eq!(
            self.vars, right.vars,
            "Rule 2 merges atoms with identical variable sets"
        );
        debug_assert_eq!(
            *self.dict, *right.dict,
            "merged relations must share one instance dictionary"
        );
        let mut out = CompressedBuilder::new(self.width);
        merge_stream(
            monoid,
            &self.blocks,
            &right.blocks,
            self.width,
            stats,
            &mut out,
        );
        out.finish(self.vars, self.dict)
    }

    fn nullary_value<M: TwoMonoid<Elem = K>>(&self, monoid: &M) -> K {
        if self.width == 0 && self.len > 0 {
            debug_assert_eq!(self.len, 1, "nullary support is at most one row");
            self.blocks[0].ann_at(0)
        } else {
            monoid.zero()
        }
    }

    fn rows(&self) -> Vec<(Tuple, K)> {
        let mut out = Vec::with_capacity(self.len);
        let mut keys: Vec<RowCode> = Vec::new();
        for blk in &self.blocks {
            blk.decode_keys(self.width, &mut keys);
            for (i, ann) in blk.decode_anns().into_iter().enumerate() {
                out.push((
                    self.dict
                        .decode(&keys[i * self.width..(i + 1) * self.width]),
                    ann,
                ));
            }
        }
        out
    }

    fn get(&self, key: &Tuple) -> Option<K> {
        let mut codes = Vec::with_capacity(self.width);
        if !self.dict.encode_into(key, &mut codes) {
            return None;
        }
        self.get_key(&codes)
    }

    fn set(&mut self, key: &Tuple, value: Option<K>) {
        let mut codes = Vec::with_capacity(self.width);
        if !self.dict.encode_into(key, &mut codes) {
            if value.is_none() {
                return;
            }
            // Novel domain value: extend the shared dictionary and
            // remap every block through the order-preserving
            // translation (see the dense backend's `set`).
            let (dict, translation) = self.dict.extend_with(key.values().iter().copied());
            let dict = Arc::new(dict);
            self.remap_codes(&dict, &translation);
            codes.clear();
            let admitted = self.dict.encode_into(key, &mut codes);
            debug_assert!(admitted, "extended dictionary must cover the key");
        }
        self.set_key(&codes, value);
    }

    fn group_rows(&self, keep: &[usize], group: &Tuple) -> Vec<K> {
        debug_assert_eq!(keep.len(), group.arity());
        let mut codes = Vec::with_capacity(group.arity());
        if !self.dict.encode_into(group, &mut codes) {
            return Vec::new();
        }
        self.group_rows_key(keep, &codes)
    }

    fn key_of(&self, key: &Tuple) -> Option<Vec<RowCode>> {
        let mut codes = Vec::with_capacity(key.arity());
        if self.dict.encode_into(key, &mut codes) {
            Some(codes)
        } else {
            None
        }
    }

    fn project_key(key: &Vec<RowCode>, keep: &[usize]) -> Vec<RowCode> {
        keep.iter().map(|&p| key[p]).collect()
    }

    fn get_key(&self, key: &Vec<RowCode>) -> Option<K> {
        self.locate(key).ok().map(|(b, r)| self.blocks[b].ann_at(r))
    }

    fn set_key(&mut self, codes: &Vec<RowCode>, value: Option<K>) {
        let w = self.width;
        match (self.locate(codes), value) {
            (Ok((b, r)), Some(v)) => {
                self.edit_block(b, |_, anns| anns[r] = v);
            }
            (Ok((b, r)), None) => {
                self.edit_block(b, |keys, anns| {
                    keys.drain(r * w..(r + 1) * w);
                    anns.remove(r);
                });
                self.len -= 1;
            }
            (Err((b, r)), Some(v)) => {
                if self.blocks.is_empty() {
                    self.blocks.push(Block::encode(w, codes, vec![v]));
                } else {
                    // Past-the-end insertions land at the tail of the
                    // last block instead of opening a new one.
                    let (b, r) = if b == self.blocks.len() {
                        (b - 1, self.blocks[b - 1].rows)
                    } else {
                        (b, r)
                    };
                    self.edit_block(b, |keys, anns| {
                        keys.splice(r * w..r * w, codes.iter().copied());
                        anns.insert(r, v);
                    });
                }
                self.len += 1;
            }
            (Err(_), None) => {}
        }
    }

    fn group_rows_key(&self, keep: &[usize], codes: &Vec<RowCode>) -> Vec<K> {
        debug_assert_eq!(keep.len(), codes.len());
        debug_assert!(keep.windows(2).all(|w| w[0] < w[1]));
        // Leading literal run of `keep` = a sort-key prefix: min/max
        // headers binary-search straight to the candidate blocks, and
        // only those are decoded.
        let lead = keep
            .iter()
            .enumerate()
            .take_while(|&(i, &p)| i == p)
            .count();
        let prefix = &codes[..lead.min(self.width)];
        let (lo, hi) = self.prefix_blocks(prefix);
        let mut out = Vec::new();
        let mut keys: Vec<RowCode> = Vec::new();
        for blk in &self.blocks[lo..hi] {
            blk.decode_keys(self.width, &mut keys);
            for i in 0..blk.rows {
                let row = &keys[i * self.width..(i + 1) * self.width];
                if &row[..prefix.len()] == prefix
                    && keep[lead..]
                        .iter()
                        .zip(&codes[lead..])
                        .all(|(&p, &c)| row[p] == c)
                {
                    out.push(blk.ann_at(i));
                }
            }
        }
        out
    }

    fn prepare_values(&mut self, values: &[Value]) -> bool {
        if values.iter().all(|v| self.dict.code(*v).is_some()) {
            return false;
        }
        let (dict, translation) = self.dict.extend_with(values.iter().copied());
        let dict = Arc::new(dict);
        self.remap_codes(&dict, &translation);
        true
    }

    fn storage_bytes(&self) -> usize {
        self.payload_bytes()
    }
}

// ---------------------------------------------------------------------------
// Spill serialisation
// ---------------------------------------------------------------------------

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(input: &mut &[u8]) -> Option<u32> {
    let (head, rest) = input.split_first_chunk::<4>()?;
    *input = rest;
    Some(u32::from_le_bytes(*head))
}

fn read_u64(input: &mut &[u8]) -> Option<u64> {
    let (head, rest) = input.split_first_chunk::<8>()?;
    *input = rest;
    Some(u64::from_le_bytes(*head))
}

fn write_packed(out: &mut Vec<u8>, bits: u8, packed: &[u64]) {
    out.push(bits);
    write_u32(out, packed.len() as u32);
    for &w in packed {
        write_u64(out, w);
    }
}

fn read_packed(input: &mut &[u8]) -> Option<(u8, Vec<u64>)> {
    let (&bits, rest) = input.split_first()?;
    *input = rest;
    let words = read_u32(input)? as usize;
    let mut packed = Vec::with_capacity(words);
    for _ in 0..words {
        packed.push(read_u64(input)?);
    }
    Some((bits, packed))
}

impl<K: CompressedAnn + Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static>
    CompressedColumnar<K>
{
    /// Serialises the blocks (not the dictionary — it is shared and
    /// stays resident) for the serving layer's spill-on-evict segment
    /// file. Only meaningful when `K::SPILLABLE`.
    pub(crate) fn spill_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_u32(&mut out, self.width as u32);
        write_u64(&mut out, self.len as u64);
        write_u32(&mut out, self.vars.len() as u32);
        for v in &self.vars {
            write_u64(&mut out, v.0 as u64);
        }
        write_u32(&mut out, self.blocks.len() as u32);
        for blk in &self.blocks {
            write_u32(&mut out, blk.rows as u32);
            for &c in blk.min_row.iter().chain(&blk.max_row) {
                write_u32(&mut out, c);
            }
            for col in &blk.cols {
                match col {
                    ColEnc::Rle(pairs) => {
                        out.push(0);
                        write_u32(&mut out, pairs.len() as u32);
                        for &(code, run) in pairs {
                            write_u32(&mut out, code);
                            write_u32(&mut out, run);
                        }
                    }
                    ColEnc::For { min, bits, packed } => {
                        out.push(1);
                        write_u32(&mut out, *min);
                        write_packed(&mut out, *bits, packed);
                    }
                    ColEnc::Delta {
                        first,
                        bits,
                        packed,
                    } => {
                        out.push(2);
                        write_u32(&mut out, *first);
                        write_packed(&mut out, *bits, packed);
                    }
                }
            }
            match &blk.anns {
                AnnEnc::Dense(v) => {
                    out.push(0);
                    write_u32(&mut out, v.len() as u32);
                    for a in v {
                        a.write_bytes(&mut out);
                    }
                }
                AnnEnc::Dict {
                    values,
                    bits,
                    packed,
                } => {
                    out.push(1);
                    out.push(values.len() as u8);
                    for a in values {
                        a.write_bytes(&mut out);
                    }
                    write_packed(&mut out, *bits, packed);
                }
            }
        }
        out
    }

    /// Rebuilds a relation from [`CompressedColumnar::spill_bytes`]
    /// output plus the (still resident, unextended) shared dictionary.
    /// Returns `None` on malformed input.
    pub(crate) fn from_spill(mut input: &[u8], dict: Arc<ValueDict>) -> Option<Self> {
        let input = &mut input;
        let width = read_u32(input)? as usize;
        let len = read_u64(input)? as usize;
        let nvars = read_u32(input)? as usize;
        if nvars != width {
            return None;
        }
        let mut vars = Vec::with_capacity(nvars);
        for _ in 0..nvars {
            vars.push(Var(read_u64(input)? as usize));
        }
        let nblocks = read_u32(input)? as usize;
        let mut blocks = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            let rows = read_u32(input)? as usize;
            let mut min_row = Vec::with_capacity(width);
            for _ in 0..width {
                min_row.push(read_u32(input)?);
            }
            let mut max_row = Vec::with_capacity(width);
            for _ in 0..width {
                max_row.push(read_u32(input)?);
            }
            let mut cols = Vec::with_capacity(width);
            for _ in 0..width {
                let (&tag, rest) = input.split_first()?;
                *input = rest;
                cols.push(match tag {
                    0 => {
                        let runs = read_u32(input)? as usize;
                        let mut pairs = Vec::with_capacity(runs);
                        for _ in 0..runs {
                            let code = read_u32(input)?;
                            let run = read_u32(input)?;
                            pairs.push((code, run));
                        }
                        ColEnc::Rle(pairs)
                    }
                    1 => {
                        let min = read_u32(input)?;
                        let (bits, packed) = read_packed(input)?;
                        ColEnc::For { min, bits, packed }
                    }
                    2 => {
                        let first = read_u32(input)?;
                        let (bits, packed) = read_packed(input)?;
                        ColEnc::Delta {
                            first,
                            bits,
                            packed,
                        }
                    }
                    _ => return None,
                });
            }
            let (&tag, rest) = input.split_first()?;
            *input = rest;
            let anns = match tag {
                0 => {
                    let count = read_u32(input)? as usize;
                    let mut v = Vec::with_capacity(count);
                    for _ in 0..count {
                        v.push(K::read_bytes(input)?);
                    }
                    AnnEnc::Dense(v)
                }
                1 => {
                    let (&count, rest) = input.split_first()?;
                    *input = rest;
                    let mut values = Vec::with_capacity(count as usize);
                    for _ in 0..count {
                        values.push(K::read_bytes(input)?);
                    }
                    let (bits, packed) = read_packed(input)?;
                    AnnEnc::Dict {
                        values,
                        bits,
                        packed,
                    }
                }
                _ => return None,
            };
            blocks.push(Block {
                rows,
                min_row,
                max_row,
                cols,
                anns,
            });
        }
        Some(CompressedColumnar {
            vars,
            width,
            len,
            dict,
            blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_monoid::{CountMonoid, ProbMonoid};

    fn rel(vars: &[usize], rows: &[(&[i64], u64)]) -> CompressedColumnar<u64> {
        CompressedColumnar::build_slots(vec![(
            vars.iter().map(|&v| Var(v)).collect(),
            rows.iter().map(|&(t, k)| (Tuple::ints(t), k)).collect(),
        )])
        .unwrap()
        .pop()
        .unwrap()
    }

    fn dense(vars: &[usize], rows: &[(&[i64], u64)]) -> ColumnarRelation<u64> {
        ColumnarRelation::build_slots(vec![(
            vars.iter().map(|&v| Var(v)).collect(),
            rows.iter().map(|&(t, k)| (Tuple::ints(t), k)).collect(),
        )])
        .unwrap()
        .pop()
        .unwrap()
    }

    #[test]
    fn bitpack_roundtrips_across_word_boundaries() {
        for bits in [1u8, 3, 7, 13, 17, 31, 32] {
            let mask = if bits == 32 {
                u32::MAX
            } else {
                (1u32 << bits) - 1
            };
            let vals: Vec<u32> = (0..1000u32)
                .map(|i| i.wrapping_mul(2654435761) & mask)
                .collect();
            let packed = pack_values(vals.iter().copied(), vals.len(), bits);
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(unpack_value(&packed, bits, i), v, "bits {bits} idx {i}");
            }
        }
    }

    #[test]
    fn encodings_roundtrip_and_pick_sensibly() {
        // Constant column → RLE with one run.
        let c = encode_col(&[7; 100]);
        assert!(matches!(&c, ColEnc::Rle(p) if p.len() == 1));
        // Strictly increasing by 1 → delta with 1-bit deltas.
        let inc: Vec<RowCode> = (0..100).collect();
        let d = encode_col(&inc);
        assert!(matches!(d, ColEnc::Delta { bits: 1, .. }), "{d:?}");
        // All-distinct unsorted (RLE-pathological) still roundtrips.
        let wild: Vec<RowCode> = (0..100u32)
            .map(|i| i.wrapping_mul(2654435761) >> 8)
            .collect();
        for col in [&vec![7; 100], &inc, &wild] {
            let enc = encode_col(col);
            let mut back = Vec::new();
            decode_col(&enc, col.len(), &mut back);
            assert_eq!(&back, col);
        }
    }

    #[test]
    fn ann_dict_distinguishes_negative_zero() {
        let anns: Vec<f64> = vec![0.0, -0.0, 0.0, -0.0];
        let enc = encode_anns(anns.clone());
        let AnnEnc::Dict {
            values,
            bits,
            packed,
        } = &enc
        else {
            panic!("two exact-distinct values should dictionary-encode");
        };
        assert_eq!(values.len(), 2);
        for (i, a) in anns.iter().enumerate() {
            let back = values[unpack_value(packed, *bits, i) as usize];
            assert_eq!(back.to_bits(), a.to_bits(), "idx {i}");
        }
    }

    #[test]
    fn roundtrips_through_dense_columnar() {
        let rows: Vec<(Vec<i64>, u64)> = (0..10_000i64)
            .map(|i| (vec![i / 16, i % 16], (i % 7) as u64 + 1))
            .collect();
        let rows_ref: Vec<(&[i64], u64)> = rows.iter().map(|(t, k)| (t.as_slice(), *k)).collect();
        let c = rel(&[0, 1], &rows_ref);
        let d = dense(&[0, 1], &rows_ref);
        assert_eq!(c.support_size(), d.support_size());
        assert_eq!(c.to_columnar(), d);
        assert!(c.storage_bytes() < d.storage_bytes());
    }

    #[test]
    fn projections_match_dense_exactly() {
        let rows: Vec<(Vec<i64>, u64)> = (0..5000i64)
            .map(|i| (vec![i % 40, i / 40, i % 11], (i % 5) as u64 + 1))
            .collect();
        let rows_ref: Vec<(&[i64], u64)> = rows.iter().map(|(t, k)| (t.as_slice(), *k)).collect();
        for var in [0usize, 1, 2] {
            let c = rel(&[0, 1, 2], &rows_ref);
            let d = dense(&[0, 1, 2], &rows_ref);
            let mut sc = EngineStats::default();
            let mut sd = EngineStats::default();
            let pc = c.project_out(&CountMonoid, Var(var), &mut sc);
            let pd = d.project_out(&CountMonoid, Var(var), &mut sd);
            assert_eq!(pc.to_columnar(), pd, "var {var}");
            assert_eq!(sc.add_ops, sd.add_ops, "var {var}");
        }
    }

    #[test]
    fn merge_matches_dense_and_skips_blocks() {
        // Disjoint key ranges big enough to span multiple blocks: the
        // annihilating merge must still agree with dense exactly.
        let build = || -> Vec<OwnedSlot<u64>> {
            vec![
                (
                    vec![Var(0)],
                    (0..9000i64).map(|i| (Tuple::ints(&[i]), 2)).collect(),
                ),
                (
                    vec![Var(0)],
                    (8000..17_000i64).map(|i| (Tuple::ints(&[i]), 3)).collect(),
                ),
            ]
        };
        let mut cs = CompressedColumnar::<u64>::build_slots(build()).unwrap();
        let mut ds = ColumnarRelation::<u64>::build_slots(build()).unwrap();
        let (cr, cl) = (cs.pop().unwrap(), cs.pop().unwrap());
        let (dr, dl) = (ds.pop().unwrap(), ds.pop().unwrap());
        let mut sc = EngineStats::default();
        let mut sd = EngineStats::default();
        let mc = cl.merge(&CountMonoid, cr, &mut sc);
        let md = dl.merge(&CountMonoid, dr, &mut sd);
        assert_eq!(mc.to_columnar(), md);
        assert_eq!(sc.mul_ops, sd.mul_ops);
        assert_eq!(mc.support_size(), 1000);
    }

    #[test]
    fn point_ops_and_group_rows_agree_with_dense() {
        let rows: Vec<(Vec<i64>, u64)> = (0..6000i64)
            .map(|i| (vec![i / 8, i % 8], 1 + (i % 3) as u64))
            .collect();
        let rows_ref: Vec<(&[i64], u64)> = rows.iter().map(|(t, k)| (t.as_slice(), *k)).collect();
        let mut c = rel(&[0, 1], &rows_ref);
        let mut d = dense(&[0, 1], &rows_ref);
        assert_eq!(c.get(&Tuple::ints(&[5, 3])), d.get(&Tuple::ints(&[5, 3])));
        c.set(&Tuple::ints(&[5, 3]), Some(42));
        d.set(&Tuple::ints(&[5, 3]), Some(42));
        c.set(&Tuple::ints(&[6, 2]), None);
        d.set(&Tuple::ints(&[6, 2]), None);
        c.set(&Tuple::ints(&[9999, 17]), Some(7)); // novel values
        d.set(&Tuple::ints(&[9999, 17]), Some(7));
        assert_eq!(c.to_columnar(), d);
        assert_eq!(
            c.group_rows(&[0], &Tuple::ints(&[5])),
            d.group_rows(&[0], &Tuple::ints(&[5]))
        );
        assert_eq!(
            c.group_rows(&[1], &Tuple::ints(&[3])),
            d.group_rows(&[1], &Tuple::ints(&[3]))
        );
    }

    #[test]
    fn nullary_projection_and_value() {
        let r = rel(&[3], &[(&[1], 2), (&[2], 3), (&[9], 4)]);
        let mut stats = EngineStats::default();
        let out = r.project_out(&CountMonoid, Var(3), &mut stats);
        assert_eq!(out.support_size(), 1);
        assert_eq!(out.nullary_value(&CountMonoid), 9);
        assert_eq!(stats.add_ops, 2);
    }

    #[test]
    fn zero_prune_uses_exact_monoid_predicate() {
        let r = CompressedColumnar::build_slots(vec![(
            vec![Var(0), Var(1)],
            vec![
                (Tuple::ints(&[1, 1]), 0.5f64),
                (Tuple::ints(&[1, 2]), -0.5),
                (Tuple::ints(&[2, 1]), -0.0),
            ],
        )])
        .unwrap()
        .pop()
        .unwrap();
        let mut stats = EngineStats::default();
        let out = r.project_out(&ProbMonoid, Var(1), &mut stats);
        assert_eq!(out.support_size(), 1);
    }

    #[test]
    fn spill_roundtrip_is_exact() {
        let rows: Vec<(Vec<i64>, u64)> = (0..10_000i64)
            .map(|i| (vec![i / 3, i % 3], (i % 4) as u64))
            .collect();
        let rows_ref: Vec<(&[i64], u64)> = rows.iter().map(|(t, k)| (t.as_slice(), *k)).collect();
        let c = rel(&[0, 1], &rows_ref);
        let bytes = c.spill_bytes();
        let back = CompressedColumnar::<u64>::from_spill(&bytes, Arc::clone(&c.dict)).unwrap();
        assert_eq!(back, c);
        // Truncated input must fail cleanly, not panic.
        assert!(CompressedColumnar::<u64>::from_spill(
            &bytes[..bytes.len() / 2],
            Arc::clone(&c.dict)
        )
        .is_none());
    }
}
