//! Cached dictionary encodings: the substrate of batched multi-query
//! serving.
//!
//! Building a columnar annotated database is dominated by the
//! instance-wide value sort and dictionary scatter-encode. Those
//! depend only on the *database*, not on the query or the annotations
//! — so when many queries are evaluated over one database, the work
//! can be done once. [`EncodedDb`] memoises, per relation identity
//! ([`Sym`]), the relation's row-major code matrix (written column
//! order, sorted tuple order) over one shared [`ValueDict`] covering
//! the whole database. [`EncodedDb::annotate`] then assembles a
//! query's annotated slots by permuting cached `u32` codes — no value
//! comparison, no dictionary build, no tuple materialisation.
//!
//! The encoding is no longer a throwaway snapshot: it records the
//! [`Database::version`] of every relation it encoded, so staleness is
//! detected **exactly** (any effective mutation, including interior
//! same-size swaps, bumps the version) and [`EncodedDb::refresh`]
//! re-encodes *only the relations that changed* — extending the shared
//! dictionary in place (with a single remap of the untouched matrices)
//! when an update introduced novel domain values. This is what lets a
//! [`crate::serving::ServingSession`] keep its encoding warm across
//! `update`/`update_batch` calls instead of rebuilding it.
//!
//! Results are bit-identical to the uncached columnar path: codes are
//! order-preserving whether the dictionary covers the whole database
//! or just the query's relations, so every comparison, fold, and
//! merge runs in exactly the same sequence.

use super::columnar::ColumnarRelation;
use super::DuplicateRow;
use crate::annotated::{duplicate_error, AnnotateError, AnnotatedDb};
use hq_db::{Database, Interner, RowCode, Sym, Tuple, Value, ValueDict};
use hq_query::{Query, Var};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One relation's cached code matrix: row-major codes in the
/// relation's *written* column order, rows in sorted tuple order.
#[derive(Debug, Clone)]
struct EncodedRel {
    width: usize,
    len: usize,
    codes: Vec<RowCode>,
    /// The [`Database::version`] of the relation when these codes were
    /// encoded — the per-relation dirty epoch the staleness guard and
    /// [`EncodedDb::refresh`] compare against.
    version: u64,
}

/// What an [`EncodedDb::refresh`] call actually did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefreshOutcome {
    /// Relations whose code matrices were re-encoded (their
    /// [`Database::version`] had moved).
    pub changed: Vec<Sym>,
    /// Whether novel domain values forced a dictionary extension (and
    /// one remap of every cached matrix).
    pub dict_extended: bool,
    /// The old→new code map of the dictionary extension
    /// (`translation[old_code] == new_code`), present exactly when
    /// `dict_extended`. Derived caches holding code matrices over the
    /// pre-extension dictionary (the serving layer's plan-node cache)
    /// remap themselves through this instead of rebuilding: the
    /// translation is order-preserving, so remapped matrices stay
    /// sorted and comparable under the extended dictionary.
    pub translation: Option<Arc<Vec<RowCode>>>,
}

impl RefreshOutcome {
    /// `true` when the refresh found nothing to do.
    pub fn is_noop(&self) -> bool {
        self.changed.is_empty() && !self.dict_extended
    }
}

/// A database's dictionary encoding, computed once, kept current with
/// [`EncodedDb::refresh`], and reused by every query evaluated over
/// that database (see [`crate::engine::evaluate_encoded`] and
/// [`crate::serving::ServingSession`]).
#[derive(Debug, Clone)]
pub struct EncodedDb {
    dict: Arc<ValueDict>,
    rels: BTreeMap<Sym, EncodedRel>,
}

impl EncodedDb {
    /// Encodes every relation of `db` over one shared dictionary.
    pub fn new(db: &Database) -> Self {
        let mut values: Vec<Value> = Vec::new();
        for (_, rel) in db.relations() {
            for t in rel.iter() {
                values.extend_from_slice(t.values());
            }
        }
        let dict = Arc::new(ValueDict::build(values));
        let mut rels = BTreeMap::new();
        for (sym, rel) in db.relations() {
            rels.insert(sym, encode_rel(&dict, rel, db.version(sym)));
        }
        EncodedDb { dict, rels }
    }

    /// The shared dictionary (tests and diagnostics).
    pub fn dict(&self) -> &ValueDict {
        &self.dict
    }

    /// The shared dictionary handle — derived caches that assemble
    /// columnar slots from this encoding (the serving layer) clone it
    /// so their matrices and the encoding stay code-compatible.
    pub(crate) fn shared_dict(&self) -> Arc<ValueDict> {
        Arc::clone(&self.dict)
    }

    /// The per-relation dirty epoch this encoding is valid at: the
    /// [`Database::version`] recorded when `rel`'s codes were last
    /// (re-)encoded. `None` for relations the encoding has never seen.
    pub fn encoded_version(&self, rel: Sym) -> Option<u64> {
        self.rels.get(&rel).map(|e| e.version)
    }

    /// Brings the encoding up to date with `db`, re-encoding **only**
    /// the relations whose [`Database::version`] moved since they were
    /// last encoded (plus relations the encoding has never seen). When
    /// the changed relations carry domain values outside the shared
    /// dictionary, the dictionary is extended once — order-preserving,
    /// so code comparisons keep matching value comparisons — and every
    /// *unchanged* matrix is remapped through the old→new translation
    /// in one linear pass.
    ///
    /// Cost: `O(Σ |changed relations| + dict_extended · Σ |all codes|)`
    /// — a function of the dirty set, not of the database, in the
    /// common no-novel-values case.
    pub fn refresh(&mut self, db: &Database) -> RefreshOutcome {
        let stale: Vec<Sym> = db
            .relations()
            .filter(|&(sym, _)| self.encoded_version(sym) != Some(db.version(sym)))
            .map(|(sym, _)| sym)
            .collect();
        if stale.is_empty() {
            return RefreshOutcome::default();
        }
        // Novel values can only come from stale relations.
        let mut novel: std::collections::BTreeSet<Value> = std::collections::BTreeSet::new();
        for &sym in &stale {
            let rel = db.relation(sym).expect("stale relation exists");
            for t in rel.iter() {
                novel.extend(
                    t.values()
                        .iter()
                        .copied()
                        .filter(|v| self.dict.code(*v).is_none()),
                );
            }
        }
        let dict_extended = !novel.is_empty();
        let mut kept_translation = None;
        if dict_extended {
            let (dict, translation) = self.dict.extend_with(novel);
            // Remap only the *unchanged* matrices: the stale ones are
            // re-encoded from scratch right below.
            for (sym, enc) in self.rels.iter_mut() {
                if stale.contains(sym) {
                    continue;
                }
                for c in &mut enc.codes {
                    *c = translation[*c as usize];
                }
            }
            self.dict = Arc::new(dict);
            // Surface the old→new map so derived code-matrix caches
            // (serving plan nodes) can remap instead of rebuilding.
            kept_translation = Some(Arc::new(translation));
        }
        for &sym in &stale {
            let rel = db.relation(sym).expect("stale relation exists");
            self.rels
                .insert(sym, encode_rel(&self.dict, rel, db.version(sym)));
        }
        RefreshOutcome {
            changed: stale,
            dict_extended,
            translation: kept_translation,
        }
    }

    /// Exact staleness guard: the encoding records each relation's
    /// [`Database::version`] at encode time, so *any* effective
    /// mutation since — growth, shrinkage, or an interior same-size
    /// swap — is caught in `O(1)`, in release builds too. The row
    /// count stays always-on as a second line of defence against
    /// mutations that bypass the counters (e.g. through the `&mut
    /// Relation` that [`Database::declare`] hands out); debug builds
    /// additionally re-encode every tuple as a belt-and-braces check
    /// that equal versions really do imply equal codes.
    fn check_fresh(&self, sym: Sym, enc: &EncodedRel, db: &Database) {
        assert_eq!(
            db.version(sym),
            enc.version,
            "relation {sym:?} changed since it was encoded — refresh or rebuild the encoding"
        );
        let rel = db.relation(sym).expect("encoded relation exists");
        assert_eq!(
            rel.len(),
            enc.len,
            "relation {sym:?} changed behind its version counter — refresh or rebuild the encoding"
        );
        #[cfg(debug_assertions)]
        {
            let mut codes = Vec::with_capacity(enc.width);
            for (idx, t) in rel.iter().enumerate() {
                codes.clear();
                assert!(
                    self.dict.encode_into(t, &mut codes)
                        && codes == enc.codes[idx * enc.width..(idx + 1) * enc.width],
                    "relation {sym:?} row {idx} diverged from its encoding at equal versions"
                );
            }
        }
    }

    /// Assembles one query atom's K-annotated columnar slot from the
    /// cached codes: the shared entry point of [`EncodedDb::annotate`]
    /// and the serving session's plan-node scans. `sorted_vars` is the
    /// atom's schema in ascending variable-id order and `positions`
    /// the written-order column permutation (`None` when they
    /// coincide); `ann` is called once per fact in the relation's
    /// sorted tuple order. `dup` renders a duplicate key (repeated
    /// variables in the atom) into the caller's error.
    ///
    /// # Errors
    /// [`AnnotateError::ArityMismatch`] / the rendered duplicate.
    ///
    /// # Panics
    /// Panics when the relation's [`Database::version`] moved since it
    /// was encoded (see [`EncodedDb::refresh`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn encode_slot<K, F>(
        &self,
        db: &Database,
        interner: &Interner,
        rel_name: &str,
        sorted_vars: Vec<Var>,
        positions: Option<&[usize]>,
        ann: &mut F,
        dup: impl FnOnce(Tuple) -> AnnotateError,
    ) -> Result<ColumnarRelation<K>, AnnotateError>
    where
        K: Clone + PartialEq + fmt::Debug + Send + Sync + 'static,
        F: FnMut(Sym, &Tuple) -> K,
    {
        let width = sorted_vars.len();
        let cached = interner
            .get(rel_name)
            .and_then(|s| self.rels.get(&s).map(|e| (s, e)));
        let (keys, anns): (Vec<RowCode>, Vec<K>) = match cached {
            None => {
                // The relation holds no facts — but if the *database*
                // has grown one behind the encoding's back, silence
                // would serve stale emptiness.
                if let Some(sym) = interner.get(rel_name) {
                    assert!(
                        db.relation(sym).is_none_or(|r| r.is_empty()),
                        "relation {sym:?} appeared after the encoding was built — refresh or rebuild the encoding"
                    );
                }
                (Vec::new(), Vec::new())
            }
            Some((sym, enc)) => {
                if enc.width != width {
                    return Err(AnnotateError::ArityMismatch {
                        rel: rel_name.to_owned(),
                        atom_arity: width,
                        fact_arity: enc.width,
                    });
                }
                self.check_fresh(sym, enc, db);
                let rel = db.relation(sym).expect("encoded relation exists");
                let anns: Vec<K> = rel.iter().map(|t| ann(sym, t)).collect();
                match positions {
                    // Written order is sorted-var order and codes are
                    // value-ordered: cached rows are already sorted.
                    None => (enc.codes.clone(), anns),
                    Some(positions) => {
                        let mut keys = Vec::with_capacity(enc.codes.len());
                        for r in 0..enc.len {
                            let row = &enc.codes[r * width..(r + 1) * width];
                            for &p in positions {
                                keys.push(row[p]);
                            }
                        }
                        // Reordered columns break the sort: argsort by
                        // code rows (4-byte comparisons), like the
                        // uncached build path.
                        let mut order: Vec<u32> = (0..enc.len as u32).collect();
                        order.sort_by(|&a, &b| {
                            let (a, b) = (a as usize, b as usize);
                            keys[a * width..(a + 1) * width].cmp(&keys[b * width..(b + 1) * width])
                        });
                        let mut new_keys = Vec::with_capacity(keys.len());
                        let mut old: Vec<Option<K>> = anns.into_iter().map(Some).collect();
                        let mut new_anns = Vec::with_capacity(old.len());
                        for &i in &order {
                            let i = i as usize;
                            new_keys.extend_from_slice(&keys[i * width..(i + 1) * width]);
                            new_anns.push(old[i].take().expect("each row moved once"));
                        }
                        (new_keys, new_anns)
                    }
                }
            }
        };
        // Atoms with repeated variables can key two distinct facts
        // identically — the same DuplicateFact the uncached path
        // reports.
        if let Some(i) = (1..anns.len())
            .find(|&i| keys[(i - 1) * width..i * width] == keys[i * width..(i + 1) * width])
        {
            return Err(dup(self.dict.decode(&keys[i * width..(i + 1) * width])));
        }
        let len = anns.len();
        Ok(ColumnarRelation {
            vars: sorted_vars,
            width,
            len,
            dict: Arc::clone(&self.dict),
            keys,
            anns,
        })
    }

    /// Assembles the K-annotated columnar database for `q` from the
    /// cached codes. `ann` is called once per fact, in each relation's
    /// sorted tuple order, to supply its annotation. `db` must be the
    /// database this encoding was built from (and refreshed against).
    ///
    /// # Errors
    /// [`AnnotateError::ArityMismatch`] when a query atom disagrees
    /// with the encoded relation's arity, [`AnnotateError::DuplicateFact`]
    /// when an atom with repeated variables keys two facts identically.
    ///
    /// # Panics
    /// Panics when any queried relation's [`Database::version`] moved
    /// since it was encoded: mutating the database requires an
    /// [`EncodedDb::refresh`] (or rebuild) first. The version counters
    /// make the detection exact — interior same-size mutations that the
    /// old content spot checks could miss are caught in release builds
    /// too.
    pub fn annotate<K, F>(
        &self,
        db: &Database,
        q: &Query,
        interner: &Interner,
        mut ann: F,
    ) -> Result<AnnotatedDb<ColumnarRelation<K>>, AnnotateError>
    where
        K: Clone + PartialEq + fmt::Debug + Send + Sync + 'static,
        F: FnMut(Sym, &Tuple) -> K,
    {
        let mut slots = Vec::with_capacity(q.atom_count());
        let mut slot_vars: Vec<Vec<Var>> = Vec::with_capacity(q.atom_count());
        let mut slot_positions: Vec<Option<Vec<usize>>> = Vec::with_capacity(q.atom_count());
        for atom in q.atoms() {
            let (sorted, positions) = atom.key_positions();
            slot_vars.push(sorted);
            slot_positions.push(positions);
        }
        for (slot, atom) in q.atoms().iter().enumerate() {
            let rel = self.encode_slot(
                db,
                interner,
                &atom.rel,
                slot_vars[slot].clone(),
                slot_positions[slot].as_deref(),
                &mut ann,
                |key| duplicate_error(q, interner, &slot_positions, DuplicateRow { slot, key }),
            )?;
            slots.push(rel);
        }
        Ok(AnnotatedDb {
            slots: slots.into_iter().map(Some).collect(),
        })
    }
}

/// Encodes one relation's sorted tuples into a row-major code matrix.
fn encode_rel(dict: &ValueDict, rel: &hq_db::Relation, version: u64) -> EncodedRel {
    let width = rel.arity();
    let mut codes = Vec::with_capacity(rel.len() * width);
    for t in rel.iter() {
        let ok = dict.encode_into(t, &mut codes);
        debug_assert!(ok, "dictionary covers the whole database");
    }
    EncodedRel {
        width,
        len: rel.len(),
        codes,
        version,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotated::annotate_columnar;
    use crate::storage::Storage;
    use hq_db::db_from_ints;
    use hq_query::{example_query, Query};

    fn fig1() -> (Database, Interner) {
        db_from_ints(&[
            ("R", &[&[1, 5]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4]]),
        ])
    }

    #[test]
    fn cached_slots_match_direct_annotation() {
        let (db, i) = fig1();
        let q = example_query();
        let enc = EncodedDb::new(&db);
        let cached = enc
            .annotate::<f64, _>(&db, &q, &i, |_, t| 0.1 + t.arity() as f64 * 0.2)
            .unwrap();
        let facts = db.facts();
        let direct = annotate_columnar(
            &q,
            &i,
            facts
                .iter()
                .map(|f| (f.rel, &f.tuple, 0.1 + f.tuple.arity() as f64 * 0.2)),
        )
        .unwrap();
        assert_eq!(cached.support_size(), direct.support_size());
        for (c, d) in cached.slots.iter().zip(&direct.slots) {
            let (c, d) = (c.as_ref().unwrap(), d.as_ref().unwrap());
            assert_eq!(c.rows(), d.rows());
            assert_eq!(Storage::vars(c), Storage::vars(d));
        }
    }

    #[test]
    fn one_encoding_serves_many_queries() {
        let (db, i) = fig1();
        let enc = EncodedDb::new(&db);
        for q_src in ["Q() :- S(A,C)", "Q() :- R(A,B), S(A,C)"] {
            let q = hq_query::parse_query(q_src).unwrap();
            let adb = enc.annotate::<u64, _>(&db, &q, &i, |_, _| 1).unwrap();
            assert_eq!(adb.slots.len(), q.atom_count(), "{q_src}");
        }
    }

    #[test]
    fn permuted_atom_columns_resort() {
        // U(B, A): written order is reverse var order, so cached rows
        // must be re-keyed and re-sorted.
        let q = Query::new(&[("V", &["A"]), ("U", &["B", "A"])]).unwrap();
        let (db, i) = db_from_ints(&[("U", &[&[10, 20], &[11, 3]])]);
        let enc = EncodedDb::new(&db);
        let adb = enc.annotate::<u64, _>(&db, &q, &i, |_, _| 1).unwrap();
        let rows = adb.slots[1].as_ref().unwrap().rows();
        // Keys are (A, B): (3, 11) sorts before (20, 10).
        assert_eq!(rows[0].0, Tuple::ints(&[3, 11]));
        assert_eq!(rows[1].0, Tuple::ints(&[20, 10]));
    }

    #[test]
    #[should_panic(expected = "refresh or rebuild the encoding")]
    fn stale_snapshot_detected() {
        // Same row count, same first/last tuples, different interior:
        // the old spot checks missed this shape in release builds; the
        // version guard must refuse it everywhere.
        let (mut db, i) = db_from_ints(&[("R", &[&[1], &[5], &[9]])]);
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let enc = EncodedDb::new(&db);
        let r = i.get("R").unwrap();
        db.remove(&hq_db::Fact::new(r, Tuple::ints(&[5])));
        db.insert_tuple(r, Tuple::ints(&[7]));
        let _ = enc.annotate::<u64, _>(&db, &q, &i, |_, _| 1);
    }

    #[test]
    fn refresh_re_encodes_only_changed_relations() {
        let (mut db, i) = fig1();
        let mut enc = EncodedDb::new(&db);
        assert!(enc.refresh(&db).is_noop(), "fresh encoding needs no work");
        let s = i.get("S").unwrap();
        let r = i.get("R").unwrap();
        let v_r = enc.encoded_version(r).unwrap();
        db.insert_tuple(s, Tuple::ints(&[2, 2]));
        let out = enc.refresh(&db);
        assert_eq!(out.changed, vec![s]);
        assert!(!out.dict_extended, "values 2 already in the dictionary");
        assert_eq!(enc.encoded_version(r), Some(v_r), "R untouched");
        assert_eq!(enc.encoded_version(s), Some(db.version(s)));
        // The refreshed encoding annotates like a from-scratch build.
        let q = Query::new(&[("S", &["A", "C"])]).unwrap();
        let got = enc.annotate::<u64, _>(&db, &q, &i, |_, _| 1).unwrap();
        let want = EncodedDb::new(&db)
            .annotate::<u64, _>(&db, &q, &i, |_, _| 1)
            .unwrap();
        assert_eq!(
            got.slots[0].as_ref().unwrap().rows(),
            want.slots[0].as_ref().unwrap().rows()
        );
    }

    #[test]
    fn refresh_extends_dictionary_for_novel_values() {
        let (mut db, i) = fig1();
        let mut enc = EncodedDb::new(&db);
        let before = enc.dict().len();
        let r = i.get("R").unwrap();
        // 777 is outside the original domain: the shared dictionary
        // must grow and *every* cached matrix stay consistent.
        db.insert_tuple(r, Tuple::ints(&[1, 777]));
        let out = enc.refresh(&db);
        assert!(out.dict_extended);
        assert!(enc.dict().len() > before);
        let q = example_query();
        let got = enc.annotate::<u64, _>(&db, &q, &i, |_, _| 1).unwrap();
        let want = EncodedDb::new(&db)
            .annotate::<u64, _>(&db, &q, &i, |_, _| 1)
            .unwrap();
        for (g, w) in got.slots.iter().zip(&want.slots) {
            assert_eq!(
                g.as_ref().unwrap().rows(),
                w.as_ref().unwrap().rows(),
                "refreshed encoding must equal a rebuild"
            );
        }
    }

    #[test]
    #[should_panic(expected = "appeared after the encoding was built")]
    fn relation_born_after_encoding_detected() {
        let (db, mut i) = db_from_ints(&[("R", &[&[1]])]);
        let enc = EncodedDb::new(&db);
        let mut db2 = db.clone();
        let s = i.intern("S");
        db2.insert_tuple(s, Tuple::ints(&[3]));
        let q = Query::new(&[("S", &["X"])]).unwrap();
        let _ = enc.annotate::<u64, _>(&db2, &q, &i, |_, _| 1);
    }

    #[test]
    fn arity_mismatch_reported() {
        let q = example_query();
        let (db, i) = db_from_ints(&[("R", &[&[1]])]); // R should be binary
        let enc = EncodedDb::new(&db);
        let err = enc.annotate::<u64, _>(&db, &q, &i, |_, _| 1).unwrap_err();
        assert!(matches!(err, AnnotateError::ArityMismatch { .. }));
    }
}
