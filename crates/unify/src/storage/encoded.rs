//! Cached dictionary encodings: the first slice of batched
//! multi-query serving.
//!
//! Building a columnar annotated database is dominated by the
//! instance-wide value sort and dictionary scatter-encode. Those
//! depend only on the *database*, not on the query or the annotations
//! — so when many queries are evaluated over one database, the work
//! can be done once. [`EncodedDb`] memoises, per relation identity
//! ([`Sym`]), the relation's row-major code matrix (written column
//! order, sorted tuple order) over one shared [`ValueDict`] covering
//! the whole database. [`EncodedDb::annotate`] then assembles a
//! query's annotated slots by permuting cached `u32` codes — no value
//! comparison, no dictionary build, no tuple materialisation.
//!
//! Results are bit-identical to the uncached columnar path: codes are
//! order-preserving whether the dictionary covers the whole database
//! or just the query's relations, so every comparison, fold, and
//! merge runs in exactly the same sequence.

use super::columnar::ColumnarRelation;
use super::DuplicateRow;
use crate::annotated::{duplicate_error, AnnotateError, AnnotatedDb};
use hq_db::{Database, Interner, RowCode, Sym, Tuple, Value, ValueDict};
use hq_query::Query;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One relation's cached code matrix: row-major codes in the
/// relation's *written* column order, rows in sorted tuple order.
#[derive(Debug, Clone)]
struct EncodedRel {
    width: usize,
    len: usize,
    codes: Vec<RowCode>,
}

/// A database's dictionary encoding, computed once and reused by every
/// query evaluated over that database (see
/// [`crate::engine::evaluate_encoded`]).
#[derive(Debug, Clone)]
pub struct EncodedDb {
    dict: Arc<ValueDict>,
    rels: BTreeMap<Sym, EncodedRel>,
}

impl EncodedDb {
    /// Encodes every relation of `db` over one shared dictionary.
    pub fn new(db: &Database) -> Self {
        let mut values: Vec<Value> = Vec::new();
        for (_, rel) in db.relations() {
            for t in rel.iter() {
                values.extend_from_slice(t.values());
            }
        }
        let dict = Arc::new(ValueDict::build(values));
        let mut rels = BTreeMap::new();
        for (sym, rel) in db.relations() {
            let width = rel.arity();
            let mut codes = Vec::with_capacity(rel.len() * width);
            for t in rel.iter() {
                let ok = dict.encode_into(t, &mut codes);
                debug_assert!(ok, "dictionary covers the whole database");
            }
            rels.insert(
                sym,
                EncodedRel {
                    width,
                    len: rel.len(),
                    codes,
                },
            );
        }
        EncodedDb { dict, rels }
    }

    /// The shared dictionary (tests and diagnostics).
    pub fn dict(&self) -> &ValueDict {
        &self.dict
    }

    /// Guards against use-after-mutation: cheap always-on detectors
    /// (row count, first/last tuple codes) plus a full re-encode
    /// comparison in debug builds. See the `annotate` panic docs for
    /// what release builds can and cannot catch.
    fn check_snapshot(&self, sym: Sym, enc: &EncodedRel, rel: &hq_db::Relation) {
        assert_eq!(
            rel.len(),
            enc.len,
            "database changed since EncodedDb::new — rebuild the encoding"
        );
        let mut codes = Vec::with_capacity(enc.width);
        let mut row_matches = |idx: usize, t: &Tuple| {
            codes.clear();
            self.dict.encode_into(t, &mut codes)
                && codes == enc.codes[idx * enc.width..(idx + 1) * enc.width]
        };
        if let (Some(first), Some(last)) = (rel.iter().next(), rel.iter().last()) {
            assert!(
                row_matches(0, first) && row_matches(enc.len - 1, last),
                "relation {sym:?} changed since EncodedDb::new — rebuild the encoding"
            );
        }
        #[cfg(debug_assertions)]
        for (idx, t) in rel.iter().enumerate() {
            assert!(
                row_matches(idx, t),
                "relation {sym:?} row {idx} changed since EncodedDb::new — rebuild the encoding"
            );
        }
    }

    /// Assembles the K-annotated columnar database for `q` from the
    /// cached codes. `ann` is called once per fact, in each relation's
    /// sorted tuple order, to supply its annotation. `db` must be the
    /// database this encoding was built from.
    ///
    /// # Errors
    /// [`AnnotateError::ArityMismatch`] when a query atom disagrees
    /// with the encoded relation's arity, [`AnnotateError::DuplicateFact`]
    /// when an atom with repeated variables keys two facts identically.
    ///
    /// # Panics
    /// The encoding is a **snapshot**, not a live view: mutating the
    /// database after [`EncodedDb::new`] requires rebuilding it.
    /// Release builds panic on the cheap detectors — a changed row
    /// count, or a changed first/last tuple per relation; debug builds
    /// re-encode every tuple and panic on any divergence. A same-size
    /// interior mutation that preserves each relation's first and last
    /// tuples is **not** detected in release builds and yields stale
    /// rows.
    pub fn annotate<K, F>(
        &self,
        db: &Database,
        q: &Query,
        interner: &Interner,
        mut ann: F,
    ) -> Result<AnnotatedDb<ColumnarRelation<K>>, AnnotateError>
    where
        K: Clone + PartialEq + fmt::Debug + Send + Sync,
        F: FnMut(Sym, &Tuple) -> K,
    {
        let mut slots = Vec::with_capacity(q.atom_count());
        let mut slot_positions: Vec<Option<Vec<usize>>> = Vec::with_capacity(q.atom_count());
        for (slot, atom) in q.atoms().iter().enumerate() {
            let mut sorted = atom.vars.clone();
            sorted.sort_unstable();
            let positions: Vec<usize> = sorted
                .iter()
                .map(|v| {
                    atom.vars
                        .iter()
                        .position(|w| w == v)
                        .expect("sorted vars come from the atom")
                })
                .collect();
            let identity = positions.iter().enumerate().all(|(a, &b)| a == b);
            slot_positions.push(if identity {
                None
            } else {
                Some(positions.clone())
            });
            let width = sorted.len();
            let cached = interner
                .get(&atom.rel)
                .and_then(|s| self.rels.get(&s).map(|e| (s, e)));
            let (keys, anns): (Vec<RowCode>, Vec<K>) = match cached {
                None => (Vec::new(), Vec::new()), // relation absent from the database
                Some((sym, enc)) => {
                    if enc.width != width {
                        return Err(AnnotateError::ArityMismatch {
                            rel: atom.rel.clone(),
                            atom_arity: width,
                            fact_arity: enc.width,
                        });
                    }
                    let rel = db.relation(sym).expect("encoded relation exists");
                    self.check_snapshot(sym, enc, rel);
                    let anns: Vec<K> = rel.iter().map(|t| ann(sym, t)).collect();
                    if identity {
                        // Written order is sorted-var order and codes are
                        // value-ordered: cached rows are already sorted.
                        (enc.codes.clone(), anns)
                    } else {
                        let mut keys = Vec::with_capacity(enc.codes.len());
                        for r in 0..enc.len {
                            let row = &enc.codes[r * width..(r + 1) * width];
                            for &p in &positions {
                                keys.push(row[p]);
                            }
                        }
                        // Reordered columns break the sort: argsort by
                        // code rows (4-byte comparisons), like the
                        // uncached build path.
                        let mut order: Vec<u32> = (0..enc.len as u32).collect();
                        order.sort_by(|&a, &b| {
                            let (a, b) = (a as usize, b as usize);
                            keys[a * width..(a + 1) * width].cmp(&keys[b * width..(b + 1) * width])
                        });
                        let mut new_keys = Vec::with_capacity(keys.len());
                        let mut old: Vec<Option<K>> = anns.into_iter().map(Some).collect();
                        let mut new_anns = Vec::with_capacity(old.len());
                        for &i in &order {
                            let i = i as usize;
                            new_keys.extend_from_slice(&keys[i * width..(i + 1) * width]);
                            new_anns.push(old[i].take().expect("each row moved once"));
                        }
                        (new_keys, new_anns)
                    }
                }
            };
            // Atoms with repeated variables can key two distinct facts
            // identically — the same DuplicateFact the uncached path
            // reports.
            if let Some(i) = (1..anns.len())
                .find(|&i| keys[(i - 1) * width..i * width] == keys[i * width..(i + 1) * width])
            {
                return Err(duplicate_error(
                    q,
                    interner,
                    &slot_positions,
                    DuplicateRow {
                        slot,
                        key: self.dict.decode(&keys[i * width..(i + 1) * width]),
                    },
                ));
            }
            let len = anns.len();
            slots.push(ColumnarRelation {
                vars: sorted,
                width,
                len,
                dict: Arc::clone(&self.dict),
                keys,
                anns,
            });
        }
        Ok(AnnotatedDb {
            slots: slots.into_iter().map(Some).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotated::annotate_columnar;
    use crate::storage::Storage;
    use hq_db::db_from_ints;
    use hq_query::{example_query, Query};

    fn fig1() -> (Database, Interner) {
        db_from_ints(&[
            ("R", &[&[1, 5]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4]]),
        ])
    }

    #[test]
    fn cached_slots_match_direct_annotation() {
        let (db, i) = fig1();
        let q = example_query();
        let enc = EncodedDb::new(&db);
        let cached = enc
            .annotate::<f64, _>(&db, &q, &i, |_, t| 0.1 + t.arity() as f64 * 0.2)
            .unwrap();
        let facts = db.facts();
        let direct = annotate_columnar(
            &q,
            &i,
            facts
                .iter()
                .map(|f| (f.rel, &f.tuple, 0.1 + f.tuple.arity() as f64 * 0.2)),
        )
        .unwrap();
        assert_eq!(cached.support_size(), direct.support_size());
        for (c, d) in cached.slots.iter().zip(&direct.slots) {
            let (c, d) = (c.as_ref().unwrap(), d.as_ref().unwrap());
            assert_eq!(c.rows(), d.rows());
            assert_eq!(Storage::vars(c), Storage::vars(d));
        }
    }

    #[test]
    fn one_encoding_serves_many_queries() {
        let (db, i) = fig1();
        let enc = EncodedDb::new(&db);
        for q_src in ["Q() :- S(A,C)", "Q() :- R(A,B), S(A,C)"] {
            let q = hq_query::parse_query(q_src).unwrap();
            let adb = enc.annotate::<u64, _>(&db, &q, &i, |_, _| 1).unwrap();
            assert_eq!(adb.slots.len(), q.atom_count(), "{q_src}");
        }
    }

    #[test]
    fn permuted_atom_columns_resort() {
        // U(B, A): written order is reverse var order, so cached rows
        // must be re-keyed and re-sorted.
        let q = Query::new(&[("V", &["A"]), ("U", &["B", "A"])]).unwrap();
        let (db, i) = db_from_ints(&[("U", &[&[10, 20], &[11, 3]])]);
        let enc = EncodedDb::new(&db);
        let adb = enc.annotate::<u64, _>(&db, &q, &i, |_, _| 1).unwrap();
        let rows = adb.slots[1].as_ref().unwrap().rows();
        // Keys are (A, B): (3, 11) sorts before (20, 10).
        assert_eq!(rows[0].0, Tuple::ints(&[3, 11]));
        assert_eq!(rows[1].0, Tuple::ints(&[20, 10]));
    }

    #[test]
    #[should_panic(expected = "rebuild the encoding")]
    fn stale_snapshot_detected() {
        // Same row count, different content: the snapshot guard must
        // refuse rather than silently pair stale codes with new facts.
        let (mut db, i) = db_from_ints(&[("R", &[&[1], &[2]])]);
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let enc = EncodedDb::new(&db);
        let r = i.get("R").unwrap();
        db.remove(&hq_db::Fact::new(r, Tuple::ints(&[2])));
        db.insert_tuple(r, Tuple::ints(&[7]));
        let _ = enc.annotate::<u64, _>(&db, &q, &i, |_, _| 1);
    }

    #[test]
    fn arity_mismatch_reported() {
        let q = example_query();
        let (db, i) = db_from_ints(&[("R", &[&[1]])]); // R should be binary
        let enc = EncodedDb::new(&db);
        let err = enc.annotate::<u64, _>(&db, &q, &i, |_, _| 1).unwrap_err();
        assert!(matches!(err, AnnotateError::ArityMismatch { .. }));
    }
}
