//! The ordered-map storage backend: one `BTreeMap<Tuple, K>` per
//! relation.
//!
//! This is the seed engine's original layout, kept as the
//! deterministic differential oracle and as the better layout for
//! point-update-heavy workloads (the incremental maintainer touches
//! `O(dirty)` keys per update here). Its weakness is exactly what the
//! columnar backend fixes: every projection allocates a fresh boxed
//! key tuple and every insert pays an `O(log n)` tree walk.

use super::{DuplicateRow, OwnedSlot, Storage};
use crate::engine::EngineStats;
use hq_db::{Tuple, Value};
use hq_monoid::TwoMonoid;
use hq_query::Var;
use std::collections::BTreeMap;

/// A relation annotated with values from a 2-monoid carrier `K`,
/// storing its support in an ordered map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapRelation<K> {
    /// The schema: variable ids in ascending order.
    pub vars: Vec<Var>,
    /// Support tuples (keyed in `vars` order) and their annotations.
    pub map: BTreeMap<Tuple, K>,
}

impl<K> MapRelation<K> {
    /// An empty relation over the given (sorted) variable list.
    pub fn empty(vars: Vec<Var>) -> Self {
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be sorted");
        MapRelation {
            vars,
            map: BTreeMap::new(),
        }
    }

    /// Support size `|supp(R)|` (Definition 6.5).
    pub fn support_size(&self) -> usize {
        self.map.len()
    }
}

impl<K: Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static> Storage for MapRelation<K> {
    type Ann = K;
    /// The ordered map keys by tuple already; the native key *is* the
    /// tuple.
    type Key = Tuple;

    fn build_slots(slots: Vec<OwnedSlot<K>>) -> Result<Vec<Self>, DuplicateRow> {
        use std::collections::btree_map::Entry;
        slots
            .into_iter()
            .enumerate()
            .map(|(slot, (vars, rows))| {
                let mut rel = MapRelation::empty(vars);
                for (key, k) in rows {
                    match rel.map.entry(key) {
                        Entry::Vacant(e) => {
                            e.insert(k);
                        }
                        Entry::Occupied(e) => {
                            return Err(DuplicateRow {
                                slot,
                                key: e.key().clone(),
                            });
                        }
                    }
                }
                Ok(rel)
            })
            .collect()
    }

    fn vars(&self) -> &[Var] {
        &self.vars
    }

    fn support_size(&self) -> usize {
        self.map.len()
    }

    fn project_out<M: TwoMonoid<Elem = K>>(
        self,
        monoid: &M,
        var: Var,
        stats: &mut EngineStats,
    ) -> Self {
        let pos = self
            .vars
            .iter()
            .position(|&v| v == var)
            .expect("projected variable must be in the relation schema");
        let keep: Vec<usize> = (0..self.vars.len()).filter(|&i| i != pos).collect();
        let new_vars: Vec<Var> = keep.iter().map(|&i| self.vars[i]).collect();
        let mut out = MapRelation::empty(new_vars);
        for (tuple, k) in self.map {
            let key = tuple.project(&keep);
            match out.map.get_mut(&key) {
                Some(acc) => {
                    stats.add_ops += 1;
                    monoid.add_assign(acc, &k);
                }
                None => {
                    out.map.insert(key, k);
                }
            }
        }
        // Prune zeros: annotation 0 is semantically "absent" (⊕-identity
        // on every future aggregation; merges fill with 0 anyway), and
        // pruning realises Lemma 6.6's support semantics. The predicate
        // is the monoid's, so all backends agree on IEEE-754 edge cases.
        out.map.retain(|_, v| !monoid.is_zero(v));
        out
    }

    fn merge<M: TwoMonoid<Elem = K>>(
        self,
        monoid: &M,
        mut right: Self,
        stats: &mut EngineStats,
    ) -> Self {
        assert_eq!(
            self.vars, right.vars,
            "Rule 2 merges atoms with identical variable sets"
        );
        let zero = monoid.zero();
        let annihilating = monoid.annihilating();
        let mut out = MapRelation::empty(self.vars.clone());
        for (tuple, lk) in self.map {
            match right.map.remove(&tuple) {
                Some(rk) => {
                    stats.mul_ops += 1;
                    let v = monoid.mul(&lk, &rk);
                    if !monoid.is_zero(&v) {
                        out.map.insert(tuple, v);
                    }
                }
                // One-sided row: `lk ⊗ 0` is 0 for annihilating monoids,
                // so the ⊗ (and its op count) is skipped outright.
                None if annihilating => {}
                None => {
                    stats.mul_ops += 1;
                    let v = monoid.mul(&lk, &zero);
                    if !monoid.is_zero(&v) {
                        out.map.insert(tuple, v);
                    }
                }
            }
        }
        for (tuple, rk) in right.map {
            if annihilating {
                continue;
            }
            stats.mul_ops += 1;
            let v = monoid.mul(&zero, &rk);
            if !monoid.is_zero(&v) {
                out.map.insert(tuple, v);
            }
        }
        out
    }

    fn nullary_value<M: TwoMonoid<Elem = K>>(&self, monoid: &M) -> K {
        self.map
            .get(&Tuple::empty())
            .cloned()
            .unwrap_or_else(|| monoid.zero())
    }

    fn rows(&self) -> Vec<(Tuple, K)> {
        self.map
            .iter()
            .map(|(t, k)| (t.clone(), k.clone()))
            .collect()
    }

    fn get(&self, key: &Tuple) -> Option<K> {
        self.map.get(key).cloned()
    }

    fn set(&mut self, key: &Tuple, value: Option<K>) {
        match value {
            Some(v) => {
                self.map.insert(key.clone(), v);
            }
            None => {
                self.map.remove(key);
            }
        }
    }

    fn group_rows(&self, keep: &[usize], group: &Tuple) -> Vec<K> {
        debug_assert_eq!(keep.len(), group.arity());
        debug_assert!(keep.windows(2).all(|w| w[0] < w[1]));
        // The leading literal run of `keep` is a key prefix, so the
        // ordered map serves it as a range query: a shorter tuple
        // sorts immediately before all of its extensions, making the
        // prefix itself the range's start bound.
        let lead = keep
            .iter()
            .enumerate()
            .take_while(|&(i, &p)| i == p)
            .count();
        let prefix = Tuple::from(group.values()[..lead].to_vec());
        self.map
            .range(prefix..)
            .take_while(|(t, _)| t.values()[..lead] == group.values()[..lead])
            .filter(|(t, _)| {
                keep[lead..]
                    .iter()
                    .zip(&group.values()[lead..])
                    .all(|(&p, v)| t.get(p) == *v)
            })
            .map(|(_, k)| k.clone())
            .collect()
    }

    fn key_of(&self, key: &Tuple) -> Option<Tuple> {
        Some(key.clone())
    }

    fn project_key(key: &Tuple, keep: &[usize]) -> Tuple {
        key.project(keep)
    }

    fn get_key(&self, key: &Tuple) -> Option<K> {
        self.get(key)
    }

    fn set_key(&mut self, key: &Tuple, value: Option<K>) {
        self.set(key, value);
    }

    fn group_rows_key(&self, keep: &[usize], group: &Tuple) -> Vec<K> {
        self.group_rows(keep, group)
    }

    fn prepare_values(&mut self, _values: &[Value]) -> bool {
        false // no dictionary: tuples carry their values directly
    }

    fn storage_bytes(&self) -> usize {
        // Per entry: the boxed value row, the annotation, and the tree
        // bookkeeping approximated by the entry struct itself.
        let arity = self.vars.len();
        self.map.len()
            * (arity * std::mem::size_of::<Value>()
                + std::mem::size_of::<Tuple>()
                + std::mem::size_of::<K>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_monoid::{ProbMonoid, SatCountMonoid};

    #[test]
    fn project_prunes_negative_zero_but_keeps_nan() {
        let rows = vec![
            (Tuple::ints(&[1, 1]), 0.5f64),
            (Tuple::ints(&[1, 2]), -0.5),
            (Tuple::ints(&[2, 1]), f64::NAN),
        ];
        let rel = MapRelation::build_slots(vec![(vec![Var(0), Var(1)], rows)])
            .unwrap()
            .pop()
            .unwrap();
        let mut stats = EngineStats::default();
        // Group 1 folds to 0.5 ⊕ -0.5: 1-(1-0.5)(1+0.5) = 0.25... use
        // the raw values: this is not a probability instance, we only
        // care about the pruning predicate. Project var 1 out.
        let out = rel.project_out(&ProbMonoid, Var(1), &mut stats);
        // NaN row survives (never equal to zero), group 1 folds to a
        // non-zero value.
        assert_eq!(out.support_size(), 2);
        assert!(out.get(&Tuple::ints(&[2])).unwrap().is_nan());
    }

    #[test]
    fn merge_zero_fills_for_non_annihilating_monoids() {
        // The #Sat monoid needs `⋆ ⊗ 0 ≠ 0`: a one-sided fact still
        // contributes subset counts.
        let m = SatCountMonoid::new(1);
        let left = vec![(Tuple::ints(&[1]), m.star())];
        let right = vec![(Tuple::ints(&[2]), m.star())];
        let mut slots =
            MapRelation::build_slots(vec![(vec![Var(0)], left), (vec![Var(0)], right)]).unwrap();
        let r = slots.pop().unwrap();
        let l = slots.pop().unwrap();
        let mut stats = EngineStats::default();
        let out = l.merge(&m, r, &mut stats);
        assert_eq!(out.support_size(), 2, "0-filled rows must survive");
        assert_eq!(stats.mul_ops, 2);
    }
}
