//! Deterministic parallel sharded execution over the columnar layout.
//!
//! [`ShardedColumnar`] wraps a [`ColumnarRelation`] with a
//! [`Parallelism`] degree and fans each Rule 1 grouped fold and Rule 2
//! sort-merge out over the persistent work-stealing worker pool
//! ([`crate::pool`]) — tasks are submitted as `'static` closures over
//! `Arc`-shared inputs, so a rule application spawns **zero** threads
//! once the pool is warm. The row matrices are already sorted, which
//! makes them *partition-ready*: cut them into `S` contiguous shards
//! and every rule application decomposes into `S` independent
//! sub-applications — **provided no logical unit of work straddles a
//! cut**:
//!
//! * **Rule 1** (`project_out`): the unit is a ⊕-group. In the
//!   least-significant-column case groups are runs of equal
//!   `width − 1`-column prefixes, so cuts are only placed where the
//!   prefix changes. In the general-column case the projected scratch
//!   matrix is argsorted first — a parallel merge sort over the same
//!   pool: contiguous index ranges are stable-sorted concurrently,
//!   then pairwise-merged left-preferring, which reproduces *the*
//!   unique stable permutation `std`'s sequential sort yields, at any
//!   chunk count — and the *argsort order* is cut on group boundaries.
//! * **Rule 2** (`merge`): the unit is a key. Boundary keys are drawn
//!   from the larger side at even row positions and **both** sides are
//!   partitioned at the first row ≥ each boundary key, so equal keys
//!   always meet inside one shard and the 0-filled outer join of a
//!   non-annihilating monoid stays self-contained per shard.
//!
//! Each worker runs *the same kernel* as the sequential backend
//! ([`columnar::fold_drop_last`], [`columnar::fold_sorted_groups`],
//! [`columnar::merge_ranges`]) over its range, into its own output
//! buffers and its own [`EngineStats`]. Outputs are concatenated and
//! stats summed **in fixed shard order** after all workers join, so
//! results (floats included) and op counts are bit-identical to the
//! sequential columnar backend — the sequential engine is the oracle,
//! and `tests/differential_parallel.rs` pins the equivalence at every
//! thread count.

use super::columnar::{self, ColumnarRelation};
use super::{DuplicateRow, OwnedSlot, Parallelism, Storage};
use crate::engine::EngineStats;
use crate::pool::{self, BatchTask};
use hq_db::{RowCode, Tuple, Value};
use hq_monoid::TwoMonoid;
use hq_query::Var;
use std::fmt;
use std::sync::Arc;

/// A columnar relation executed shard-parallel: Rule 1 and Rule 2
/// submit up to [`Parallelism::threads`] shard tasks to the
/// persistent worker [`pool`](crate::pool), with results bit-identical
/// to the sequential [`ColumnarRelation`] at every thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedColumnar<K> {
    inner: ColumnarRelation<K>,
    par: Parallelism,
}

impl<K> ShardedColumnar<K> {
    /// Wraps a columnar relation with an execution parallelism degree.
    pub fn new(inner: ColumnarRelation<K>, par: Parallelism) -> Self {
        ShardedColumnar { inner, par }
    }

    /// The wrapped sequential relation.
    pub fn into_inner(self) -> ColumnarRelation<K> {
        self.inner
    }

    /// A view of the wrapped sequential relation.
    pub fn inner(&self) -> &ColumnarRelation<K> {
        &self.inner
    }

    /// Mutable access to the wrapped sequential relation (the serving
    /// layer's scan patches and relabels go through this).
    pub fn inner_mut(&mut self) -> &mut ColumnarRelation<K> {
        &mut self.inner
    }

    /// The configured parallelism degree.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }
}

/// Number of shards for `len` rows: never more than the worker
/// budget, and never so many that a shard falls below the
/// [`Parallelism::min_shard_rows`] work-size floor (spawn/join costs
/// would dominate the kernel work). `1` means run sequentially.
fn shard_count(par: Parallelism, len: usize) -> usize {
    par.threads.min(len / par.min_shard_rows()).max(1)
}

/// Candidate-and-adjust split points: `shards + 1` ascending bounds
/// over `0..len` (first `0`, last `len`), where each interior candidate
/// `len·s/S` is advanced past rows for which `same_group(i)` says row
/// `i` must stay in the same shard as row `i − 1`. Bounds are strictly
/// ascending (degenerate candidates are dropped, so fewer than `shards`
/// shards may result — e.g. a single giant group yields one shard).
fn split_points(len: usize, shards: usize, same_group: impl Fn(usize) -> bool) -> Vec<usize> {
    let mut bounds = Vec::with_capacity(shards + 1);
    bounds.push(0usize);
    for s in 1..shards {
        let mut i = len * s / shards;
        if i <= *bounds.last().expect("bounds non-empty") {
            continue;
        }
        while i < len && same_group(i) {
            i += 1;
        }
        if i < len && i > *bounds.last().expect("bounds non-empty") {
            bounds.push(i);
        }
    }
    bounds.push(len);
    bounds
}

/// Splits an owned column into per-shard chunks along `bounds`
/// (ascending, `bounds[0] == 0`, `bounds.last() == v.len()`).
fn split_by_bounds<K>(mut v: Vec<K>, bounds: &[usize]) -> Vec<Vec<K>> {
    let mut out = Vec::with_capacity(bounds.len() - 1);
    for w in bounds.windows(2).rev() {
        debug_assert!(w[0] <= w[1]);
        out.push(v.split_off(w[0]));
    }
    out.reverse();
    out
}

/// First row of `rel` whose key is `≥ key` (binary search; `rel.len`
/// when all rows are smaller).
fn lower_bound<K>(rel: &ColumnarRelation<K>, key: &[RowCode]) -> usize {
    let (mut lo, mut hi) = (0usize, rel.len);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if rel.row(mid) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Co-partitions both merge sides at boundary keys drawn from the
/// larger side, returning parallel bound vectors (`S + 1` entries
/// each, possibly fewer when boundaries coincide). Shard `k` is
/// `left[lb[k]..lb[k+1]] ⋈ right[rb[k]..rb[k+1]]`; every key lands in
/// exactly one shard on each side, and equal keys land in the same
/// shard index.
fn merge_bounds<K>(
    left: &ColumnarRelation<K>,
    right: &ColumnarRelation<K>,
    shards: usize,
) -> (Vec<usize>, Vec<usize>) {
    let big = if left.len >= right.len { left } else { right };
    let mut lb = vec![0usize];
    let mut rb = vec![0usize];
    for s in 1..shards {
        let i = big.len * s / shards;
        if i == 0 || i >= big.len {
            continue;
        }
        let key = big.row(i);
        let lpos = lower_bound(left, key);
        let rpos = lower_bound(right, key);
        // lower_bound is monotone in the (ascending) boundary key, so
        // the pair sequence is non-decreasing; drop exact repeats.
        if lpos > *lb.last().expect("non-empty") || rpos > *rb.last().expect("non-empty") {
            lb.push(lpos);
            rb.push(rpos);
        }
    }
    lb.push(left.len);
    rb.push(right.len);
    (lb, rb)
}

/// Joins per-shard `(keys, anns, stats)` outputs in fixed shard order:
/// concatenated matrices, stats summed left to right.
fn concat_shards<K>(
    parts: Vec<(Vec<RowCode>, Vec<K>, EngineStats)>,
    stats: &mut EngineStats,
) -> (Vec<RowCode>, Vec<K>) {
    let mut out_keys = Vec::with_capacity(parts.iter().map(|p| p.0.len()).sum());
    let mut out_anns = Vec::with_capacity(parts.iter().map(|p| p.1.len()).sum());
    for (keys, anns, st) in parts {
        out_keys.extend(keys);
        out_anns.extend(anns);
        stats.add_ops += st.add_ops;
        stats.mul_ops += st.mul_ops;
    }
    (out_keys, out_anns)
}

/// One shard task's output: its slice of the result matrix plus its
/// private op counts, recombined in fixed shard order afterwards.
type ShardPart<K> = (Vec<RowCode>, Vec<K>, EngineStats);

/// Merges two argsorted index runs, preferring the **left** run on
/// ties. Runs are contiguous ascending index ranges with the left run
/// holding the smaller indices, so left-preference keeps equal rows in
/// ascending original-index order — stability, preserved bottom-up.
fn merge_sorted_runs(scratch: &[RowCode], nw: usize, left: &[u32], right: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        if columnar::scratch_row_cmp(scratch, nw, right[j], left[i]) == std::cmp::Ordering::Less {
            out.push(right[j]);
            j += 1;
        } else {
            out.push(left[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
    out
}

/// Parallel stable argsort of the projected scratch matrix: `chunks`
/// contiguous index ranges are stable-sorted as pool tasks, then
/// adjacent runs are pairwise-merged (also as pool tasks) until one
/// remains. The result is *the* unique permutation ordered by scratch
/// row with ties ascending by original index — exactly what the
/// sequential `sort_by` in [`columnar::project_scratch`] produces — so
/// the argsort order, and everything folded from it, is independent of
/// the chunk count and thread count.
fn argsort_par(scratch: &Arc<Vec<RowCode>>, nw: usize, len: usize, chunks: usize) -> Vec<u32> {
    if chunks <= 1 || len < 2 {
        let mut order: Vec<u32> = (0..len as u32).collect();
        order.sort_by(|&a, &b| columnar::scratch_row_cmp(scratch, nw, a, b));
        return order;
    }
    let bounds: Vec<usize> = (0..=chunks).map(|c| len * c / chunks).collect();
    let sort_tasks: Vec<BatchTask<Vec<u32>>> = bounds
        .windows(2)
        .filter(|w| w[0] < w[1])
        .map(|w| {
            let (a, b) = (w[0] as u32, w[1] as u32);
            let scratch = Arc::clone(scratch);
            Box::new(move || {
                let mut order: Vec<u32> = (a..b).collect();
                order.sort_by(|&x, &y| columnar::scratch_row_cmp(&scratch, nw, x, y));
                order
            }) as BatchTask<Vec<u32>>
        })
        .collect();
    let mut runs = pool::run_batch(chunks, sort_tasks);
    while runs.len() > 1 {
        let mut tasks: Vec<BatchTask<Vec<u32>>> = Vec::with_capacity(runs.len() / 2);
        let mut leftover = None;
        let mut iter = runs.into_iter();
        while let Some(left) = iter.next() {
            match iter.next() {
                Some(right) => {
                    let scratch = Arc::clone(scratch);
                    tasks.push(Box::new(move || {
                        merge_sorted_runs(&scratch, nw, &left, &right)
                    }));
                }
                None => leftover = Some(left),
            }
        }
        let degree = tasks.len();
        runs = pool::run_batch(degree, tasks);
        // The odd run out is the highest index range; it stays last.
        runs.extend(leftover);
    }
    runs.pop().unwrap_or_default()
}

impl<K: Clone + PartialEq + fmt::Debug + Send + Sync + 'static + 'static> Storage
    for ShardedColumnar<K>
{
    type Ann = K;
    /// Same code-row key as the wrapped sequential relation.
    type Key = Vec<RowCode>;

    fn build_slots(slots: Vec<OwnedSlot<K>>) -> Result<Vec<Self>, DuplicateRow> {
        // `build_slots` carries no execution configuration, so slots
        // built through it run sequentially; the engine's parallel
        // paths construct sharded slots via `AnnotatedDb::into_sharded`
        // instead, which carries the degree.
        Ok(ColumnarRelation::build_slots(slots)?
            .into_iter()
            .map(|inner| ShardedColumnar::new(inner, Parallelism::default()))
            .collect())
    }

    fn vars(&self) -> &[Var] {
        Storage::vars(&self.inner)
    }

    fn support_size(&self) -> usize {
        self.inner.support_size()
    }

    fn project_out<M: TwoMonoid<Elem = K>>(
        self,
        monoid: &M,
        var: Var,
        stats: &mut EngineStats,
    ) -> Self {
        let par = self.par;
        let shards = shard_count(par, self.inner.len);
        if shards <= 1 {
            return ShardedColumnar::new(self.inner.project_out(monoid, var, stats), par);
        }
        let pos = self
            .inner
            .vars
            .iter()
            .position(|&v| v == var)
            .expect("projected variable must be in the relation schema");
        let ColumnarRelation {
            mut vars,
            width,
            len,
            dict,
            keys,
            anns,
        } = self.inner;
        vars.remove(pos);
        let nw = width - 1;
        let (out_keys, out_anns) = if pos == width - 1 {
            // Contiguous-group fold: cut where the kept prefix changes.
            let bounds = split_points(len, shards, |i| {
                keys[(i - 1) * width..(i - 1) * width + nw] == keys[i * width..i * width + nw]
            });
            let chunks = split_by_bounds(anns, &bounds);
            let keys = Arc::new(keys);
            let tasks: Vec<BatchTask<ShardPart<K>>> = bounds
                .windows(2)
                .zip(chunks)
                .map(|(w, chunk)| {
                    let base = w[0];
                    let keys = Arc::clone(&keys);
                    let monoid = monoid.clone();
                    Box::new(move || {
                        let mut st = EngineStats::default();
                        let (ok, oa) =
                            columnar::fold_drop_last(&monoid, &keys, width, base, chunk, &mut st);
                        (ok, oa, st)
                    }) as BatchTask<ShardPart<K>>
                })
                .collect();
            concat_shards(pool::run_batch(shards, tasks), stats)
        } else {
            // General column: parallel merge-sort argsort over the
            // pool, then shard the sorted order on group boundaries.
            // Workers clone annotations from the shared column — exact
            // values, so results stay identical.
            let scratch = Arc::new(columnar::project_scratch_matrix(&keys, width, pos));
            let order = Arc::new(argsort_par(&scratch, nw, len, shards));
            let bounds = split_points(len, shards, |i| {
                let (a, b) = (order[i - 1] as usize, order[i] as usize);
                scratch[a * nw..(a + 1) * nw] == scratch[b * nw..(b + 1) * nw]
            });
            let anns = Arc::new(anns);
            let tasks: Vec<BatchTask<ShardPart<K>>> = bounds
                .windows(2)
                .map(|w| {
                    let (a, b) = (w[0], w[1]);
                    let scratch = Arc::clone(&scratch);
                    let order = Arc::clone(&order);
                    let anns = Arc::clone(&anns);
                    let monoid = monoid.clone();
                    Box::new(move || {
                        let mut st = EngineStats::default();
                        let mut take = |idx: usize| anns[idx].clone();
                        let (ok, oa) = columnar::fold_sorted_groups(
                            &monoid,
                            &scratch,
                            nw,
                            &order[a..b],
                            &mut take,
                            &mut st,
                        );
                        (ok, oa, st)
                    }) as BatchTask<ShardPart<K>>
                })
                .collect();
            concat_shards(pool::run_batch(shards, tasks), stats)
        };
        let out_len = out_anns.len();
        ShardedColumnar::new(
            ColumnarRelation {
                vars,
                width: nw,
                len: out_len,
                dict,
                keys: out_keys,
                anns: out_anns,
            },
            par,
        )
    }

    fn merge<M: TwoMonoid<Elem = K>>(
        self,
        monoid: &M,
        right: Self,
        stats: &mut EngineStats,
    ) -> Self {
        let par = self.par;
        let shards = shard_count(par, self.inner.len.max(right.inner.len));
        if shards <= 1 {
            return ShardedColumnar::new(self.inner.merge(monoid, right.inner, stats), par);
        }
        let (left, rrel) = (self.inner, right.inner);
        assert_eq!(
            left.vars, rrel.vars,
            "Rule 2 merges atoms with identical variable sets"
        );
        debug_assert_eq!(
            *left.dict, *rrel.dict,
            "merged relations must share one instance dictionary"
        );
        let (lb, rb) = merge_bounds(&left, &rrel, shards);
        let (vars, width, dict) = (left.vars.clone(), left.width, Arc::clone(&left.dict));
        let (left, rrel) = (Arc::new(left), Arc::new(rrel));
        let tasks: Vec<BatchTask<ShardPart<K>>> = lb
            .windows(2)
            .zip(rb.windows(2))
            .map(|(lw, rw)| {
                let (li, ri) = (lw[0]..lw[1], rw[0]..rw[1]);
                let left = Arc::clone(&left);
                let rrel = Arc::clone(&rrel);
                let monoid = monoid.clone();
                Box::new(move || {
                    let mut st = EngineStats::default();
                    let (ok, oa) = columnar::merge_ranges(&monoid, &left, &rrel, li, ri, &mut st);
                    (ok, oa, st)
                }) as BatchTask<ShardPart<K>>
            })
            .collect();
        let (out_keys, out_anns) = concat_shards(pool::run_batch(shards, tasks), stats);
        let len = out_anns.len();
        ShardedColumnar::new(
            ColumnarRelation {
                vars,
                width,
                len,
                dict,
                keys: out_keys,
                anns: out_anns,
            },
            par,
        )
    }

    fn nullary_value<M: TwoMonoid<Elem = K>>(&self, monoid: &M) -> K {
        self.inner.nullary_value(monoid)
    }

    fn rows(&self) -> Vec<(Tuple, K)> {
        self.inner.rows()
    }

    fn get(&self, key: &Tuple) -> Option<K> {
        self.inner.get(key)
    }

    fn set(&mut self, key: &Tuple, value: Option<K>) {
        self.inner.set(key, value);
    }

    fn group_rows(&self, keep: &[usize], group: &Tuple) -> Vec<K> {
        // The gather is a binary-searched slice of the shared sorted
        // matrix (the same boundary structure the shard cuts use), and
        // the ⊕-fold a single group feeds must stay *sequential*: the
        // determinism guarantee fixes the fold sequence, so splitting
        // one group across workers would change the ⊕ association
        // order and op counts. Dirty refolds therefore run on the
        // sequential kernel regardless of the parallelism degree.
        self.inner.group_rows(keep, group)
    }

    fn key_of(&self, key: &Tuple) -> Option<Vec<RowCode>> {
        self.inner.key_of(key)
    }

    fn project_key(key: &Vec<RowCode>, keep: &[usize]) -> Vec<RowCode> {
        ColumnarRelation::<K>::project_key(key, keep)
    }

    fn get_key(&self, key: &Vec<RowCode>) -> Option<K> {
        self.inner.get_key(key)
    }

    fn set_key(&mut self, key: &Vec<RowCode>, value: Option<K>) {
        self.inner.set_key(key, value);
    }

    fn group_rows_key(&self, keep: &[usize], group: &Vec<RowCode>) -> Vec<K> {
        self.inner.group_rows_key(keep, group)
    }

    fn prepare_values(&mut self, values: &[Value]) -> bool {
        self.inner.prepare_values(values)
    }

    fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_monoid::{BagMaxMonoid, CountMonoid, ProbMonoid, SatCountMonoid};

    fn columnar_slots<K: Clone + PartialEq + fmt::Debug + Send + Sync + 'static>(
        slots: Vec<OwnedSlot<K>>,
    ) -> Vec<ColumnarRelation<K>> {
        ColumnarRelation::build_slots(slots).unwrap()
    }

    fn sharded<K: Clone + PartialEq + fmt::Debug + Send + Sync + 'static>(
        rel: &ColumnarRelation<K>,
        threads: usize,
    ) -> ShardedColumnar<K> {
        ShardedColumnar::new(rel.clone(), Parallelism::fine_grained(threads))
    }

    /// A 2-column relation with repeated leading codes so prefix
    /// groups actually span candidate cut points.
    fn grouped_rows(n: usize) -> Vec<(Tuple, f64)> {
        (0..n)
            .map(|i| {
                let g = (i / 3) as i64;
                let y = (i % 3) as i64 * 7 + (i as i64 % 2);
                (Tuple::ints(&[g, y]), 0.05 + 0.9 * (i as f64) / n as f64)
            })
            .collect()
    }

    #[test]
    fn split_points_respect_groups() {
        // Ten rows in groups of sizes 4, 4, 2: a cut inside a group is
        // illegal and must be pushed to the next group start.
        let groups = [0usize, 0, 0, 0, 1, 1, 1, 1, 2, 2];
        for shards in 1..=10 {
            let bounds = split_points(groups.len(), shards, |i| groups[i - 1] == groups[i]);
            assert_eq!(*bounds.first().unwrap(), 0);
            assert_eq!(*bounds.last().unwrap(), groups.len());
            assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
            for &b in &bounds[1..bounds.len() - 1] {
                assert_ne!(groups[b - 1], groups[b], "cut inside a group: {bounds:?}");
            }
        }
    }

    #[test]
    fn project_out_identical_at_every_thread_count() {
        let vars = vec![Var(0), Var(1)];
        let rel = columnar_slots(vec![(vars, grouped_rows(37))])
            .pop()
            .unwrap();
        for var in [0usize, 1] {
            let mut seq_stats = EngineStats::default();
            let seq = rel
                .clone()
                .project_out(&ProbMonoid, Var(var), &mut seq_stats);
            for threads in [1usize, 2, 3, 5, 16] {
                let mut st = EngineStats::default();
                let got = sharded(&rel, threads).project_out(&ProbMonoid, Var(var), &mut st);
                assert_eq!(got.inner, seq, "var {var} threads {threads}");
                assert_eq!(st, seq_stats, "var {var} threads {threads}");
            }
        }
    }

    #[test]
    fn merge_identical_at_every_thread_count_both_kinds() {
        let vars = vec![Var(0), Var(1)];
        // Overlapping but distinct supports on the two sides.
        let left_rows: Vec<(Tuple, u64)> = (0..30)
            .map(|i| (Tuple::ints(&[i / 2, i % 5]), (i + 1) as u64))
            .collect();
        let right_rows: Vec<(Tuple, u64)> = (5..35)
            .map(|i| (Tuple::ints(&[i / 2, i % 5]), (2 * i + 1) as u64))
            .collect();
        let slots = columnar_slots(vec![(vars.clone(), left_rows), (vars.clone(), right_rows)]);
        let (l, r) = (slots[0].clone(), slots[1].clone());
        // Annihilating (counting) and non-annihilating (bag-max, which
        // 0-fills one-sided rows) monoids.
        let mut seq_stats = EngineStats::default();
        let seq = l.clone().merge(&CountMonoid, r.clone(), &mut seq_stats);
        let bm = BagMaxMonoid::new(3);
        let to_bm = |rel: &ColumnarRelation<u64>| -> Vec<(Tuple, _)> {
            Storage::rows(rel)
                .into_iter()
                .map(|(t, k)| (t, bm.vec_from(&[k, k + 1])))
                .collect()
        };
        // Build both sides together so they share one instance dict.
        let mut bm_slots =
            columnar_slots(vec![(vars.clone(), to_bm(&l)), (vars.clone(), to_bm(&r))]);
        let rb = bm_slots.pop().unwrap();
        let lb = bm_slots.pop().unwrap();
        let mut seq_bm_stats = EngineStats::default();
        let seq_bm = lb.clone().merge(&bm, rb.clone(), &mut seq_bm_stats);
        for threads in [1usize, 2, 3, 4, 7, 16] {
            let mut st = EngineStats::default();
            let got = sharded(&l, threads).merge(&CountMonoid, sharded(&r, threads), &mut st);
            assert_eq!(got.inner, seq, "threads {threads}");
            assert_eq!(st, seq_stats, "threads {threads}");
            let mut st = EngineStats::default();
            let got = sharded(&lb, threads).merge(&bm, sharded(&rb, threads), &mut st);
            assert_eq!(got.inner, seq_bm, "bagmax threads {threads}");
            assert_eq!(st, seq_bm_stats, "bagmax threads {threads}");
        }
    }

    #[test]
    fn non_annihilating_outer_join_stays_self_contained() {
        // Disjoint supports: every row is one-sided, the pure-0-fill
        // stress case for shard co-partitioning.
        let m = SatCountMonoid::new(2);
        let vars = vec![Var(0)];
        let left_rows: Vec<(Tuple, _)> =
            (0..12).map(|i| (Tuple::ints(&[2 * i]), m.star())).collect();
        let right_rows: Vec<(Tuple, _)> = (0..12)
            .map(|i| (Tuple::ints(&[2 * i + 1]), m.star()))
            .collect();
        let slots = columnar_slots(vec![(vars.clone(), left_rows), (vars, right_rows)]);
        let (l, r) = (slots[0].clone(), slots[1].clone());
        let mut seq_stats = EngineStats::default();
        let seq = l.clone().merge(&m, r.clone(), &mut seq_stats);
        assert_eq!(seq.support_size(), 24, "all 0-filled rows survive");
        for threads in [2usize, 3, 8] {
            let mut st = EngineStats::default();
            let got = sharded(&l, threads).merge(&m, sharded(&r, threads), &mut st);
            assert_eq!(got.inner, seq, "threads {threads}");
            assert_eq!(st, seq_stats, "threads {threads}");
        }
    }

    #[test]
    fn nullary_and_empty_relations_are_safe() {
        let rel: ColumnarRelation<u64> = columnar_slots(vec![(vec![Var(3)], Vec::new())])
            .pop()
            .unwrap();
        let mut st = EngineStats::default();
        let out = sharded(&rel, 8).project_out(&CountMonoid, Var(3), &mut st);
        assert_eq!(out.support_size(), 0);
        assert_eq!(out.nullary_value(&CountMonoid), 0);
        // Projecting a 1-column relation to nullary: one global group.
        let rel: ColumnarRelation<u64> = columnar_slots(vec![(
            vec![Var(0)],
            (0..9).map(|i| (Tuple::ints(&[i]), i as u64 + 1)).collect(),
        )])
        .pop()
        .unwrap();
        let mut st = EngineStats::default();
        let out = sharded(&rel, 4).project_out(&CountMonoid, Var(0), &mut st);
        assert_eq!(out.nullary_value(&CountMonoid), 45);
        assert_eq!(st.add_ops, 8);
    }

    #[test]
    fn parallelism_parses_and_defaults() {
        assert_eq!(Parallelism::default().threads, 1);
        assert!(!Parallelism::default().is_parallel());
        assert_eq!("4".parse::<Parallelism>().unwrap(), Parallelism::new(4));
        assert!("max".parse::<Parallelism>().unwrap().threads >= 1);
        assert!("0".parse::<Parallelism>().is_err());
        assert!("-1".parse::<Parallelism>().is_err());
        assert_eq!(Parallelism::new(0).threads, 1);
        assert_eq!(Parallelism::new(3).to_string(), "3");
    }

    #[test]
    fn work_size_floor_keeps_small_inputs_sequential() {
        // Production parallelism never shards below the work-size
        // floor (spawn cost would dominate), while the fine-grained
        // test constructor shards anything with ≥ 2 rows.
        let prod = Parallelism::new(8);
        assert!(prod.min_shard_rows() > 1);
        assert_eq!(shard_count(prod, 100), 1);
        assert_eq!(shard_count(prod, prod.min_shard_rows() * 8), 8);
        assert_eq!(shard_count(prod, prod.min_shard_rows() * 3), 3);
        let fine = Parallelism::fine_grained(8);
        assert_eq!(fine.min_shard_rows(), 1);
        assert_eq!(shard_count(fine, 100), 8);
        assert_eq!(shard_count(fine, 3), 3);
        assert_eq!(shard_count(fine, 0), 1);
    }
}
