//! Semi-naive evaluation of recursive [`PlanExpr::Fixpoint`] plans.
//!
//! A fixpoint node computes the least solution of
//! `acc = base ⊕ step(acc)` where `step` is a linear recursive rule —
//! a [`PlanExpr::Compose`] of the loop variable ([`PlanExpr::Rec`])
//! with a binary edge relation. Evaluation is **semi-naive**: round 0
//! seeds the accumulator (and the round-0 delta) with `base`; every
//! later round composes only the *previous round's delta* against the
//! edges, keeps the outputs whose key is absent from the accumulator's
//! support, ⊕-folds each novel key's derivations with
//! [`TwoMonoid::fold_assign`], and terminates on the first round whose
//! delta is empty. Outputs whose key is already in the accumulator are
//! skipped **before** any ⊗ is applied — sound exactly when `0`
//! annihilates under ⊗, which is why a fixpoint over a monoid whose
//! [`TwoMonoid::fixpoint_convergent`] is `false` (the Shapley `#Sat`
//! monoid) is a validation error rather than a hang.
//!
//! ## Round-stratified semantics
//!
//! Each tuple's annotation is frozen at its **first derivation
//! round**: `acc(t) = ⊕` over the ⊗-products of `t`'s minimal-round
//! derivations, folded in ascending join-value order. Under the
//! counting semiring this is the number of minimal-round derivations;
//! under [`hq_monoid::ProbMonoid`] it is the noisy-or of the
//! minimal-round witness products (exact reachability probability is
//! `#P`-hard and out of scope). The stratification is what makes the
//! fixpoint patchable: a pure-insert update re-enters the loop as a
//! round-0 delta and propagates forward round by round
//! ([`patch_inserts`]), never revisiting settled strata — and bails to
//! a drop-and-rebuild whenever an insert would *shorten* a tuple's
//! first-derivation round.
//!
//! The kernel works in value space (tuples of [`Value`] pairs), so a
//! run is **backend-independent by construction**: every storage
//! layout materialises the same accumulator rows, support trajectory
//! and op counts at every thread count. [`transitive_closure_on`]
//! round-trips the inputs and outputs through an explicit backend to
//! pin the layout equivalence.

use crate::engine::EngineStats;
use crate::plan_ir::{PlanExpr, PlanId, PlanIr};
use crate::storage::{Backend, ColumnarRelation, CompressedColumnar, MapRelation, Storage};
use hq_db::{Tuple, Value};
use hq_monoid::TwoMonoid;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A binary row in kernel vocabulary: `(source, target)`.
pub type Pair = (Value, Value);

/// Per-key ⊗-operand lists collected by [`compose_row`], keyed in
/// ascending output-pair order.
type Candidates<'a, K> = BTreeMap<Pair, Vec<(&'a K, &'a K)>>;

/// Errors rejected by fixpoint validation — each is a property of the
/// *query*, detected before any round runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixpointError {
    /// The monoid does not guarantee convergence
    /// ([`TwoMonoid::fixpoint_convergent`] is `false`): skipping
    /// already-derived keys would be unsound, so the loop might never
    /// terminate. Rejected up front instead of hanging.
    NonConvergentMonoid,
    /// A base or edge tuple is not binary; linear recursion composes
    /// binary relations only.
    NotBinary {
        /// The offending arity.
        arity: usize,
    },
    /// The recursive step is not `Compose(Rec, edges)` or
    /// `Compose(edges, Rec)` over scans (mutual recursion and general
    /// step DAGs are ROADMAP follow-ups).
    MalformedStep {
        /// The offending plan node.
        node: PlanId,
    },
    /// Two input rows share a key; inputs must be support rows with
    /// unique keys.
    DuplicateKey {
        /// The duplicated key.
        key: Tuple,
    },
}

impl fmt::Display for FixpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixpointError::NonConvergentMonoid => write!(
                f,
                "fixpoint over a non-convergent monoid (0 does not annihilate under ⊗) \
                 is rejected: the semi-naive loop would not be guaranteed to terminate"
            ),
            FixpointError::NotBinary { arity } => {
                write!(f, "fixpoint inputs must be binary, got arity {arity}")
            }
            FixpointError::MalformedStep { node } => write!(
                f,
                "recursive step (node {node}) must compose the loop variable with one \
                 binary scan"
            ),
            FixpointError::DuplicateKey { key } => {
                write!(f, "duplicate input key {key:?} in fixpoint input")
            }
        }
    }
}

impl std::error::Error for FixpointError {}

/// Which side of the recursive [`PlanExpr::Compose`] carries the loop
/// variable. The side fixes each ⊗'s operand order — part of the
/// bit-identity contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepShape {
    /// `Δ'(x, z) = ⊕_y Δ(x, y) ⊗ E(y, z)` — `Compose(Rec, edges)`.
    LeftLinear,
    /// `Δ'(x, z) = ⊕_y E(x, y) ⊗ Δ(y, z)` — `Compose(edges, Rec)`.
    RightLinear,
}

/// A validated fixpoint plan: the base input, the edge input, and the
/// step shape — everything the kernel needs besides the rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixSpec {
    /// The node scanned for round-0 rows.
    pub base: PlanId,
    /// The node scanned for the recursive step's edge side.
    pub edges: PlanId,
    /// Which compose side carries [`PlanExpr::Rec`].
    pub shape: StepShape,
}

/// Validates a [`PlanExpr::Fixpoint`] node's structure: the base must
/// be a binary scan and the step a [`PlanExpr::Compose`] of
/// [`PlanExpr::Rec`] with a binary scan.
///
/// # Errors
/// [`FixpointError::MalformedStep`] when the shape does not match.
pub fn validate_fixpoint(ir: &PlanIr, id: PlanId) -> Result<FixSpec, FixpointError> {
    validate_fixpoint_in(&|n| ir.node(n).clone(), id)
}

/// [`validate_fixpoint`] over an arbitrary node lookup — the serving
/// server resolves plans into a per-query expression map rather than a
/// whole [`PlanIr`].
///
/// # Errors
/// [`FixpointError::MalformedStep`] when the shape does not match.
pub fn validate_fixpoint_in(
    node_of: &dyn Fn(PlanId) -> PlanExpr,
    id: PlanId,
) -> Result<FixSpec, FixpointError> {
    let PlanExpr::Fixpoint { base, step } = node_of(id) else {
        return Err(FixpointError::MalformedStep { node: id });
    };
    let scan_arity = |n: PlanId| match node_of(n) {
        PlanExpr::Scan { positions, .. } => Some(positions.len()),
        _ => None,
    };
    if scan_arity(base) != Some(2) {
        return Err(FixpointError::MalformedStep { node: id });
    }
    let (edges, shape) = match node_of(step) {
        PlanExpr::Compose { left, right } => match (node_of(left), node_of(right)) {
            (PlanExpr::Rec, PlanExpr::Scan { .. }) => (right, StepShape::LeftLinear),
            (PlanExpr::Scan { .. }, PlanExpr::Rec) => (left, StepShape::RightLinear),
            _ => return Err(FixpointError::MalformedStep { node: id }),
        },
        _ => return Err(FixpointError::MalformedStep { node: id }),
    };
    if scan_arity(edges) != Some(2) {
        return Err(FixpointError::MalformedStep { node: id });
    }
    Ok(FixSpec { base, edges, shape })
}

/// The materialised state of one fixpoint run — everything the serving
/// layer caches to answer reads and to patch under pure-insert updates.
#[derive(Debug, Clone)]
pub struct FixpointRun<K> {
    /// `key → (annotation, first-derivation round)`, the accumulator.
    pub acc: BTreeMap<Pair, (K, u32)>,
    /// Per-round novel rows in ascending key order. `deltas[0]` is the
    /// base (possibly empty); later rounds are non-empty by
    /// construction (an empty delta terminates the loop and is not
    /// stored).
    pub deltas: Vec<Vec<(Pair, K)>>,
    /// Exact ⊕/⊗ counts plus the support trajectory: accumulator size
    /// after every executed round, terminating round included.
    pub stats: EngineStats,
    /// ⊕-fold of every accumulator annotation in ascending key order —
    /// the "how reachable is the graph" readout. Like a nullary
    /// readout, it is not op-counted.
    pub total: K,
}

impl<K: Clone> FixpointRun<K> {
    /// The accumulator as storage rows (ascending key order).
    pub fn rows(&self) -> Vec<(Tuple, K)> {
        self.acc
            .iter()
            .map(|(&(a, b), (k, _))| (Tuple::new([a, b]), k))
            .map(|(t, k)| (t, k.clone()))
            .collect()
    }

    /// Point read of one pair (`None` when outside the support).
    pub fn get(&self, src: Value, dst: Value) -> Option<&K> {
        self.acc.get(&(src, dst)).map(|(k, _)| k)
    }
}

fn to_pairs<K: Clone>(rows: &[(Tuple, K)]) -> Result<BTreeMap<Pair, K>, FixpointError> {
    let mut out = BTreeMap::new();
    for (t, k) in rows {
        let v = t.values();
        if v.len() != 2 {
            return Err(FixpointError::NotBinary { arity: v.len() });
        }
        if out.insert((v[0], v[1]), k.clone()).is_some() {
            return Err(FixpointError::DuplicateKey { key: t.clone() });
        }
    }
    Ok(out)
}

/// Composes one delta row against the edge map, pushing each
/// `(out, left ⊗-operand, right ⊗-operand)` candidate in ascending
/// join-value order. Keys already in `acc` are skipped *before* any ⊗.
fn compose_row<'a, K>(
    shape: StepShape,
    key: Pair,
    dv: &'a K,
    edges: &'a BTreeMap<Pair, K>,
    edges_rev: &'a BTreeMap<Pair, K>,
    acc: &BTreeMap<Pair, (K, u32)>,
    out: &mut Candidates<'a, K>,
) where
    K: Clone,
{
    match shape {
        StepShape::LeftLinear => {
            // Δ(x, y) ⊗ E(y, z): range over edges with first column y.
            let (x, y) = key;
            for (&(_, z), ev) in edges
                .range((y, Value::Int(i64::MIN))..)
                .take_while(|(&(ey, _), _)| ey == y)
            {
                if !acc.contains_key(&(x, z)) {
                    out.entry((x, z)).or_default().push((dv, ev));
                }
            }
        }
        StepShape::RightLinear => {
            // E(x, y) ⊗ Δ(y, z): range over reversed edges keyed (y, x).
            let (y, z) = key;
            for (&(_, x), ev) in edges_rev
                .range((y, Value::Int(i64::MIN))..)
                .take_while(|(&(ey, _), _)| ey == y)
            {
                if !acc.contains_key(&(x, z)) {
                    out.entry((x, z)).or_default().push((ev, dv));
                }
            }
        }
    }
}

/// The edge map keyed `(second, first)` — the probe index the
/// right-linear shape needs. `Str` symbols and `Int`s interleave under
/// [`Value`]'s derived order, which is all the range scans require.
fn reverse<K: Clone>(edges: &BTreeMap<Pair, K>) -> BTreeMap<Pair, K> {
    edges
        .iter()
        .map(|(&(a, b), k)| ((b, a), k.clone()))
        .collect()
}

fn fold_products<M: TwoMonoid>(
    monoid: &M,
    pairs: &[(&M::Elem, &M::Elem)],
    add_ops: &mut u64,
    mul_ops: &mut u64,
) -> M::Elem {
    let products: Vec<M::Elem> = pairs.iter().map(|(l, r)| monoid.mul(l, r)).collect();
    *mul_ops += products.len() as u64;
    let mut v = products[0].clone();
    monoid.fold_assign(&mut v, &products[1..]);
    *add_ops += (products.len() - 1) as u64;
    v
}

/// Runs the semi-naive fixpoint over explicit base and edge rows.
///
/// # Errors
/// Rejects non-convergent monoids, non-binary rows, and duplicate
/// input keys.
pub fn semi_naive<M: TwoMonoid>(
    monoid: &M,
    base: &[(Tuple, M::Elem)],
    edges: &[(Tuple, M::Elem)],
    shape: StepShape,
) -> Result<FixpointRun<M::Elem>, FixpointError> {
    if !monoid.fixpoint_convergent() {
        return Err(FixpointError::NonConvergentMonoid);
    }
    let base = to_pairs(base)?;
    let edges = to_pairs(edges)?;
    let edges_rev = reverse(&edges);

    let mut acc: BTreeMap<Pair, (M::Elem, u32)> = BTreeMap::new();
    let mut deltas: Vec<Vec<(Pair, M::Elem)>> = Vec::new();
    let mut support_sizes = Vec::new();
    let (mut add_ops, mut mul_ops) = (0u64, 0u64);

    // Round 0: the base *is* the first delta. Zero-annotated rows are
    // outside the support and never enter the loop.
    let round0: Vec<(Pair, M::Elem)> = base
        .into_iter()
        .filter(|(_, k)| !monoid.is_zero(k))
        .collect();
    for &(key, ref k) in &round0 {
        acc.insert(key, (k.clone(), 0));
    }
    support_sizes.push(acc.len());
    deltas.push(round0);

    let mut round: u32 = 1;
    while !deltas.last().expect("at least round 0").is_empty() {
        let mut candidates: Candidates<M::Elem> = BTreeMap::new();
        for (key, dv) in deltas.last().expect("non-empty round") {
            compose_row(shape, *key, dv, &edges, &edges_rev, &acc, &mut candidates);
        }
        let mut next: Vec<(Pair, M::Elem)> = Vec::new();
        for (key, pairs) in &candidates {
            let v = fold_products(monoid, pairs, &mut add_ops, &mut mul_ops);
            // A zero fold is priced like the fresh run prices it (the
            // ⊗/⊕ really ran) but the row never enters the support.
            if !monoid.is_zero(&v) {
                next.push((*key, v));
            }
        }
        for &(key, ref k) in &next {
            acc.insert(key, (k.clone(), round));
        }
        support_sizes.push(acc.len());
        if next.is_empty() {
            break;
        }
        deltas.push(next);
        round += 1;
    }

    let total = monoid.sum(acc.values().map(|(k, _)| k));
    Ok(FixpointRun {
        acc,
        deltas,
        stats: EngineStats {
            add_ops,
            mul_ops,
            support_sizes,
        },
        total,
    })
}

/// Work accounting for a successful [`patch_inserts`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchStats<K> {
    /// Number of keys whose derivation set was re-folded — the
    /// quantity pinned strictly below a fresh run's folded keys.
    pub refolded_rows: usize,
    /// ⊕ applications actually performed by the patch.
    pub performed_add: u64,
    /// ⊗ applications actually performed by the patch.
    pub performed_mul: u64,
    /// Every accumulator row the patch wrote (added or re-annotated),
    /// so a cached storage copy of the accumulator can be point-patched
    /// instead of rebuilt.
    pub written: Vec<(Pair, K)>,
}

/// What a [`patch_inserts`] call did.
#[derive(Debug, Clone, PartialEq)]
pub enum PatchOutcome<K> {
    /// The run was patched in place; the payload accounts the work.
    Patched(PatchStats<K>),
    /// The update would restratify the run (an insert shortened some
    /// tuple's first-derivation round, or a re-fold left the support).
    /// The run is poisoned; drop it and rebuild fresh.
    Rebuild,
}

/// Patches a materialised [`FixpointRun`] under a **pure-insert**
/// update: `new_base` / `new_edges` rows whose keys were previously
/// absent. The dirty rows re-enter the loop as a round-0 delta and
/// propagate forward exactly one stratum per round; every touched key
/// is re-folded from its *full* derivation set in the same order as a
/// fresh run, so values, per-round deltas, support trajectory and
/// [`EngineStats`] all land bit-identical to fresh evaluation over the
/// post-update inputs — while performing work proportional to the
/// affected cone, not the whole fixpoint.
///
/// `edges` must be the complete post-update edge map and `new_edges` /
/// `new_base` the inserted subsets. Deletions and value modifications
/// must not reach this function (callers fall back to rebuild).
///
/// # Errors
/// Same validation failures as [`semi_naive`]. A needed-rebuild is the
/// `Ok(PatchOutcome::Rebuild)` value, not an error — but note the run
/// is poisoned in that case.
pub fn patch_inserts<M: TwoMonoid>(
    monoid: &M,
    run: &mut FixpointRun<M::Elem>,
    edges: &[(Tuple, M::Elem)],
    new_edges: &[(Tuple, M::Elem)],
    new_base: &[(Tuple, M::Elem)],
    shape: StepShape,
) -> Result<PatchOutcome<M::Elem>, FixpointError> {
    if !monoid.fixpoint_convergent() {
        return Err(FixpointError::NonConvergentMonoid);
    }
    let edges = to_pairs(edges)?;
    let edges_rev = reverse(&edges);
    let new_edge_keys: BTreeSet<Pair> = to_pairs(new_edges)?.into_keys().collect();
    // Inserted edges keyed by the probe column of each shape.
    let new_fwd: BTreeMap<Pair, ()> = match shape {
        StepShape::LeftLinear => new_edge_keys.iter().map(|&k| (k, ())).collect(),
        StepShape::RightLinear => new_edge_keys.iter().map(|&(a, b)| ((b, a), ())).collect(),
    };
    let new_base = to_pairs(new_base)?;

    let mut refolded = 0usize;
    let (mut performed_add, mut performed_mul) = (0u64, 0u64);
    let mut written: Vec<(Pair, M::Elem)> = Vec::new();

    // Round 0: inserted base rows are dirty. A key collision means the
    // caller's "pure insert" premise is wrong — restratify.
    let mut dirty_prev: BTreeSet<Pair> = BTreeSet::new();
    let mut added_prev: BTreeSet<Pair> = BTreeSet::new();
    let mut added_rows: Vec<(Pair, M::Elem)> = Vec::new();
    for (key, k) in &new_base {
        if monoid.is_zero(k) {
            continue;
        }
        if run.acc.contains_key(key) {
            return Ok(PatchOutcome::Rebuild);
        }
        run.acc.insert(*key, (k.clone(), 0));
        added_rows.push((*key, k.clone()));
        written.push((*key, k.clone()));
        dirty_prev.insert(*key);
        added_prev.insert(*key);
    }
    if !added_rows.is_empty() {
        if run.deltas.is_empty() {
            run.deltas.push(Vec::new());
        }
        run.deltas[0].extend(added_rows);
        run.deltas[0].sort_by_key(|a| a.0);
    }

    let mut r: usize = 1;
    while r < run.deltas.len() || !dirty_prev.is_empty() {
        // Δ'_{r-1}, post-patch, as a value-ordered map.
        let prev: BTreeMap<Pair, M::Elem> = run
            .deltas
            .get(r - 1)
            .map(|d| d.iter().cloned().collect())
            .unwrap_or_default();
        if prev.is_empty() {
            break;
        }

        // Candidate keys whose round-r derivation set gained a member:
        // (a) dirty Δ'_{r-1} rows against the full edge map, and
        // (b) every Δ'_{r-1} row against the inserted edges.
        let mut candidates: BTreeSet<Pair> = BTreeSet::new();
        let mut restratified = false;
        let mut consider = |key: Pair, acc: &BTreeMap<Pair, (M::Elem, u32)>| match acc.get(&key) {
            None => {
                candidates.insert(key);
            }
            Some((_, round)) if *round as usize == r => {
                candidates.insert(key);
            }
            Some((_, round)) if (*round as usize) > r => restratified = true,
            _ => {} // settled in an earlier stratum: fresh skips it too
        };
        for &key in &dirty_prev {
            match shape {
                StepShape::LeftLinear => {
                    let (x, y) = key;
                    for (&(_, z), _) in edges
                        .range((y, Value::Int(i64::MIN))..)
                        .take_while(|(&(ey, _), _)| ey == y)
                    {
                        consider((x, z), &run.acc);
                    }
                }
                StepShape::RightLinear => {
                    let (y, z) = key;
                    for (&(_, x), _) in edges_rev
                        .range((y, Value::Int(i64::MIN))..)
                        .take_while(|(&(ey, _), _)| ey == y)
                    {
                        consider((x, z), &run.acc);
                    }
                }
            }
        }
        for &key in prev.keys() {
            match shape {
                StepShape::LeftLinear => {
                    let (x, y) = key;
                    for (&(_, z), _) in new_fwd
                        .range((y, Value::Int(i64::MIN))..)
                        .take_while(|(&(ey, _), _)| ey == y)
                    {
                        consider((x, z), &run.acc);
                    }
                }
                StepShape::RightLinear => {
                    let (y, z) = key;
                    for (&(_, x), _) in new_fwd
                        .range((y, Value::Int(i64::MIN))..)
                        .take_while(|(&(ey, _), _)| ey == y)
                    {
                        consider((x, z), &run.acc);
                    }
                }
            }
        }
        if restratified {
            return Ok(PatchOutcome::Rebuild);
        }

        let mut dirty_next: BTreeSet<Pair> = BTreeSet::new();
        let mut added_next: BTreeSet<Pair> = BTreeSet::new();
        let mut added_rows: Vec<(Pair, M::Elem)> = Vec::new();
        let mut changed_rows: Vec<(Pair, M::Elem)> = Vec::new();
        for &key in &candidates {
            // Re-fold the key's full derivation set in ascending join
            // order — exactly the fresh run's fold for this key — and
            // count how many of those derivations already existed, to
            // keep the stored stats fresh-exact.
            let (x, z) = key;
            let mut pairs: Vec<(&M::Elem, &M::Elem)> = Vec::new();
            let mut old_derivs = 0u64;
            match shape {
                StepShape::LeftLinear => {
                    for (&(_, y), dv) in prev
                        .range((x, Value::Int(i64::MIN))..)
                        .take_while(|(&(px, _), _)| px == x)
                    {
                        if let Some(ev) = edges.get(&(y, z)) {
                            pairs.push((dv, ev));
                            if !added_prev.contains(&(x, y)) && !new_edge_keys.contains(&(y, z)) {
                                old_derivs += 1;
                            }
                        }
                    }
                }
                StepShape::RightLinear => {
                    for (&(_, y), ev) in edges
                        .range((x, Value::Int(i64::MIN))..)
                        .take_while(|(&(ex, _), _)| ex == x)
                    {
                        if let Some(dv) = prev.get(&(y, z)) {
                            pairs.push((ev, dv));
                            if !added_prev.contains(&(y, z)) && !new_edge_keys.contains(&(x, y)) {
                                old_derivs += 1;
                            }
                        }
                    }
                }
            }
            if pairs.is_empty() {
                continue;
            }
            let new_derivs = pairs.len() as u64;
            let v = fold_products(monoid, &pairs, &mut performed_add, &mut performed_mul);
            refolded += 1;
            match run.acc.get(&key) {
                Some((old, _)) => {
                    // Existing round-r row: adjust the stored counts by
                    // the derivation-count difference and propagate only
                    // if the fold genuinely changed.
                    debug_assert!(old_derivs >= 1, "round-r row had a round-r derivation");
                    run.stats.mul_ops += new_derivs - old_derivs;
                    run.stats.add_ops += new_derivs - old_derivs;
                    if monoid.is_zero(&v) {
                        return Ok(PatchOutcome::Rebuild);
                    }
                    if new_derivs != old_derivs || v != *old {
                        dirty_next.insert(key);
                        changed_rows.push((key, v.clone()));
                        written.push((key, v.clone()));
                    }
                    run.acc.insert(key, (v, r as u32));
                }
                None => {
                    run.stats.mul_ops += new_derivs;
                    run.stats.add_ops += new_derivs - 1;
                    if monoid.is_zero(&v) {
                        continue; // fresh run prices then prunes it too
                    }
                    run.acc.insert(key, (v.clone(), r as u32));
                    added_rows.push((key, v.clone()));
                    written.push((key, v));
                    dirty_next.insert(key);
                    added_next.insert(key);
                }
            }
        }

        if !added_rows.is_empty() || !changed_rows.is_empty() {
            if r == run.deltas.len() {
                run.deltas.push(Vec::new());
            }
            let round = &mut run.deltas[r];
            for (key, v) in changed_rows {
                if let Some(slot) = round.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = v;
                }
            }
            round.extend(added_rows);
            round.sort_by_key(|a| a.0);
        }
        dirty_prev = dirty_next;
        added_prev = added_next;
        r += 1;
    }

    // Rebuild the trajectory from the patched per-round deltas: the
    // cumulative support after each round, plus the terminating round's
    // repeat entry whenever the loop executed at all.
    let mut sizes = Vec::with_capacity(run.deltas.len() + 1);
    let mut cum = 0usize;
    for d in &run.deltas {
        cum += d.len();
        sizes.push(cum);
    }
    if !run.deltas[0].is_empty() {
        sizes.push(cum);
    }
    run.stats.support_sizes = sizes;
    run.total = monoid.sum(run.acc.values().map(|(k, _)| k));
    Ok(PatchOutcome::Patched(PatchStats {
        refolded_rows: refolded,
        performed_add,
        performed_mul,
        written,
    }))
}

/// Evaluates the transitive closure of a binary edge relation on the
/// value-space kernel (the oracle form): the left-linear fixpoint
/// `T = E ⊕ (T ∘ E)`.
///
/// # Errors
/// See [`semi_naive`].
pub fn transitive_closure<M: TwoMonoid>(
    monoid: &M,
    edges: &[(Tuple, M::Elem)],
) -> Result<FixpointRun<M::Elem>, FixpointError> {
    semi_naive(monoid, edges, edges, StepShape::LeftLinear)
}

/// [`transitive_closure`] with the edges and the accumulator
/// round-tripped through an explicit storage [`Backend`]: inputs are
/// built into the backend's layout and read back with
/// [`Storage::rows`] before the kernel runs, and the accumulator is
/// materialised the same way — pinning that every layout feeds the
/// kernel identical rows and stores identical results. The kernel
/// itself is layout- and thread-independent, so values, trajectories
/// and stats are bit-identical across backends by construction.
///
/// # Errors
/// See [`semi_naive`]; panics never — duplicate input keys surface as
/// [`FixpointError::DuplicateKey`].
pub fn transitive_closure_on<M: TwoMonoid>(
    backend: Backend,
    monoid: &M,
    edges: &[(Tuple, M::Elem)],
) -> Result<FixpointRun<M::Elem>, FixpointError>
where
    M::Elem: crate::storage::CompressedAnn,
{
    fn round_trip<R: Storage>(
        rows: &[(Tuple, R::Ann)],
    ) -> Result<Vec<(Tuple, R::Ann)>, FixpointError> {
        let vars = vec![hq_query::Var(0), hq_query::Var(1)];
        for (t, _) in rows {
            if t.arity() != 2 {
                return Err(FixpointError::NotBinary { arity: t.arity() });
            }
        }
        let built = R::build_slots(vec![(vars, rows.to_vec())])
            .map_err(|d| FixpointError::DuplicateKey { key: d.key })?;
        Ok(built
            .into_iter()
            .next()
            .expect("one slot in, one out")
            .rows())
    }
    let edge_rows = match backend {
        Backend::Map => round_trip::<MapRelation<M::Elem>>(edges)?,
        Backend::Columnar => round_trip::<ColumnarRelation<M::Elem>>(edges)?,
        Backend::Compressed => round_trip::<CompressedColumnar<M::Elem>>(edges)?,
    };
    let run = transitive_closure(monoid, &edge_rows)?;
    let acc_rows = run.rows();
    let round_tripped = match backend {
        Backend::Map => round_trip::<MapRelation<M::Elem>>(&acc_rows)?,
        Backend::Columnar => round_trip::<ColumnarRelation<M::Elem>>(&acc_rows)?,
        Backend::Compressed => round_trip::<CompressedColumnar<M::Elem>>(&acc_rows)?,
    };
    debug_assert_eq!(
        acc_rows.len(),
        round_tripped.len(),
        "backend round-trip must preserve the accumulator"
    );
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_monoid::{CountMonoid, ProbMonoid};

    fn edges_u64(rows: &[(i64, i64, u64)]) -> Vec<(Tuple, u64)> {
        rows.iter()
            .map(|&(a, b, k)| (Tuple::ints(&[a, b]), k))
            .collect()
    }

    fn edges_f64(rows: &[(i64, i64, f64)]) -> Vec<(Tuple, f64)> {
        rows.iter()
            .map(|&(a, b, k)| (Tuple::ints(&[a, b]), k))
            .collect()
    }

    #[test]
    fn path_counts_on_a_chain() {
        // 1→2→3→4: closure pairs are the 6 ordered reachable pairs,
        // each with exactly one (minimal-round) path.
        let run = transitive_closure(&CountMonoid, &edges_u64(&[(1, 2, 1), (2, 3, 1), (3, 4, 1)]))
            .unwrap();
        assert_eq!(run.acc.len(), 6);
        assert!(run.acc.values().all(|(k, _)| *k == 1));
        // Rounds: 3 base rows, 2 two-hop rows, 1 three-hop row.
        assert_eq!(run.stats.support_sizes, vec![3, 5, 6, 6]);
        assert_eq!(
            run.deltas.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![3, 2, 1]
        );
        assert_eq!(run.total, 6);
    }

    #[test]
    fn diamond_counts_minimal_round_derivations() {
        // 1→2, 1→3, 2→4, 3→4: (1,4) has two 2-hop derivations.
        let run = transitive_closure(
            &CountMonoid,
            &edges_u64(&[(1, 2, 1), (1, 3, 1), (2, 4, 1), (3, 4, 1)]),
        )
        .unwrap();
        assert_eq!(run.acc[&(Value::int(1), Value::int(4))].0, 2);
        // The (1,4) fold ran 2 ⊗ and 1 ⊕.
        assert_eq!(run.stats.mul_ops, 2);
        assert_eq!(run.stats.add_ops, 1);
    }

    #[test]
    fn cycles_terminate() {
        let run = transitive_closure(&CountMonoid, &edges_u64(&[(1, 2, 1), (2, 1, 1)])).unwrap();
        // Pairs: (1,2), (2,1) at round 0; (1,1), (2,2) at round 1;
        // round 2 re-derives only settled keys → terminates.
        assert_eq!(run.acc.len(), 4);
        assert_eq!(run.stats.support_sizes, vec![2, 4, 4]);
    }

    #[test]
    fn empty_edges_are_a_fixpoint_already() {
        let run = transitive_closure(&CountMonoid, &[]).unwrap();
        assert!(run.acc.is_empty());
        assert_eq!(run.stats.support_sizes, vec![0]);
        assert_eq!(run.stats.total_ops(), 0);
        assert_eq!(run.total, 0);
    }

    #[test]
    fn non_convergent_monoid_is_rejected_not_run() {
        // The Shapley #Sat monoid genuinely violates annihilation.
        let m = hq_monoid::SatCountMonoid::new(4);
        let err = semi_naive(&m, &[], &[], StepShape::LeftLinear).unwrap_err();
        assert_eq!(err, FixpointError::NonConvergentMonoid);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let bad = vec![(Tuple::ints(&[1, 2, 3]), 1u64)];
        assert_eq!(
            transitive_closure(&CountMonoid, &bad).unwrap_err(),
            FixpointError::NotBinary { arity: 3 }
        );
        let dup = edges_u64(&[(1, 2, 1), (1, 2, 3)]);
        assert!(matches!(
            transitive_closure(&CountMonoid, &dup).unwrap_err(),
            FixpointError::DuplicateKey { .. }
        ));
    }

    #[test]
    fn right_linear_matches_left_linear_on_counts() {
        let edges = edges_u64(&[(1, 2, 1), (2, 3, 1), (3, 4, 1), (1, 3, 1)]);
        let ll = semi_naive(&CountMonoid, &edges, &edges, StepShape::LeftLinear).unwrap();
        let rl = semi_naive(&CountMonoid, &edges, &edges, StepShape::RightLinear).unwrap();
        // Same support and rounds; counting ⊗ is commutative, so the
        // annotations agree too.
        assert_eq!(ll.acc, rl.acc);
    }

    #[test]
    fn patch_insert_matches_fresh_run_bit_for_bit() {
        let old = edges_f64(&[(1, 2, 0.5), (2, 3, 0.25), (3, 4, 0.5), (7, 8, 0.125)]);
        let mut all = old.clone();
        let new_edge = (Tuple::ints(&[4, 5]), 0.75f64);
        all.push(new_edge.clone());
        all.sort_by(|a, b| a.0.cmp(&b.0));

        let mut run = transitive_closure(&ProbMonoid, &old).unwrap();
        let fresh = transitive_closure(&ProbMonoid, &all).unwrap();
        let outcome = patch_inserts(
            &ProbMonoid,
            &mut run,
            &all,
            std::slice::from_ref(&new_edge),
            std::slice::from_ref(&new_edge),
            StepShape::LeftLinear,
        )
        .unwrap();
        let PatchOutcome::Patched(patch) = outcome else {
            panic!("pure-insert tail edge must patch, got {outcome:?}");
        };
        for ((ka, (va, ra)), (kb, (vb, rb))) in run.acc.iter().zip(fresh.acc.iter()) {
            assert_eq!(ka, kb);
            assert_eq!(ra, rb);
            assert_eq!(va.to_bits(), vb.to_bits());
        }
        assert_eq!(run.deltas.len(), fresh.deltas.len());
        assert_eq!(run.stats, fresh.stats);
        assert_eq!(run.total.to_bits(), fresh.total.to_bits());
        // The patch refolded only the cone behind the new edge, and
        // every written row matches the fresh accumulator bit for bit.
        assert!(patch.performed_add + patch.performed_mul < fresh.stats.total_ops());
        for (key, v) in &patch.written {
            assert_eq!(v.to_bits(), fresh.acc[key].0.to_bits());
        }
    }

    #[test]
    fn patch_bails_when_an_insert_restratifies() {
        // 1→2→3: (1,3) settles at round 1. Inserting a direct 1→3 edge
        // would move it to round 0 — a base-key collision.
        let old = edges_u64(&[(1, 2, 1), (2, 3, 1)]);
        let mut all = old.clone();
        let new_edge = (Tuple::ints(&[1, 3]), 1u64);
        all.push(new_edge.clone());
        all.sort_by(|a, b| a.0.cmp(&b.0));
        let mut run = transitive_closure(&CountMonoid, &old).unwrap();
        let outcome = patch_inserts(
            &CountMonoid,
            &mut run,
            &all,
            std::slice::from_ref(&new_edge),
            std::slice::from_ref(&new_edge),
            StepShape::LeftLinear,
        )
        .unwrap();
        assert_eq!(outcome, PatchOutcome::Rebuild);
    }

    #[test]
    fn patch_extends_the_frontier() {
        // Chain 1→2→3; insert 3→4 — new longest paths extend rounds.
        let old = edges_u64(&[(1, 2, 1), (2, 3, 1)]);
        let mut all = old.clone();
        let new_edge = (Tuple::ints(&[3, 4]), 1u64);
        all.push(new_edge.clone());
        all.sort_by(|a, b| a.0.cmp(&b.0));
        let mut run = transitive_closure(&CountMonoid, &old).unwrap();
        let fresh = transitive_closure(&CountMonoid, &all).unwrap();
        let outcome = patch_inserts(
            &CountMonoid,
            &mut run,
            &all,
            std::slice::from_ref(&new_edge),
            std::slice::from_ref(&new_edge),
            StepShape::LeftLinear,
        )
        .unwrap();
        assert!(matches!(outcome, PatchOutcome::Patched(_)));
        assert_eq!(run.acc, fresh.acc);
        assert_eq!(run.deltas, fresh.deltas);
        assert_eq!(run.stats, fresh.stats);
    }

    #[test]
    fn backends_round_trip_identically() {
        let edges = edges_f64(&[(1, 2, 0.5), (2, 3, 0.25), (1, 3, 0.125), (3, 1, 0.5)]);
        let map = transitive_closure_on(Backend::Map, &ProbMonoid, &edges).unwrap();
        for backend in [Backend::Columnar, Backend::Compressed] {
            let got = transitive_closure_on(backend, &ProbMonoid, &edges).unwrap();
            assert_eq!(got.stats, map.stats);
            for ((ka, (va, ra)), (kb, (vb, rb))) in got.acc.iter().zip(map.acc.iter()) {
                assert_eq!((ka, ra), (kb, rb));
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }
}
