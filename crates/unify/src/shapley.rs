//! Shapley-value front-end (Theorem 5.16 + the Section 5.6 reduction).
//!
//! The database splits into exogenous facts `D_x` (always present) and
//! endogenous facts `D_n`. Algorithm 1 over the `#Sat` 2-monoid
//! computes the vector `#Sat(k)` — the number of size-`k` subsets
//! `D' ⊆ D_n` with `Q(D_x ∪ D')` true — in time
//! `O((|D_x| + |D_n|) · |D_n|²)`. The Shapley value of a fact `f` then
//! follows from the Livshits–Bertossi–Kimelfeld–Sebag reduction:
//!
//! ```text
//! Shapley(f) = Σ_k  k!(n-k-1)!/n! · ( #Sat_{D_x∪{f}, D_n\{f}}(k)
//!                                   − #Sat_{D_x,     D_n\{f}}(k) )
//! ```
//!
//! All arithmetic is exact: counts are [`Natural`]s and Shapley values
//! exact [`Rational`]s.

use crate::engine::{evaluate_on_par, UnifyError};
use crate::incremental::{IncrementalError, IncrementalRun};
use crate::serving::{ServingBackend, ServingError, ServingSession, UpdateOutcome};
use crate::storage::{Backend, MapRelation, Parallelism, Storage};
use hq_arith::{binomial, shapley_weight, Natural, Rational};
use hq_db::{Fact, Interner};
use hq_monoid::{SatCountMonoid, SatVec, TwoMonoid};
use hq_query::Query;
use std::collections::BTreeSet;
use std::fmt;

/// Errors specific to Shapley inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum ShapleyError {
    /// A fact appears in both the exogenous and endogenous lists.
    OverlappingParts {
        /// Rendered fact.
        fact: String,
    },
    /// The designated fact is not endogenous.
    NotEndogenous {
        /// Rendered fact.
        fact: String,
    },
    /// Planning or annotation failed.
    Unify(UnifyError),
}

impl fmt::Display for ShapleyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapleyError::OverlappingParts { fact } => {
                write!(f, "fact {fact} is both exogenous and endogenous")
            }
            ShapleyError::NotEndogenous { fact } => {
                write!(f, "fact {fact} is not endogenous")
            }
            ShapleyError::Unify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShapleyError {}

impl From<UnifyError> for ShapleyError {
    fn from(e: UnifyError) -> Self {
        ShapleyError::Unify(e)
    }
}

fn check_disjoint(
    interner: &Interner,
    exogenous: &[Fact],
    endogenous: &[Fact],
) -> Result<(), ShapleyError> {
    let exo: BTreeSet<&Fact> = exogenous.iter().collect();
    for f in endogenous {
        if exo.contains(f) {
            return Err(ShapleyError::OverlappingParts {
                fact: f.display(interner).to_string(),
            });
        }
    }
    Ok(())
}

/// Computes the full `#Sat` vector for `(Q, D_x, D_n)`:
/// `result.t[k] = #Sat(k)` and `result.f[k]` its complement, for
/// `k = 0..=|D_n|`.
///
/// Endogenous facts over relations the query does not mention cannot
/// change `Q`'s truth, but their subsets still count; they are folded
/// in as a free binomial choice so that `t[k] + f[k] = C(|D_n|, k)`
/// always holds.
///
/// # Errors
/// Rejects overlapping parts, non-hierarchical queries, and schema
/// mismatches.
pub fn sat_counts(
    q: &Query,
    interner: &Interner,
    exogenous: &[Fact],
    endogenous: &[Fact],
) -> Result<SatVec, ShapleyError> {
    sat_counts_on(Backend::Map, q, interner, exogenous, endogenous)
}

/// [`sat_counts`] on an explicit storage backend.
///
/// # Errors
/// Same failure modes as [`sat_counts`].
pub fn sat_counts_on(
    backend: Backend,
    q: &Query,
    interner: &Interner,
    exogenous: &[Fact],
    endogenous: &[Fact],
) -> Result<SatVec, ShapleyError> {
    sat_counts_par(
        backend,
        Parallelism::default(),
        q,
        interner,
        exogenous,
        endogenous,
    )
}

/// [`sat_counts`] on an explicit backend and [`Parallelism`] degree
/// (shard kernels run on the persistent worker [`pool`](crate::pool);
/// counts are bit-identical at every thread count).
///
/// # Errors
/// Same failure modes as [`sat_counts`].
pub fn sat_counts_par(
    backend: Backend,
    par: Parallelism,
    q: &Query,
    interner: &Interner,
    exogenous: &[Fact],
    endogenous: &[Fact],
) -> Result<SatVec, ShapleyError> {
    check_disjoint(interner, exogenous, endogenous)?;
    let n = endogenous.len();
    let monoid = SatCountMonoid::new(n);
    // Split endogenous facts into those visible to the query and those
    // over unrelated relations.
    let query_rels: BTreeSet<hq_db::Sym> = q
        .atoms()
        .iter()
        .filter_map(|a| interner.get(&a.rel))
        .collect();
    let (visible, invisible): (Vec<&Fact>, Vec<&Fact>) =
        endogenous.iter().partition(|f| query_rels.contains(&f.rel));
    let invisible_count = invisible.len() as u64;
    let mut facts: Vec<(Fact, SatVec)> = Vec::with_capacity(exogenous.len() + visible.len());
    for f in exogenous {
        facts.push((f.clone(), monoid.one()));
    }
    for f in visible {
        facts.push((f.clone(), monoid.star()));
    }
    let (mut vec, _) = evaluate_on_par(backend, par, &monoid, q, interner, facts)?;
    if invisible_count > 0 {
        // Convolve with the free binomial choice over invisible facts.
        let row: Vec<Natural> = (0..=n as u64)
            .map(|k| binomial(invisible_count, k))
            .collect();
        vec = convolve_free(&vec, &row, n);
    }
    Ok(vec)
}

/// Convolves both components of `v` with the binomial row of freely
/// choosable facts (truncated at `max_k`).
fn convolve_free(v: &SatVec, row: &[Natural], max_k: usize) -> SatVec {
    let conv = |a: &[Natural]| {
        let mut out = vec![Natural::zero(); max_k + 1];
        for (i, av) in a.iter().enumerate() {
            if av.is_zero() {
                continue;
            }
            for (j, rv) in row.iter().enumerate() {
                if i + j > max_k {
                    break;
                }
                out[i + j].add_assign_ref(&av.mul_ref(rv));
            }
        }
        out
    };
    SatVec {
        t: conv(&v.t),
        f: conv(&v.f),
    }
}

/// How a fact participates in a maintained `#Sat` instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactRole {
    /// Always present (`D_x`): annotation `1`.
    Exogenous,
    /// Subset-counted (`D_n`): annotation `★`.
    Endogenous,
    /// Not in the database: annotation `0`.
    Absent,
}

/// An incrementally-maintained `#Sat` vector — the Shapley substrate of
/// Theorem 5.16: `counts().t[k]` is the number of size-`k` endogenous
/// subsets satisfying `Q`, maintained under facts moving between
/// exogenous, endogenous and absent ([`IncrementalSatCounts::set_fact`])
/// in time proportional to the dirty groups touched.
///
/// The vector is truncated at the `capacity` fixed at construction (it
/// sizes the monoid), so the current endogenous count must stay
/// ≤ `capacity`. Unlike [`sat_counts`], facts over relations the query
/// does not mention are rejected rather than folded in as a free
/// binomial choice — callers owning invisible facts convolve them on
/// top, exactly as [`sat_counts`] does.
pub struct IncrementalSatCounts<R: Storage<Ann = SatVec> = MapRelation<SatVec>> {
    monoid: SatCountMonoid,
    run: IncrementalRun<SatCountMonoid, R>,
}

impl IncrementalSatCounts<MapRelation<SatVec>> {
    /// Builds the maintained instance on the ordered-map backend with
    /// vectors truncated at `capacity` (the largest endogenous set the
    /// instance will ever hold).
    ///
    /// # Errors
    /// Rejects overlapping parts, non-hierarchical queries, and schema
    /// mismatches.
    pub fn new(
        q: &Query,
        interner: &Interner,
        exogenous: &[Fact],
        endogenous: &[Fact],
        capacity: usize,
    ) -> Result<Self, IncrementalError> {
        if let Err(ShapleyError::OverlappingParts { fact }) =
            check_disjoint(interner, exogenous, endogenous)
        {
            return Err(IncrementalError::Annotate(
                crate::annotated::AnnotateError::DuplicateFact { fact },
            ));
        }
        let monoid = SatCountMonoid::new(capacity);
        let mut facts: Vec<(Fact, SatVec)> = Vec::with_capacity(exogenous.len() + endogenous.len());
        for f in exogenous {
            facts.push((f.clone(), monoid.one()));
        }
        for f in endogenous {
            facts.push((f.clone(), monoid.star()));
        }
        let run = IncrementalRun::with_storage(monoid, q, interner, facts)?;
        Ok(IncrementalSatCounts { monoid, run })
    }
}

impl<R: Storage<Ann = SatVec>> IncrementalSatCounts<R> {
    /// The current `#Sat` vector (truncated at the capacity).
    pub fn counts(&self) -> &SatVec {
        self.run.result()
    }

    /// Re-classifies one fact and returns the new `#Sat` vector.
    /// Unseen facts over query relations are admitted on the fly.
    ///
    /// # Errors
    /// Rejects facts over relations the query does not mention.
    pub fn set_fact(
        &mut self,
        interner: &Interner,
        fact: &Fact,
        role: FactRole,
    ) -> Result<&SatVec, IncrementalError> {
        let ann = match role {
            FactRole::Exogenous => self.monoid.one(),
            FactRole::Endogenous => self.monoid.star(),
            FactRole::Absent => self.monoid.zero(),
        };
        self.run.update(interner, fact, ann)
    }

    /// The underlying maintained run (work accounting, replayed stats).
    pub fn run(&self) -> &IncrementalRun<SatCountMonoid, R> {
        &self.run
    }
}

/// A multi-query `#Sat` serving session — the Shapley substrate as a
/// plan builder: many (possibly overlapping) queries over one
/// exogenous/endogenous split share intermediate relations through the
/// session's plan cache, and role flips ([`SatSession::set_fact`])
/// invalidate only the cached intermediates whose relations changed.
/// Returned vectors and [`crate::EngineStats`] are bit-identical to a
/// fresh [`sat_counts`] run of the current state (for queries
/// mentioning every endogenous relation — invisible facts are the
/// caller's binomial convolution, as with [`IncrementalSatCounts`]).
pub struct SatSession<R: ServingBackend<Ann = SatVec> = crate::ColumnarRelation<SatVec>> {
    monoid: SatCountMonoid,
    session: ServingSession<SatCountMonoid, R>,
}

impl<R: ServingBackend<Ann = SatVec>> SatSession<R> {
    /// Builds the session with vectors truncated at `capacity` (the
    /// largest endogenous set the instance will ever hold) and an
    /// explicit [`Parallelism`] degree.
    ///
    /// # Errors
    /// Rejects overlapping exogenous/endogenous parts.
    pub fn with_parallelism(
        interner: &Interner,
        exogenous: &[Fact],
        endogenous: &[Fact],
        capacity: usize,
        par: Parallelism,
    ) -> Result<Self, ShapleyError> {
        check_disjoint(interner, exogenous, endogenous)?;
        let monoid = SatCountMonoid::new(capacity);
        let facts: Vec<(Fact, SatVec)> = exogenous
            .iter()
            .map(|f| (f.clone(), monoid.one()))
            .chain(endogenous.iter().map(|f| (f.clone(), monoid.star())))
            .collect();
        let session = ServingSession::with_parallelism(monoid, interner, facts, par).map_err(
            |e| match e {
                ServingError::Annotate(a) => ShapleyError::Unify(UnifyError::Annotate(a)),
                ServingError::NotHierarchical(n) => {
                    ShapleyError::Unify(UnifyError::NotHierarchical(n))
                }
                // Construction never routes through a server write
                // queue and evaluates no recursive plan; the session
                // is built directly.
                e @ (ServingError::WriteQueueFull { .. } | ServingError::Fixpoint(_)) => {
                    unreachable!("session construction cannot fail this way: {e}")
                }
            },
        )?;
        Ok(SatSession { session, monoid })
    }

    /// Builds the session sequentially.
    ///
    /// # Errors
    /// Rejects overlapping exogenous/endogenous parts.
    pub fn new(
        interner: &Interner,
        exogenous: &[Fact],
        endogenous: &[Fact],
        capacity: usize,
    ) -> Result<Self, ShapleyError> {
        Self::with_parallelism(
            interner,
            exogenous,
            endogenous,
            capacity,
            Parallelism::default(),
        )
    }

    /// The `#Sat` vector for one query, sharing sub-plans with every
    /// query this session has served.
    ///
    /// # Errors
    /// Rejects non-hierarchical queries and schema mismatches.
    pub fn query(&mut self, interner: &Interner, q: &Query) -> Result<SatVec, ServingError> {
        Ok(self.session.query(interner, q)?.0)
    }

    /// Re-classifies one fact's role, repairing the caches
    /// incrementally.
    ///
    /// # Errors
    /// Schema mismatches with the stored relation.
    pub fn set_fact(
        &mut self,
        interner: &Interner,
        fact: &Fact,
        role: FactRole,
    ) -> Result<UpdateOutcome, ServingError> {
        let ann = match role {
            FactRole::Exogenous => self.monoid.one(),
            FactRole::Endogenous => self.monoid.star(),
            FactRole::Absent => self.monoid.zero(),
        };
        self.session.update(interner, fact, ann)
    }

    /// The underlying session (sharing/caching introspection).
    pub fn session(&self) -> &ServingSession<SatCountMonoid, R> {
        &self.session
    }

    /// Bounds the session's node cache (see
    /// [`ServingSession::set_cache_budget`]). Only the serving knobs
    /// are forwarded mutably — the session itself stays behind the
    /// wrapper so fact-role validation cannot be bypassed.
    pub fn set_cache_budget(&mut self, budget: Option<usize>) {
        self.session.set_cache_budget(budget);
    }

    /// Enables or disables spill-on-evict (see
    /// [`ServingSession::set_spill`]); returns the effective state.
    pub fn set_spill(&mut self, enabled: bool) -> bool {
        self.session.set_spill(enabled)
    }

    /// Sets the rebuild-fallback threshold (see
    /// [`ServingSession::set_patch_fraction`]).
    pub fn set_patch_fraction(&mut self, fraction: f64) {
        self.session.set_patch_fraction(fraction);
    }
}

/// Computes the exact Shapley value of the endogenous fact `fact`.
///
/// ```
/// use hq_arith::Rational;
/// use hq_db::db_from_ints;
/// use hq_query::parse_query;
///
/// // Two interchangeable witnesses for Q() :- R(X): each fact gets 1/2.
/// let q = parse_query("Q() :- R(X)").unwrap();
/// let (db, i) = db_from_ints(&[("R", &[&[1], &[2]])]);
/// let endo = db.facts();
/// let v = hq_unify::shapley::shapley_value(&q, &i, &[], &endo, &endo[0]).unwrap();
/// assert_eq!(v, Rational::ratio(1, 2));
/// ```
///
/// # Errors
/// Rejects inputs where `fact` is not endogenous, parts overlap, the
/// query is non-hierarchical, or schemas mismatch.
pub fn shapley_value(
    q: &Query,
    interner: &Interner,
    exogenous: &[Fact],
    endogenous: &[Fact],
    fact: &Fact,
) -> Result<Rational, ShapleyError> {
    shapley_value_on(Backend::Map, q, interner, exogenous, endogenous, fact)
}

/// [`shapley_value`] on an explicit storage backend.
///
/// # Errors
/// Same failure modes as [`shapley_value`].
pub fn shapley_value_on(
    backend: Backend,
    q: &Query,
    interner: &Interner,
    exogenous: &[Fact],
    endogenous: &[Fact],
    fact: &Fact,
) -> Result<Rational, ShapleyError> {
    shapley_value_par(
        backend,
        Parallelism::default(),
        q,
        interner,
        exogenous,
        endogenous,
        fact,
    )
}

/// [`shapley_value`] on an explicit backend and [`Parallelism`]
/// degree.
///
/// # Errors
/// Same failure modes as [`shapley_value`].
pub fn shapley_value_par(
    backend: Backend,
    par: Parallelism,
    q: &Query,
    interner: &Interner,
    exogenous: &[Fact],
    endogenous: &[Fact],
    fact: &Fact,
) -> Result<Rational, ShapleyError> {
    check_disjoint(interner, exogenous, endogenous)?;
    let n = endogenous.len() as u64;
    let Some(pos) = endogenous.iter().position(|f| f == fact) else {
        return Err(ShapleyError::NotEndogenous {
            fact: fact.display(interner).to_string(),
        });
    };
    let mut rest = endogenous.to_vec();
    rest.remove(pos);
    let mut exo_with = exogenous.to_vec();
    exo_with.push(fact.clone());
    let with_f = sat_counts_par(backend, par, q, interner, &exo_with, &rest)?;
    let without_f = sat_counts_par(backend, par, q, interner, exogenous, &rest)?;
    let mut total = Rational::zero();
    for k in 0..n {
        let w = shapley_weight(n, k);
        let a = Rational::from_naturals(with_f.t[k as usize].clone(), Natural::one());
        let b = Rational::from_naturals(without_f.t[k as usize].clone(), Natural::one());
        total = &total + &(&w * &(&a - &b));
    }
    Ok(total)
}

/// Computes the Shapley value of every endogenous fact (in input
/// order).
///
/// # Errors
/// Same failure modes as [`shapley_value`].
pub fn shapley_values(
    q: &Query,
    interner: &Interner,
    exogenous: &[Fact],
    endogenous: &[Fact],
) -> Result<Vec<(Fact, Rational)>, ShapleyError> {
    shapley_values_on(Backend::Map, q, interner, exogenous, endogenous)
}

/// [`shapley_values`] on an explicit storage backend.
///
/// # Errors
/// Same failure modes as [`shapley_value`].
pub fn shapley_values_on(
    backend: Backend,
    q: &Query,
    interner: &Interner,
    exogenous: &[Fact],
    endogenous: &[Fact],
) -> Result<Vec<(Fact, Rational)>, ShapleyError> {
    shapley_values_par(
        backend,
        Parallelism::default(),
        q,
        interner,
        exogenous,
        endogenous,
    )
}

/// [`shapley_values`] on an explicit backend and [`Parallelism`]
/// degree (intra-query sharding on the persistent worker
/// [`pool`](crate::pool); the per-fact loop stays sequential).
///
/// # Errors
/// Same failure modes as [`shapley_value`].
pub fn shapley_values_par(
    backend: Backend,
    par: Parallelism,
    q: &Query,
    interner: &Interner,
    exogenous: &[Fact],
    endogenous: &[Fact],
) -> Result<Vec<(Fact, Rational)>, ShapleyError> {
    endogenous
        .iter()
        .map(|f| {
            shapley_value_par(backend, par, q, interner, exogenous, endogenous, f)
                .map(|v| (f.clone(), v))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_db::db_from_ints;
    use hq_query::{q_hierarchical, q_non_hierarchical, Query};

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn sat_counts_single_atom() {
        // Q() :- R(X), D_n = {R(1), R(2)}, D_x = ∅:
        // #Sat(0)=0, #Sat(1)=2, #Sat(2)=1.
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let (db, i) = db_from_ints(&[("R", &[&[1], &[2]])]);
        let endo = db.facts();
        let v = sat_counts(&q, &i, &[], &endo).unwrap();
        assert_eq!(v.t, vec![nat(0), nat(2), nat(1)]);
        assert_eq!(v.f, vec![nat(1), nat(0), nat(0)]);
    }

    #[test]
    fn sat_session_matches_fresh_counts_through_role_flips() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2], &[1, 3]]), ("F", &[&[2, 9], &[3, 8]])]);
        let endo = db.facts();
        let mut session: SatSession = SatSession::new(&i, &[], &endo, endo.len()).unwrap();
        let fresh = sat_counts_on(Backend::Columnar, &q, &i, &[], &endo).unwrap();
        assert_eq!(session.query(&i, &q).unwrap(), fresh);
        // Flip one fact to exogenous: the maintained session must match
        // a fresh evaluation of the flipped split.
        let exo = vec![endo[0].clone()];
        let rest: Vec<Fact> = endo[1..].to_vec();
        session.set_fact(&i, &endo[0], FactRole::Exogenous).unwrap();
        let fresh = sat_counts_on(Backend::Columnar, &q, &i, &exo, &rest).unwrap();
        // Capacity differs (|D_n| shrank), so compare the shared prefix.
        let got = session.query(&i, &q).unwrap();
        for k in 0..fresh.t.len() {
            assert_eq!(got.t[k], fresh.t[k], "t[{k}]");
        }
        // Overlapping parts are rejected at construction.
        assert!(SatSession::<crate::ColumnarRelation<SatVec>>::new(
            &i,
            &endo[..1],
            &endo,
            endo.len()
        )
        .is_err());
    }

    #[test]
    fn sat_totals_are_binomials() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2], &[1, 3]]), ("F", &[&[2, 9], &[3, 8]])]);
        let endo = db.facts();
        let v = sat_counts(&q, &i, &[], &endo).unwrap();
        for k in 0..=4u64 {
            assert_eq!(v.total(k as usize), binomial(4, k), "k={k}");
        }
    }

    #[test]
    fn symmetric_facts_split_evenly() {
        // Q() :- R(X) with two symmetric endogenous facts: each has
        // Shapley value 1/2 (efficiency + symmetry).
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let (db, i) = db_from_ints(&[("R", &[&[1], &[2]])]);
        let endo = db.facts();
        for f in &endo {
            let v = shapley_value(&q, &i, &[], &endo, f).unwrap();
            assert_eq!(v, Rational::ratio(1, 2), "{}", f.display(&i));
        }
    }

    #[test]
    fn efficiency_axiom() {
        // Values over all endogenous facts sum to
        // Q(D_x ∪ D_n) − Q(D_x) ∈ {0, 1} (as 0/1 indicators).
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2], &[4, 5]]), ("F", &[&[2, 3], &[5, 6]])]);
        let endo = db.facts();
        let vals = shapley_values(&q, &i, &[], &endo).unwrap();
        let total = vals.iter().fold(Rational::zero(), |acc, (_, v)| &acc + v);
        assert_eq!(
            total,
            Rational::one(),
            "query true on full DB, false on empty"
        );
    }

    #[test]
    fn exogenous_witness_zeroes_everything() {
        // If an exogenous witness already satisfies Q, no endogenous
        // fact ever flips it: all Shapley values are 0.
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let (db, i) = db_from_ints(&[("R", &[&[1], &[2], &[3]])]);
        let facts = db.facts();
        let (exo, endo) = facts.split_at(1);
        let vals = shapley_values(&q, &i, exo, endo).unwrap();
        for (f, v) in vals {
            assert_eq!(v, Rational::zero(), "{}", f.display(&i));
        }
    }

    #[test]
    fn conjunction_needs_both_facts() {
        // Q() :- E(X,Y), F(Y,Z) with one E and one F fact: both needed,
        // each worth 1/2.
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        let endo = db.facts();
        let vals = shapley_values(&q, &i, &[], &endo).unwrap();
        assert_eq!(vals.len(), 2);
        for (_, v) in vals {
            assert_eq!(v, Rational::ratio(1, 2));
        }
    }

    #[test]
    fn asymmetric_contributions() {
        // Q() :- E(X,Y), F(Y,Z):
        //   E(1,2) joins F(2,8) and F(2,9); all three endogenous.
        //   E is critical (in every witness); the two F's are
        //   interchangeable. Shapley(E) = 2/3, Shapley(F_i) = 1/6.
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 8], &[2, 9]])]);
        let endo = db.facts();
        let vals = shapley_values(&q, &i, &[], &endo).unwrap();
        let mut by_rel: Vec<(String, Rational)> = vals
            .iter()
            .map(|(f, v)| (f.display(&i).to_string(), v.clone()))
            .collect();
        by_rel.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(by_rel[0].1, Rational::ratio(2, 3), "{:?}", by_rel[0].0);
        assert_eq!(by_rel[1].1, Rational::ratio(1, 6));
        assert_eq!(by_rel[2].1, Rational::ratio(1, 6));
    }

    #[test]
    fn invisible_endogenous_facts_keep_totals() {
        // An endogenous fact over a relation the query never mentions
        // must not change Shapley values but must keep #Sat totals
        // binomial.
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let (db, i) = db_from_ints(&[("R", &[&[1]]), ("Zed", &[&[42]])]);
        let endo = db.facts();
        let v = sat_counts(&q, &i, &[], &endo).unwrap();
        for k in 0..=2u64 {
            assert_eq!(v.total(k as usize), binomial(2, k));
        }
        let r_fact = endo.iter().find(|f| f.rel == i.get("R").unwrap()).unwrap();
        let z_fact = endo
            .iter()
            .find(|f| f.rel == i.get("Zed").unwrap())
            .unwrap();
        assert_eq!(
            shapley_value(&q, &i, &[], &endo, r_fact).unwrap(),
            Rational::one()
        );
        assert_eq!(
            shapley_value(&q, &i, &[], &endo, z_fact).unwrap(),
            Rational::zero()
        );
    }

    #[test]
    fn incremental_sat_counts_track_fresh_runs() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2], &[1, 3]]), ("F", &[&[2, 9], &[3, 8]])]);
        let endo = db.facts();
        let n = endo.len();
        let mut inc = IncrementalSatCounts::new(&q, &i, &[], &endo, n).unwrap();
        assert_eq!(inc.counts(), &sat_counts(&q, &i, &[], &endo).unwrap());
        // Promote one fact to exogenous: compare to a fresh run over
        // the same split, padded to the construction capacity (the
        // fresh vector is sized by |D_n|, the maintained one by the
        // fixed capacity).
        let (exo, rest) = (vec![endo[0].clone()], endo[1..].to_vec());
        inc.set_fact(&i, &endo[0], FactRole::Exogenous).unwrap();
        let fresh = sat_counts(&q, &i, &exo, &rest).unwrap();
        assert_eq!(inc.counts().t[..fresh.t.len()], fresh.t);
        assert!(inc.counts().t[fresh.t.len()..].iter().all(Natural::is_zero));
        // Delete it outright.
        inc.set_fact(&i, &endo[0], FactRole::Absent).unwrap();
        let fresh = sat_counts(&q, &i, &[], &rest).unwrap();
        assert_eq!(inc.counts().t[..fresh.t.len()], fresh.t);
        // Overlapping parts are rejected at construction.
        assert!(IncrementalSatCounts::new(&q, &i, &endo[..1], &endo, n).is_err());
    }

    #[test]
    fn rejects_overlap_and_non_endogenous() {
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let (db, i) = db_from_ints(&[("R", &[&[1], &[2]])]);
        let facts = db.facts();
        assert!(matches!(
            sat_counts(&q, &i, &facts[..1], &facts),
            Err(ShapleyError::OverlappingParts { .. })
        ));
        assert!(matches!(
            shapley_value(&q, &i, &facts[..1], &facts[1..], &facts[0]),
            Err(ShapleyError::NotEndogenous { .. })
        ));
    }

    #[test]
    fn rejects_non_hierarchical() {
        let q = q_non_hierarchical();
        let i = Interner::new();
        assert!(matches!(
            sat_counts(&q, &i, &[], &[]),
            Err(ShapleyError::Unify(UnifyError::NotHierarchical(_)))
        ));
    }
}
