//! Incremental maintenance of Algorithm 1 under annotation updates.
//!
//! The paper's concluding remarks (Question 2) point at query
//! answering **under updates** as the natural next target for the
//! 2-monoid framework. This module is a first-order-of-business
//! executable answer: materialise the K-annotated state *before every
//! elimination step*, and on a single-fact annotation change re-walk
//! the plan touching only the dirty keys.
//!
//! Because ⊕ in a 2-monoid need not be invertible (max-plus
//! convolutions have no subtraction!), a changed input cannot be
//! "subtracted out" of an aggregate; each dirty Rule 1 group is
//! *refolded* from its current members instead. Groups are located by
//! one scan of the step's input relation per update batch, so an
//! update costs `O(|D|)` monoid operations in the worst case — already
//! far better than the `O(|D| · steps)` of a full re-run when few keys
//! are dirty, and the honest baseline for true delta-indexing. The
//! differential test suite re-runs the full engine after every update
//! and demands exact agreement, for all monoids.
//!
//! Inserting a fact = updating its annotation from `0`; deleting =
//! updating to `0` (the ψ-encodings make `0` mean "absent" in every
//! instantiation), so annotation updates subsume set-level updates
//! over a fixed active domain.
//!
//! The maintainer is generic over the [`Storage`] backend. The
//! ordered-map backend is the default — point access is its native
//! operation — while the columnar backend trades `O(n)` splices on
//! point writes for its batch-speed scans; both stay exactly
//! consistent with the batch engine.

use crate::annotated::{annotate_with, AnnotateError, AnnotatedDb};
use crate::storage::{ColumnarRelation, MapRelation, Parallelism, ShardedColumnar, Storage};
use hq_db::{Fact, Interner, Tuple};
use hq_monoid::TwoMonoid;
use hq_query::{plan, EliminationPlan, Query, Step};
use std::collections::{BTreeMap, BTreeSet};

/// A materialised Algorithm 1 run that supports annotation updates.
pub struct IncrementalRun<M, R = MapRelation<<M as TwoMonoid>::Elem>>
where
    M: TwoMonoid,
    R: Storage<Ann = M::Elem>,
{
    monoid: M,
    plan: EliminationPlan,
    /// `states[i]` is the slot state *before* step `i`;
    /// `states[plan.steps().len()]` is the final state.
    states: Vec<AnnotatedDb<R>>,
    /// Fact → (slot, key) resolution for updates.
    fact_index: BTreeMap<Fact, (usize, Tuple)>,
    /// Current query result.
    result: M::Elem,
}

/// Errors constructing or updating an incremental run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncrementalError {
    /// The query is not hierarchical.
    NotHierarchical(hq_query::NotHierarchical),
    /// The initial fact list did not match the query schema.
    Annotate(AnnotateError),
    /// An updated fact's relation does not occur in the query.
    UnknownFact {
        /// Rendered fact.
        fact: String,
    },
}

impl std::fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncrementalError::NotHierarchical(e) => write!(f, "{e}"),
            IncrementalError::Annotate(e) => write!(f, "{e}"),
            IncrementalError::UnknownFact { fact } => {
                write!(
                    f,
                    "fact {fact} is over a relation the query does not mention"
                )
            }
        }
    }
}

impl std::error::Error for IncrementalError {}

impl<M: TwoMonoid> IncrementalRun<M> {
    /// Builds the run on the default (ordered-map) backend: plans the
    /// query, annotates the facts, and materialises the state before
    /// every step.
    ///
    /// # Errors
    /// Rejects non-hierarchical queries and schema mismatches.
    pub fn new(
        monoid: M,
        q: &Query,
        interner: &Interner,
        facts: impl IntoIterator<Item = (Fact, M::Elem)>,
    ) -> Result<Self, IncrementalError> {
        Self::with_storage(monoid, q, interner, facts)
    }
}

impl<M: TwoMonoid> IncrementalRun<M, ShardedColumnar<M::Elem>> {
    /// Builds the run on the sharded columnar backend: the state
    /// materialisation (a full Algorithm 1 replay) runs shard-parallel
    /// at the given [`Parallelism`] degree, and so does every dirty
    /// refold batch large enough to shard. Results stay bit-identical
    /// to the sequential backends through any update schedule.
    ///
    /// # Errors
    /// Rejects non-hierarchical queries and schema mismatches.
    pub fn with_parallelism(
        monoid: M,
        q: &Query,
        interner: &Interner,
        facts: impl IntoIterator<Item = (Fact, M::Elem)>,
        par: Parallelism,
    ) -> Result<Self, IncrementalError> {
        let fact_list: Vec<(Fact, M::Elem)> = facts.into_iter().collect();
        let db: AnnotatedDb<ColumnarRelation<M::Elem>> =
            annotate_with(q, interner, fact_list.iter().cloned())
                .map_err(IncrementalError::Annotate)?;
        Self::from_annotated(monoid, q, interner, &fact_list, db.into_sharded(par))
    }
}

impl<M, R> IncrementalRun<M, R>
where
    M: TwoMonoid,
    R: Storage<Ann = M::Elem>,
{
    /// Builds the run on an explicit storage backend (see
    /// [`crate::storage`]).
    ///
    /// # Errors
    /// Rejects non-hierarchical queries and schema mismatches.
    pub fn with_storage(
        monoid: M,
        q: &Query,
        interner: &Interner,
        facts: impl IntoIterator<Item = (Fact, M::Elem)>,
    ) -> Result<Self, IncrementalError> {
        let fact_list: Vec<(Fact, M::Elem)> = facts.into_iter().collect();
        let db: AnnotatedDb<R> = annotate_with(q, interner, fact_list.iter().cloned())
            .map_err(IncrementalError::Annotate)?;
        Self::from_annotated(monoid, q, interner, &fact_list, db)
    }

    /// Builds the run from an already-annotated database (shared by
    /// every constructor; `fact_list` is needed to index updates).
    ///
    /// # Errors
    /// Rejects non-hierarchical queries.
    fn from_annotated(
        monoid: M,
        q: &Query,
        interner: &Interner,
        fact_list: &[(Fact, M::Elem)],
        db: AnnotatedDb<R>,
    ) -> Result<Self, IncrementalError> {
        let p = plan(q).map_err(IncrementalError::NotHierarchical)?;
        // Build the fact → (slot, key) index the same way `annotate` does.
        let mut fact_index = BTreeMap::new();
        for (i, atom) in q.atoms().iter().enumerate() {
            let mut sorted = atom.vars.clone();
            sorted.sort_unstable();
            let positions: Vec<usize> = sorted
                .iter()
                .map(|v| atom.vars.iter().position(|w| w == v).expect("own var"))
                .collect();
            if let Some(sym) = interner.get(&atom.rel) {
                for (fact, _) in fact_list {
                    if fact.rel == sym {
                        fact_index.insert(fact.clone(), (i, fact.tuple.project(&positions)));
                    }
                }
            }
        }
        // Materialise the state before every step.
        let mut states = vec![db];
        for (idx, step) in p.steps().iter().enumerate() {
            let mut next = states[idx].clone();
            apply_step(&monoid, &mut next, step);
            states.push(next);
        }
        let result = extract(&monoid, &p, &states);
        Ok(IncrementalRun {
            monoid,
            plan: p,
            states,
            fact_index,
            result,
        })
    }

    /// The current query result.
    pub fn result(&self) -> &M::Elem {
        &self.result
    }

    /// Updates one fact's annotation and re-propagates the change
    /// through the materialised pipeline, touching only dirty keys.
    /// Setting the annotation to `0` deletes the fact; updating a fact
    /// absent from the initial list is an error (the active domain is
    /// fixed at construction).
    ///
    /// Returns the new query result.
    ///
    /// # Errors
    /// [`IncrementalError::UnknownFact`] if the fact was not part of
    /// the initial annotation (including facts over unmentioned
    /// relations).
    pub fn update(
        &mut self,
        interner: &Interner,
        fact: &Fact,
        value: M::Elem,
    ) -> Result<&M::Elem, IncrementalError> {
        let Some(&(slot, ref key)) = self.fact_index.get(fact) else {
            return Err(IncrementalError::UnknownFact {
                fact: fact.display(interner).to_string(),
            });
        };
        let key = key.clone();
        // Stage 0: update the base snapshot (`0` means absent).
        {
            let v = if self.monoid.is_zero(&value) {
                None
            } else {
                Some(value)
            };
            let rel = self.states[0].slots[slot]
                .as_mut()
                .expect("base slot alive");
            rel.set(&key, v);
        }
        // Dirty keys per slot, re-walked through every step.
        let mut dirty: BTreeMap<usize, BTreeSet<Tuple>> = BTreeMap::new();
        dirty.entry(slot).or_default().insert(key);
        let steps: Vec<Step> = self.plan.steps().to_vec();
        for (idx, step) in steps.iter().enumerate() {
            // `states[idx]` is already up to date for all dirty keys;
            // propagate into `states[idx + 1]`.
            let new_dirty = self.propagate(idx, step, &dirty);
            // Slots untouched by this step keep their dirty keys; the
            // touched slot's dirty set is replaced by the step output's.
            let touched = match *step {
                Step::ProjectOut { atom, .. } => atom,
                Step::Merge { left, right } => {
                    dirty.remove(&right);
                    left
                }
            };
            let mut carried = dirty.clone();
            carried.remove(&touched);
            // Copy untouched dirty-key values forward.
            copy_dirty_forward(&mut self.states, idx, &carried);
            if let Some(keys) = new_dirty {
                if !keys.is_empty() {
                    carried.insert(touched, keys);
                }
            }
            dirty = carried;
            if dirty.is_empty() {
                // Converged early: downstream snapshots are already
                // consistent.
                self.result = extract(&self.monoid, &self.plan, &self.states);
                return Ok(&self.result);
            }
        }
        self.result = extract(&self.monoid, &self.plan, &self.states);
        Ok(&self.result)
    }

    /// Recomputes the dirty part of step `idx`, updating
    /// `states[idx + 1]`. Returns the set of output keys whose value
    /// changed (`None` if this step's slot had no dirty input).
    fn propagate(
        &mut self,
        idx: usize,
        step: &Step,
        dirty: &BTreeMap<usize, BTreeSet<Tuple>>,
    ) -> Option<BTreeSet<Tuple>> {
        let zero = self.monoid.zero();
        match *step {
            Step::ProjectOut { atom, var } => {
                let keys = dirty.get(&atom)?;
                let input = self.states[idx].slots[atom].as_ref().expect("alive");
                let pos = input
                    .vars()
                    .iter()
                    .position(|&v| v == var)
                    .expect("var in schema");
                let keep: Vec<usize> = (0..input.vars().len()).filter(|&i| i != pos).collect();
                // The dirty output groups.
                let groups: BTreeSet<Tuple> = keys.iter().map(|k| k.project(&keep)).collect();
                // Refold each dirty group by one scan of the input; the
                // scan is in ascending key order, so the fold sequence
                // matches the batch engine exactly (bit-identical
                // floats even under maintenance).
                let mut folded: BTreeMap<Tuple, M::Elem> = BTreeMap::new();
                for (t, k) in input.rows() {
                    let g = t.project(&keep);
                    if !groups.contains(&g) {
                        continue;
                    }
                    match folded.remove(&g) {
                        Some(acc) => {
                            folded.insert(g, self.monoid.add(&acc, &k));
                        }
                        None => {
                            folded.insert(g, k);
                        }
                    }
                }
                let output = self.states[idx + 1].slots[atom].as_mut().expect("alive");
                let mut changed = BTreeSet::new();
                for g in groups {
                    let new = folded.remove(&g).filter(|v| !self.monoid.is_zero(v));
                    let old = output.get(&g);
                    if old != new {
                        changed.insert(g.clone());
                    }
                    output.set(&g, new);
                }
                Some(changed)
            }
            Step::Merge { left, right } => {
                let mut keys: BTreeSet<Tuple> = BTreeSet::new();
                if let Some(ks) = dirty.get(&left) {
                    keys.extend(ks.iter().cloned());
                }
                if let Some(ks) = dirty.get(&right) {
                    keys.extend(ks.iter().cloned());
                }
                if keys.is_empty() {
                    return None;
                }
                let mut updates: Vec<(Tuple, Option<M::Elem>)> = Vec::new();
                {
                    let annihilating = self.monoid.annihilating();
                    let input = &self.states[idx];
                    let l = input.slots[left].as_ref().expect("alive");
                    let r = input.slots[right].as_ref().expect("alive");
                    for key in keys.iter() {
                        // One-sided rows mirror the batch merge exactly:
                        // skipped outright for annihilating monoids,
                        // 0-filled otherwise.
                        let new = match (l.get(key), r.get(key)) {
                            (None, None) => None, // 0 ⊗ 0 = 0: stays absent
                            (Some(a), Some(b)) => Some(self.monoid.mul(&a, &b)),
                            (Some(_), None) | (None, Some(_)) if annihilating => None,
                            (Some(a), None) => Some(self.monoid.mul(&a, &zero)),
                            (None, Some(b)) => Some(self.monoid.mul(&zero, &b)),
                        };
                        updates.push((key.clone(), new.filter(|v| !self.monoid.is_zero(v))));
                    }
                }
                let output = self.states[idx + 1].slots[left].as_mut().expect("alive");
                let mut changed = BTreeSet::new();
                for (key, new) in updates {
                    let old = output.get(&key);
                    if old != new {
                        changed.insert(key.clone());
                    }
                    output.set(&key, new);
                }
                Some(changed)
            }
        }
    }
}

/// For slots whose dirty keys are *not* consumed by step `idx`, copy
/// the updated values from `states[idx]` into `states[idx + 1]` so the
/// next step sees them.
fn copy_dirty_forward<R: Storage>(
    states: &mut [AnnotatedDb<R>],
    idx: usize,
    dirty: &BTreeMap<usize, BTreeSet<Tuple>>,
) {
    for (&slot, keys) in dirty {
        for key in keys {
            let v = states[idx].slots[slot].as_ref().and_then(|r| r.get(key));
            let out = states[idx + 1].slots[slot].as_mut().expect("alive slot");
            out.set(key, v);
        }
    }
}

/// Applies one step eagerly (construction path): same semantics as the
/// batch engine in [`crate::engine`].
fn apply_step<M, R>(monoid: &M, db: &mut AnnotatedDb<R>, step: &Step)
where
    M: TwoMonoid,
    R: Storage<Ann = M::Elem>,
{
    let mut stats = crate::engine::EngineStats::default();
    match *step {
        Step::ProjectOut { atom, var } => {
            let rel = db.slots[atom].take().expect("alive");
            db.slots[atom] = Some(rel.project_out(monoid, var, &mut stats));
        }
        Step::Merge { left, right } => {
            let l = db.slots[left].take().expect("alive");
            let r = db.slots[right].take().expect("alive");
            db.slots[left] = Some(l.merge(monoid, r, &mut stats));
        }
    }
}

/// Reads the final result out of the last materialised state.
fn extract<M, R>(monoid: &M, plan: &EliminationPlan, states: &[AnnotatedDb<R>]) -> M::Elem
where
    M: TwoMonoid,
    R: Storage<Ann = M::Elem>,
{
    let last = states.last().expect("states non-empty");
    let root = last.slots[plan.root()]
        .as_ref()
        .expect("root alive in final state");
    root.nullary_value(monoid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::ColumnarRelation;
    use hq_db::db_from_ints;
    use hq_monoid::{CountMonoid, ProbMonoid};
    use hq_query::{example_query, q_hierarchical};

    #[test]
    fn matches_full_run_after_probability_updates() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[
            ("E", &[&[1, 2], &[1, 3], &[4, 3]]),
            ("F", &[&[2, 9], &[3, 8], &[3, 9]]),
        ]);
        let facts = db.facts();
        let tid: Vec<(Fact, f64)> = facts.iter().map(|f| (f.clone(), 0.5)).collect();
        let mut run = IncrementalRun::new(ProbMonoid, &q, &i, tid.clone()).unwrap();
        let (expected, _) = crate::engine::evaluate(&ProbMonoid, &q, &i, tid.clone()).unwrap();
        assert!((run.result() - expected).abs() < 1e-12);
        // Update every fact in turn and compare to a fresh run.
        let mut current = tid;
        for (j, f) in facts.iter().enumerate() {
            let new_p = 0.1 + 0.15 * j as f64;
            current[j].1 = new_p;
            let got = *run.update(&i, f, new_p).unwrap();
            let (fresh, _) = crate::engine::evaluate(&ProbMonoid, &q, &i, current.clone()).unwrap();
            assert!(
                (got - fresh).abs() < 1e-12,
                "after updating {}: incremental {got} vs fresh {fresh}",
                f.display(&i)
            );
        }
    }

    #[test]
    fn columnar_backend_maintains_identically() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[
            ("E", &[&[1, 2], &[1, 3], &[4, 3]]),
            ("F", &[&[2, 9], &[3, 8], &[3, 9]]),
        ]);
        let facts = db.facts();
        let tid: Vec<(Fact, f64)> = facts.iter().map(|f| (f.clone(), 0.5)).collect();
        let mut map_run = IncrementalRun::new(ProbMonoid, &q, &i, tid.clone()).unwrap();
        let mut col_run: IncrementalRun<ProbMonoid, ColumnarRelation<f64>> =
            IncrementalRun::with_storage(ProbMonoid, &q, &i, tid).unwrap();
        assert_eq!(map_run.result().to_bits(), col_run.result().to_bits());
        for (j, f) in facts.iter().enumerate() {
            let new_p = 0.05 + 0.14 * j as f64;
            let a = *map_run.update(&i, f, new_p).unwrap();
            let b = *col_run.update(&i, f, new_p).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "after updating {}", f.display(&i));
        }
        // Deletion via zero and re-insertion stay consistent too.
        let a = *map_run.update(&i, &facts[0], 0.0).unwrap();
        let b = *col_run.update(&i, &facts[0], 0.0).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        let a = *map_run.update(&i, &facts[0], 0.6).unwrap();
        let b = *col_run.update(&i, &facts[0], 0.6).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn insert_and_delete_via_zero_annotations() {
        // Counting monoid: deleting a fact = annotation 0, re-inserting = 1.
        let q = example_query();
        let (db, i) = db_from_ints(&[
            ("R", &[&[1, 5], &[1, 6]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4], &[1, 1, 9]]),
        ]);
        let facts = db.facts();
        let annotated: Vec<(Fact, u64)> = facts.iter().map(|f| (f.clone(), 1)).collect();
        let mut run = IncrementalRun::new(CountMonoid, &q, &i, annotated).unwrap();
        let base = *run.result();
        assert_eq!(base, 4, "2 R-facts × 2 (S,T) combos");
        // Delete one R fact: count halves.
        let r_fact = facts
            .iter()
            .find(|f| f.rel == i.get("R").unwrap())
            .unwrap()
            .clone();
        assert_eq!(*run.update(&i, &r_fact, 0).unwrap(), 2);
        // Re-insert: back to base.
        assert_eq!(*run.update(&i, &r_fact, 1).unwrap(), base);
        // Delete a T fact.
        let t_fact = facts
            .iter()
            .find(|f| f.rel == i.get("T").unwrap())
            .unwrap()
            .clone();
        let after_t = *run.update(&i, &t_fact, 0).unwrap();
        assert_eq!(after_t, 2);
    }

    #[test]
    fn unknown_fact_rejected() {
        let q = q_hierarchical();
        let (db, mut i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        let tid: Vec<(Fact, f64)> = db.facts().into_iter().map(|f| (f, 0.5)).collect();
        let mut run = IncrementalRun::new(ProbMonoid, &q, &i, tid).unwrap();
        let other = i.intern("Other");
        let stranger = Fact::new(other, Tuple::ints(&[1]));
        assert!(matches!(
            run.update(&i, &stranger, 0.9),
            Err(IncrementalError::UnknownFact { .. })
        ));
        // A fact of a query relation that was never annotated is also
        // outside the fixed active domain.
        let e = i.get("E").unwrap();
        let new_e = Fact::new(e, Tuple::ints(&[7, 7]));
        assert!(run.update(&i, &new_e, 0.9).is_err());
    }

    #[test]
    fn early_convergence_on_no_op_update() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        let facts = db.facts();
        let tid: Vec<(Fact, f64)> = facts.iter().map(|f| (f.clone(), 0.5)).collect();
        let mut run = IncrementalRun::new(ProbMonoid, &q, &i, tid).unwrap();
        let before = *run.result();
        // Setting the same annotation converges without changing anything.
        let got = *run.update(&i, &facts[0], 0.5).unwrap();
        assert_eq!(got, before);
    }
}
