//! Incremental maintenance of Algorithm 1 under annotation updates —
//! the delta-indexed design.
//!
//! The paper's concluding remarks (Question 2) point at query
//! answering **under updates** as the natural next target for the
//! 2-monoid framework. This module maintains a materialised Algorithm 1
//! pipeline and, on updates, re-walks the plan touching only the dirty
//! keys.
//!
//! Because ⊕ in a 2-monoid need not be invertible (max-plus
//! convolutions have no subtraction!), a changed input cannot be
//! "subtracted out" of an aggregate; each dirty Rule 1 group is
//! *refolded* from its current members instead. The refold is
//! **delta-indexed**: [`Storage::group_rows`] locates a group's rows by
//! binary search / range query over the backend's sorted layout, so a
//! dirty group of size `g` costs `O(log |D| + g)` — not the `O(|D|)`
//! full scan of the first-generation maintainer — and a whole update
//! batch costs a function of the dirty set, not of the database.
//!
//! Memory follows the same principle. Instead of cloning the full
//! annotated database before every step (`steps + 1` database clones),
//! the run stores the **base state once** plus **one relation per
//! step** — the touched slot's content after that step. The state of
//! slot `s` before step `i` is resolved by walking back to the last
//! step that wrote `s` (or the base); untouched slots are never
//! copied, so update propagation needs no copy-forward pass at all:
//! writing the base (or a step output) is immediately visible to every
//! downstream reader.
//!
//! Updates arrive one at a time ([`IncrementalRun::update`]) or as a
//! batch ([`IncrementalRun::update_batch`]): a batch coalesces its
//! dirty keys per slot first — later writes to the same fact win — and
//! then walks the plan **once**, so a thousand-fact batch pays one
//! propagation pass, not a thousand. The dirty sets live in the
//! backend's **native key space** ([`Storage::Key`]): on the columnar
//! layouts every projection, group lookup and write-back of the walk
//! compares 4-byte code rows instead of decoding and re-encoding boxed
//! tuples, and a batch carrying novel domain values extends each
//! relation's dictionary **once up front**
//! ([`Storage::prepare_values`]) instead of once per `set` call.
//!
//! Inserting a fact = updating its annotation from `0`; deleting =
//! updating to `0` (the ψ-encodings make `0` mean "absent" in every
//! instantiation). The active domain is **not** fixed at construction:
//! a genuinely new fact over a query relation is admitted on the fly —
//! the fact index learns it, the backend splices the row, and the
//! columnar layouts extend their value dictionary (renumbering codes
//! so the value-order invariant, and with it bit-identical fold
//! sequences, survives).
//!
//! The maintainer is generic over the [`Storage`] backend and stays
//! **bit-identical** to a fresh batch evaluation through any schedule
//! of updates, deletes and inserts — values, support trajectories
//! ([`IncrementalRun::replay_stats`]) and ⊕/⊗ op counts — for every
//! monoid, backend and thread count; the `differential_incremental`
//! suite pins this down.

use crate::annotated::{annotate_with, AnnotateError, AnnotatedDb};
use crate::engine::EngineStats;
use crate::pool;
use crate::storage::{ColumnarRelation, MapRelation, Parallelism, ShardedColumnar, Storage};
use hq_db::{Fact, Interner, Sym, Tuple, Value};
use hq_monoid::TwoMonoid;
use hq_query::{plan, EliminationPlan, Query, Step};
use std::collections::{BTreeMap, BTreeSet};

/// Per-slot metadata for resolving facts to storage keys, including
/// facts never seen before (dynamic inserts).
#[derive(Debug, Clone)]
struct SlotInfo {
    /// The atom's relation symbol, when interned.
    sym: Option<Sym>,
    /// The atom's relation name (for error messages).
    rel: String,
    /// Written-order → sorted-var-order projection.
    positions: Vec<usize>,
}

/// Instrumentation of the most recent [`IncrementalRun::update_batch`]:
/// how much *work* the propagation did. The acceptance bar for the
/// delta-indexed design is that `rows_folded` tracks the sizes of the
/// dirty groups, not `|D|`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Distinct `(slot, key)` pairs written to the base state after
    /// coalescing the batch.
    pub keys_written: usize,
    /// Dirty Rule 1 groups refolded across all steps.
    pub groups_refolded: usize,
    /// Input rows fed to those refolds (Σ dirty group sizes).
    pub rows_folded: usize,
    /// ⊕ applications performed by the refolds.
    pub add_ops: u64,
    /// ⊗ applications performed re-deriving dirty merge keys.
    pub mul_ops: u64,
    /// Relations whose value dictionary was extended (and code matrix
    /// remapped) by this batch's novel domain values. The batch-level
    /// extension pays **at most one** extension per relation per batch
    /// — not one per novel-value `set` call — so for an insert-heavy
    /// batch of `n` facts this stays `O(relations)` instead of `O(n)`.
    pub dict_extensions: usize,
}

/// Coalesces several update batches into one serial-replay-equivalent
/// batch: for every fact the **last** write across the concatenation
/// wins, and the surviving entries keep the order of each fact's first
/// occurrence (deterministic regardless of how the batches were
/// produced). This is the per-batch dirty-key coalescing of
/// [`IncrementalRun::update_batch`] lifted *across* batches — the
/// server's group-commit pipeline ([`crate::server::Server`]) uses it
/// to merge every queued writer's batch into a single delta-patch
/// pass, so a fact overwritten by a later batch in the group is
/// refolded once at its final value instead of once per batch.
pub fn coalesce_batches<E: Clone>(batches: &[&[(Fact, E)]]) -> Vec<(Fact, E)> {
    let mut index: BTreeMap<&Fact, usize> = BTreeMap::new();
    let mut out: Vec<(Fact, E)> = Vec::new();
    for (fact, value) in batches.iter().flat_map(|b| b.iter()) {
        match index.get(fact) {
            Some(&at) => out[at].1 = value.clone(),
            None => {
                index.insert(fact, out.len());
                out.push((fact.clone(), value.clone()));
            }
        }
    }
    out
}

/// A materialised Algorithm 1 run that supports annotation updates,
/// batched updates, and dynamic fact inserts.
pub struct IncrementalRun<M, R = MapRelation<<M as TwoMonoid>::Elem>>
where
    M: TwoMonoid,
    R: Storage<Ann = M::Elem>,
{
    monoid: M,
    plan: EliminationPlan,
    /// `touched[idx]`: the slot step `idx` writes (`ProjectOut.atom`,
    /// or `Merge.left`).
    touched: Vec<usize>,
    /// The state before step 0, kept current under updates. Every slot
    /// stays alive here (steps write to `step_out`, never back into
    /// the base).
    base: AnnotatedDb<R>,
    /// `step_out[idx]`: the touched slot's relation *after* step
    /// `idx`. Together with `base` this materialises every
    /// intermediate state without a single redundant clone: slot `s`
    /// before step `i` is the output of the last step `< i` that
    /// touched `s`, or the base slot.
    step_out: Vec<R>,
    /// Fact → (slot, key in sorted-var order). Grows on dynamic
    /// inserts.
    fact_index: BTreeMap<Fact, (usize, Tuple)>,
    /// Per-slot resolution metadata for facts outside the index.
    slots: Vec<SlotInfo>,
    /// Current query result.
    result: M::Elem,
    /// Work accounting of the latest batch.
    last_update: UpdateStats,
    /// Parallelism degree for large cross-group refolds (per-group
    /// folds stay sequential, so every degree is bit-identical).
    par: Parallelism,
}

/// Errors constructing or updating an incremental run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncrementalError {
    /// The query is not hierarchical.
    NotHierarchical(hq_query::NotHierarchical),
    /// A fact list did not match the query schema (at construction or
    /// when admitting a dynamically inserted fact).
    Annotate(AnnotateError),
    /// An updated fact's relation does not occur in the query.
    UnknownFact {
        /// Rendered fact.
        fact: String,
    },
}

impl std::fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncrementalError::NotHierarchical(e) => write!(f, "{e}"),
            IncrementalError::Annotate(e) => write!(f, "{e}"),
            IncrementalError::UnknownFact { fact } => {
                write!(
                    f,
                    "fact {fact} is over a relation the query does not mention"
                )
            }
        }
    }
}

impl std::error::Error for IncrementalError {}

impl<M: TwoMonoid> IncrementalRun<M> {
    /// Builds the run on the default (ordered-map) backend: plans the
    /// query, annotates the facts, and materialises the pipeline.
    ///
    /// # Errors
    /// Rejects non-hierarchical queries and schema mismatches.
    pub fn new(
        monoid: M,
        q: &Query,
        interner: &Interner,
        facts: impl IntoIterator<Item = (Fact, M::Elem)>,
    ) -> Result<Self, IncrementalError> {
        Self::with_storage(monoid, q, interner, facts)
    }
}

impl<M: TwoMonoid> IncrementalRun<M, ShardedColumnar<M::Elem>> {
    /// Builds the run on the sharded columnar backend: the pipeline
    /// materialisation (a full Algorithm 1 replay) runs shard-parallel
    /// at the given [`Parallelism`] degree. Dirty refolds gather their
    /// rows by binary search on the shared sorted matrices and fold
    /// sequentially (the determinism guarantee fixes the fold order),
    /// so results stay bit-identical to the sequential backends
    /// through any update schedule.
    ///
    /// # Errors
    /// Rejects non-hierarchical queries and schema mismatches.
    pub fn with_parallelism(
        monoid: M,
        q: &Query,
        interner: &Interner,
        facts: impl IntoIterator<Item = (Fact, M::Elem)>,
        par: Parallelism,
    ) -> Result<Self, IncrementalError> {
        let fact_list: Vec<(Fact, M::Elem)> = facts.into_iter().collect();
        let db: AnnotatedDb<ColumnarRelation<M::Elem>> =
            annotate_with(q, interner, fact_list.iter().cloned())
                .map_err(IncrementalError::Annotate)?;
        let mut run = Self::from_annotated(monoid, q, interner, &fact_list, db.into_sharded(par))?;
        run.par = par;
        Ok(run)
    }
}

impl<M, R> IncrementalRun<M, R>
where
    M: TwoMonoid,
    R: Storage<Ann = M::Elem>,
{
    /// Builds the run on an explicit storage backend (see
    /// [`crate::storage`]).
    ///
    /// # Errors
    /// Rejects non-hierarchical queries and schema mismatches.
    pub fn with_storage(
        monoid: M,
        q: &Query,
        interner: &Interner,
        facts: impl IntoIterator<Item = (Fact, M::Elem)>,
    ) -> Result<Self, IncrementalError> {
        let fact_list: Vec<(Fact, M::Elem)> = facts.into_iter().collect();
        let db: AnnotatedDb<R> = annotate_with(q, interner, fact_list.iter().cloned())
            .map_err(IncrementalError::Annotate)?;
        Self::from_annotated(monoid, q, interner, &fact_list, db)
    }

    /// Builds the run from an already-annotated database (shared by
    /// every constructor; `fact_list` seeds the update index).
    ///
    /// # Errors
    /// Rejects non-hierarchical queries.
    fn from_annotated(
        monoid: M,
        q: &Query,
        interner: &Interner,
        fact_list: &[(Fact, M::Elem)],
        db: AnnotatedDb<R>,
    ) -> Result<Self, IncrementalError> {
        let p = plan(q).map_err(IncrementalError::NotHierarchical)?;
        // Per-slot resolution metadata, then one pass over the fact
        // list routed through a symbol → slot map (the query is
        // self-join-free, so a relation names at most one atom) —
        // `O(atoms + facts · log)`, not the old `O(atoms × facts)`.
        let mut slots = Vec::with_capacity(q.atom_count());
        let mut by_sym: BTreeMap<Sym, usize> = BTreeMap::new();
        for (i, atom) in q.atoms().iter().enumerate() {
            let (_, positions) = atom.key_schema();
            let sym = interner.get(&atom.rel);
            if let Some(s) = sym {
                by_sym.insert(s, i);
            }
            slots.push(SlotInfo {
                sym,
                rel: atom.rel.clone(),
                positions,
            });
        }
        let mut fact_index = BTreeMap::new();
        for (fact, _) in fact_list {
            if let Some(&slot) = by_sym.get(&fact.rel) {
                fact_index.insert(
                    fact.clone(),
                    (slot, fact.tuple.project(&slots[slot].positions)),
                );
            }
        }
        // Materialise the pipeline: base once, then one output
        // relation per step (cloning only the consumed slot, never the
        // whole database).
        let base = db;
        let mut touched: Vec<usize> = Vec::with_capacity(p.steps().len());
        let mut step_out: Vec<R> = Vec::with_capacity(p.steps().len());
        for step in p.steps() {
            let mut stats = EngineStats::default();
            let out = match *step {
                Step::ProjectOut { atom, var } => {
                    let input = state_of(&base, &touched, &step_out, atom).clone();
                    touched.push(atom);
                    input.project_out(&monoid, var, &mut stats)
                }
                Step::Merge { left, right } => {
                    let l = state_of(&base, &touched, &step_out, left).clone();
                    let r = state_of(&base, &touched, &step_out, right).clone();
                    touched.push(left);
                    l.merge(&monoid, r, &mut stats)
                }
            };
            step_out.push(out);
        }
        let result = state_of(&base, &touched, &step_out, p.root()).nullary_value(&monoid);
        Ok(IncrementalRun {
            monoid,
            plan: p,
            touched,
            base,
            step_out,
            fact_index,
            slots,
            result,
            last_update: UpdateStats::default(),
            par: Parallelism::sequential(),
        })
    }

    /// The current query result.
    pub fn result(&self) -> &M::Elem {
        &self.result
    }

    /// Work accounting of the most recent update batch.
    pub fn last_update_stats(&self) -> &UpdateStats {
        &self.last_update
    }

    /// Total rows materialised across the base state and every step
    /// output — the memory footprint of the pipeline in rows. The
    /// full-clone design this replaced stored `(steps + 1) · |state|`
    /// rows; this stores each intermediate relation exactly once.
    pub fn materialised_rows(&self) -> usize {
        self.base.support_size()
            + self
                .step_out
                .iter()
                .map(Storage::support_size)
                .sum::<usize>()
    }

    /// Updates one fact's annotation and re-propagates the change.
    /// Setting the annotation to `0` deletes the fact; a fact the run
    /// has never seen is admitted on the fly when its relation occurs
    /// in the query (dynamic insert).
    ///
    /// Returns the new query result.
    ///
    /// # Errors
    /// [`IncrementalError::UnknownFact`] for facts over relations the
    /// query does not mention; [`IncrementalError::Annotate`] when a
    /// dynamically inserted fact's arity disagrees with the atom.
    pub fn update(
        &mut self,
        interner: &Interner,
        fact: &Fact,
        value: M::Elem,
    ) -> Result<&M::Elem, IncrementalError> {
        let pair = [(fact.clone(), value)];
        self.update_batch(interner, &pair)
    }

    /// Applies several batches as **one** coalesced propagation pass:
    /// [`coalesce_batches`] merges them last-write-wins and the plan
    /// is walked once for the union of their dirty sets — equivalent
    /// to applying the batches in order, at the cost of one.
    ///
    /// # Errors
    /// See [`IncrementalRun::update_batch`]; all-or-nothing across the
    /// whole group.
    pub fn update_batches(
        &mut self,
        interner: &Interner,
        batches: &[&[(Fact, M::Elem)]],
    ) -> Result<&M::Elem, IncrementalError> {
        let merged = coalesce_batches(batches);
        self.update_batch(interner, &merged)
    }

    /// Applies a batch of annotation updates in one propagation pass:
    /// dirty keys are coalesced per slot up front — later entries for
    /// the same fact win — and the plan is walked **once** for the
    /// whole batch, so propagation cost scales with the dirty set, not
    /// with the batch length times the plan length.
    ///
    /// Returns the new query result.
    ///
    /// # Errors
    /// See [`IncrementalRun::update`]. Resolution is all-or-nothing:
    /// if any fact in the batch is rejected, no update is applied.
    pub fn update_batch(
        &mut self,
        interner: &Interner,
        updates: &[(Fact, M::Elem)],
    ) -> Result<&M::Elem, IncrementalError> {
        self.last_update = UpdateStats::default();
        // Resolve every fact before touching any state.
        let mut resolved: Vec<(usize, Tuple, &M::Elem)> = Vec::with_capacity(updates.len());
        for (fact, value) in updates {
            let (slot, key) = self.resolve(interner, fact)?;
            resolved.push((slot, key, value));
        }
        // Evict facts whose *final* write is a delete from the index:
        // a long-running insert/delete stream must stay bounded by the
        // live set, not by every fact ever seen. (Re-inserting later
        // simply re-admits through `resolve`.)
        let mut final_value: BTreeMap<&Fact, &M::Elem> = BTreeMap::new();
        for (fact, value) in updates {
            final_value.insert(fact, value);
        }
        for (fact, value) in final_value {
            if self.monoid.is_zero(value) {
                self.fact_index.remove(fact);
            }
        }
        // Coalesce duplicate facts first (later writes win).
        let mut coalesced: BTreeMap<(usize, Tuple), &M::Elem> = BTreeMap::new();
        for (slot, key, value) in resolved {
            coalesced.insert((slot, key), value);
        }
        // Batch-level dictionary extension: admit every novel domain
        // value the batch actually *writes* into every live relation
        // **once**, so the walk below is extension-free and native keys
        // stay comparable across relations (and so an insert-heavy
        // batch remaps each code matrix once, not once per `set`).
        // Deletes are excluded: a key with values outside the
        // dictionary cannot be stored, so deleting it is a no-op that
        // must not grow the dictionaries (matching the old `set` path).
        let mut batch_values: Vec<Value> = coalesced
            .iter()
            .filter(|(_, value)| !self.monoid.is_zero(value))
            .flat_map(|((_, key), _)| key.values().iter().copied())
            .collect();
        batch_values.sort_unstable();
        batch_values.dedup();
        if !batch_values.is_empty() {
            for slot in self.base.slots.iter_mut().flatten() {
                if slot.prepare_values(&batch_values) {
                    self.last_update.dict_extensions += 1;
                }
            }
            for out in &mut self.step_out {
                if out.prepare_values(&batch_values) {
                    self.last_update.dict_extensions += 1;
                }
            }
        }
        // Stage 0: write the base state (`0` means absent) in the
        // backend's native key space — code rows on the columnar
        // layouts, so the whole dirty walk compares 4-byte codes
        // instead of decoding/encoding boxed tuples at every probe —
        // and collect the dirty keys per slot.
        let mut dirty: BTreeMap<usize, BTreeSet<R::Key>> = BTreeMap::new();
        for ((slot, key), value) in coalesced {
            let base = self.base.slots[slot].as_mut().expect("base slot alive");
            let Some(native) = base.key_of(&key) else {
                // Only a delete can carry uncovered values (writes were
                // admitted above): the key cannot be stored, so there
                // is nothing to delete and nothing becomes dirty.
                debug_assert!(self.monoid.is_zero(value));
                continue;
            };
            let v = if self.monoid.is_zero(value) {
                None
            } else {
                Some(value.clone())
            };
            base.set_key(&native, v);
            dirty.entry(slot).or_default().insert(native);
            self.last_update.keys_written += 1;
        }
        // One walk of the plan. A slot's dirty keys ride along
        // untouched (and uncopied — downstream readers resolve to the
        // same materialised relation) until the step that consumes the
        // slot re-derives them.
        let steps: Vec<Step> = self.plan.steps().to_vec();
        for (idx, step) in steps.iter().enumerate() {
            if dirty.is_empty() {
                // Converged early: every downstream output is already
                // consistent.
                break;
            }
            let changed = self.propagate(idx, step, &dirty);
            if let Step::Merge { right, .. } = *step {
                dirty.remove(&right);
            }
            let touched = self.touched[idx];
            dirty.remove(&touched);
            if let Some(keys) = changed {
                if !keys.is_empty() {
                    dirty.insert(touched, keys);
                }
            }
        }
        self.result = state_of(&self.base, &self.touched, &self.step_out, self.plan.root())
            .nullary_value(&self.monoid);
        Ok(&self.result)
    }

    /// Resolves a fact to its `(slot, key)`, admitting genuinely new
    /// facts over query relations into the index.
    fn resolve(
        &mut self,
        interner: &Interner,
        fact: &Fact,
    ) -> Result<(usize, Tuple), IncrementalError> {
        if let Some(&(slot, ref key)) = self.fact_index.get(fact) {
            return Ok((slot, key.clone()));
        }
        // A slot whose relation name was never interned at construction
        // (a query relation with zero initial facts) resolves its
        // symbol lazily — the first insert over it must succeed, not
        // report UnknownFact.
        for info in &mut self.slots {
            if info.sym.is_none() {
                info.sym = interner.get(&info.rel);
            }
        }
        // `rposition`: on (degenerate, non-self-join-free) queries that
        // repeat a relation name, `annotate_with` routes the facts to
        // the *last* atom; mirror that here.
        let Some(slot) = self.slots.iter().rposition(|s| s.sym == Some(fact.rel)) else {
            return Err(IncrementalError::UnknownFact {
                fact: fact.display(interner).to_string(),
            });
        };
        let info = &self.slots[slot];
        if fact.tuple.arity() != info.positions.len() {
            return Err(IncrementalError::Annotate(AnnotateError::ArityMismatch {
                rel: info.rel.clone(),
                atom_arity: info.positions.len(),
                fact_arity: fact.tuple.arity(),
            }));
        }
        let key = fact.tuple.project(&info.positions);
        self.fact_index.insert(fact.clone(), (slot, key.clone()));
        Ok((slot, key))
    }

    /// Recomputes the dirty part of step `idx`, updating
    /// `step_out[idx]`. Returns the set of output keys whose value
    /// changed (`None` if this step's inputs had no dirty key).
    fn propagate(
        &mut self,
        idx: usize,
        step: &Step,
        dirty: &BTreeMap<usize, BTreeSet<R::Key>>,
    ) -> Option<BTreeSet<R::Key>> {
        let (done, rest) = self.step_out.split_at_mut(idx);
        let out = &mut rest[0];
        let (base, touched) = (&self.base, &self.touched[..idx]);
        // The inputs of step `idx` resolve through the same overlay
        // walk as everything else, restricted to the materialised
        // prefix (disjoint from `out` by the split above).
        let view = |slot: usize| -> &R { state_of(base, touched, &*done, slot) };
        match *step {
            Step::ProjectOut { atom, var } => {
                let keys = dirty.get(&atom)?;
                let input = view(atom);
                let pos = input
                    .vars()
                    .iter()
                    .position(|&v| v == var)
                    .expect("var in schema");
                let keep: Vec<usize> = (0..input.vars().len()).filter(|&i| i != pos).collect();
                // The dirty output groups, refolded from their current
                // members via the backend's group-offset lookup — in
                // ascending full-key order, so the fold sequence
                // matches the batch engine exactly (bit-identical
                // floats even under maintenance). Projection, lookup
                // and write-back all run in the backend's native key
                // space (code rows on the columnar layouts).
                let groups: Vec<R::Key> = keys
                    .iter()
                    .map(|k| R::project_key(k, &keep))
                    .collect::<BTreeSet<R::Key>>()
                    .into_iter()
                    .collect();
                // Large dirty sets refold *across* groups on the worker
                // pool; each group's fold stays sequential in ascending
                // full-key order and results are written back in group
                // order, so the pass is bit-identical to the
                // group-at-a-time loop at every thread count.
                let folded = refold_groups(&self.monoid, input, &keep, &groups, self.par);
                let mut changed = BTreeSet::new();
                for (g, (acc, rows)) in groups.into_iter().zip(folded) {
                    self.last_update.groups_refolded += 1;
                    self.last_update.rows_folded += rows;
                    self.last_update.add_ops += rows.saturating_sub(1) as u64;
                    let new = acc.filter(|v| !self.monoid.is_zero(v));
                    let old = out.get_key(&g);
                    if old != new {
                        changed.insert(g.clone());
                    }
                    out.set_key(&g, new);
                }
                Some(changed)
            }
            Step::Merge { left, right } => {
                let mut keys: BTreeSet<&R::Key> = BTreeSet::new();
                if let Some(ks) = dirty.get(&left) {
                    keys.extend(ks.iter());
                }
                if let Some(ks) = dirty.get(&right) {
                    keys.extend(ks.iter());
                }
                if keys.is_empty() {
                    return None;
                }
                let zero = self.monoid.zero();
                let annihilating = self.monoid.annihilating();
                let (l, r) = (view(left), view(right));
                let mut changed = BTreeSet::new();
                for key in keys {
                    // One-sided rows mirror the batch merge exactly:
                    // skipped outright for annihilating monoids,
                    // 0-filled otherwise. Native keys probe both sides
                    // directly: the batch-level dictionary extension
                    // keeps every relation's code space aligned.
                    let new = match (l.get_key(key), r.get_key(key)) {
                        (None, None) => None, // 0 ⊗ 0 = 0: stays absent
                        (Some(a), Some(b)) => {
                            self.last_update.mul_ops += 1;
                            Some(self.monoid.mul(&a, &b))
                        }
                        (Some(_), None) | (None, Some(_)) if annihilating => None,
                        (Some(a), None) => {
                            self.last_update.mul_ops += 1;
                            Some(self.monoid.mul(&a, &zero))
                        }
                        (None, Some(b)) => {
                            self.last_update.mul_ops += 1;
                            Some(self.monoid.mul(&zero, &b))
                        }
                    };
                    let new = new.filter(|v| !self.monoid.is_zero(v));
                    let old = out.get_key(key);
                    if old != new {
                        changed.insert(key.clone());
                    }
                    out.set_key(key, new);
                }
                Some(changed)
            }
        }
    }

    /// Recounts, from the materialised pipeline, the [`EngineStats`] a
    /// fresh batch evaluation of the *current* state would report —
    /// support trajectory and ⊕/⊗ op counts — without performing a
    /// single monoid operation. `add_ops` of a projection is
    /// `rows − groups` (one ⊕ per combine into an existing group);
    /// `mul_ops` of a merge is the matched-key count for annihilating
    /// monoids and `|L| + |R| − matches` (every row costs one ⊗, a
    /// matched pair exactly one) otherwise.
    ///
    /// The differential suite uses this to demand exact op-count
    /// agreement with a fresh run after every update batch.
    pub fn replay_stats(&self) -> EngineStats {
        let mut stats = EngineStats::default();
        let mut alive = vec![true; self.base.slots.len()];
        // `state_of` resolves against the *latest* writer of each slot;
        // restrict it per step by slicing the touched/step_out prefix.
        let state_at = |upto: usize, slot: usize| -> &R {
            state_of(
                &self.base,
                &self.touched[..upto],
                &self.step_out[..upto],
                slot,
            )
        };
        let support_at = |upto: usize, alive: &[bool]| -> usize {
            alive
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a)
                .map(|(s, _)| state_at(upto, s).support_size())
                .sum()
        };
        stats.support_sizes.push(support_at(0, &alive));
        for (idx, step) in self.plan.steps().iter().enumerate() {
            match *step {
                Step::ProjectOut { atom, var } => {
                    let input = state_at(idx, atom);
                    let pos = input
                        .vars()
                        .iter()
                        .position(|&v| v == var)
                        .expect("var in schema");
                    let keep: Vec<usize> = (0..input.vars().len()).filter(|&i| i != pos).collect();
                    let rows = input.rows();
                    let n = rows.len();
                    let groups: BTreeSet<Tuple> =
                        rows.into_iter().map(|(t, _)| t.project(&keep)).collect();
                    stats.add_ops += (n - groups.len()) as u64;
                }
                Step::Merge { left, right } => {
                    let (l, r) = (state_at(idx, left), state_at(idx, right));
                    let (small, big) = if l.support_size() <= r.support_size() {
                        (l, r)
                    } else {
                        (r, l)
                    };
                    let matches = small
                        .rows()
                        .into_iter()
                        .filter(|(t, _)| big.get(t).is_some())
                        .count() as u64;
                    stats.mul_ops += if self.monoid.annihilating() {
                        matches
                    } else {
                        l.support_size() as u64 + r.support_size() as u64 - matches
                    };
                    alive[right] = false;
                }
            }
            stats.support_sizes.push(support_at(idx + 1, &alive));
        }
        stats
    }
}

/// Folds one gathered group run with the monoid's (possibly dense)
/// run fold: leader element out, tail via [`TwoMonoid::fold_assign`].
/// Element-for-element identical to the `add_assign` loop. Returns
/// the unpruned accumulator (`None` for an empty group) and the
/// member-row count; the caller prunes zeros with the monoid's
/// predicate and accounts the `rows − 1` ⊕ applications.
fn fold_run<M: TwoMonoid>(monoid: &M, mut run: Vec<M::Elem>) -> (Option<M::Elem>, usize) {
    let rows = run.len();
    if rows == 0 {
        return (None, 0);
    }
    let mut acc = std::mem::replace(&mut run[0], monoid.zero());
    monoid.fold_assign(&mut acc, &run[1..]);
    (Some(acc), rows)
}

/// Refolds a batch of dirty Rule 1 groups — the delta-indexed repair
/// kernel shared by the incremental maintainer and the serving
/// layer's cached-node patches — sharding the work across the
/// persistent worker [`pool`](crate::pool) when the dirty set is
/// large. Member rows are gathered sequentially on the caller's
/// thread via [`Storage::group_rows_key`] in ascending full-key order
/// (the storage borrow stays local); only the owned annotation runs
/// move into pool tasks. Groups are chunked **contiguously in group
/// order**, each group's fold stays sequential, and chunk results are
/// flattened back in submission order — so the ⊕ sequence reproduces
/// the batch engine's fold bit for bit at every thread count.
/// One pool task's worth of refolded groups: `(fold, rows_folded)`
/// per group, in group order.
type FoldedChunk<E> = Vec<(Option<E>, usize)>;

pub(crate) fn refold_groups<M, R>(
    monoid: &M,
    input: &R,
    keep: &[usize],
    groups: &[R::Key],
    par: Parallelism,
) -> Vec<(Option<M::Elem>, usize)>
where
    M: TwoMonoid,
    R: Storage<Ann = M::Elem>,
{
    let runs: Vec<Vec<M::Elem>> = groups
        .iter()
        .map(|g| input.group_rows_key(keep, g))
        .collect();
    let total_rows: usize = runs.iter().map(Vec::len).sum();
    let chunks = par
        .threads
        .min(groups.len())
        .min((total_rows / par.min_shard_rows()).max(1));
    if chunks <= 1 {
        return runs.into_iter().map(|run| fold_run(monoid, run)).collect();
    }
    // Whole-group chunks with the same balanced bounds as shard
    // splitting; reverse split_off keeps every chunk contiguous.
    let mut tail = runs;
    let mut chunked: Vec<Vec<Vec<M::Elem>>> = Vec::with_capacity(chunks);
    for c in (0..chunks).rev() {
        chunked.push(tail.split_off(groups.len() * c / chunks));
    }
    chunked.reverse();
    let tasks: Vec<pool::BatchTask<FoldedChunk<M::Elem>>> = chunked
        .into_iter()
        .map(|chunk| {
            let monoid = monoid.clone();
            Box::new(move || {
                chunk
                    .into_iter()
                    .map(|run| fold_run(&monoid, run))
                    .collect()
            }) as pool::BatchTask<_>
        })
        .collect();
    pool::run_batch(chunks, tasks)
        .into_iter()
        .flatten()
        .collect()
}

/// Resolves the content of `slot` after the materialised step prefix
/// `(touched, step_out)`: the output of the last step that wrote the
/// slot, or the base relation. This walk *is* the delta overlay
/// resolution — no state is ever cloned per step.
fn state_of<'a, R: Storage>(
    base: &'a AnnotatedDb<R>,
    touched: &[usize],
    step_out: &'a [R],
    slot: usize,
) -> &'a R {
    debug_assert_eq!(touched.len(), step_out.len());
    for j in (0..touched.len()).rev() {
        if touched[j] == slot {
            return &step_out[j];
        }
    }
    base.slots[slot].as_ref().expect("alive slot")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::ColumnarRelation;
    use hq_db::db_from_ints;
    use hq_monoid::{CountMonoid, ProbMonoid};
    use hq_query::{example_query, q_hierarchical};

    #[test]
    fn matches_full_run_after_probability_updates() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[
            ("E", &[&[1, 2], &[1, 3], &[4, 3]]),
            ("F", &[&[2, 9], &[3, 8], &[3, 9]]),
        ]);
        let facts = db.facts();
        let tid: Vec<(Fact, f64)> = facts.iter().map(|f| (f.clone(), 0.5)).collect();
        let mut run = IncrementalRun::new(ProbMonoid, &q, &i, tid.clone()).unwrap();
        let (expected, _) = crate::engine::evaluate(&ProbMonoid, &q, &i, tid.clone()).unwrap();
        assert!((run.result() - expected).abs() < 1e-12);
        // Update every fact in turn and compare to a fresh run.
        let mut current = tid;
        for (j, f) in facts.iter().enumerate() {
            let new_p = 0.1 + 0.15 * j as f64;
            current[j].1 = new_p;
            let got = *run.update(&i, f, new_p).unwrap();
            let (fresh, _) = crate::engine::evaluate(&ProbMonoid, &q, &i, current.clone()).unwrap();
            assert!(
                (got - fresh).abs() < 1e-12,
                "after updating {}: incremental {got} vs fresh {fresh}",
                f.display(&i)
            );
        }
    }

    #[test]
    fn columnar_backend_maintains_identically() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[
            ("E", &[&[1, 2], &[1, 3], &[4, 3]]),
            ("F", &[&[2, 9], &[3, 8], &[3, 9]]),
        ]);
        let facts = db.facts();
        let tid: Vec<(Fact, f64)> = facts.iter().map(|f| (f.clone(), 0.5)).collect();
        let mut map_run = IncrementalRun::new(ProbMonoid, &q, &i, tid.clone()).unwrap();
        let mut col_run: IncrementalRun<ProbMonoid, ColumnarRelation<f64>> =
            IncrementalRun::with_storage(ProbMonoid, &q, &i, tid).unwrap();
        assert_eq!(map_run.result().to_bits(), col_run.result().to_bits());
        for (j, f) in facts.iter().enumerate() {
            let new_p = 0.05 + 0.14 * j as f64;
            let a = *map_run.update(&i, f, new_p).unwrap();
            let b = *col_run.update(&i, f, new_p).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "after updating {}", f.display(&i));
        }
        // Deletion via zero and re-insertion stay consistent too.
        let a = *map_run.update(&i, &facts[0], 0.0).unwrap();
        let b = *col_run.update(&i, &facts[0], 0.0).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        let a = *map_run.update(&i, &facts[0], 0.6).unwrap();
        let b = *col_run.update(&i, &facts[0], 0.6).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn insert_and_delete_via_zero_annotations() {
        // Counting monoid: deleting a fact = annotation 0, re-inserting = 1.
        let q = example_query();
        let (db, i) = db_from_ints(&[
            ("R", &[&[1, 5], &[1, 6]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4], &[1, 1, 9]]),
        ]);
        let facts = db.facts();
        let annotated: Vec<(Fact, u64)> = facts.iter().map(|f| (f.clone(), 1)).collect();
        let mut run = IncrementalRun::new(CountMonoid, &q, &i, annotated).unwrap();
        let base = *run.result();
        assert_eq!(base, 4, "2 R-facts × 2 (S,T) combos");
        // Delete one R fact: count halves.
        let r_fact = facts
            .iter()
            .find(|f| f.rel == i.get("R").unwrap())
            .unwrap()
            .clone();
        assert_eq!(*run.update(&i, &r_fact, 0).unwrap(), 2);
        // Re-insert: back to base.
        assert_eq!(*run.update(&i, &r_fact, 1).unwrap(), base);
        // Delete a T fact.
        let t_fact = facts
            .iter()
            .find(|f| f.rel == i.get("T").unwrap())
            .unwrap()
            .clone();
        let after_t = *run.update(&i, &t_fact, 0).unwrap();
        assert_eq!(after_t, 2);
    }

    #[test]
    fn unknown_relation_rejected_but_new_facts_admitted() {
        let q = q_hierarchical();
        let (db, mut i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        let tid: Vec<(Fact, f64)> = db.facts().into_iter().map(|f| (f, 0.5)).collect();
        let mut run = IncrementalRun::new(ProbMonoid, &q, &i, tid.clone()).unwrap();
        let other = i.intern("Other");
        let stranger = Fact::new(other, Tuple::ints(&[1]));
        assert!(matches!(
            run.update(&i, &stranger, 0.9),
            Err(IncrementalError::UnknownFact { .. })
        ));
        // An arity mismatch on a dynamically inserted fact is caught.
        let e = i.get("E").unwrap();
        let malformed = Fact::new(e, Tuple::ints(&[7]));
        assert!(matches!(
            run.update(&i, &malformed, 0.9),
            Err(IncrementalError::Annotate(
                AnnotateError::ArityMismatch { .. }
            ))
        ));
        // A genuinely new fact over a query relation is admitted: the
        // active domain is NOT fixed at construction. E(7,7) shares no
        // value with the original instance, so the columnar dictionary
        // must extend too (covered by the differential suite; here the
        // map backend checks semantics against a fresh run).
        let new_e = Fact::new(e, Tuple::ints(&[7, 7]));
        let got = *run.update(&i, &new_e, 0.9).unwrap();
        let mut full = tid;
        full.push((new_e.clone(), 0.9));
        let (fresh, _) = crate::engine::evaluate(&ProbMonoid, &q, &i, full).unwrap();
        assert_eq!(got.to_bits(), fresh.to_bits());
        // And deleting it again restores the old result bit for bit.
        let back = *run.update(&i, &new_e, 0.0).unwrap();
        let (orig, _) = crate::engine::evaluate(
            &ProbMonoid,
            &q,
            &i,
            db.facts().into_iter().map(|f| (f, 0.5)),
        )
        .unwrap();
        assert_eq!(back.to_bits(), orig.to_bits());
    }

    #[test]
    fn inserts_into_initially_empty_relation_resolve_lazily() {
        // F holds zero facts at construction, so its name is not even
        // interned: the slot's symbol must resolve on the first insert
        // rather than reporting UnknownFact.
        let q = q_hierarchical();
        let (db, mut i) = db_from_ints(&[("E", &[&[1, 2]])]);
        let tid: Vec<(Fact, f64)> = db.facts().into_iter().map(|f| (f, 0.5)).collect();
        let mut run = IncrementalRun::new(ProbMonoid, &q, &i, tid.clone()).unwrap();
        assert_eq!(*run.result(), 0.0, "no F facts: query unsatisfiable");
        let f = i.intern("F");
        let new_f = Fact::new(f, Tuple::ints(&[2, 3]));
        let got = *run.update(&i, &new_f, 0.5).unwrap();
        let mut full = tid;
        full.push((new_f, 0.5));
        let (fresh, _) = crate::engine::evaluate(&ProbMonoid, &q, &i, full).unwrap();
        assert_eq!(got.to_bits(), fresh.to_bits());
    }

    #[test]
    fn deleted_facts_are_evicted_from_the_index() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        let facts = db.facts();
        let tid: Vec<(Fact, f64)> = facts.iter().map(|f| (f.clone(), 0.5)).collect();
        let mut run = IncrementalRun::new(ProbMonoid, &q, &i, tid).unwrap();
        let before = run.fact_index.len();
        run.update(&i, &facts[0], 0.0).unwrap();
        assert_eq!(run.fact_index.len(), before - 1, "delete must evict");
        // A delete-then-reinsert inside one batch keeps the fact (the
        // final write wins for eviction too).
        let batch = vec![(facts[0].clone(), 0.0), (facts[0].clone(), 0.5)];
        run.update_batch(&i, &batch).unwrap();
        assert_eq!(run.fact_index.len(), before);
        let (fresh, _) =
            crate::engine::evaluate(&ProbMonoid, &q, &i, facts.iter().map(|f| (f.clone(), 0.5)))
                .unwrap();
        assert_eq!(run.result().to_bits(), fresh.to_bits());
    }

    #[test]
    fn early_convergence_on_no_op_update() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        let facts = db.facts();
        let tid: Vec<(Fact, f64)> = facts.iter().map(|f| (f.clone(), 0.5)).collect();
        let mut run = IncrementalRun::new(ProbMonoid, &q, &i, tid).unwrap();
        let before = *run.result();
        // Setting the same annotation converges without changing anything.
        let got = *run.update(&i, &facts[0], 0.5).unwrap();
        assert_eq!(got, before);
    }

    #[test]
    fn update_batch_coalesces_and_walks_once() {
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2], &[1, 3]]), ("F", &[&[2, 9], &[3, 8]])]);
        let facts = db.facts();
        let tid: Vec<(Fact, f64)> = facts.iter().map(|f| (f.clone(), 0.5)).collect();
        let mut run = IncrementalRun::new(ProbMonoid, &q, &i, tid.clone()).unwrap();
        // Three entries, two of them touching the same fact: the later
        // write wins and only two keys reach the base state.
        let batch = vec![
            (facts[0].clone(), 0.9),
            (facts[1].clone(), 0.2),
            (facts[0].clone(), 0.7),
        ];
        let got = *run.update_batch(&i, &batch).unwrap();
        assert_eq!(run.last_update_stats().keys_written, 2);
        let mut current = tid.clone();
        current[0].1 = 0.7;
        current[1].1 = 0.2;
        let (fresh, _) = crate::engine::evaluate(&ProbMonoid, &q, &i, current).unwrap();
        assert_eq!(got.to_bits(), fresh.to_bits());
        // A batch equals the same updates applied one by one.
        let mut serial = IncrementalRun::new(ProbMonoid, &q, &i, tid).unwrap();
        for (f, p) in &batch {
            serial.update(&i, f, *p).unwrap();
        }
        assert_eq!(run.result().to_bits(), serial.result().to_bits());
    }

    #[test]
    fn batched_novel_inserts_extend_each_dictionary_once() {
        // A batch of inserts over fresh domain values must pay at most
        // one dictionary extension per live relation — not one per
        // inserted fact — while a serial replay pays per update.
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        let tid: Vec<(Fact, f64)> = db.facts().into_iter().map(|f| (f, 0.5)).collect();
        let e = i.get("E").unwrap();
        let batch: Vec<(Fact, f64)> = (0..8)
            .map(|k| (Fact::new(e, Tuple::ints(&[100 + k, 200 + k])), 0.5))
            .collect();
        let mut batched: IncrementalRun<ProbMonoid, ColumnarRelation<f64>> =
            IncrementalRun::with_storage(ProbMonoid, &q, &i, tid.clone()).unwrap();
        batched.update_batch(&i, &batch).unwrap();
        let relations = 2 + batched.step_out.len();
        let batched_ext = batched.last_update_stats().dict_extensions;
        assert!(batched_ext >= 1, "novel values must extend a dictionary");
        assert!(
            batched_ext <= relations,
            "one batch extends each relation at most once: {batched_ext} > {relations}"
        );
        let mut serial: IncrementalRun<ProbMonoid, ColumnarRelation<f64>> =
            IncrementalRun::with_storage(ProbMonoid, &q, &i, tid).unwrap();
        let mut serial_ext = 0usize;
        for (f, p) in &batch {
            serial.update(&i, f, *p).unwrap();
            serial_ext += serial.last_update_stats().dict_extensions;
        }
        assert!(
            batched_ext < serial_ext,
            "batched extension ({batched_ext}) must beat serial ({serial_ext})"
        );
        assert_eq!(
            batched.result().to_bits(),
            serial.result().to_bits(),
            "amortisation must not change the result"
        );
        // The map oracle has no dictionary and reports zero extensions.
        let mut map: IncrementalRun<ProbMonoid, MapRelation<f64>> = IncrementalRun::with_storage(
            ProbMonoid,
            &q,
            &i,
            db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])])
                .0
                .facts()
                .into_iter()
                .map(|f| (f, 0.5)),
        )
        .unwrap();
        map.update_batch(&i, &batch).unwrap();
        assert_eq!(map.last_update_stats().dict_extensions, 0);
    }

    #[test]
    fn deleting_unknown_keys_with_novel_values_is_free() {
        // Deleting facts that were never present — with domain values
        // outside every dictionary — must not extend any dictionary or
        // change the result (the old per-`set` path was a no-op too).
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        let tid: Vec<(Fact, f64)> = db.facts().into_iter().map(|f| (f, 0.5)).collect();
        let mut run: IncrementalRun<ProbMonoid, ColumnarRelation<f64>> =
            IncrementalRun::with_storage(ProbMonoid, &q, &i, tid.clone()).unwrap();
        let before = *run.result();
        let e = i.get("E").unwrap();
        let batch: Vec<(Fact, f64)> = (0..4)
            .map(|k| (Fact::new(e, Tuple::ints(&[900 + k, 901 + k])), 0.0))
            .collect();
        let got = *run.update_batch(&i, &batch).unwrap();
        assert_eq!(got.to_bits(), before.to_bits());
        assert_eq!(run.last_update_stats().dict_extensions, 0);
        assert_eq!(run.last_update_stats().keys_written, 0);
        let (fresh, stats) = crate::engine::evaluate(&ProbMonoid, &q, &i, tid).unwrap();
        assert_eq!(got.to_bits(), fresh.to_bits());
        assert_eq!(run.replay_stats(), stats);
    }

    #[test]
    fn replay_stats_match_fresh_evaluation() {
        let q = example_query();
        let (db, i) = db_from_ints(&[
            ("R", &[&[1, 5], &[1, 6]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4], &[1, 1, 9]]),
        ]);
        let facts = db.facts();
        let tid: Vec<(Fact, f64)> = facts
            .iter()
            .enumerate()
            .map(|(j, f)| (f.clone(), 0.15 + 0.1 * j as f64))
            .collect();
        let mut run = IncrementalRun::new(ProbMonoid, &q, &i, tid.clone()).unwrap();
        let (_, fresh) = crate::engine::evaluate(&ProbMonoid, &q, &i, tid.clone()).unwrap();
        assert_eq!(run.replay_stats(), fresh);
        // After a deletion the replayed stats match a fresh run over
        // the shrunken fact list (support trajectory included).
        run.update(&i, &facts[2], 0.0).unwrap();
        let current: Vec<(Fact, f64)> = tid
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != 2)
            .map(|(_, fp)| fp.clone())
            .collect();
        let (_, fresh) = crate::engine::evaluate(&ProbMonoid, &q, &i, current).unwrap();
        assert_eq!(run.replay_stats(), fresh);
    }

    #[test]
    fn refold_work_tracks_dirty_groups_not_database_size() {
        // Refold work is Σ dirty-group sizes by construction; this
        // instance makes every group a dirty update can reach *small*
        // while |D| grows, so the assertion separates the delta-indexed
        // path from any O(|D|) scan. E(k, k) gives singleton Rule 1
        // groups; F joins only at Y ∈ {0, 1}, so the annihilating
        // counting merge keeps the root support at 2 regardless of n.
        let q = q_hierarchical();
        let n = 512i64;
        let mut i = Interner::new();
        let e = i.intern("E");
        let f = i.intern("F");
        let mut facts: Vec<(Fact, u64)> = Vec::new();
        for k in 0..n {
            facts.push((Fact::new(e, Tuple::ints(&[k, k])), 1));
        }
        facts.push((Fact::new(f, Tuple::ints(&[0, 1])), 1));
        facts.push((Fact::new(f, Tuple::ints(&[1, 1])), 1));
        let total = facts.len();
        let mut run = IncrementalRun::new(CountMonoid, &q, &i, facts.clone()).unwrap();
        // A dead-end update converges at the merge: one singleton refold.
        run.update(&i, &facts[5].0, 3).unwrap();
        assert_eq!(run.last_update_stats().rows_folded, 1, "|D| = {total}");
        // An update on a joining fact reaches the root: singleton E'
        // refold + the root refold over the 2-row merged support.
        run.update(&i, &facts[0].0, 2).unwrap();
        let work = run.last_update_stats().clone();
        assert!(
            work.rows_folded <= 4,
            "refold touched {} rows on a |D| = {total} instance",
            work.rows_folded
        );
        // Cross-check against a fresh evaluation: values and op counts.
        let current: Vec<(Fact, u64)> = facts
            .iter()
            .enumerate()
            .map(|(j, (f, k))| {
                (
                    f.clone(),
                    if j == 0 {
                        2
                    } else if j == 5 {
                        3
                    } else {
                        *k
                    },
                )
            })
            .collect();
        let (fresh, stats) = crate::engine::evaluate(&CountMonoid, &q, &i, current).unwrap();
        assert_eq!(*run.result(), fresh);
        assert_eq!(run.replay_stats(), stats);
        // And the memory criterion: the pipeline stores nowhere near
        // `steps + 1` full database clones.
        let full_clone_rows = (run.plan.steps().len() + 1) * total;
        assert!(
            run.materialised_rows() < full_clone_rows / 2,
            "materialised {} rows vs {} for full clones",
            run.materialised_rows(),
            full_clone_rows
        );
    }
}
