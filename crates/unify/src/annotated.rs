//! K-annotated relations and databases.
//!
//! The unifying algorithm operates on relations whose tuples carry
//! annotations from a 2-monoid carrier `K` (Section 2 of the paper).
//! We store only the *support* — tuples with annotation ≠ `0` — since
//! `0` is the ⊕-identity and `0 ⊗ 0 = 0` guarantees absent-on-both-sides
//! tuples stay absent (Lemma 6.6). Tuples absent from exactly one side
//! of a merge are filled with `0` explicitly, because 2-monoids need
//! not annihilate (`a ⊗ 0 ≠ 0` in the Shapley monoid).
//!
//! Column order is canonicalised to ascending variable id so that two
//! atoms with equal variable *sets* (the Rule 2 precondition) have
//! directly comparable keys. Maps are `BTreeMap`s: deterministic
//! iteration makes floating-point results and benchmarks reproducible.

use hq_db::{Fact, Interner, Tuple};
use hq_query::{Query, Var};
use std::collections::BTreeMap;
use std::fmt;

/// A relation annotated with values from a 2-monoid carrier `K`,
/// storing its support only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotatedRelation<K> {
    /// The schema: variable ids in ascending order.
    pub vars: Vec<Var>,
    /// Support tuples (keyed in `vars` order) and their annotations.
    pub map: BTreeMap<Tuple, K>,
}

impl<K> AnnotatedRelation<K> {
    /// An empty relation over the given (sorted) variable list.
    pub fn empty(vars: Vec<Var>) -> Self {
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be sorted");
        AnnotatedRelation { vars, map: BTreeMap::new() }
    }

    /// Support size `|supp(R)|` (Definition 6.5).
    pub fn support_size(&self) -> usize {
        self.map.len()
    }
}

/// A K-annotated database: one relation slot per query atom, in the
/// query's atom order. Slots become `None` as Rule 2 merges consume
/// them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotatedDb<K> {
    /// One slot per original atom.
    pub slots: Vec<Option<AnnotatedRelation<K>>>,
}

impl<K> AnnotatedDb<K> {
    /// Total support size `|D|` across alive slots (Definition 6.5).
    pub fn support_size(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .map(AnnotatedRelation::support_size)
            .sum()
    }
}

/// Errors building an annotated database from facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnotateError {
    /// A fact's tuple arity disagrees with the query atom.
    ArityMismatch {
        /// Relation name.
        rel: String,
        /// Arity in the query atom.
        atom_arity: usize,
        /// Arity of the offending fact.
        fact_arity: usize,
    },
    /// The same fact was supplied twice (ambiguous annotation).
    DuplicateFact {
        /// Rendered fact.
        fact: String,
    },
}

impl fmt::Display for AnnotateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnotateError::ArityMismatch { rel, atom_arity, fact_arity } => write!(
                f,
                "fact for relation '{rel}' has arity {fact_arity}, query atom has arity {atom_arity}"
            ),
            AnnotateError::DuplicateFact { fact } => {
                write!(f, "fact {fact} annotated twice")
            }
        }
    }
}

impl std::error::Error for AnnotateError {}

/// Builds a K-annotated database for `q` from `(fact, annotation)`
/// pairs. Facts over relations that do not occur in the query are
/// ignored (they cannot influence a self-join-free query). Each slot's
/// key tuples are reordered from the atom's written variable order to
/// ascending variable id.
///
/// # Errors
/// Returns [`AnnotateError`] on arity mismatches or duplicate facts.
pub fn annotate<K>(
    q: &Query,
    interner: &Interner,
    facts: impl IntoIterator<Item = (Fact, K)>,
) -> Result<AnnotatedDb<K>, AnnotateError> {
    // Map relation symbol → (slot index, projection positions).
    let mut by_rel: BTreeMap<hq_db::Sym, (usize, Vec<usize>)> = BTreeMap::new();
    let mut slots: Vec<Option<AnnotatedRelation<K>>> = Vec::with_capacity(q.atom_count());
    for (i, atom) in q.atoms().iter().enumerate() {
        let mut sorted = atom.vars.clone();
        sorted.sort_unstable();
        // For each sorted var, the position it occupies in the written atom.
        let positions: Vec<usize> = sorted
            .iter()
            .map(|v| {
                atom.vars
                    .iter()
                    .position(|w| w == v)
                    .expect("sorted vars come from the atom")
            })
            .collect();
        if let Some(sym) = interner.get(&atom.rel) {
            by_rel.insert(sym, (i, positions));
        }
        slots.push(Some(AnnotatedRelation::empty(sorted)));
    }
    for (fact, k) in facts {
        let Some(&(slot, ref positions)) = by_rel.get(&fact.rel) else {
            continue; // relation not mentioned by the query
        };
        let atom = &q.atoms()[slot];
        if fact.tuple.arity() != atom.vars.len() {
            return Err(AnnotateError::ArityMismatch {
                rel: atom.rel.clone(),
                atom_arity: atom.vars.len(),
                fact_arity: fact.tuple.arity(),
            });
        }
        let key = fact.tuple.project(positions);
        let rel = slots[slot].as_mut().expect("slots all alive during annotate");
        if rel.map.insert(key, k).is_some() {
            return Err(AnnotateError::DuplicateFact {
                fact: fact.display(interner).to_string(),
            });
        }
    }
    Ok(AnnotatedDb { slots })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_db::db_from_ints;
    use hq_query::{example_query, Query};

    #[test]
    fn annotate_reorders_to_sorted_vars() {
        // A is var 0 (appears first in V), B is var 1. The atom U(B, A)
        // is written in reverse id order, so its key tuples must be
        // reordered to ascending id order (A, B).
        let q = Query::new(&[("V", &["A"]), ("U", &["B", "A"])]).unwrap();
        let (db, i) = db_from_ints(&[("U", &[&[10, 20]])]); // U(B=10, A=20)
        let annotated =
            annotate(&q, &i, db.facts().into_iter().map(|f| (f, 1u64))).unwrap();
        let rel = annotated.slots[1].as_ref().unwrap();
        assert_eq!(rel.vars, vec![Var(0), Var(1)]);
        // Key must be (A=20, B=10).
        let key = rel.map.keys().next().unwrap();
        assert_eq!(key, &Tuple::ints(&[20, 10]));
    }

    #[test]
    fn ignores_unrelated_relations() {
        let q = example_query();
        let (db, i) = db_from_ints(&[("R", &[&[1, 5]]), ("Unrelated", &[&[9]])]);
        let annotated =
            annotate(&q, &i, db.facts().into_iter().map(|f| (f, 1.0f64))).unwrap();
        assert_eq!(annotated.support_size(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let q = example_query();
        let (db, i) = db_from_ints(&[("R", &[&[1]])]); // R should be binary
        let err =
            annotate(&q, &i, db.facts().into_iter().map(|f| (f, 1.0f64))).unwrap_err();
        assert!(matches!(err, AnnotateError::ArityMismatch { .. }));
    }

    #[test]
    fn duplicate_fact_rejected() {
        let q = example_query();
        let (db, i) = db_from_ints(&[("R", &[&[1, 5]])]);
        let fact = db.facts().pop().unwrap();
        let err = annotate(&q, &i, vec![(fact.clone(), 1u64), (fact, 2u64)]).unwrap_err();
        assert!(matches!(err, AnnotateError::DuplicateFact { .. }));
    }

    #[test]
    fn support_size_counts_all_slots() {
        let q = example_query();
        let (db, i) = db_from_ints(&[
            ("R", &[&[1, 5]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4]]),
        ]);
        let annotated =
            annotate(&q, &i, db.facts().into_iter().map(|f| (f, 1u64))).unwrap();
        assert_eq!(annotated.support_size(), 4);
    }
}
