//! K-annotated databases and the fact → relation annotation layer.
//!
//! The unifying algorithm operates on relations whose tuples carry
//! annotations from a 2-monoid carrier `K` (Section 2 of the paper).
//! Only the *support* — tuples with annotation ≠ `0` — is stored, since
//! `0` is the ⊕-identity and `0 ⊗ 0 = 0` guarantees absent-on-both-sides
//! tuples stay absent (Lemma 6.6). Tuples absent from exactly one side
//! of a merge are filled with `0` explicitly, because 2-monoids need
//! not annihilate (`a ⊗ 0 ≠ 0` in the Shapley monoid).
//!
//! Column order is canonicalised to ascending variable id so that two
//! atoms with equal variable *sets* (the Rule 2 precondition) have
//! directly comparable keys.
//!
//! The physical layout of each relation is a [`Storage`]
//! implementation; [`annotate_with`] builds any backend, and
//! [`annotate`] is the ordered-map convenience used by the oracle
//! paths. See [`crate::storage`] for the backend catalogue.

use crate::storage::{
    BorrowedSlot, ColumnarRelation, DuplicateRow, MapRelation, Parallelism, ShardedColumnar,
    Storage,
};
use hq_db::{Fact, Interner, Sym, Tuple, Value};
use hq_query::{Query, Var};
use std::collections::BTreeMap;
use std::fmt;

pub use crate::storage::EncodedDb;

/// Back-compatible name for the ordered-map relation layout.
pub type AnnotatedRelation<K> = MapRelation<K>;

/// A K-annotated database: one relation slot per query atom, in the
/// query's atom order. Slots become `None` as Rule 2 merges consume
/// them. Generic over the storage backend `R`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedDb<R> {
    /// One slot per original atom.
    pub slots: Vec<Option<R>>,
}

impl<R: Storage> AnnotatedDb<R> {
    /// Total support size `|D|` across alive slots (Definition 6.5).
    pub fn support_size(&self) -> usize {
        self.slots.iter().flatten().map(Storage::support_size).sum()
    }
}

impl<K: Clone + PartialEq + fmt::Debug + Send + Sync + 'static> AnnotatedDb<ColumnarRelation<K>> {
    /// Switches a columnar database into the sharded execution mode:
    /// every slot keeps its matrices and gains the given
    /// [`Parallelism`] degree. Results stay bit-identical at every
    /// thread count (see [`crate::storage::ShardedColumnar`]).
    pub fn into_sharded(self, par: Parallelism) -> AnnotatedDb<ShardedColumnar<K>> {
        AnnotatedDb {
            slots: self
                .slots
                .into_iter()
                .map(|s| s.map(|rel| ShardedColumnar::new(rel, par)))
                .collect(),
        }
    }
}

impl<K> AnnotatedDb<ColumnarRelation<K>>
where
    K: crate::storage::CompressedAnn + Clone + PartialEq + fmt::Debug + Send + Sync + 'static,
{
    /// Compresses every slot into the block-encoded tier
    /// ([`crate::storage::CompressedColumnar`]); the dense matrices are
    /// transient build scratch. Results stay bit-identical — the
    /// compressed kernels replay the dense ⊕/⊗ sequence exactly.
    pub fn into_compressed(self) -> AnnotatedDb<crate::storage::CompressedColumnar<K>> {
        AnnotatedDb {
            slots: self
                .slots
                .into_iter()
                .map(|s| s.map(crate::storage::CompressedColumnar::from_columnar))
                .collect(),
        }
    }
}

/// Errors building an annotated database from facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnotateError {
    /// A fact's tuple arity disagrees with the query atom.
    ArityMismatch {
        /// Relation name.
        rel: String,
        /// Arity in the query atom.
        atom_arity: usize,
        /// Arity of the offending fact.
        fact_arity: usize,
    },
    /// The same fact was supplied twice (ambiguous annotation).
    DuplicateFact {
        /// Rendered fact.
        fact: String,
    },
}

impl fmt::Display for AnnotateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnotateError::ArityMismatch { rel, atom_arity, fact_arity } => write!(
                f,
                "fact for relation '{rel}' has arity {fact_arity}, query atom has arity {atom_arity}"
            ),
            AnnotateError::DuplicateFact { fact } => {
                write!(f, "fact {fact} annotated twice")
            }
        }
    }
}

impl std::error::Error for AnnotateError {}

/// Builds a K-annotated database over any [`Storage`] backend from
/// `(fact, annotation)` pairs. Facts over relations that do not occur
/// in the query are ignored (they cannot influence a self-join-free
/// query). Each slot's key tuples are reordered from the atom's written
/// variable order to ascending variable id.
///
/// # Errors
/// Returns [`AnnotateError`] on arity mismatches or duplicate facts.
pub fn annotate_with<R: Storage>(
    q: &Query,
    interner: &Interner,
    facts: impl IntoIterator<Item = (Fact, R::Ann)>,
) -> Result<AnnotatedDb<R>, AnnotateError> {
    // Map relation symbol → (slot index, projection positions). A
    // `None` positions entry means the written order already is the
    // sorted-var order — the common case — and the fact's own tuple can
    // be reused without re-allocation.
    let mut by_rel: BTreeMap<hq_db::Sym, (usize, Option<Vec<usize>>)> = BTreeMap::new();
    let mut slot_positions: Vec<Option<Vec<usize>>> = Vec::with_capacity(q.atom_count());
    let mut slot_vars: Vec<Vec<Var>> = Vec::with_capacity(q.atom_count());
    let mut slot_rows: Vec<Vec<(Tuple, R::Ann)>> = Vec::with_capacity(q.atom_count());
    for (i, atom) in q.atoms().iter().enumerate() {
        // The shared written→key permutation (`Atom::key_positions`):
        // all keying layers must derive it identically.
        let (sorted, positions) = atom.key_positions();
        if let Some(sym) = interner.get(&atom.rel) {
            by_rel.insert(sym, (i, positions.clone()));
        }
        slot_positions.push(positions);
        slot_vars.push(sorted);
        slot_rows.push(Vec::new());
    }
    for (fact, k) in facts {
        let Some(&(slot, ref positions)) = by_rel.get(&fact.rel) else {
            continue; // relation not mentioned by the query
        };
        let atom = &q.atoms()[slot];
        if fact.tuple.arity() != atom.vars.len() {
            return Err(AnnotateError::ArityMismatch {
                rel: atom.rel.clone(),
                atom_arity: atom.vars.len(),
                fact_arity: fact.tuple.arity(),
            });
        }
        let key = match positions {
            Some(p) => fact.tuple.project(p),
            None => fact.tuple,
        };
        slot_rows[slot].push((key, k));
    }
    match R::build_slots(slot_vars.into_iter().zip(slot_rows).collect()) {
        Ok(built) => Ok(AnnotatedDb {
            slots: built.into_iter().map(Some).collect(),
        }),
        Err(dup) => Err(duplicate_error(q, interner, &slot_positions, dup)),
    }
}

/// Builds a columnar K-annotated database **directly from borrowed
/// facts** — the fused fast path used by the solver front-ends: no key
/// tuple is cloned, boxed, or permuted in memory (the written-order →
/// sorted-order column permutation is applied while scattering
/// dictionary codes into the slot matrices).
///
/// Rows are `(relation symbol, key tuple in written order,
/// annotation)`; rows over relations the query does not mention are
/// ignored, exactly like [`annotate_with`].
///
/// # Errors
/// Returns [`AnnotateError`] on arity mismatches or duplicate facts.
pub fn annotate_columnar<'a, K, I>(
    q: &Query,
    interner: &Interner,
    rows: I,
) -> Result<AnnotatedDb<ColumnarRelation<K>>, AnnotateError>
where
    K: Clone + PartialEq + fmt::Debug + Send + Sync + 'static,
    I: IntoIterator<Item = (Sym, &'a Tuple, K)>,
{
    let mut by_rel: BTreeMap<Sym, usize> = BTreeMap::new();
    let mut slot_positions: Vec<Option<Vec<usize>>> = Vec::with_capacity(q.atom_count());
    let mut slot_vars: Vec<Vec<Var>> = Vec::with_capacity(q.atom_count());
    let mut slot_rows: Vec<Vec<(&Tuple, K)>> = Vec::with_capacity(q.atom_count());
    for (i, atom) in q.atoms().iter().enumerate() {
        let (sorted, positions) = atom.key_positions();
        if let Some(sym) = interner.get(&atom.rel) {
            by_rel.insert(sym, i);
        }
        slot_positions.push(positions);
        slot_vars.push(sorted);
        slot_rows.push(Vec::new());
    }
    for (sym, tuple, k) in rows {
        let Some(&slot) = by_rel.get(&sym) else {
            continue; // relation not mentioned by the query
        };
        let atom = &q.atoms()[slot];
        if tuple.arity() != atom.vars.len() {
            return Err(AnnotateError::ArityMismatch {
                rel: atom.rel.clone(),
                atom_arity: atom.vars.len(),
                fact_arity: tuple.arity(),
            });
        }
        slot_rows[slot].push((tuple, k));
    }
    let slots: Vec<BorrowedSlot<'_, K>> = slot_vars
        .into_iter()
        .zip(slot_positions.iter().cloned())
        .zip(slot_rows)
        .map(|((vars, positions), rows)| (vars, positions, rows))
        .collect();
    match ColumnarRelation::build_slots_borrowed(slots) {
        Ok(built) => Ok(AnnotatedDb {
            slots: built.into_iter().map(Some).collect(),
        }),
        Err(dup) => Err(duplicate_error(q, interner, &slot_positions, dup)),
    }
}

/// Renders a [`DuplicateRow`] as the user-facing [`AnnotateError`],
/// restoring the written column order.
pub(crate) fn duplicate_error(
    q: &Query,
    interner: &Interner,
    slot_positions: &[Option<Vec<usize>>],
    DuplicateRow { slot, key }: DuplicateRow,
) -> AnnotateError {
    let atom = &q.atoms()[slot];
    let written = match &slot_positions[slot] {
        None => key,
        Some(positions) => {
            let mut vals = vec![Value::Int(0); key.arity()];
            for (i, &p) in positions.iter().enumerate() {
                vals[p] = key.get(i);
            }
            Tuple::from(vals)
        }
    };
    AnnotateError::DuplicateFact {
        fact: format!("{}{}", atom.rel, written.display(interner)),
    }
}

/// Builds a K-annotated database on the ordered-map backend — the
/// historical entry point, kept because the oracle paths and the
/// point-update-heavy incremental maintainer default to it.
///
/// # Errors
/// Returns [`AnnotateError`] on arity mismatches or duplicate facts.
pub fn annotate<K: Clone + PartialEq + fmt::Debug + Send + Sync + 'static>(
    q: &Query,
    interner: &Interner,
    facts: impl IntoIterator<Item = (Fact, K)>,
) -> Result<AnnotatedDb<MapRelation<K>>, AnnotateError> {
    annotate_with(q, interner, facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::ColumnarRelation;
    use hq_db::db_from_ints;
    use hq_query::{example_query, Query};

    #[test]
    fn annotate_reorders_to_sorted_vars() {
        // A is var 0 (appears first in V), B is var 1. The atom U(B, A)
        // is written in reverse id order, so its key tuples must be
        // reordered to ascending id order (A, B).
        let q = Query::new(&[("V", &["A"]), ("U", &["B", "A"])]).unwrap();
        let (db, i) = db_from_ints(&[("U", &[&[10, 20]])]); // U(B=10, A=20)
        let annotated = annotate(&q, &i, db.facts().into_iter().map(|f| (f, 1u64))).unwrap();
        let rel = annotated.slots[1].as_ref().unwrap();
        assert_eq!(rel.vars, vec![Var(0), Var(1)]);
        // Key must be (A=20, B=10).
        let key = rel.map.keys().next().unwrap();
        assert_eq!(key, &Tuple::ints(&[20, 10]));
    }

    #[test]
    fn ignores_unrelated_relations() {
        let q = example_query();
        let (db, i) = db_from_ints(&[("R", &[&[1, 5]]), ("Unrelated", &[&[9]])]);
        let annotated = annotate(&q, &i, db.facts().into_iter().map(|f| (f, 1.0f64))).unwrap();
        assert_eq!(annotated.support_size(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let q = example_query();
        let (db, i) = db_from_ints(&[("R", &[&[1]])]); // R should be binary
        let err = annotate(&q, &i, db.facts().into_iter().map(|f| (f, 1.0f64))).unwrap_err();
        assert!(matches!(err, AnnotateError::ArityMismatch { .. }));
    }

    #[test]
    fn duplicate_fact_rejected() {
        let q = example_query();
        let (db, i) = db_from_ints(&[("R", &[&[1, 5]])]);
        let fact = db.facts().pop().unwrap();
        let err = annotate(&q, &i, vec![(fact.clone(), 1u64), (fact, 2u64)]).unwrap_err();
        match err {
            AnnotateError::DuplicateFact { ref fact } => {
                assert_eq!(fact, "R(1, 5)");
            }
            other => panic!("expected DuplicateFact, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_message_restores_written_order() {
        // U(B, A): the key is reordered, the message must not be.
        let q = Query::new(&[("V", &["A"]), ("U", &["B", "A"])]).unwrap();
        let (db, i) = db_from_ints(&[("U", &[&[10, 20]])]);
        let fact = db.facts().pop().unwrap();
        let err = annotate(&q, &i, vec![(fact.clone(), 1u64), (fact, 2u64)]).unwrap_err();
        assert!(
            matches!(err, AnnotateError::DuplicateFact { ref fact } if fact == "U(10, 20)"),
            "{err:?}"
        );
    }

    #[test]
    fn support_size_counts_all_slots() {
        let q = example_query();
        let (db, i) = db_from_ints(&[
            ("R", &[&[1, 5]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4]]),
        ]);
        let annotated = annotate(&q, &i, db.facts().into_iter().map(|f| (f, 1u64))).unwrap();
        assert_eq!(annotated.support_size(), 4);
    }

    #[test]
    fn columnar_and_map_annotate_identically() {
        let q = example_query();
        let (db, i) = db_from_ints(&[
            ("R", &[&[1, 5]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4]]),
        ]);
        let facts: Vec<_> = db.facts().into_iter().map(|f| (f, 0.5f64)).collect();
        let m: AnnotatedDb<MapRelation<f64>> = annotate_with(&q, &i, facts.clone()).unwrap();
        let c: AnnotatedDb<ColumnarRelation<f64>> = annotate_with(&q, &i, facts).unwrap();
        assert_eq!(m.support_size(), c.support_size());
        for (ms, cs) in m.slots.iter().zip(&c.slots) {
            let (ms, cs) = (ms.as_ref().unwrap(), cs.as_ref().unwrap());
            assert_eq!(ms.rows(), cs.rows());
            assert_eq!(Storage::vars(ms), cs.vars());
        }
    }
}
