//! Persistent work-stealing worker pool for shard-parallel execution.
//!
//! The sharded executor used to spawn fresh `std::thread::scope`
//! workers on *every* rule application; at realistic shard sizes the
//! spawn/join cost rivalled the kernel work and the measured speedup
//! hovered around 1×. This module replaces that with one
//! process-wide pool of detached workers, created lazily and reused
//! for the lifetime of the process:
//!
//! * each worker owns a deque of tasks; submissions are distributed
//!   round-robin and an idle worker **steals** from the back of a
//!   sibling's deque before parking, so an uneven shard split cannot
//!   strand work behind a busy worker;
//! * [`run_batch`] executes a batch of closures and returns their
//!   results **in submission order** — scheduling (which worker ran
//!   which shard, in what interleaving) can never leak into results,
//!   which is what keeps the sharded backend bit-identical to the
//!   sequential one at every thread count;
//! * the submitting thread participates as one executor of its own
//!   batch, so a degree-`d` batch needs only `d − 1` pool workers,
//!   degree-1 batches never touch the pool at all, and the pool works
//!   (degenerating to sequential) even on a single-core host;
//! * a task that is itself running on a pool worker executes nested
//!   batches inline — no pool-in-pool deadlocks by construction;
//! * [`spawn_count`] exposes the number of worker threads ever
//!   spawned, so tests can pin "zero spawns per rule application
//!   after warmup".
//!
//! Built on `std` threads, mutexes, and condvars only (the build
//! vendors its dependencies; no crossbeam/rayon), with no `unsafe`:
//! tasks are `'static` boxed closures, shared inputs travel in `Arc`s
//! and outputs come back through indexed result slots.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, RwLock};

/// A type-erased unit of pool work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// A batch task producing a `T` for its result slot.
pub type BatchTask<T> = Box<dyn FnOnce() -> T + Send + 'static>;

/// Locks a mutex, tolerating poison: a panicking shard task must not
/// wedge every later rule application in the process. The protected
/// state stays structurally valid across unwinds (queues of boxed
/// closures, result slots), so continuing past poison is sound.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

struct WorkerDeque {
    tasks: Mutex<VecDeque<Task>>,
}

struct PoolShared {
    /// One deque per worker; grows (never shrinks) under `grow`.
    deques: RwLock<Vec<Arc<WorkerDeque>>>,
    /// Sleep coordination: workers re-scan under this lock before
    /// waiting, submitters notify under it after pushing — so a push
    /// either happens before a worker's scan (and is seen) or the
    /// submitter's notify is serialized after the worker's wait.
    sleep: Mutex<()>,
    wake: Condvar,
    /// Round-robin submission cursor.
    next: AtomicUsize,
    /// Worker threads ever spawned (monotone; the warmup pin).
    spawned: AtomicUsize,
}

/// The process-wide worker pool. Obtain it via [`global`]; all
/// submission goes through [`run_batch`].
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Serializes growth so two racing `ensure_capacity` calls cannot
    /// both spawn the same missing workers.
    grow: Mutex<()>,
}

impl WorkerPool {
    fn new() -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                deques: RwLock::new(Vec::new()),
                sleep: Mutex::new(()),
                wake: Condvar::new(),
                next: AtomicUsize::new(0),
                spawned: AtomicUsize::new(0),
            }),
            grow: Mutex::new(()),
        }
    }

    /// Ensures enough workers exist to run batches of `degree`
    /// concurrent tasks: the submitter executes one strand itself, so
    /// `degree − 1` workers suffice. Spawns only the missing workers
    /// (none, after warmup) and never shrinks the pool.
    pub fn ensure_capacity(&self, degree: usize) {
        let target = degree.saturating_sub(1);
        if self.workers() >= target {
            return;
        }
        let _g = lock_ignore_poison(&self.grow);
        let current = self.workers();
        for idx in current..target {
            let deque = Arc::new(WorkerDeque {
                tasks: Mutex::new(VecDeque::new()),
            });
            self.shared
                .deques
                .write()
                .unwrap_or_else(|poison| poison.into_inner())
                .push(deque);
            let shared = Arc::clone(&self.shared);
            self.shared.spawned.fetch_add(1, Ordering::SeqCst);
            std::thread::Builder::new()
                .name(format!("hq-pool-{idx}"))
                .spawn(move || worker_loop(shared, idx))
                .expect("spawning a pool worker thread failed");
        }
    }

    /// Number of live pool workers (== threads ever spawned; workers
    /// are never retired).
    pub fn workers(&self) -> usize {
        self.shared
            .deques
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
            .len()
    }

    /// Submits a task round-robin to a worker deque and wakes sleepers.
    fn submit(&self, task: Task) {
        let deques = self
            .shared
            .deques
            .read()
            .unwrap_or_else(|poison| poison.into_inner());
        debug_assert!(!deques.is_empty(), "submit requires ensure_capacity first");
        let slot = self.shared.next.fetch_add(1, Ordering::Relaxed) % deques.len();
        lock_ignore_poison(&deques[slot].tasks).push_back(task);
        drop(deques);
        let _g = lock_ignore_poison(&self.shared.sleep);
        self.shared.wake.notify_all();
    }
}

/// The shared process-wide pool, created on first use.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::new)
}

/// Total pool worker threads ever spawned. After warming the pool to
/// the maximum degree a workload uses, this count stays constant — the
/// property `tests/differential_parallel.rs` pins.
pub fn spawn_count() -> usize {
    global().shared.spawned.load(Ordering::SeqCst)
}

/// Current pool worker-thread count (0 until the first parallel batch
/// or explicit warmup). Recorded in `BENCH_*.json` so single-core
/// container runs are distinguishable from real multi-core results.
pub fn workers() -> usize {
    global().workers()
}

thread_local! {
    /// Set while this thread is executing a pool task: nested
    /// `run_batch` calls run inline instead of re-entering the pool.
    static IN_POOL_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Pops the next task for worker `idx`: own deque front first, then
/// steal from the back of sibling deques (scanning circularly from
/// `idx + 1` for fairness).
fn find_task(shared: &PoolShared, idx: usize) -> Option<Task> {
    let deques = shared
        .deques
        .read()
        .unwrap_or_else(|poison| poison.into_inner());
    let n = deques.len();
    if let Some(task) = lock_ignore_poison(&deques[idx].tasks).pop_front() {
        return Some(task);
    }
    for off in 1..n {
        let victim = (idx + off) % n;
        if let Some(task) = lock_ignore_poison(&deques[victim].tasks).pop_back() {
            return Some(task);
        }
    }
    None
}

fn worker_loop(shared: Arc<PoolShared>, idx: usize) {
    loop {
        if let Some(task) = find_task(&shared, idx) {
            IN_POOL_TASK.with(|flag| flag.set(true));
            // A panicking task must not kill the worker: catch the
            // unwind and keep serving. The batch that owned the task
            // observes the panic through its unfilled result slot.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
            IN_POOL_TASK.with(|flag| flag.set(false));
            continue;
        }
        // Re-scan under the sleep lock before parking so a submission
        // racing with the empty scan above cannot be lost: a push
        // either lands before this scan (and is seen) or its notify is
        // serialized after our wait.
        let guard = lock_ignore_poison(&shared.sleep);
        match find_task(&shared, idx) {
            Some(task) => {
                drop(guard);
                IN_POOL_TASK.with(|flag| flag.set(true));
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                IN_POOL_TASK.with(|flag| flag.set(false));
            }
            None => {
                let _unused = shared
                    .wake
                    .wait(guard)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        }
    }
}

/// Shared state of one in-flight batch: an order-preserving work queue
/// plus indexed result slots.
struct BatchState<T> {
    pending: Mutex<VecDeque<(usize, BatchTask<T>)>>,
    results: Mutex<Vec<Option<T>>>,
    finished: AtomicUsize,
    total: usize,
    done: Condvar,
}

/// Increments the batch's finished count and notifies the waiter even
/// when the task unwinds (the slot then simply stays `None`).
struct FinishGuard<'a, T> {
    state: &'a BatchState<T>,
}

impl<T> Drop for FinishGuard<'_, T> {
    fn drop(&mut self) {
        self.state.finished.fetch_add(1, Ordering::SeqCst);
        let _g = lock_ignore_poison(&self.state.results);
        self.state.done.notify_all();
    }
}

impl<T> BatchState<T> {
    /// Executes pending batch tasks until the queue is empty. Runs on
    /// pool workers *and* on the submitting thread — dynamic load
    /// balancing at batch granularity.
    fn drain(&self) {
        loop {
            let job = lock_ignore_poison(&self.pending).pop_front();
            let Some((idx, task)) = job else { return };
            let guard = FinishGuard { state: self };
            let value = task();
            lock_ignore_poison(&self.results)[idx] = Some(value);
            drop(guard);
        }
    }
}

/// Runs `tasks` with up to `degree` concurrent executors (the calling
/// thread plus `degree − 1` pool workers) and returns the results in
/// task order. Shard outputs therefore recombine in **fixed shard
/// order** no matter which worker ran which shard — the determinism
/// contract of the sharded backend.
///
/// Degenerate cases stay strictly sequential on the calling thread:
/// `degree ≤ 1`, a single task, or a call made from inside a pool task
/// (nested parallelism runs inline rather than re-entering the pool).
///
/// # Panics
///
/// Propagates a panic from any task (the pool workers themselves
/// survive it).
pub fn run_batch<T: Send + 'static>(degree: usize, tasks: Vec<BatchTask<T>>) -> Vec<T> {
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    if degree <= 1 || n == 1 || IN_POOL_TASK.with(|flag| flag.get()) {
        return tasks.into_iter().map(|task| task()).collect();
    }
    let pool = global();
    let executors = degree.min(n);
    pool.ensure_capacity(executors);
    let state = Arc::new(BatchState {
        pending: Mutex::new(tasks.into_iter().enumerate().collect()),
        results: Mutex::new((0..n).map(|_| None).collect()),
        finished: AtomicUsize::new(0),
        total: n,
        done: Condvar::new(),
    });
    for _ in 0..executors - 1 {
        let state = Arc::clone(&state);
        pool.submit(Box::new(move || state.drain()));
    }
    state.drain();
    let mut slots = lock_ignore_poison(&state.results);
    while state.finished.load(Ordering::SeqCst) < state.total {
        slots = state
            .done
            .wait(slots)
            .unwrap_or_else(|poison| poison.into_inner());
    }
    let slots = std::mem::take(&mut *slots);
    slots
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| slot.unwrap_or_else(|| panic!("pool batch task {idx} panicked")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_results_come_back_in_submission_order() {
        let tasks: Vec<BatchTask<usize>> = (0..64)
            .map(|i: usize| Box::new(move || i * i) as BatchTask<usize>)
            .collect();
        let out = run_batch(4, tasks);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn degenerate_batches_run_inline() {
        let before = spawn_count();
        assert_eq!(run_batch(1, vec![Box::new(|| 7) as BatchTask<i32>]), [7]);
        assert_eq!(
            run_batch(8, vec![Box::new(|| 9) as BatchTask<i32>]),
            [9],
            "single task never enters the pool"
        );
        assert!(run_batch::<i32>(8, Vec::new()).is_empty());
        assert_eq!(spawn_count(), before, "degenerate batches spawn nothing");
    }

    #[test]
    fn warmup_then_no_further_spawns() {
        global().ensure_capacity(4);
        let before = spawn_count();
        assert!(before >= 3);
        for round in 0..50 {
            let tasks: Vec<BatchTask<usize>> = (0..8)
                .map(|i| Box::new(move || i + round) as BatchTask<usize>)
                .collect();
            let out = run_batch(4, tasks);
            assert_eq!(out, (0..8).map(|i| i + round).collect::<Vec<_>>());
        }
        assert_eq!(spawn_count(), before);
    }

    #[test]
    fn nested_batches_run_inline_on_workers() {
        global().ensure_capacity(3);
        let tasks: Vec<BatchTask<Vec<u32>>> = (0..6)
            .map(|i| {
                Box::new(move || {
                    let inner: Vec<BatchTask<u32>> = (0..4)
                        .map(|j| Box::new(move || (i * 10 + j) as u32) as BatchTask<u32>)
                        .collect();
                    run_batch(3, inner)
                }) as BatchTask<Vec<u32>>
            })
            .collect();
        let out = run_batch(3, tasks);
        for (i, inner) in out.into_iter().enumerate() {
            let expect: Vec<u32> = (0..4).map(|j| (i * 10 + j) as u32).collect();
            assert_eq!(inner, expect);
        }
    }

    #[test]
    fn pool_survives_a_panicking_task() {
        global().ensure_capacity(2);
        let result = std::panic::catch_unwind(|| {
            let tasks: Vec<BatchTask<u32>> = vec![
                Box::new(|| 1),
                Box::new(|| panic!("shard kernel failure")),
                Box::new(|| 3),
            ];
            run_batch(2, tasks)
        });
        assert!(result.is_err(), "the panic must propagate to the caller");
        // The pool still works afterwards.
        let tasks: Vec<BatchTask<u32>> = (0u32..8).map(|i| Box::new(move || i) as _).collect();
        assert_eq!(run_batch(2, tasks), (0..8).collect::<Vec<_>>());
    }
}
