//! Multi-query serving sessions: one database, one encoded cache, many
//! queries, interleaved updates.
//!
//! A [`ServingSession`] owns an annotated database (facts with
//! 2-monoid annotations), its cached dictionary encoding
//! ([`EncodedDb`]), and a **plan-node cache** keyed by the hash-consed
//! [`PlanIr`] identities of [`crate::plan_ir`]. Evaluating a query
//! lowers its elimination plan onto the shared IR and materialises
//! only the nodes the cache does not already hold — so a batch of
//! overlapping queries evaluates every common sub-plan (shared scans,
//! shared Rule 1 folds, shared Rule 2 merges) **once per backend**,
//! and a repeated query costs zero monoid operations.
//!
//! **Determinism contract.** Each query's returned value and reported
//! [`EngineStats`] are *bit-identical* to an independent fresh
//! evaluation of the same query over the current state
//! ([`crate::engine::evaluate_encoded`] on the columnar backends,
//! [`crate::engine::evaluate_on`] on the ordered-map oracle), on every
//! backend and thread count. Cached nodes store the exact ⊕/⊗ op
//! counts their computation performed, and the session *replays* — not
//! recomputes — each query's op totals and support trajectory from the
//! cached relations, without performing a single monoid operation on a
//! cache hit. [`ServingSession::ops_performed`] exposes how many
//! operations were actually executed, which is how the differential
//! suite pins the sharing win (`performed < Σ independent`).
//!
//! **Update model.** [`ServingSession::update_batch`] applies fact
//! writes (a `0` annotation deletes), bumps the touched relations'
//! dirty epochs, delta-refreshes the [`EncodedDb`] (only changed
//! relations re-encode; novel domain values extend the shared
//! dictionary once and surviving cached matrices are *translated*
//! through the old→new code map — the code numbering moved, not the
//! data), and then **delta-patches** the whole cached pipeline through
//! the incremental refold machinery: cached scan nodes take point
//! writes, dirty `Project` nodes refold exactly their dirty Rule 1
//! groups ([`Storage::group_rows_key`], per-group folds sequential so
//! the ⊕ sequence matches the batch kernels bit for bit), and dirty
//! `Join` nodes re-derive exactly their dirty keys. Each patched
//! node's recorded op counts are maintained to what a fresh evaluation
//! would report, so replayed [`EngineStats`] stay exact. A delta
//! touching more than [`ServingSession::patch_fraction`] of a node's
//! groups falls back to dropping the node (it rebuilds lazily), and
//! `0.0` restores the old drop-and-rebuild behaviour entirely.
//!
//! **Memoisation and eviction.** Lowering is memoised per query string
//! (the IR is structural, so a lowering never invalidates), and the
//! node cache can be bounded: [`ServingSession::set_cache_budget`]
//! caps the total materialised rows, evicting cost-aware-LRU victims
//! after each query ([`ServingSession::evictions`] counts them).

use crate::annotated::AnnotateError;
use crate::engine::EngineStats;
use crate::fixpoint::{
    patch_inserts, semi_naive, validate_fixpoint, FixpointError, FixpointRun, PatchOutcome,
};
use crate::incremental::refold_groups;
use crate::plan_ir::{lower, LoweredQuery, PlanExpr, PlanId, PlanIr};
use crate::storage::{
    ColumnarRelation, CompressedAnn, CompressedColumnar, EncodedDb, MapRelation, Parallelism,
    RefreshOutcome, ShardedColumnar, Storage,
};
use hq_db::{Database, Fact, Interner, RowCode, Sym, Tuple, Value, ValueDict};
use hq_monoid::TwoMonoid;
use hq_query::{plan, NotHierarchical, Query, Var};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors from the serving session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingError {
    /// The query is not hierarchical (Theorem 4.4: intractable).
    NotHierarchical(NotHierarchical),
    /// Annotation failed (arity mismatch, duplicate key).
    Annotate(AnnotateError),
    /// The server's bounded commit queue is full and the write policy
    /// is `refuse` (see [`crate::server::Server::set_write_queue`]).
    WriteQueueFull {
        /// Batches pending in the queue when the submission arrived.
        pending: usize,
    },
    /// A recursive query failed fixpoint validation (non-convergent
    /// monoid, non-binary relation, malformed step).
    Fixpoint(FixpointError),
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::NotHierarchical(e) => write!(f, "{e}"),
            ServingError::Annotate(e) => write!(f, "{e}"),
            ServingError::WriteQueueFull { pending } => {
                write!(f, "write queue full ({pending} batches pending)")
            }
            ServingError::Fixpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServingError {}

impl From<NotHierarchical> for ServingError {
    fn from(e: NotHierarchical) -> Self {
        ServingError::NotHierarchical(e)
    }
}

impl From<AnnotateError> for ServingError {
    fn from(e: AnnotateError) -> Self {
        ServingError::Annotate(e)
    }
}

impl From<FixpointError> for ServingError {
    fn from(e: FixpointError) -> Self {
        ServingError::Fixpoint(e)
    }
}

/// What one [`ServingSession::update_batch`] call did to the caches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Relation names whose content actually changed.
    pub touched: Vec<String>,
    /// Cached scan nodes kept warm by in-place point patches.
    pub patched_scans: usize,
    /// Cached `Project`/`Join` intermediates kept warm by refolding
    /// only their dirty groups / re-deriving only their dirty keys.
    pub patched_nodes: usize,
    /// Cached intermediate nodes dropped — an unpatchable input, an
    /// arity move, or a delta past the rebuild threshold (they rebuild
    /// lazily on the next query that needs them).
    pub invalidated: usize,
    /// Cached node matrices translated through a dictionary extension
    /// (novel domain values). `0` when every written value was already
    /// interned — in particular for updates that merely re-populate a
    /// relation emptied by an earlier delete-only batch.
    pub dict_extensions: usize,
    /// What the [`EncodedDb`] delta-refresh re-encoded.
    pub refresh: RefreshOutcome,
}

/// A materialised plan node: its annotated relation plus the exact
/// ⊕/⊗ op counts a fresh evaluation of the node would report (replayed
/// into every query's reported stats without re-executing them; kept
/// exact across delta-patches by the update accounting).
#[derive(Debug, Clone)]
struct CachedNode<R> {
    rel: R,
    add_ops: u64,
    mul_ops: u64,
    /// Session epoch at which this node was (re)computed or patched.
    valid_at: u64,
    /// Query tick of the last use — the LRU clock of the eviction
    /// policy.
    last_used: u64,
    /// Measured refold cost: EWMA of input rows folded per dirty
    /// group across this node's past patches (`0.0` until the first
    /// patch measures it). Drives the adaptive patch-vs-rebuild
    /// decision for Rule 1 nodes.
    refold_rows_ewma: f64,
}

/// One patched key's movement: `(annotation before, annotation after)`
/// — the change-set vocabulary the delta walk hands from a node to its
/// dependents.
type Change<E> = (Option<E>, Option<E>);

/// A spilled eviction victim: where its bytes sit in the segment file,
/// plus everything [`CachedNode`] tracked that bytes alone cannot
/// restore (recorded op counts, validity epoch, refold estimate).
#[derive(Debug, Clone, Copy)]
struct SpilledNode {
    offset: u64,
    len: usize,
    add_ops: u64,
    mul_ops: u64,
    valid_at: u64,
    refold_rows_ewma: f64,
}

/// The append-only temp segment file backing spill-on-evict. Entries
/// are only appended — a re-spill of an already-spilled node leaks the
/// superseded bytes (the file lives for one session and eviction
/// traffic is budget-bounded, so the leak is too). Dropped with the
/// session, removing the file.
struct SpillFile {
    file: std::fs::File,
    path: std::path::PathBuf,
    tail: u64,
}

impl SpillFile {
    /// Creates a fresh segment under the OS temp dir, named uniquely
    /// per process and per session. `None` when the file cannot be
    /// created — the caller degrades to plain (spill-less) eviction.
    fn create() -> Option<SpillFile> {
        static SEGMENT: AtomicU64 = AtomicU64::new(0);
        let n = SEGMENT.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("hq-serving-spill-{}-{n}.seg", std::process::id()));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .ok()?;
        Some(SpillFile {
            file,
            path,
            tail: 0,
        })
    }

    /// Appends one node's bytes, returning their `(offset, len)`.
    fn append(&mut self, bytes: &[u8]) -> Option<(u64, usize)> {
        use std::io::{Seek, SeekFrom, Write};
        let offset = self.tail;
        self.file.seek(SeekFrom::Start(offset)).ok()?;
        self.file.write_all(bytes).ok()?;
        self.tail += bytes.len() as u64;
        Some((offset, bytes.len()))
    }

    /// Reads one record back.
    fn read(&mut self, offset: u64, len: usize) -> Option<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        self.file.seek(SeekFrom::Start(offset)).ok()?;
        let mut buf = vec![0u8; len];
        self.file.read_exact(&mut buf).ok()?;
        Some(buf)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The lowering-memo key: the query's atom list with variables as
/// positional ids. Shared with [`crate::server`], whose cross-session
/// lowering memo uses the same structural key.
pub(crate) type QueryShape = Vec<(String, Vec<usize>)>;

/// Computes a query's memo key. [`hq_query::Var`] ids are assigned in
/// first-occurrence order, so two queries that differ only in variable
/// *names* (alpha-renaming) produce equal shapes — and, because the
/// planner and the lowering see only ids, identical lowerings. Keying
/// the memo on the shape instead of the rendered query string lets
/// renamed restatements of one query share a single entry.
pub(crate) fn query_shape(q: &Query) -> QueryShape {
    q.atoms()
        .iter()
        .map(|a| (a.rel.clone(), a.vars.iter().map(|v| v.0).collect()))
        .collect()
}

/// The default [`ServingSession::patch_fraction`]: a delta touching up
/// to half of a node's groups patches in place; beyond that a rebuild
/// is assumed cheaper (the refold would visit most of the node anyway,
/// with worse locality than the batch kernels).
const DEFAULT_PATCH_FRACTION: f64 = 0.5;

/// A backend that can materialise serving-session scan nodes. The
/// four engine backends implement it; all stay bit-identical.
pub trait ServingBackend: Storage {
    /// Whether this backend's scans read the session's [`EncodedDb`].
    /// When `false` (the ordered-map oracle — tuples carry their
    /// values directly), the session skips building and refreshing the
    /// encoding entirely, and novel domain values do not clear the
    /// node cache (there is no code space to move).
    const USES_ENCODING: bool;
    /// Materialises one scan node: relation `rel` keyed in ascending
    /// variable order via the written-order permutation `positions`,
    /// annotated by `ann` (called once per fact in sorted tuple
    /// order). Columnar backends assemble from the cached codes of
    /// `enc`; the ordered-map oracle reads `db` directly.
    ///
    /// # Errors
    /// Arity mismatches and duplicate keys, as in annotation.
    #[allow(clippy::too_many_arguments)]
    fn scan(
        enc: &EncodedDb,
        db: &Database,
        interner: &Interner,
        rel: &str,
        positions: &[usize],
        vars: Vec<Var>,
        ann: &mut dyn FnMut(Sym, &Tuple) -> Self::Ann,
        par: Parallelism,
    ) -> Result<Self, AnnotateError>;

    /// Overwrites the relation's schema labels. Shared plan nodes are
    /// label-free (column positions are the identity); relabeling
    /// aligns a cached node's variable labels with the consuming
    /// kernel's expectation without touching any data.
    fn relabel(&mut self, vars: Vec<Var>);

    /// Re-expresses the node under an extended dictionary after a
    /// novel-domain-value insert: `translation[old] == new` is the
    /// order-preserving code map from [`ValueDict::extend_with`], so
    /// remapped matrices stay sorted and the node's *data* is
    /// untouched — only the code numbering moved. A no-op on the
    /// ordered-map oracle (tuples carry their values directly).
    fn translate_codes(&mut self, dict: &Arc<ValueDict>, translation: &[RowCode]);

    /// Whether eviction victims of this backend can be serialised to a
    /// spill segment and reloaded later ([`ServingSession::set_spill`]).
    /// Only the compressed tier opts in — its blocks are already a
    /// compact byte-oriented format — and only for annotation types
    /// with an exact byte codec ([`CompressedAnn::SPILLABLE`]).
    const SPILLABLE: bool = false;

    /// Serialises the node for the spill segment. Never called unless
    /// [`ServingBackend::SPILLABLE`]; the default spills nothing.
    fn spill(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Rebuilds a node from bytes written by [`ServingBackend::spill`]
    /// under the session's current shared dictionary. `None` rejects
    /// the bytes (malformed, or the backend does not spill) and the
    /// caller falls back to recomputation.
    fn unspill(_bytes: &[u8], _dict: &Arc<ValueDict>) -> Option<Self> {
        None
    }
}

/// Renders a duplicate scan key (an atom with repeated variables) in
/// written column order, mirroring the annotate paths.
fn dup_fact(rel: &str, positions: &[usize], key: Tuple, interner: &Interner) -> AnnotateError {
    let mut vals = vec![Value::Int(0); key.arity()];
    for (i, &p) in positions.iter().enumerate() {
        vals[p] = key.get(i);
    }
    let written = Tuple::from(vals);
    AnnotateError::DuplicateFact {
        fact: format!("{rel}{}", written.display(interner)),
    }
}

/// `positions` when it is not the identity permutation, else `None`
/// (the cached codes are already in key order).
fn non_identity(positions: &[usize]) -> Option<&[usize]> {
    if positions.iter().enumerate().all(|(a, &b)| a == b) {
        None
    } else {
        Some(positions)
    }
}

impl<K: Clone + PartialEq + fmt::Debug + Send + Sync + 'static> ServingBackend
    for ColumnarRelation<K>
{
    const USES_ENCODING: bool = true;

    fn scan(
        enc: &EncodedDb,
        db: &Database,
        interner: &Interner,
        rel: &str,
        positions: &[usize],
        vars: Vec<Var>,
        mut ann: &mut dyn FnMut(Sym, &Tuple) -> K,
        _par: Parallelism,
    ) -> Result<Self, AnnotateError> {
        enc.encode_slot(
            db,
            interner,
            rel,
            vars,
            non_identity(positions),
            &mut ann,
            |key| dup_fact(rel, positions, key, interner),
        )
    }

    fn relabel(&mut self, vars: Vec<Var>) {
        self.set_vars(vars);
    }

    fn translate_codes(&mut self, dict: &Arc<ValueDict>, translation: &[RowCode]) {
        self.remap_codes(dict, translation);
    }
}

impl<K: Clone + PartialEq + fmt::Debug + Send + Sync + 'static> ServingBackend
    for ShardedColumnar<K>
{
    const USES_ENCODING: bool = true;

    fn scan(
        enc: &EncodedDb,
        db: &Database,
        interner: &Interner,
        rel: &str,
        positions: &[usize],
        vars: Vec<Var>,
        ann: &mut dyn FnMut(Sym, &Tuple) -> K,
        par: Parallelism,
    ) -> Result<Self, AnnotateError> {
        Ok(ShardedColumnar::new(
            ColumnarRelation::scan(enc, db, interner, rel, positions, vars, ann, par)?,
            par,
        ))
    }

    fn relabel(&mut self, vars: Vec<Var>) {
        self.inner_mut().relabel(vars);
    }

    fn translate_codes(&mut self, dict: &Arc<ValueDict>, translation: &[RowCode]) {
        self.inner_mut().remap_codes(dict, translation);
    }
}

impl<K> ServingBackend for CompressedColumnar<K>
where
    K: CompressedAnn + Clone + PartialEq + fmt::Debug + Send + Sync + 'static,
{
    const USES_ENCODING: bool = true;
    const SPILLABLE: bool = K::SPILLABLE;

    fn scan(
        enc: &EncodedDb,
        db: &Database,
        interner: &Interner,
        rel: &str,
        positions: &[usize],
        vars: Vec<Var>,
        ann: &mut dyn FnMut(Sym, &Tuple) -> K,
        par: Parallelism,
    ) -> Result<Self, AnnotateError> {
        // Assemble the dense sorted matrix from the cached codes, then
        // block-encode it — the same two-phase build as annotation.
        Ok(CompressedColumnar::from_columnar(ColumnarRelation::scan(
            enc, db, interner, rel, positions, vars, ann, par,
        )?))
    }

    fn relabel(&mut self, vars: Vec<Var>) {
        self.set_vars(vars);
    }

    fn translate_codes(&mut self, dict: &Arc<ValueDict>, translation: &[RowCode]) {
        self.remap_codes(dict, translation);
    }

    fn spill(&self) -> Vec<u8> {
        self.spill_bytes()
    }

    fn unspill(bytes: &[u8], dict: &Arc<ValueDict>) -> Option<Self> {
        CompressedColumnar::from_spill(bytes, Arc::clone(dict))
    }
}

impl<K: Clone + PartialEq + fmt::Debug + Send + Sync + 'static> ServingBackend for MapRelation<K> {
    const USES_ENCODING: bool = false;

    fn scan(
        _enc: &EncodedDb,
        db: &Database,
        interner: &Interner,
        rel: &str,
        positions: &[usize],
        vars: Vec<Var>,
        ann: &mut dyn FnMut(Sym, &Tuple) -> K,
        _par: Parallelism,
    ) -> Result<Self, AnnotateError> {
        let identity = non_identity(positions).is_none();
        let mut rows: Vec<(Tuple, K)> = Vec::new();
        if let Some(sym) = interner.get(rel) {
            if let Some(r) = db.relation(sym) {
                if !r.is_empty() && r.arity() != positions.len() {
                    return Err(AnnotateError::ArityMismatch {
                        rel: rel.to_owned(),
                        atom_arity: positions.len(),
                        fact_arity: r.arity(),
                    });
                }
                for t in r.iter() {
                    let k = ann(sym, t);
                    let key = if identity {
                        t.clone()
                    } else {
                        t.project(positions)
                    };
                    rows.push((key, k));
                }
            }
        }
        MapRelation::build_slots(vec![(vars, rows)])
            .map(|mut slots| slots.pop().expect("one slot in, one slot out"))
            .map_err(|d| dup_fact(rel, positions, d.key, interner))
    }

    fn relabel(&mut self, vars: Vec<Var>) {
        debug_assert_eq!(vars.len(), self.vars.len());
        self.vars = vars;
    }

    fn translate_codes(&mut self, _dict: &Arc<ValueDict>, _translation: &[RowCode]) {
        // Tuples carry their values directly: there is no code space
        // to move (and `USES_ENCODING` keeps this path unreached).
    }
}

/// A multi-query serving session over one annotated database. See the
/// module docs for the sharing, determinism and invalidation model.
pub struct ServingSession<M, R = ColumnarRelation<<M as TwoMonoid>::Elem>>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    monoid: M,
    par: Parallelism,
    /// The current set database (support facts only: a `0` annotation
    /// means absent).
    db: Database,
    /// Current annotations, keyed by fact.
    ann: BTreeMap<Fact, M::Elem>,
    /// The cached dictionary encoding, delta-refreshed on updates.
    enc: EncodedDb,
    /// The shared, hash-consed plan IR of every query seen so far.
    ir: PlanIr,
    /// Memoised lowerings, keyed by query *structure* ([`query_shape`])
    /// so alpha-renamed queries share one entry. Lowered node ids are
    /// structural and the arena never shrinks, so entries are *never*
    /// invalidated — not even by updates.
    lowered: HashMap<QueryShape, LoweredQuery>,
    /// Queries served without re-planning/re-lowering.
    lower_hits: u64,
    /// Materialised plan nodes, keyed by structural identity.
    cache: HashMap<PlanId, CachedNode<R>>,
    /// Monotone update counter.
    epoch: u64,
    /// Per-relation dirty epoch: the session epoch of the last update
    /// that changed the relation.
    rel_epoch: HashMap<String, u64>,
    /// ⊕/⊗ applications actually executed (cache misses and delta
    /// patches — cache hits replay without performing any).
    performed_add: u64,
    performed_mul: u64,
    /// Rebuild-fallback override: when set, a delta touching more than
    /// this fraction of a node's groups drops the node instead of
    /// patching it. When unset the session decides adaptively, using
    /// each Rule 1 node's measured refold cost (rows-per-group EWMA)
    /// where one exists and the default fraction elsewhere.
    patch_fraction: Option<f64>,
    /// Node-cache bound in materialised rows (`None`: unbounded).
    cache_budget: Option<usize>,
    /// Nodes evicted by the budget so far.
    evictions: u64,
    /// LRU clock: bumped once per query.
    query_tick: u64,
    /// The spill segment, created lazily by the first
    /// [`ServingSession::set_spill`] enable.
    spill: Option<SpillFile>,
    /// Whether eviction victims spill (requires a live segment file and
    /// a [`ServingBackend::SPILLABLE`] backend).
    spill_enabled: bool,
    /// Spilled victims by plan node, reloadable instead of recomputed.
    spilled: HashMap<PlanId, SpilledNode>,
    /// Victims written to the spill segment so far.
    spill_writes: u64,
    /// Cache misses served by reloading spilled bytes.
    spill_reloads: u64,
    /// Kernel state of every cached [`PlanExpr::Fixpoint`] node: the
    /// round-stratified accumulator, per-round deltas and fresh-exact
    /// stats that [`patch_inserts`] needs to keep the node warm under
    /// pure-insert updates. Lives and dies with the node's cache entry.
    fix_state: HashMap<PlanId, FixpointRun<M::Elem>>,
}

impl<M, R> ServingSession<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    /// Builds a session over `(fact, annotation)` pairs (later entries
    /// for the same fact win; `0` annotations are dropped — absent).
    ///
    /// # Errors
    /// Rejects fact lists that give one relation two different arities.
    pub fn new(
        monoid: M,
        interner: &Interner,
        facts: impl IntoIterator<Item = (Fact, M::Elem)>,
    ) -> Result<Self, ServingError> {
        Self::with_parallelism(monoid, interner, facts, Parallelism::default())
    }

    /// [`ServingSession::new`] with an explicit [`Parallelism`] degree
    /// (used by the sharded backend's kernels; results stay
    /// bit-identical at every thread count).
    ///
    /// # Errors
    /// Rejects fact lists that give one relation two different arities.
    pub fn with_parallelism(
        monoid: M,
        interner: &Interner,
        facts: impl IntoIterator<Item = (Fact, M::Elem)>,
        par: Parallelism,
    ) -> Result<Self, ServingError> {
        let facts: Vec<(Fact, M::Elem)> = facts.into_iter().collect();
        // Same all-or-nothing arity validation as `update_batch`: the
        // fresh-evaluation paths this session stays bit-identical to
        // report errors rather than panic, so construction must too.
        let mut declared: BTreeMap<Sym, usize> = BTreeMap::new();
        for (fact, k) in &facts {
            if monoid.is_zero(k) {
                continue;
            }
            match declared.get(&fact.rel) {
                Some(&arity) if arity != fact.tuple.arity() => {
                    return Err(ServingError::Annotate(AnnotateError::ArityMismatch {
                        rel: interner.resolve(fact.rel).to_owned(),
                        atom_arity: arity,
                        fact_arity: fact.tuple.arity(),
                    }));
                }
                Some(_) => {}
                None => {
                    declared.insert(fact.rel, fact.tuple.arity());
                }
            }
        }
        let mut db = Database::new();
        let mut ann = BTreeMap::new();
        for (fact, k) in facts {
            if monoid.is_zero(&k) {
                db.remove(&fact);
                ann.remove(&fact);
            } else {
                db.insert(fact.clone());
                ann.insert(fact, k);
            }
        }
        // The ordered-map oracle never reads the encoding: skip the
        // instance-wide value sort and scatter-encode entirely.
        let enc = if R::USES_ENCODING {
            EncodedDb::new(&db)
        } else {
            EncodedDb::new(&Database::new())
        };
        Ok(ServingSession {
            monoid,
            par,
            db,
            ann,
            enc,
            ir: PlanIr::new(),
            lowered: HashMap::new(),
            lower_hits: 0,
            cache: HashMap::new(),
            epoch: 0,
            rel_epoch: HashMap::new(),
            performed_add: 0,
            performed_mul: 0,
            patch_fraction: None,
            cache_budget: None,
            evictions: 0,
            query_tick: 0,
            spill: None,
            spill_enabled: false,
            spilled: HashMap::new(),
            spill_writes: 0,
            spill_reloads: 0,
            fix_state: HashMap::new(),
        })
    }

    /// The session's 2-monoid.
    pub fn monoid(&self) -> &M {
        &self.monoid
    }

    /// The current annotated fact list, in deterministic fact order —
    /// exactly the input an independent fresh evaluation of the
    /// session's state would receive.
    pub fn facts(&self) -> Vec<(Fact, M::Elem)> {
        self.ann
            .iter()
            .map(|(f, k)| (f.clone(), k.clone()))
            .collect()
    }

    /// Total ⊕/⊗ applications actually executed so far (cache misses
    /// only — cache hits replay recorded counts without performing
    /// any). The sharing win of a batch is
    /// `Σ reported stats − ops_performed()`.
    pub fn ops_performed(&self) -> u64 {
        self.performed_add + self.performed_mul
    }

    /// Number of materialised plan nodes currently cached.
    pub fn cached_nodes(&self) -> usize {
        self.cache.len()
    }

    /// Total rows materialised across the cached plan nodes — the
    /// quantity [`ServingSession::set_cache_budget`] bounds.
    pub fn cached_rows(&self) -> usize {
        self.cache.values().map(|n| n.rel.support_size()).sum()
    }

    /// Nodes evicted by the cache budget so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Approximate payload bytes of the **live** materialised node
    /// cache ([`Storage::storage_bytes`] summed over the cached
    /// nodes; the shared dictionary is excluded). On the compressed
    /// tier this is the post-encoding footprint the block format
    /// actually holds resident.
    pub fn cached_bytes(&self) -> usize {
        self.cache.values().map(|n| n.rel.storage_bytes()).sum()
    }

    /// What the same cached nodes would occupy as dense columnar
    /// matrices (one [`RowCode`] per key column per row plus one
    /// inline annotation per row) — the denominator of the
    /// compression ratio the serve-mode trailer reports.
    pub fn cached_dense_bytes(&self) -> usize {
        self.cache
            .values()
            .map(|n| {
                n.rel.support_size()
                    * (n.rel.vars().len() * size_of::<RowCode>() + size_of::<M::Elem>())
            })
            .sum()
    }

    /// Bytes of spilled eviction victims currently reloadable from the
    /// spill segment — reported distinctly from [`cached_rows`]
    /// (live materialised rows) and [`cached_bytes`] (live resident
    /// bytes): spilled nodes are on disk, not resident.
    ///
    /// [`cached_rows`]: ServingSession::cached_rows
    /// [`cached_bytes`]: ServingSession::cached_bytes
    pub fn spilled_bytes(&self) -> usize {
        self.spilled.values().map(|s| s.len).sum()
    }

    /// Spilled nodes currently reloadable.
    pub fn spilled_nodes(&self) -> usize {
        self.spilled.len()
    }

    /// Eviction victims written to the spill segment so far.
    pub fn spill_writes(&self) -> u64 {
        self.spill_writes
    }

    /// Cache misses served by reloading spilled bytes instead of
    /// recomputing the node (zero monoid operations either way — a
    /// reload merely restores the node and its recorded op counts).
    pub fn spill_reloads(&self) -> u64 {
        self.spill_reloads
    }

    /// Enables or disables spill-on-evict. When enabled, cache-budget
    /// eviction victims are serialised to an append-only temp segment
    /// file before being dropped, and a later query that misses on the
    /// node **reloads** it (bytes → blocks, recorded op counts
    /// restored) instead of recomputing it — cheaper whenever decoding
    /// beats re-running the node's ⊕/⊗ kernels, and bit-identical
    /// either way. Spilled entries are dropped (never translated) when
    /// a novel domain value extends the dictionary, and ignored when
    /// their inputs changed since the spill; both fall back to the
    /// ordinary lazy rebuild.
    ///
    /// Returns the effective state: spilling stays off on backends
    /// whose nodes cannot be serialised ([`ServingBackend::SPILLABLE`]
    /// is `false` everywhere but the compressed tier) and when the
    /// segment file cannot be created. Disabling drops the segment and
    /// every spilled entry.
    pub fn set_spill(&mut self, enabled: bool) -> bool {
        if !enabled || !R::SPILLABLE {
            self.spill_enabled = false;
            self.spill = None;
            self.spilled.clear();
            return false;
        }
        if self.spill.is_none() {
            self.spill = SpillFile::create();
        }
        self.spill_enabled = self.spill.is_some();
        self.spill_enabled
    }

    /// Whether spill-on-evict is in force.
    pub fn spill_enabled(&self) -> bool {
        self.spill_enabled
    }

    /// The node-cache bound in materialised rows (`None`: unbounded).
    pub fn cache_budget(&self) -> Option<usize> {
        self.cache_budget
    }

    /// Bounds the node cache: when the materialised rows exceed
    /// `budget`, cost-aware-LRU victims (stalest first; among equally
    /// stale nodes the one freeing the most rows) are evicted after
    /// each query until the cache fits. Evicted nodes rebuild lazily
    /// when a query needs them again — correctness is unaffected, only
    /// the sharing win shrinks.
    pub fn set_cache_budget(&mut self, budget: Option<usize>) {
        self.cache_budget = budget;
        self.evict_to_budget();
    }

    /// The rebuild-fallback fraction currently in force: the explicit
    /// [`ServingSession::set_patch_fraction`] override if one was set,
    /// [`DEFAULT_PATCH_FRACTION`] otherwise. Without an override,
    /// Rule 1 nodes that have measured their refold cost replace the
    /// fraction rule with a per-node cost estimate.
    pub fn patch_fraction(&self) -> f64 {
        self.patch_fraction.unwrap_or(DEFAULT_PATCH_FRACTION)
    }

    /// Overrides the adaptive patch-vs-rebuild decision with a fixed
    /// fraction threshold. `0.0` disables intermediate patching
    /// entirely (every dirty intermediate drops — the old behaviour);
    /// `f64::INFINITY` always patches.
    pub fn set_patch_fraction(&mut self, fraction: f64) {
        self.patch_fraction = Some(fraction.max(0.0));
    }

    /// Distinct query structures whose plan lowering is memoised
    /// (alpha-renamed restatements of one query count once).
    pub fn memoised_queries(&self) -> usize {
        self.lowered.len()
    }

    /// Queries served from the lowering memo (no re-plan, no
    /// re-lower).
    pub fn lower_hits(&self) -> u64 {
        self.lower_hits
    }

    /// Evaluates one query against the current state, sharing every
    /// sub-plan already materialised by earlier queries (or earlier
    /// calls) of this session. Returns the value and the [`EngineStats`]
    /// an independent fresh evaluation would report — bit-identical,
    /// including the support trajectory.
    ///
    /// # Errors
    /// Non-hierarchical queries and annotation failures (arity
    /// mismatch with the stored relation). Self-join-freeness — which
    /// plan sharing relies on (scans are keyed by relation identity) —
    /// is already an invariant of [`Query`] construction.
    pub fn query(
        &mut self,
        interner: &Interner,
        q: &Query,
    ) -> Result<(M::Elem, EngineStats), ServingError> {
        self.query_tick += 1;
        let lowered = self.lower_query(q)?;
        for id in lowered.nodes().collect::<Vec<_>>() {
            self.ensure(id, interner)?;
        }
        let out = self.replay(&lowered);
        self.evict_to_budget();
        Ok(out)
    }

    /// Evaluates the recursive reachability query over the binary
    /// relation `rel` — the left-linear transitive-closure fixpoint
    /// `T = E ⊕ (T ∘ E)` — against the session's caches. The
    /// materialised accumulator is a plan node like any other: shared
    /// across queries (a repeat query performs zero monoid
    /// operations), kept warm under pure-insert updates by semi-naive
    /// patching in [`ServingSession::update_batch`], and subject to
    /// the same cache budget and eviction policy.
    ///
    /// The readout depends on the bound arguments: `src` and `dst`
    /// both given → the annotation of that pair (`0` outside the
    /// support); only `src` → the ⊕-fold over every pair reachable
    /// from `src` in ascending target order; only `dst` → the ⊕-fold
    /// over every pair reaching `dst` in ascending source order;
    /// neither → the ⊕-fold over the whole accumulator. Folds are
    /// readouts (not op-counted), like the nullary readout of
    /// non-recursive queries; the reported stats replay the recorded
    /// fixpoint run — ⊕/⊗ counts plus the per-round support
    /// trajectory.
    ///
    /// # Errors
    /// [`ServingError::Fixpoint`] on a non-convergent monoid or a
    /// non-binary relation.
    pub fn query_fix(
        &mut self,
        interner: &Interner,
        rel: &str,
        src: Option<Value>,
        dst: Option<Value>,
    ) -> Result<(M::Elem, EngineStats), ServingError> {
        self.query_tick += 1;
        let fix = self.lower_fix(rel);
        self.ensure(fix, interner)?;
        if !self.fix_state.contains_key(&fix) {
            // The node was adopted from outside (server promotion)
            // without its kernel state: recompute both together.
            self.cache.remove(&fix);
            self.ensure(fix, interner)?;
        }
        let run = &self.fix_state[&fix];
        let value = match (src, dst) {
            (Some(s), Some(d)) => run.get(s, d).cloned().unwrap_or_else(|| self.monoid.zero()),
            (Some(s), None) => self.monoid.sum(
                run.acc
                    .range((s, Value::Int(i64::MIN))..)
                    .take_while(|(&(a, _), _)| a == s)
                    .map(|(_, (k, _))| k),
            ),
            (None, Some(d)) => self.monoid.sum(
                run.acc
                    .iter()
                    .filter(|(&(_, b), _)| b == d)
                    .map(|(_, (k, _))| k),
            ),
            (None, None) => run.total.clone(),
        };
        let stats = run.stats.clone();
        if let Some(entry) = self.cache.get_mut(&fix) {
            entry.last_used = self.query_tick;
        }
        self.evict_to_budget();
        Ok((value, stats))
    }

    /// Evaluates a batch of queries in order. Common sub-plans across
    /// the batch (and across earlier calls) are evaluated once; each
    /// query's `(value, stats)` is indistinguishable from its
    /// independent evaluation.
    ///
    /// # Errors
    /// Fails on the first erroneous query (earlier results are
    /// discarded; the cache keeps any nodes already materialised).
    pub fn query_batch(
        &mut self,
        interner: &Interner,
        queries: &[Query],
    ) -> Result<Vec<(M::Elem, EngineStats)>, ServingError> {
        queries.iter().map(|q| self.query(interner, q)).collect()
    }

    /// Applies one fact write: a `0` annotation deletes, anything else
    /// upserts. See [`ServingSession::update_batch`].
    ///
    /// # Errors
    /// Arity mismatch with the stored relation.
    pub fn update(
        &mut self,
        interner: &Interner,
        fact: &Fact,
        value: M::Elem,
    ) -> Result<UpdateOutcome, ServingError> {
        self.update_batch(interner, &[(fact.clone(), value)])
    }

    /// Applies a batch of fact writes in order (later writes to the
    /// same fact win), then repairs the caches **incrementally**:
    /// touched relations get new dirty epochs, the [`EncodedDb`]
    /// re-encodes only the changed relations, cached scan nodes take
    /// point patches, and dirty cached intermediates are
    /// **delta-patched in place** through the incremental refold
    /// machinery — `Project` nodes refold exactly their dirty Rule 1
    /// groups, `Join` nodes re-derive exactly their dirty keys, with
    /// recorded op counts maintained to fresh-evaluation-exact. A
    /// delta touching more than [`ServingSession::patch_fraction`] of
    /// a node's groups drops the node instead (lazy rebuild). Novel
    /// domain values extend the shared dictionary once and surviving
    /// cached matrices are *translated* through the old→new code map —
    /// the cache survives; only the code numbering moved.
    ///
    /// # Errors
    /// Arity mismatch with the stored relation; resolution is
    /// all-or-nothing (no write is applied on rejection).
    pub fn update_batch(
        &mut self,
        interner: &Interner,
        updates: &[(Fact, M::Elem)],
    ) -> Result<UpdateOutcome, ServingError> {
        // Validate every *insert* before touching any state — against
        // the stored relation's declared arity (which persists even
        // when all its facts were deleted) and against earlier inserts
        // of the same batch declaring a brand-new relation — so the
        // all-or-nothing contract holds and Database::declare can
        // never panic mid-batch with writes already applied. Deletes
        // are exempt: an arity-mismatched fact can never be stored, so
        // deleting it is a no-op, exactly as when applied serially.
        let mut declared: BTreeMap<Sym, usize> = BTreeMap::new();
        for (fact, value) in updates {
            if self.monoid.is_zero(value) {
                continue;
            }
            let expected = self
                .db
                .relation(fact.rel)
                .map(hq_db::Relation::arity)
                .or_else(|| declared.get(&fact.rel).copied());
            match expected {
                Some(arity) if arity != fact.tuple.arity() => {
                    return Err(ServingError::Annotate(AnnotateError::ArityMismatch {
                        rel: interner.resolve(fact.rel).to_owned(),
                        atom_arity: arity,
                        fact_arity: fact.tuple.arity(),
                    }));
                }
                Some(_) => {}
                None => {
                    declared.insert(fact.rel, fact.tuple.arity());
                }
            }
        }
        let mut touched: BTreeSet<String> = BTreeSet::new();
        // Fact-space net movement per relation: first-touch old value
        // vs last-write new value, intra-batch overwrites coalesced.
        // This is what fixpoint patching consumes — it classifies the
        // batch as pure-insert (patchable) or not (drop and rebuild)
        // and extracts the inserted delta in value space.
        let mut fact_changes: BTreeMap<Sym, BTreeMap<Tuple, Change<M::Elem>>> = BTreeMap::new();
        for (fact, value) in updates {
            let slot = fact_changes
                .entry(fact.rel)
                .or_default()
                .entry(fact.tuple.clone())
                .or_insert_with(|| (self.ann.get(fact).cloned(), None));
            slot.1 = if self.monoid.is_zero(value) {
                None
            } else {
                Some(value.clone())
            };
            let changed = if self.monoid.is_zero(value) {
                // Arity-mismatched deletes are harmless no-ops here:
                // Relation::remove matches by tuple and never declares.
                let removed = self.db.remove(fact);
                self.ann.remove(fact).is_some() || removed
            } else {
                let inserted = self.db.insert(fact.clone());
                let replaced = self.ann.insert(fact.clone(), value.clone());
                inserted || replaced.as_ref() != Some(value)
            };
            if changed {
                touched.insert(interner.resolve(fact.rel).to_owned());
            }
        }
        if touched.is_empty() {
            return Ok(UpdateOutcome::default());
        }
        for rel in fact_changes.values_mut() {
            rel.retain(|_, (old, new)| old != new);
        }
        self.epoch += 1;
        for rel in &touched {
            self.rel_epoch.insert(rel.clone(), self.epoch);
        }
        // Delta-refresh the encoding: only changed relations re-encode.
        // (The ordered-map oracle never reads it — skip entirely, and
        // since map tuples carry values directly there is no code
        // space for novel values to move.)
        let refresh = if R::USES_ENCODING {
            self.enc.refresh(&self.db)
        } else {
            RefreshOutcome::default()
        };
        let mut outcome = UpdateOutcome {
            touched: touched.iter().cloned().collect(),
            refresh,
            ..UpdateOutcome::default()
        };
        if outcome.refresh.dict_extended {
            // Novel domain values moved the code space under every
            // cached matrix — but only the *numbering*, not the data:
            // translate surviving nodes through the old→new code map
            // instead of dropping them, so warm pipelines (including
            // ones over entirely unrelated relations) survive a
            // novel-value insert.
            let dict = self.enc.shared_dict();
            let translation = outcome
                .refresh
                .translation
                .clone()
                .expect("dict_extended implies a translation");
            for node in self.cache.values_mut() {
                node.rel.translate_codes(&dict, &translation);
                outcome.dict_extensions += 1;
            }
            // Spilled bytes are fixed in the *old* code space and, on
            // disk, cannot be translated: drop them (they would fail
            // their freshness check anyway only if their own inputs
            // changed — a dictionary extension moves every node's
            // numbering regardless). The nodes rebuild lazily; rare in
            // practice, novel domain values are the exception.
            self.spilled.clear();
        }
        // Group the batch by relation name once, so scan patching
        // costs the relevant updates per scan — not |cache| × |batch|.
        let mut by_rel: BTreeMap<&str, Vec<(&Fact, &M::Elem)>> = BTreeMap::new();
        for (fact, value) in updates {
            by_rel
                .entry(interner.resolve(fact.rel))
                .or_default()
                .push((fact, value));
        }
        // Walk the dirty cached nodes in arena order — interning
        // guarantees every input id is smaller than its consumer's, so
        // this is a topological walk of the cached DAG — delta-patching
        // each node from its inputs' recorded change sets. `changes[id]`
        // maps a patched node's native keys to `(old, new)` annotations;
        // a dirty node that cannot be patched (missing input, arity
        // move, or a delta past the rebuild threshold) is dropped, and
        // so are its dependents.
        let mut changes: HashMap<PlanId, BTreeMap<R::Key, Change<M::Elem>>> = HashMap::new();
        let mut ids: Vec<PlanId> = self.cache.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            if !self.ir.deps(id).iter().any(|d| touched.contains(d)) {
                continue;
            }
            match self.ir.node(id).clone() {
                PlanExpr::Scan { rel, positions } => {
                    // A scan cached while the relation was absent
                    // carries the *query atom's* width; if the batch
                    // just declared the relation with a different
                    // arity, patching cannot repair it — drop it so the
                    // rebuild reports exactly what fresh evaluation
                    // would (an arity mismatch).
                    let arity_moved = interner
                        .get(&rel)
                        .and_then(|s| self.db.relation(s))
                        .is_some_and(|r| r.arity() != positions.len());
                    if arity_moved {
                        self.cache.remove(&id);
                        outcome.invalidated += 1;
                        continue;
                    }
                    let mut entry = self.cache.remove(&id).expect("iterating live ids");
                    // First-touch snapshots: the change set compares
                    // each key's final value against its pre-batch one,
                    // so intra-batch overwrites coalesce.
                    let mut touched_keys: BTreeMap<R::Key, Option<M::Elem>> = BTreeMap::new();
                    for (fact, value) in by_rel.get(rel.as_str()).into_iter().flatten() {
                        if fact.tuple.arity() != positions.len() {
                            continue; // arity-mismatched delete: no-op
                        }
                        let key = fact.tuple.project(&positions);
                        let Some(native) = entry.rel.key_of(&key) else {
                            // Only a delete can carry values outside
                            // the (already refreshed) dictionary: the
                            // key cannot be stored, nothing changes.
                            debug_assert!(self.monoid.is_zero(value));
                            continue;
                        };
                        touched_keys
                            .entry(native.clone())
                            .or_insert_with(|| entry.rel.get_key(&native));
                        let v = if self.monoid.is_zero(value) {
                            None
                        } else {
                            Some((*value).clone())
                        };
                        entry.rel.set_key(&native, v);
                    }
                    let mut ch = BTreeMap::new();
                    for (k, old) in touched_keys {
                        let new = entry.rel.get_key(&k);
                        if old != new {
                            ch.insert(k, (old, new));
                        }
                    }
                    entry.valid_at = self.epoch;
                    self.cache.insert(id, entry);
                    changes.insert(id, ch);
                    outcome.patched_scans += 1;
                }
                PlanExpr::Project { input, col } => {
                    // A projection's deps equal its input's, so a dirty
                    // projection has a dirty input — patchable only
                    // when that input was itself patched this batch.
                    let Some(cin) = changes.get(&input) else {
                        self.cache.remove(&id);
                        outcome.invalidated += 1;
                        continue;
                    };
                    if cin.is_empty() {
                        // Upstream writes cancelled out: already
                        // consistent with the new state.
                        let entry = self.cache.get_mut(&id).expect("iterating live ids");
                        entry.valid_at = self.epoch;
                        changes.insert(id, BTreeMap::new());
                        continue;
                    }
                    let cin = cin.clone();
                    let mut entry = self.cache.remove(&id).expect("iterating live ids");
                    let input_rel = &self.cache[&input].rel;
                    let keep: Vec<usize> =
                        (0..input_rel.vars().len()).filter(|&i| i != col).collect();
                    // Dirty output groups, plus the input's row movement
                    // per group — the exact accounting that keeps the
                    // cached op counts equal to a fresh evaluation's.
                    let mut groups: BTreeMap<R::Key, (i64, i64)> = BTreeMap::new();
                    let mut rows_delta = 0i64;
                    for (k, (old, new)) in &cin {
                        let g = R::project_key(k, &keep);
                        let e = groups.entry(g).or_insert((0, 0));
                        match (old.is_some(), new.is_some()) {
                            (false, true) => {
                                e.0 += 1;
                                rows_delta += 1;
                            }
                            (true, false) => {
                                e.1 += 1;
                                rows_delta -= 1;
                            }
                            _ => {}
                        }
                    }
                    if self.past_project_threshold(
                        groups.len(),
                        entry.rel.support_size(),
                        entry.refold_rows_ewma,
                        input_rel.support_size(),
                    ) {
                        outcome.invalidated += 1;
                        continue; // entry already removed: rebuilds lazily
                    }
                    let mut ch = BTreeMap::new();
                    let mut groups_delta = 0i64;
                    let dirty_groups = groups.len();
                    let group_keys: Vec<R::Key> = groups.keys().cloned().collect();
                    // The delta-indexed refold: each group's current
                    // members in ascending full-key order, folded
                    // sequentially; large dirty sets shard *across*
                    // groups on the worker pool with results returned
                    // in group order — bit-identical to the batch
                    // kernels on every backend and thread count.
                    let folded =
                        refold_groups(&self.monoid, input_rel, &keep, &group_keys, self.par);
                    let mut rows_total = 0usize;
                    for ((g, (ins, del)), (acc, rows)) in groups.into_iter().zip(folded) {
                        self.performed_add += rows.saturating_sub(1) as u64;
                        rows_total += rows;
                        let old_rows = rows as i64 - ins + del;
                        groups_delta += i64::from(rows > 0) - i64::from(old_rows > 0);
                        let new = acc.filter(|v| !self.monoid.is_zero(v));
                        let old = entry.rel.get_key(&g);
                        if old != new {
                            entry.rel.set_key(&g, new.clone());
                            ch.insert(g, (old, new));
                        }
                    }
                    // Fresh Rule 1 accounting is `rows − groups` (one ⊕
                    // per combine into an existing group): maintain it
                    // exactly from the batch's movement.
                    entry.add_ops = (entry.add_ops as i64 + rows_delta - groups_delta)
                        .try_into()
                        .expect("Rule 1 op accounting stays non-negative");
                    // Fold the measured patch cost into the node's
                    // rows-per-group estimate (equal-weight EWMA).
                    let measured = rows_total as f64 / dirty_groups.max(1) as f64;
                    entry.refold_rows_ewma = if entry.refold_rows_ewma == 0.0 {
                        measured
                    } else {
                        0.5 * entry.refold_rows_ewma + 0.5 * measured
                    };
                    entry.valid_at = self.epoch;
                    self.cache.insert(id, entry);
                    changes.insert(id, ch);
                    outcome.patched_nodes += 1;
                }
                PlanExpr::Join { left, right } => {
                    let (cl, cr) = match (
                        self.side_changes(left, &touched, &changes),
                        self.side_changes(right, &touched, &changes),
                    ) {
                        (Some(l), Some(r)) => (l, r),
                        _ => {
                            self.cache.remove(&id);
                            outcome.invalidated += 1;
                            continue;
                        }
                    };
                    if cl.is_empty() && cr.is_empty() {
                        let entry = self.cache.get_mut(&id).expect("iterating live ids");
                        entry.valid_at = self.epoch;
                        changes.insert(id, BTreeMap::new());
                        continue;
                    }
                    let mut entry = self.cache.remove(&id).expect("iterating live ids");
                    let dirty_keys: BTreeSet<&R::Key> = cl.keys().chain(cr.keys()).collect();
                    if self.past_rebuild_threshold(dirty_keys.len(), entry.rel.support_size()) {
                        outcome.invalidated += 1;
                        continue; // entry already removed: rebuilds lazily
                    }
                    let l = &self.cache[&left].rel;
                    let r = &self.cache[&right].rel;
                    let zero = self.monoid.zero();
                    let annihilating = self.monoid.annihilating();
                    let mut ch = BTreeMap::new();
                    let (mut left_delta, mut right_delta, mut matches_delta) = (0i64, 0i64, 0i64);
                    for k in dirty_keys {
                        let lv = l.get_key(k);
                        let rv = r.get_key(k);
                        // Presence before the batch comes from the
                        // side's change record; an untouched key's
                        // presence did not move.
                        let (old_l, new_l) = match cl.get(k) {
                            Some((o, n)) => (o.is_some(), n.is_some()),
                            None => (lv.is_some(), lv.is_some()),
                        };
                        let (old_r, new_r) = match cr.get(k) {
                            Some((o, n)) => (o.is_some(), n.is_some()),
                            None => (rv.is_some(), rv.is_some()),
                        };
                        left_delta += i64::from(new_l) - i64::from(old_l);
                        right_delta += i64::from(new_r) - i64::from(old_r);
                        matches_delta += i64::from(new_l && new_r) - i64::from(old_l && old_r);
                        // Re-derive the key exactly as the batch merge
                        // would: one ⊗ for a matched pair, 0-fill (or an
                        // outright skip under an annihilating ⊗) for
                        // one-sided rows, left operand first.
                        let new = match (lv, rv) {
                            (None, None) => None,
                            (Some(a), Some(b)) => {
                                self.performed_mul += 1;
                                Some(self.monoid.mul(&a, &b))
                            }
                            (Some(_), None) | (None, Some(_)) if annihilating => None,
                            (Some(a), None) => {
                                self.performed_mul += 1;
                                Some(self.monoid.mul(&a, &zero))
                            }
                            (None, Some(b)) => {
                                self.performed_mul += 1;
                                Some(self.monoid.mul(&zero, &b))
                            }
                        };
                        let new = new.filter(|v| !self.monoid.is_zero(v));
                        let old = entry.rel.get_key(k);
                        if old != new {
                            entry.rel.set_key(k, new.clone());
                            ch.insert(k.clone(), (old, new));
                        }
                    }
                    // Fresh Rule 2 accounting: `matches` under an
                    // annihilating ⊗, `|L| + |R| − matches` with 0-fill
                    // otherwise — maintained exactly from the movement.
                    let mul_delta = if annihilating {
                        matches_delta
                    } else {
                        left_delta + right_delta - matches_delta
                    };
                    entry.mul_ops = (entry.mul_ops as i64 + mul_delta)
                        .try_into()
                        .expect("Rule 2 op accounting stays non-negative");
                    entry.valid_at = self.epoch;
                    self.cache.insert(id, entry);
                    changes.insert(id, ch);
                    outcome.patched_nodes += 1;
                }
                PlanExpr::Rec | PlanExpr::Compose { .. } => {
                    unreachable!("loop variables and compose steps are never materialised")
                }
                PlanExpr::Fixpoint { .. } => {
                    // Semi-naive maintenance: a pure-insert batch
                    // re-enters the loop as a round-0 delta and
                    // propagates through the stratified accumulator
                    // ([`patch_inserts`]). Anything else — deletes,
                    // value modifications, missing kernel state, a
                    // restratifying insert, or a delta past the rebuild
                    // threshold — drops the node (lazy rebuild).
                    let mut entry = self.cache.remove(&id).expect("iterating live ids");
                    let Some(mut run) = self.fix_state.remove(&id) else {
                        outcome.invalidated += 1;
                        continue;
                    };
                    let Ok(spec) = validate_fixpoint(&self.ir, id) else {
                        outcome.invalidated += 1;
                        continue;
                    };
                    // Both input scans must have survived the walk: a
                    // dirty scan patched in place this epoch, an
                    // untouched one still cached from before.
                    let mut inputs = vec![spec.edges];
                    if spec.base != spec.edges {
                        inputs.push(spec.base);
                    }
                    let inputs_live = inputs.iter().all(|sid| {
                        self.cache.contains_key(sid)
                            && (!self.ir.deps(*sid).iter().any(|d| touched.contains(d))
                                || changes.contains_key(sid))
                    });
                    if !inputs_live {
                        outcome.invalidated += 1;
                        continue;
                    }
                    // Classify the batch against each input relation:
                    // every net movement must be a pure insert.
                    let mut deltas: HashMap<PlanId, Vec<(Tuple, M::Elem)>> = HashMap::new();
                    let mut patchable = true;
                    'inputs: for &sid in &inputs {
                        let PlanExpr::Scan { rel, positions } = self.ir.node(sid).clone() else {
                            patchable = false;
                            break;
                        };
                        let moved = interner
                            .get(&rel)
                            .and_then(|s| fact_changes.get(&s))
                            .map(|m| m.iter().collect::<Vec<_>>())
                            .unwrap_or_default();
                        let mut new_rows = Vec::new();
                        for (tuple, (old, new)) in moved {
                            match (old, new) {
                                (None, Some(v)) if tuple.arity() == positions.len() => {
                                    new_rows.push((tuple.project(&positions), v.clone()));
                                }
                                _ => {
                                    patchable = false;
                                    break 'inputs;
                                }
                            }
                        }
                        deltas.insert(sid, new_rows);
                    }
                    let dirty: usize = deltas.values().map(Vec::len).sum();
                    if !patchable || self.past_rebuild_threshold(dirty, entry.rel.support_size()) {
                        outcome.invalidated += 1;
                        continue;
                    }
                    let new_edges = deltas.remove(&spec.edges).unwrap_or_default();
                    let new_base = if spec.base == spec.edges {
                        new_edges.clone()
                    } else {
                        deltas.remove(&spec.base).unwrap_or_default()
                    };
                    let edge_rows = self.cache[&spec.edges].rel.rows();
                    match patch_inserts(
                        &self.monoid,
                        &mut run,
                        &edge_rows,
                        &new_edges,
                        &new_base,
                        spec.shape,
                    ) {
                        Ok(PatchOutcome::Patched(patch)) => {
                            self.performed_add += patch.performed_add;
                            self.performed_mul += patch.performed_mul;
                            // Point-patch the cached accumulator copy:
                            // exactly the rows the kernel wrote.
                            for ((a, b), v) in &patch.written {
                                entry.rel.set(&Tuple::new([*a, *b]), Some(v.clone()));
                            }
                            entry.add_ops = run.stats.add_ops;
                            entry.mul_ops = run.stats.mul_ops;
                            entry.valid_at = self.epoch;
                            self.cache.insert(id, entry);
                            self.fix_state.insert(id, run);
                            outcome.patched_nodes += 1;
                        }
                        Ok(PatchOutcome::Rebuild) | Err(_) => {
                            outcome.invalidated += 1;
                        }
                    }
                }
            }
        }
        Ok(outcome)
    }

    /// Plans and lowers `q` onto the session's shared IR, memoised per
    /// query *shape* (alpha-renamed queries share an entry): the IR is
    /// structural (node ids never change meaning), so a memoised
    /// lowering is valid forever — across updates, evictions,
    /// everything.
    pub(crate) fn lower_query(&mut self, q: &Query) -> Result<LoweredQuery, ServingError> {
        let key = query_shape(q);
        if let Some(l) = self.lowered.get(&key) {
            self.lower_hits += 1;
            return Ok(l.clone());
        }
        let p = plan(q)?;
        let l = lower(&mut self.ir, q, &p);
        self.lowered.insert(key, l.clone());
        Ok(l)
    }

    /// Interns the left-linear transitive-closure plan for `rel` into
    /// the session's shared IR: `Fixpoint { base: Scan(rel), step:
    /// Compose(Rec, Scan(rel)) }`. Hash-consing makes this idempotent,
    /// and the scan node is shared with non-recursive queries over the
    /// same relation.
    pub(crate) fn lower_fix(&mut self, rel: &str) -> PlanId {
        let scan = self.ir.intern(PlanExpr::Scan {
            rel: rel.to_owned(),
            positions: vec![0, 1],
        });
        let rec = self.ir.intern(PlanExpr::Rec);
        let step = self.ir.intern(PlanExpr::Compose {
            left: rec,
            right: scan,
        });
        self.ir.intern(PlanExpr::Fixpoint { base: scan, step })
    }

    /// The recorded kernel run of a cached fixpoint node — what the
    /// server replicates into its shared epoch caches alongside the
    /// materialised relation, and hands back on adoption so the writer
    /// keeps delta-patching instead of rebuilding.
    pub(crate) fn fix_run(&self, id: PlanId) -> Option<&FixpointRun<M::Elem>> {
        self.fix_state.get(&id)
    }

    /// The structural expression of one interned plan node.
    pub(crate) fn plan_node(&self, id: PlanId) -> PlanExpr {
        self.ir.node(id).clone()
    }

    /// The base relations node `id` transitively reads.
    pub(crate) fn node_deps(&self, id: PlanId) -> &BTreeSet<String> {
        self.ir.deps(id)
    }

    /// Per-relation dirty epochs (the session epoch of each relation's
    /// last change) — the stamps [`crate::server`] keys its shared
    /// cache on.
    pub(crate) fn rel_epochs(&self) -> &HashMap<String, u64> {
        &self.rel_epoch
    }

    /// The monotone update-batch counter.
    pub(crate) fn session_epoch(&self) -> u64 {
        self.epoch
    }

    /// The cached dictionary encoding of the current state.
    pub(crate) fn encoded_db(&self) -> &EncodedDb {
        &self.enc
    }

    /// The current set database.
    pub(crate) fn database(&self) -> &Database {
        &self.db
    }

    /// The current annotation map.
    pub(crate) fn annotations(&self) -> &BTreeMap<Fact, M::Elem> {
        &self.ann
    }

    /// Iterates the materialised node cache as
    /// `(id, relation, add_ops, mul_ops)` — the export surface the
    /// multi-tenant server promotes patched nodes from.
    pub(crate) fn cache_entries(&self) -> impl Iterator<Item = (PlanId, &R, u64, u64)> {
        self.cache
            .iter()
            .map(|(&id, n)| (id, &n.rel, n.add_ops, n.mul_ops))
    }

    /// Whether node `id` is materialised.
    pub(crate) fn has_cached(&self, id: PlanId) -> bool {
        self.cache.contains_key(&id)
    }

    /// Adopts an externally materialised node as current. The caller
    /// guarantees `rel` (and its recorded op counts) are exactly what
    /// this session's `ensure` would compute for `id` at the current
    /// state — the server checks this by stamping cache entries with
    /// the per-relation dirty epochs before handing them over.
    pub(crate) fn adopt_node(&mut self, id: PlanId, rel: R, add_ops: u64, mul_ops: u64) {
        self.cache.entry(id).or_insert(CachedNode {
            rel,
            add_ops,
            mul_ops,
            valid_at: self.epoch,
            last_used: self.query_tick,
            refold_rows_ewma: 0.0,
        });
    }

    /// [`ServingSession::adopt_node`] for a fixpoint node: the
    /// materialised accumulator arrives together with its recorded
    /// kernel [`FixpointRun`], so the next `update_batch` can
    /// delta-patch the adopted node instead of invalidating it.
    pub(crate) fn adopt_fix_node(&mut self, id: PlanId, rel: R, run: FixpointRun<M::Elem>) {
        if self.cache.contains_key(&id) {
            return;
        }
        self.cache.insert(
            id,
            CachedNode {
                rel,
                add_ops: run.stats.add_ops,
                mul_ops: run.stats.mul_ops,
                valid_at: self.epoch,
                last_used: self.query_tick,
                refold_rows_ewma: 0.0,
            },
        );
        self.fix_state.insert(id, run);
    }

    /// One merge side's change set for the delta walk: the recorded
    /// changes when the side is dirty (patched this batch), an empty
    /// set when it is clean *and still cached* (probe-able), `None`
    /// when the side cannot support patching — dirty-but-dropped, or
    /// clean-but-evicted (nothing to probe against).
    fn side_changes(
        &self,
        side: PlanId,
        touched: &BTreeSet<String>,
        changes: &HashMap<PlanId, BTreeMap<R::Key, Change<M::Elem>>>,
    ) -> Option<BTreeMap<R::Key, Change<M::Elem>>> {
        if self.ir.deps(side).iter().any(|d| touched.contains(d)) {
            changes.get(&side).cloned()
        } else if self.cache.contains_key(&side) {
            Some(BTreeMap::new())
        } else {
            None
        }
    }

    /// Whether a delta of `dirty` units should fall back to dropping
    /// the node (rebuild lazily): more than
    /// [`ServingSession::patch_fraction`] of the node's current groups.
    fn past_rebuild_threshold(&self, dirty: usize, node_rows: usize) -> bool {
        (dirty as f64) > self.patch_fraction() * (node_rows.max(1) as f64)
    }

    /// The Rule 1 patch-vs-rebuild decision. With an explicit
    /// [`ServingSession::set_patch_fraction`] override — or before the
    /// node's first patch has measured anything — the fraction rule
    /// decides. Otherwise the node's measured rows-per-group EWMA
    /// estimates the patch at `dirty · ewma` input rows, and the node
    /// rebuilds when that exceeds half the input's support — the
    /// regime where the batch kernels' single-pass locality wins over
    /// per-group binary searches.
    fn past_project_threshold(
        &self,
        dirty_groups: usize,
        node_rows: usize,
        ewma: f64,
        input_rows: usize,
    ) -> bool {
        if self.patch_fraction.is_none() && ewma > 0.0 {
            dirty_groups as f64 * ewma > 0.5 * (input_rows.max(1) as f64)
        } else {
            self.past_rebuild_threshold(dirty_groups, node_rows)
        }
    }

    /// Evicts cost-aware-LRU victims until the cache fits the budget:
    /// stalest `last_used` first, the most rows freed among equally
    /// stale nodes, node id as the deterministic tie-break. Empty
    /// nodes are never evicted (they free nothing and cost nothing).
    fn evict_to_budget(&mut self) {
        let Some(budget) = self.cache_budget else {
            return;
        };
        let mut total = self.cached_rows();
        if total <= budget {
            return;
        }
        let mut order: Vec<(u64, Reverse<usize>, PlanId)> = self
            .cache
            .iter()
            .filter(|(_, n)| n.rel.support_size() > 0)
            .map(|(&id, n)| (n.last_used, Reverse(n.rel.support_size()), id))
            .collect();
        order.sort_unstable();
        for (_, Reverse(rows), id) in order {
            if total <= budget {
                break;
            }
            let node = self.cache.remove(&id).expect("iterating live ids");
            self.maybe_spill(id, &node);
            // An evicted fixpoint node's kernel state goes with it: the
            // run rebuilds together with the node on the next recursive
            // query that needs it.
            self.fix_state.remove(&id);
            total -= rows;
            self.evictions += 1;
        }
    }

    /// Writes an eviction victim to the spill segment (when enabled).
    /// Best-effort: a failed write, like a disabled spill, degrades to
    /// a plain eviction — the node rebuilds lazily instead.
    fn maybe_spill(&mut self, id: PlanId, node: &CachedNode<R>) {
        if !self.spill_enabled || !R::SPILLABLE {
            return;
        }
        if self.fix_state.contains_key(&id) {
            // Spilled bytes restore only the relation — not the kernel
            // state a fixpoint node needs to patch or answer point
            // reads — so fixpoint victims always rebuild instead.
            return;
        }
        if let Some(prev) = self.spilled.get(&id) {
            if prev.valid_at == node.valid_at {
                // The node was reloaded and never patched since: the
                // bytes on disk are still exact, skip the rewrite.
                return;
            }
        }
        let Some(seg) = self.spill.as_mut() else {
            return;
        };
        let Some((offset, len)) = seg.append(&node.rel.spill()) else {
            return;
        };
        self.spilled.insert(
            id,
            SpilledNode {
                offset,
                len,
                add_ops: node.add_ops,
                mul_ops: node.mul_ops,
                valid_at: node.valid_at,
                refold_rows_ewma: node.refold_rows_ewma,
            },
        );
        self.spill_writes += 1;
    }

    /// Restores a spilled node whose inputs have not changed since the
    /// spill. The entry is kept (the bytes stay exact until the node
    /// is patched), so a clean re-eviction skips the rewrite. `None`
    /// on any read or decode failure — the caller recomputes.
    fn reload_spilled(&mut self, id: PlanId) -> Option<CachedNode<R>> {
        let entry = *self.spilled.get(&id)?;
        let bytes = self.spill.as_mut()?.read(entry.offset, entry.len)?;
        let rel = R::unspill(&bytes, &self.enc.shared_dict())?;
        self.spill_reloads += 1;
        Some(CachedNode {
            rel,
            add_ops: entry.add_ops,
            mul_ops: entry.mul_ops,
            valid_at: entry.valid_at,
            last_used: self.query_tick,
            refold_rows_ewma: entry.refold_rows_ewma,
        })
    }

    /// Materialises node `id` if the cache does not hold a valid copy.
    /// Inputs are guaranteed to be materialised first because lowered
    /// node lists are in dependency order.
    fn ensure(&mut self, id: PlanId, interner: &Interner) -> Result<(), ServingError> {
        if let Some(entry) = self.cache.get_mut(&id) {
            // Backstop: eager invalidation should have removed stale
            // entries already.
            let fresh = self
                .ir
                .deps(id)
                .iter()
                .all(|d| self.rel_epoch.get(d).copied().unwrap_or(0) <= entry.valid_at);
            debug_assert!(fresh, "stale cache entry survived invalidation");
            if fresh {
                entry.last_used = self.query_tick;
                return Ok(());
            }
        }
        if let Some(spilled) = self.spilled.get(&id) {
            let fresh = self
                .ir
                .deps(id)
                .iter()
                .all(|d| self.rel_epoch.get(d).copied().unwrap_or(0) <= spilled.valid_at);
            if fresh {
                // Reload instead of recompute: the bytes are exact for
                // the current state, and restoring the recorded op
                // counts keeps replayed stats fresh-evaluation-exact
                // while performing zero monoid operations.
                if let Some(node) = self.reload_spilled(id) {
                    self.cache.insert(id, node);
                    return Ok(());
                }
            } else {
                // Inputs moved since the spill: the bytes are stale
                // and (unlike live nodes) cannot be delta-patched.
                self.spilled.remove(&id);
            }
        }
        let node = self.ir.node(id).clone();
        let mut stats = EngineStats::default();
        let rel = match node {
            PlanExpr::Scan { rel, positions } => {
                let vars: Vec<Var> = (0..positions.len()).map(Var).collect();
                let ann_map = &self.ann;
                let mut ann = |sym: Sym, t: &Tuple| -> M::Elem {
                    ann_map
                        .get(&Fact::new(sym, t.clone()))
                        .cloned()
                        .expect("database and annotation map stay in sync")
                };
                R::scan(
                    &self.enc, &self.db, interner, &rel, &positions, vars, &mut ann, self.par,
                )?
            }
            PlanExpr::Project { input, col } => {
                let input_rel = self.cache[&input].rel.clone();
                let var = input_rel.vars()[col];
                input_rel.project_out(&self.monoid, var, &mut stats)
            }
            PlanExpr::Join { left, right } => {
                let l = self.cache[&left].rel.clone();
                let mut r = self.cache[&right].rel.clone();
                // Shared nodes are label-free: align the labels (pure
                // metadata — equal var *sets* per Rule 2, and both
                // sides are keyed in ascending-label column order, so
                // column j corresponds to column j).
                r.relabel(l.vars().to_vec());
                l.merge(&self.monoid, r, &mut stats)
            }
            PlanExpr::Rec | PlanExpr::Compose { .. } => {
                unreachable!("loop variables and compose steps are never materialised")
            }
            PlanExpr::Fixpoint { .. } => {
                let spec = validate_fixpoint(&self.ir, id)?;
                self.ensure(spec.base, interner)?;
                self.ensure(spec.edges, interner)?;
                let base_rows = self.cache[&spec.base].rel.rows();
                let edge_rows = if spec.edges == spec.base {
                    base_rows.clone()
                } else {
                    self.cache[&spec.edges].rel.rows()
                };
                let run = semi_naive(&self.monoid, &base_rows, &edge_rows, spec.shape)?;
                stats.add_ops = run.stats.add_ops;
                stats.mul_ops = run.stats.mul_ops;
                // Materialise the accumulator in the backend's layout,
                // then move it into the session's *shared* dictionary
                // numbering (`build_slots` encodes against a private
                // dict): dictionary extensions must keep translating
                // this node exactly like every other cached node.
                let rows = run.rows();
                let mut rel = R::build_slots(vec![(vec![Var(0), Var(1)], rows.clone())])
                    .map_err(|d| FixpointError::DuplicateKey { key: d.key })?
                    .into_iter()
                    .next()
                    .expect("one slot in, one slot out");
                if R::USES_ENCODING {
                    let mut values: Vec<Value> = rows
                        .iter()
                        .flat_map(|(t, _)| t.values().iter().copied())
                        .collect();
                    values.sort_unstable();
                    values.dedup();
                    let shared = self.enc.shared_dict();
                    let translation: Vec<RowCode> = values
                        .iter()
                        .map(|&v| {
                            shared
                                .code(v)
                                .expect("accumulator values are instance values")
                        })
                        .collect();
                    rel.translate_codes(&shared, &translation);
                }
                self.fix_state.insert(id, run);
                rel
            }
        };
        self.performed_add += stats.add_ops;
        self.performed_mul += stats.mul_ops;
        self.cache.insert(
            id,
            CachedNode {
                rel,
                add_ops: stats.add_ops,
                mul_ops: stats.mul_ops,
                valid_at: self.epoch,
                last_used: self.query_tick,
                refold_rows_ewma: 0.0,
            },
        );
        Ok(())
    }

    /// Replays a lowered query's value, op counts and support
    /// trajectory from the cached nodes — zero monoid operations.
    fn replay(&self, lowered: &LoweredQuery) -> (M::Elem, EngineStats) {
        let mut stats = EngineStats::default();
        let mut slot_nodes = lowered.scans.clone();
        let mut alive = vec![true; slot_nodes.len()];
        let support = |slot_nodes: &[PlanId], alive: &[bool]| -> usize {
            slot_nodes
                .iter()
                .zip(alive)
                .filter(|&(_, &a)| a)
                .map(|(id, _)| self.cache[id].rel.support_size())
                .sum()
        };
        stats.support_sizes.push(support(&slot_nodes, &alive));
        for step in &lowered.steps {
            let c = &self.cache[&step.node];
            stats.add_ops += c.add_ops;
            stats.mul_ops += c.mul_ops;
            if let Some(k) = step.killed {
                alive[k] = false;
            }
            slot_nodes[step.touched] = step.node;
            stats.support_sizes.push(support(&slot_nodes, &alive));
        }
        let value = self.cache[&lowered.root].rel.nullary_value(&self.monoid);
        (value, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{evaluate_encoded, evaluate_on_par};
    use crate::storage::Backend;
    use hq_db::db_from_ints;
    use hq_monoid::{CountMonoid, ProbMonoid};
    use hq_query::parse_query;

    fn chain_tid() -> (Vec<(Fact, f64)>, Interner) {
        let (db, i) = db_from_ints(&[
            ("E", &[&[1, 2], &[1, 3], &[4, 3], &[5, 5]]),
            ("F", &[&[2, 9], &[3, 8], &[3, 9], &[5, 1]]),
        ]);
        let tid = db
            .facts()
            .into_iter()
            .enumerate()
            .map(|(j, f)| (f, 0.15 + 0.09 * j as f64))
            .collect();
        (tid, i)
    }

    fn queries() -> Vec<Query> {
        [
            "Q() :- E(X,Y), F(Y,Z)",
            "Q() :- E(X,Y)",
            "Q() :- F(Y,Z)",
            "Q() :- E(X,Y), F(Y,Z)", // repeat: full sharing
        ]
        .iter()
        .map(|s| parse_query(s).unwrap())
        .collect()
    }

    fn independent(
        q: &Query,
        i: &Interner,
        tid: &[(Fact, f64)],
        backend: Backend,
        par: Parallelism,
    ) -> (f64, EngineStats) {
        evaluate_on_par(backend, par, &ProbMonoid, q, i, tid.iter().cloned()).unwrap()
    }

    #[test]
    fn session_matches_independent_evaluation_on_every_backend() {
        let (tid, i) = chain_tid();
        for q in queries() {
            let (want, want_stats) =
                independent(&q, &i, &tid, Backend::Map, Parallelism::default());
            let mut map: ServingSession<ProbMonoid, MapRelation<f64>> =
                ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
            let (got, stats) = map.query(&i, &q).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "map {q}");
            assert_eq!(stats, want_stats, "map {q}");
            let mut col: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
                ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
            let (got, stats) = col.query(&i, &q).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "columnar {q}");
            assert_eq!(stats, want_stats, "columnar {q}");
            let mut sh: ServingSession<ProbMonoid, ShardedColumnar<f64>> =
                ServingSession::with_parallelism(
                    ProbMonoid,
                    &i,
                    tid.iter().cloned(),
                    Parallelism::fine_grained(3),
                )
                .unwrap();
            let (got, stats) = sh.query(&i, &q).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "sharded {q}");
            assert_eq!(stats, want_stats, "sharded {q}");
        }
    }

    #[test]
    fn shared_batch_performs_strictly_fewer_ops_than_independent() {
        let (tid, i) = chain_tid();
        let qs = queries();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let results = session.query_batch(&i, &qs).unwrap();
        let mut independent_total = 0u64;
        for (q, (got, stats)) in qs.iter().zip(&results) {
            let (want, want_stats) =
                independent(q, &i, &tid, Backend::Columnar, Parallelism::default());
            assert_eq!(got.to_bits(), want.to_bits(), "{q}");
            assert_eq!(stats, &want_stats, "{q}");
            independent_total += want_stats.total_ops();
        }
        assert!(
            session.ops_performed() < independent_total,
            "sharing must save ops: performed {} vs independent {}",
            session.ops_performed(),
            independent_total
        );
    }

    #[test]
    fn repeated_query_is_a_full_cache_hit() {
        let (tid, i) = chain_tid();
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let (a, stats_a) = session.query(&i, &q).unwrap();
        let after_first = session.ops_performed();
        assert_eq!(after_first, stats_a.total_ops());
        let (b, stats_b) = session.query(&i, &q).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(stats_a, stats_b);
        assert_eq!(
            session.ops_performed(),
            after_first,
            "a cache hit must perform zero monoid ops"
        );
    }

    #[test]
    fn updates_patch_dependent_intermediates_in_place() {
        let (tid, i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        session.set_patch_fraction(f64::INFINITY); // tiny instance: always patch
        let q_e = parse_query("Q() :- E(X,Y)").unwrap();
        let q_f = parse_query("Q() :- F(Y,Z)").unwrap();
        session.query(&i, &q_e).unwrap();
        session.query(&i, &q_f).unwrap();
        // Update an E fact (value already in the dictionary).
        let out = session.update(&i, &tid[0].0, 0.77).unwrap();
        assert_eq!(out.touched, vec!["E".to_owned()]);
        assert!(!out.refresh.dict_extended);
        assert_eq!(out.patched_scans, 1, "E's scan is patched in place");
        assert!(out.patched_nodes >= 1, "E's fold chain is patched");
        assert_eq!(out.invalidated, 0, "nothing rebuilds under patching");
        // Both pipelines are already consistent: re-serving either
        // performs zero additional monoid ops...
        let after_patch = session.ops_performed();
        session.query(&i, &q_f).unwrap();
        let (got, stats) = session.query(&i, &q_e).unwrap();
        assert_eq!(session.ops_performed(), after_patch);
        // ...and the patched answer matches fresh evaluation exactly.
        let mut current = tid.clone();
        current[0].1 = 0.77;
        let (want, want_stats) = independent(
            &q_e,
            &i,
            &current,
            Backend::Columnar,
            Parallelism::default(),
        );
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn adaptive_cost_model_patches_small_deltas_and_stays_exact() {
        let (tid, i) = chain_tid();
        // No set_patch_fraction call: the adaptive decision is in
        // force. The first update measures the per-group refold cost;
        // later updates decide on the EWMA instead of the group-count
        // fraction. Small deltas on this instance stay patchable both
        // ways, and every served answer must match fresh evaluation.
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        session.query(&i, &q).unwrap();
        let mut current = tid.clone();
        for (round, value) in [(0usize, 0.66), (1, 0.71), (0, 0.23)] {
            let out = session.update(&i, &current[round].0, value).unwrap();
            assert!(
                out.patched_nodes >= 1,
                "small delta patches under the cost model (round {round})"
            );
            current[round].1 = value;
            let (want, want_stats) =
                independent(&q, &i, &current, Backend::Columnar, Parallelism::default());
            let (got, stats) = session.query(&i, &q).unwrap();
            assert_eq!(got.to_bits(), want.to_bits());
            assert_eq!(stats, want_stats);
        }
    }

    #[test]
    fn rebuild_threshold_zero_restores_drop_semantics() {
        let (tid, i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        session.set_patch_fraction(0.0);
        let q_e = parse_query("Q() :- E(X,Y)").unwrap();
        session.query(&i, &q_e).unwrap();
        let out = session.update(&i, &tid[0].0, 0.77).unwrap();
        assert_eq!(out.patched_scans, 1, "scans always patch");
        assert_eq!(out.patched_nodes, 0, "threshold 0: no intermediate patches");
        assert!(out.invalidated >= 1, "E's fold chain is dropped");
        let mut current = tid.clone();
        current[0].1 = 0.77;
        let (want, want_stats) = independent(
            &q_e,
            &i,
            &current,
            Backend::Columnar,
            Parallelism::default(),
        );
        let (got, stats) = session.query(&i, &q_e).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn novel_values_extend_dictionary_and_keep_cache_warm() {
        let (tid, mut i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        session.set_patch_fraction(f64::INFINITY);
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        session.query(&i, &q).unwrap();
        let nodes_before = session.cached_nodes();
        let e = i.intern("E");
        let novel = Fact::new(e, Tuple::ints(&[100, 200]));
        let out = session.update(&i, &novel, 0.5).unwrap();
        assert!(out.refresh.dict_extended);
        assert_eq!(
            out.dict_extensions, nodes_before,
            "every cached matrix is translated through the code map"
        );
        assert_eq!(
            session.cached_nodes(),
            nodes_before,
            "only the code numbering moved: the cache survives"
        );
        let mut current = tid.clone();
        current.push((novel, 0.5));
        current.sort_by(|a, b| a.0.cmp(&b.0));
        let (want, want_stats) =
            independent(&q, &i, &current, Backend::Columnar, Parallelism::default());
        let before_query = session.ops_performed();
        let (got, stats) = session.query(&i, &q).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
        assert_eq!(
            session.ops_performed(),
            before_query,
            "the patched pipeline re-serves without recomputation"
        );
    }

    #[test]
    fn deletes_and_reinserts_stay_consistent() {
        let (tid, i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        session.query(&i, &q).unwrap();
        session.update(&i, &tid[1].0, 0.0).unwrap(); // delete
        let current: Vec<(Fact, f64)> = tid
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != 1)
            .map(|(_, p)| p.clone())
            .collect();
        let (want, want_stats) =
            independent(&q, &i, &current, Backend::Columnar, Parallelism::default());
        let (got, stats) = session.query(&i, &q).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
        // Re-insert with a new value.
        session.update(&i, &tid[1].0, 0.33).unwrap();
        let mut current = tid.clone();
        current[1].1 = 0.33;
        let (want, _) = independent(&q, &i, &current, Backend::Columnar, Parallelism::default());
        let (got, _) = session.query(&i, &q).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn session_agrees_with_evaluate_encoded() {
        // The columnar session's scan path is the EncodedDb slot
        // assembly itself; pin the equivalence against the public
        // evaluate_encoded entry point over the same database.
        let (tid, i) = chain_tid();
        let mut db = Database::new();
        let ann: BTreeMap<Fact, f64> = tid.iter().cloned().collect();
        for (f, _) in &tid {
            db.insert(f.clone());
        }
        let enc = EncodedDb::new(&db);
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        let (want, want_stats) = evaluate_encoded(
            Parallelism::default(),
            &ProbMonoid,
            &q,
            &i,
            &db,
            &enc,
            |sym, t| ann[&Fact::new(sym, t.clone())],
        )
        .unwrap();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let (got, stats) = session.query(&i, &q).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn rejects_non_hierarchical_queries() {
        let (tid, i) = chain_tid();
        let mut session: ServingSession<CountMonoid, ColumnarRelation<u64>> =
            ServingSession::new(CountMonoid, &i, tid.iter().map(|(f, _)| (f.clone(), 1u64)))
                .unwrap();
        let bad = hq_query::q_non_hierarchical();
        assert!(matches!(
            session.query(&i, &bad),
            Err(ServingError::NotHierarchical(_))
        ));
    }

    #[test]
    fn arity_mismatches_reject_cleanly_without_partial_writes() {
        let (tid, mut i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let e = i.get("E").unwrap();
        // Wrong arity against a stored relation: clean error.
        let bad = Fact::new(e, Tuple::ints(&[1, 2, 3]));
        assert!(matches!(
            session.update(&i, &bad, 0.5),
            Err(ServingError::Annotate(AnnotateError::ArityMismatch { .. }))
        ));
        // Wrong arity against a relation *emptied by deletes* (the
        // declared arity persists): still a clean error, not a panic.
        for (f, _) in tid.iter().filter(|(f, _)| f.rel == e) {
            session.update(&i, f, 0.0).unwrap();
        }
        assert!(matches!(
            session.update(&i, &bad, 0.5),
            Err(ServingError::Annotate(AnnotateError::ArityMismatch { .. }))
        ));
        // A batch that declares a brand-new relation and then
        // contradicts its own arity is rejected all-or-nothing: no
        // write of the batch lands.
        let g = i.intern("G");
        let batch = vec![
            (Fact::new(g, Tuple::ints(&[1])), 0.5),
            (Fact::new(g, Tuple::ints(&[1, 2])), 0.5),
        ];
        let before = session.facts();
        assert!(session.update_batch(&i, &batch).is_err());
        assert_eq!(session.facts(), before, "no partial write on rejection");
        // A delete followed by a differently-sized insert of the same
        // new relation matches serial semantics: the delete is a no-op
        // and must not "declare" an arity.
        let h = i.intern("H");
        let ok_batch = vec![
            (Fact::new(h, Tuple::ints(&[1])), 0.0),
            (Fact::new(h, Tuple::ints(&[1, 2])), 0.5),
        ];
        session.update_batch(&i, &ok_batch).unwrap();
        // Construction itself validates too, instead of panicking
        // inside Database::declare.
        let mixed = vec![
            (Fact::new(g, Tuple::ints(&[1])), 0.5),
            (Fact::new(g, Tuple::ints(&[1, 2])), 0.5),
        ];
        assert!(matches!(
            ServingSession::<ProbMonoid, ColumnarRelation<f64>>::new(
                ProbMonoid,
                &i,
                mixed.into_iter()
            ),
            Err(ServingError::Annotate(AnnotateError::ArityMismatch { .. }))
        ));
    }

    #[test]
    fn relation_declared_after_caching_drops_the_stale_empty_scan() {
        // A query over an absent relation caches an empty scan at the
        // atom's width; when an update later declares the relation with
        // a *different* arity, the scan must be dropped — re-serving
        // the query then reports the same ArityMismatch a fresh
        // evaluation would, never a silently stale empty result.
        let (tid, mut i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let q_g = parse_query("Q() :- G(X)").unwrap();
        let (p, _) = session.query(&i, &q_g).unwrap();
        assert_eq!(p, 0.0, "absent relation: empty scan");
        let g = i.intern("G");
        // Values 1 and 2 are already in the dictionary, so this takes
        // the scan-patch path rather than the cache-clearing one.
        session
            .update(&i, &Fact::new(g, Tuple::ints(&[1, 2])), 0.5)
            .unwrap();
        assert!(
            matches!(
                session.query(&i, &q_g),
                Err(ServingError::Annotate(AnnotateError::ArityMismatch { .. }))
            ),
            "stale empty scan must not be served"
        );
        // A width-matching query over the new relation works.
        let q_g2 = parse_query("Q() :- G(X,Y)").unwrap();
        let (p, _) = session.query(&i, &q_g2).unwrap();
        assert_eq!(p, 0.5);
    }

    #[test]
    fn map_backend_skips_encoding_and_survives_novel_values_warm() {
        let (tid, i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, MapRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let q_e = parse_query("Q() :- E(X,Y)").unwrap();
        let q_f = parse_query("Q() :- F(Y,Z)").unwrap();
        session.query(&i, &q_e).unwrap();
        session.query(&i, &q_f).unwrap();
        let before = session.ops_performed();
        // A novel-value insert into E: no code space on the map
        // backend, so F's pipeline must stay warm (no wholesale clear).
        let e = i.get("E").unwrap();
        let out = session
            .update(&i, &Fact::new(e, Tuple::ints(&[500, 600])), 0.5)
            .unwrap();
        assert!(
            out.refresh.is_noop(),
            "map backend never touches the encoding"
        );
        assert!(session.cached_nodes() > 0, "cache survives novel values");
        session.query(&i, &q_f).unwrap();
        assert_eq!(session.ops_performed(), before, "F stayed warm");
        // And the served answer still matches fresh evaluation.
        let mut current = tid.clone();
        current.push((Fact::new(e, Tuple::ints(&[500, 600])), 0.5));
        current.sort_by(|a, b| a.0.cmp(&b.0));
        let (want, want_stats) =
            independent(&q_e, &i, &current, Backend::Map, Parallelism::default());
        let (got, stats) = session.query(&i, &q_e).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn alpha_renamed_queries_share_one_memo_entry() {
        let (tid, i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        let renamed = parse_query("Q() :- E(A,B), F(B,C)").unwrap();
        let (a, stats_a) = session.query(&i, &q).unwrap();
        assert_eq!(session.memoised_queries(), 1);
        // The renamed restatement hits the same memo entry: the key is
        // the query's structure, not its rendering.
        let (b, stats_b) = session.query(&i, &renamed).unwrap();
        assert_eq!(
            session.memoised_queries(),
            1,
            "one entry for both spellings"
        );
        assert_eq!(session.lower_hits(), 1, "renamed query skips re-lowering");
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(stats_a, stats_b);
        // A structurally different query still gets its own entry.
        let q_sub = parse_query("Q() :- E(U,V)").unwrap();
        session.query(&i, &q_sub).unwrap();
        assert_eq!(session.memoised_queries(), 2);
    }

    #[test]
    fn lowering_is_memoised_per_query_string() {
        let (tid, i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        let q_sub = parse_query("Q() :- E(X,Y)").unwrap();
        let (a, _) = session.query(&i, &q).unwrap();
        assert_eq!(session.memoised_queries(), 1);
        assert_eq!(session.lower_hits(), 0);
        let (b, _) = session.query(&i, &q).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(session.lower_hits(), 1, "repeat query skips re-lowering");
        session.query(&i, &q_sub).unwrap();
        assert_eq!(session.memoised_queries(), 2);
        // Updates never invalidate the memo (the IR is structural).
        session.update(&i, &tid[0].0, 0.9).unwrap();
        session.query(&i, &q).unwrap();
        assert_eq!(session.lower_hits(), 2);
        assert_eq!(session.memoised_queries(), 2);
    }

    #[test]
    fn cache_budget_bounds_materialised_rows() {
        let (tid, i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let q_e = parse_query("Q() :- E(X,Y)").unwrap();
        let q_f = parse_query("Q() :- F(Y,Z)").unwrap();
        session.query(&i, &q_e).unwrap();
        session.query(&i, &q_f).unwrap();
        let unbounded = session.cached_rows();
        assert!(unbounded > 2, "warm cache materialises real rows");
        session.set_cache_budget(Some(2));
        assert!(session.evictions() > 0, "shrinking the budget evicts");
        assert!(session.cached_rows() <= 2);
        // Evicted nodes rebuild lazily and stay correct.
        let (want, want_stats) =
            independent(&q_e, &i, &tid, Backend::Columnar, Parallelism::default());
        let (got, stats) = session.query(&i, &q_e).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
        assert!(session.cached_rows() <= 2, "budget holds after re-serving");
        // Lifting the budget stops evictions.
        session.set_cache_budget(None);
        let before = session.evictions();
        session.query(&i, &q_f).unwrap();
        assert_eq!(session.evictions(), before);
    }

    #[test]
    fn no_op_update_keeps_cache_warm() {
        let (tid, i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        session.query(&i, &q).unwrap();
        let before = session.ops_performed();
        let out = session.update(&i, &tid[0].0, tid[0].1).unwrap();
        assert!(out.touched.is_empty(), "same value: nothing changed");
        session.query(&i, &q).unwrap();
        assert_eq!(session.ops_performed(), before);
    }
}
