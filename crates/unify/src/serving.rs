//! Multi-query serving sessions: one database, one encoded cache, many
//! queries, interleaved updates.
//!
//! A [`ServingSession`] owns an annotated database (facts with
//! 2-monoid annotations), its cached dictionary encoding
//! ([`EncodedDb`]), and a **plan-node cache** keyed by the hash-consed
//! [`PlanIr`] identities of [`crate::plan_ir`]. Evaluating a query
//! lowers its elimination plan onto the shared IR and materialises
//! only the nodes the cache does not already hold — so a batch of
//! overlapping queries evaluates every common sub-plan (shared scans,
//! shared Rule 1 folds, shared Rule 2 merges) **once per backend**,
//! and a repeated query costs zero monoid operations.
//!
//! **Determinism contract.** Each query's returned value and reported
//! [`EngineStats`] are *bit-identical* to an independent fresh
//! evaluation of the same query over the current state
//! ([`crate::engine::evaluate_encoded`] on the columnar backends,
//! [`crate::engine::evaluate_on`] on the ordered-map oracle), on every
//! backend and thread count. Cached nodes store the exact ⊕/⊗ op
//! counts their computation performed, and the session *replays* — not
//! recomputes — each query's op totals and support trajectory from the
//! cached relations, without performing a single monoid operation on a
//! cache hit. [`ServingSession::ops_performed`] exposes how many
//! operations were actually executed, which is how the differential
//! suite pins the sharing win (`performed < Σ independent`).
//!
//! **Update model.** [`ServingSession::update_batch`] applies fact
//! writes (a `0` annotation deletes), bumps the touched relations'
//! dirty epochs, delta-refreshes the [`EncodedDb`] (only changed
//! relations re-encode; novel domain values extend the shared
//! dictionary once), **delta-patches** cached scan nodes of the
//! touched relations in place, and drops exactly the cached
//! intermediates whose transitive inputs changed — everything else
//! stays warm. The rare novel-value case clears the cache instead
//! (the code space itself moved).

use crate::annotated::AnnotateError;
use crate::engine::EngineStats;
use crate::plan_ir::{lower, LoweredQuery, PlanExpr, PlanId, PlanIr};
use crate::storage::{
    ColumnarRelation, EncodedDb, MapRelation, Parallelism, RefreshOutcome, ShardedColumnar, Storage,
};
use hq_db::{Database, Fact, Interner, Sym, Tuple, Value};
use hq_monoid::TwoMonoid;
use hq_query::{plan, NotHierarchical, Query, Var};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Errors from the serving session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingError {
    /// The query is not hierarchical (Theorem 4.4: intractable).
    NotHierarchical(NotHierarchical),
    /// Annotation failed (arity mismatch, duplicate key).
    Annotate(AnnotateError),
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::NotHierarchical(e) => write!(f, "{e}"),
            ServingError::Annotate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServingError {}

impl From<NotHierarchical> for ServingError {
    fn from(e: NotHierarchical) -> Self {
        ServingError::NotHierarchical(e)
    }
}

impl From<AnnotateError> for ServingError {
    fn from(e: AnnotateError) -> Self {
        ServingError::Annotate(e)
    }
}

/// What one [`ServingSession::update_batch`] call did to the caches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Relation names whose content actually changed.
    pub touched: Vec<String>,
    /// Cached scan nodes kept warm by in-place point patches.
    pub patched_scans: usize,
    /// Cached intermediate nodes dropped because an input relation
    /// changed (they rebuild lazily on the next query that needs them).
    pub invalidated: usize,
    /// What the [`EncodedDb`] delta-refresh re-encoded.
    pub refresh: RefreshOutcome,
}

/// A materialised plan node: its annotated relation plus the exact
/// ⊕/⊗ op counts its computation performed (replayed into every
/// query's reported stats without re-executing them).
#[derive(Debug, Clone)]
struct CachedNode<R> {
    rel: R,
    add_ops: u64,
    mul_ops: u64,
    /// Session epoch at which this node was (re)computed or patched.
    valid_at: u64,
}

/// A backend that can materialise serving-session scan nodes. The
/// three engine backends implement it; all stay bit-identical.
pub trait ServingBackend: Storage {
    /// Whether this backend's scans read the session's [`EncodedDb`].
    /// When `false` (the ordered-map oracle — tuples carry their
    /// values directly), the session skips building and refreshing the
    /// encoding entirely, and novel domain values do not clear the
    /// node cache (there is no code space to move).
    const USES_ENCODING: bool;
    /// Materialises one scan node: relation `rel` keyed in ascending
    /// variable order via the written-order permutation `positions`,
    /// annotated by `ann` (called once per fact in sorted tuple
    /// order). Columnar backends assemble from the cached codes of
    /// `enc`; the ordered-map oracle reads `db` directly.
    ///
    /// # Errors
    /// Arity mismatches and duplicate keys, as in annotation.
    #[allow(clippy::too_many_arguments)]
    fn scan(
        enc: &EncodedDb,
        db: &Database,
        interner: &Interner,
        rel: &str,
        positions: &[usize],
        vars: Vec<Var>,
        ann: &mut dyn FnMut(Sym, &Tuple) -> Self::Ann,
        par: Parallelism,
    ) -> Result<Self, AnnotateError>;

    /// Overwrites the relation's schema labels. Shared plan nodes are
    /// label-free (column positions are the identity); relabeling
    /// aligns a cached node's variable labels with the consuming
    /// kernel's expectation without touching any data.
    fn relabel(&mut self, vars: Vec<Var>);
}

/// Renders a duplicate scan key (an atom with repeated variables) in
/// written column order, mirroring the annotate paths.
fn dup_fact(rel: &str, positions: &[usize], key: Tuple, interner: &Interner) -> AnnotateError {
    let mut vals = vec![Value::Int(0); key.arity()];
    for (i, &p) in positions.iter().enumerate() {
        vals[p] = key.get(i);
    }
    let written = Tuple::from(vals);
    AnnotateError::DuplicateFact {
        fact: format!("{rel}{}", written.display(interner)),
    }
}

/// `positions` when it is not the identity permutation, else `None`
/// (the cached codes are already in key order).
fn non_identity(positions: &[usize]) -> Option<&[usize]> {
    if positions.iter().enumerate().all(|(a, &b)| a == b) {
        None
    } else {
        Some(positions)
    }
}

impl<K: Clone + PartialEq + fmt::Debug + Send + Sync> ServingBackend for ColumnarRelation<K> {
    const USES_ENCODING: bool = true;

    fn scan(
        enc: &EncodedDb,
        db: &Database,
        interner: &Interner,
        rel: &str,
        positions: &[usize],
        vars: Vec<Var>,
        mut ann: &mut dyn FnMut(Sym, &Tuple) -> K,
        _par: Parallelism,
    ) -> Result<Self, AnnotateError> {
        enc.encode_slot(
            db,
            interner,
            rel,
            vars,
            non_identity(positions),
            &mut ann,
            |key| dup_fact(rel, positions, key, interner),
        )
    }

    fn relabel(&mut self, vars: Vec<Var>) {
        self.set_vars(vars);
    }
}

impl<K: Clone + PartialEq + fmt::Debug + Send + Sync> ServingBackend for ShardedColumnar<K> {
    const USES_ENCODING: bool = true;

    fn scan(
        enc: &EncodedDb,
        db: &Database,
        interner: &Interner,
        rel: &str,
        positions: &[usize],
        vars: Vec<Var>,
        ann: &mut dyn FnMut(Sym, &Tuple) -> K,
        par: Parallelism,
    ) -> Result<Self, AnnotateError> {
        Ok(ShardedColumnar::new(
            ColumnarRelation::scan(enc, db, interner, rel, positions, vars, ann, par)?,
            par,
        ))
    }

    fn relabel(&mut self, vars: Vec<Var>) {
        self.inner_mut().relabel(vars);
    }
}

impl<K: Clone + PartialEq + fmt::Debug + Send + Sync> ServingBackend for MapRelation<K> {
    const USES_ENCODING: bool = false;

    fn scan(
        _enc: &EncodedDb,
        db: &Database,
        interner: &Interner,
        rel: &str,
        positions: &[usize],
        vars: Vec<Var>,
        ann: &mut dyn FnMut(Sym, &Tuple) -> K,
        _par: Parallelism,
    ) -> Result<Self, AnnotateError> {
        let identity = non_identity(positions).is_none();
        let mut rows: Vec<(Tuple, K)> = Vec::new();
        if let Some(sym) = interner.get(rel) {
            if let Some(r) = db.relation(sym) {
                if !r.is_empty() && r.arity() != positions.len() {
                    return Err(AnnotateError::ArityMismatch {
                        rel: rel.to_owned(),
                        atom_arity: positions.len(),
                        fact_arity: r.arity(),
                    });
                }
                for t in r.iter() {
                    let k = ann(sym, t);
                    let key = if identity {
                        t.clone()
                    } else {
                        t.project(positions)
                    };
                    rows.push((key, k));
                }
            }
        }
        MapRelation::build_slots(vec![(vars, rows)])
            .map(|mut slots| slots.pop().expect("one slot in, one slot out"))
            .map_err(|d| dup_fact(rel, positions, d.key, interner))
    }

    fn relabel(&mut self, vars: Vec<Var>) {
        debug_assert_eq!(vars.len(), self.vars.len());
        self.vars = vars;
    }
}

/// A multi-query serving session over one annotated database. See the
/// module docs for the sharing, determinism and invalidation model.
pub struct ServingSession<M, R = ColumnarRelation<<M as TwoMonoid>::Elem>>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    monoid: M,
    par: Parallelism,
    /// The current set database (support facts only: a `0` annotation
    /// means absent).
    db: Database,
    /// Current annotations, keyed by fact.
    ann: BTreeMap<Fact, M::Elem>,
    /// The cached dictionary encoding, delta-refreshed on updates.
    enc: EncodedDb,
    /// The shared, hash-consed plan IR of every query seen so far.
    ir: PlanIr,
    /// Materialised plan nodes, keyed by structural identity.
    cache: HashMap<PlanId, CachedNode<R>>,
    /// Monotone update counter.
    epoch: u64,
    /// Per-relation dirty epoch: the session epoch of the last update
    /// that changed the relation.
    rel_epoch: HashMap<String, u64>,
    /// ⊕/⊗ applications actually executed (cache misses only).
    performed_add: u64,
    performed_mul: u64,
}

impl<M, R> ServingSession<M, R>
where
    M: TwoMonoid,
    R: ServingBackend<Ann = M::Elem>,
{
    /// Builds a session over `(fact, annotation)` pairs (later entries
    /// for the same fact win; `0` annotations are dropped — absent).
    ///
    /// # Errors
    /// Rejects fact lists that give one relation two different arities.
    pub fn new(
        monoid: M,
        interner: &Interner,
        facts: impl IntoIterator<Item = (Fact, M::Elem)>,
    ) -> Result<Self, ServingError> {
        Self::with_parallelism(monoid, interner, facts, Parallelism::default())
    }

    /// [`ServingSession::new`] with an explicit [`Parallelism`] degree
    /// (used by the sharded backend's kernels; results stay
    /// bit-identical at every thread count).
    ///
    /// # Errors
    /// Rejects fact lists that give one relation two different arities.
    pub fn with_parallelism(
        monoid: M,
        interner: &Interner,
        facts: impl IntoIterator<Item = (Fact, M::Elem)>,
        par: Parallelism,
    ) -> Result<Self, ServingError> {
        let facts: Vec<(Fact, M::Elem)> = facts.into_iter().collect();
        // Same all-or-nothing arity validation as `update_batch`: the
        // fresh-evaluation paths this session stays bit-identical to
        // report errors rather than panic, so construction must too.
        let mut declared: BTreeMap<Sym, usize> = BTreeMap::new();
        for (fact, k) in &facts {
            if monoid.is_zero(k) {
                continue;
            }
            match declared.get(&fact.rel) {
                Some(&arity) if arity != fact.tuple.arity() => {
                    return Err(ServingError::Annotate(AnnotateError::ArityMismatch {
                        rel: interner.resolve(fact.rel).to_owned(),
                        atom_arity: arity,
                        fact_arity: fact.tuple.arity(),
                    }));
                }
                Some(_) => {}
                None => {
                    declared.insert(fact.rel, fact.tuple.arity());
                }
            }
        }
        let mut db = Database::new();
        let mut ann = BTreeMap::new();
        for (fact, k) in facts {
            if monoid.is_zero(&k) {
                db.remove(&fact);
                ann.remove(&fact);
            } else {
                db.insert(fact.clone());
                ann.insert(fact, k);
            }
        }
        // The ordered-map oracle never reads the encoding: skip the
        // instance-wide value sort and scatter-encode entirely.
        let enc = if R::USES_ENCODING {
            EncodedDb::new(&db)
        } else {
            EncodedDb::new(&Database::new())
        };
        Ok(ServingSession {
            monoid,
            par,
            db,
            ann,
            enc,
            ir: PlanIr::new(),
            cache: HashMap::new(),
            epoch: 0,
            rel_epoch: HashMap::new(),
            performed_add: 0,
            performed_mul: 0,
        })
    }

    /// The session's 2-monoid.
    pub fn monoid(&self) -> &M {
        &self.monoid
    }

    /// The current annotated fact list, in deterministic fact order —
    /// exactly the input an independent fresh evaluation of the
    /// session's state would receive.
    pub fn facts(&self) -> Vec<(Fact, M::Elem)> {
        self.ann
            .iter()
            .map(|(f, k)| (f.clone(), k.clone()))
            .collect()
    }

    /// Total ⊕/⊗ applications actually executed so far (cache misses
    /// only — cache hits replay recorded counts without performing
    /// any). The sharing win of a batch is
    /// `Σ reported stats − ops_performed()`.
    pub fn ops_performed(&self) -> u64 {
        self.performed_add + self.performed_mul
    }

    /// Number of materialised plan nodes currently cached.
    pub fn cached_nodes(&self) -> usize {
        self.cache.len()
    }

    /// Evaluates one query against the current state, sharing every
    /// sub-plan already materialised by earlier queries (or earlier
    /// calls) of this session. Returns the value and the [`EngineStats`]
    /// an independent fresh evaluation would report — bit-identical,
    /// including the support trajectory.
    ///
    /// # Errors
    /// Non-hierarchical queries and annotation failures (arity
    /// mismatch with the stored relation). Self-join-freeness — which
    /// plan sharing relies on (scans are keyed by relation identity) —
    /// is already an invariant of [`Query`] construction.
    pub fn query(
        &mut self,
        interner: &Interner,
        q: &Query,
    ) -> Result<(M::Elem, EngineStats), ServingError> {
        let p = plan(q)?;
        let lowered = lower(&mut self.ir, q, &p);
        for id in lowered.nodes().collect::<Vec<_>>() {
            self.ensure(id, interner)?;
        }
        Ok(self.replay(&lowered))
    }

    /// Evaluates a batch of queries in order. Common sub-plans across
    /// the batch (and across earlier calls) are evaluated once; each
    /// query's `(value, stats)` is indistinguishable from its
    /// independent evaluation.
    ///
    /// # Errors
    /// Fails on the first erroneous query (earlier results are
    /// discarded; the cache keeps any nodes already materialised).
    pub fn query_batch(
        &mut self,
        interner: &Interner,
        queries: &[Query],
    ) -> Result<Vec<(M::Elem, EngineStats)>, ServingError> {
        queries.iter().map(|q| self.query(interner, q)).collect()
    }

    /// Applies one fact write: a `0` annotation deletes, anything else
    /// upserts. See [`ServingSession::update_batch`].
    ///
    /// # Errors
    /// Arity mismatch with the stored relation.
    pub fn update(
        &mut self,
        interner: &Interner,
        fact: &Fact,
        value: M::Elem,
    ) -> Result<UpdateOutcome, ServingError> {
        self.update_batch(interner, &[(fact.clone(), value)])
    }

    /// Applies a batch of fact writes in order (later writes to the
    /// same fact win), then repairs the caches **incrementally**:
    /// touched relations get new dirty epochs, the [`EncodedDb`]
    /// re-encodes only the changed relations, cached scan nodes of
    /// touched relations are point-patched in place, and only the
    /// cached intermediates whose transitive inputs changed are
    /// dropped. Novel domain values (outside the shared dictionary)
    /// extend the dictionary once and clear the node cache (the code
    /// space itself moved).
    ///
    /// # Errors
    /// Arity mismatch with the stored relation; resolution is
    /// all-or-nothing (no write is applied on rejection).
    pub fn update_batch(
        &mut self,
        interner: &Interner,
        updates: &[(Fact, M::Elem)],
    ) -> Result<UpdateOutcome, ServingError> {
        // Validate every *insert* before touching any state — against
        // the stored relation's declared arity (which persists even
        // when all its facts were deleted) and against earlier inserts
        // of the same batch declaring a brand-new relation — so the
        // all-or-nothing contract holds and Database::declare can
        // never panic mid-batch with writes already applied. Deletes
        // are exempt: an arity-mismatched fact can never be stored, so
        // deleting it is a no-op, exactly as when applied serially.
        let mut declared: BTreeMap<Sym, usize> = BTreeMap::new();
        for (fact, value) in updates {
            if self.monoid.is_zero(value) {
                continue;
            }
            let expected = self
                .db
                .relation(fact.rel)
                .map(hq_db::Relation::arity)
                .or_else(|| declared.get(&fact.rel).copied());
            match expected {
                Some(arity) if arity != fact.tuple.arity() => {
                    return Err(ServingError::Annotate(AnnotateError::ArityMismatch {
                        rel: interner.resolve(fact.rel).to_owned(),
                        atom_arity: arity,
                        fact_arity: fact.tuple.arity(),
                    }));
                }
                Some(_) => {}
                None => {
                    declared.insert(fact.rel, fact.tuple.arity());
                }
            }
        }
        let mut touched: BTreeSet<String> = BTreeSet::new();
        for (fact, value) in updates {
            let changed = if self.monoid.is_zero(value) {
                // Arity-mismatched deletes are harmless no-ops here:
                // Relation::remove matches by tuple and never declares.
                let removed = self.db.remove(fact);
                self.ann.remove(fact).is_some() || removed
            } else {
                let inserted = self.db.insert(fact.clone());
                let replaced = self.ann.insert(fact.clone(), value.clone());
                inserted || replaced.as_ref() != Some(value)
            };
            if changed {
                touched.insert(interner.resolve(fact.rel).to_owned());
            }
        }
        if touched.is_empty() {
            return Ok(UpdateOutcome::default());
        }
        self.epoch += 1;
        for rel in &touched {
            self.rel_epoch.insert(rel.clone(), self.epoch);
        }
        // Delta-refresh the encoding: only changed relations re-encode.
        // (The ordered-map oracle never reads it — skip entirely, and
        // since map tuples carry values directly there is no code
        // space for novel values to move.)
        let refresh = if R::USES_ENCODING {
            self.enc.refresh(&self.db)
        } else {
            RefreshOutcome::default()
        };
        let mut outcome = UpdateOutcome {
            touched: touched.iter().cloned().collect(),
            patched_scans: 0,
            invalidated: 0,
            refresh,
        };
        if outcome.refresh.dict_extended {
            // The code space moved under every cached matrix: drop the
            // node cache wholesale (rare — only novel domain values).
            outcome.invalidated = self.cache.len();
            self.cache.clear();
            return Ok(outcome);
        }
        // Delta-patch cached scans of touched relations; drop exactly
        // the intermediates that transitively read a touched relation.
        // Updates are grouped by relation name once, so patching costs
        // the relevant updates per scan — not |cache| × |batch|.
        let mut by_rel: BTreeMap<&str, Vec<(&Fact, &M::Elem)>> = BTreeMap::new();
        for (fact, value) in updates {
            by_rel
                .entry(interner.resolve(fact.rel))
                .or_default()
                .push((fact, value));
        }
        let ids: Vec<PlanId> = self.cache.keys().copied().collect();
        for id in ids {
            let dirty = self.ir.deps(id).iter().any(|d| touched.contains(d));
            if !dirty {
                continue;
            }
            if let PlanExpr::Scan { rel, positions } = self.ir.node(id).clone() {
                // A scan cached while the relation was absent carries
                // the *query atom's* width; if the batch just declared
                // the relation with a different arity, patching cannot
                // repair it — drop it so the rebuild reports exactly
                // what fresh evaluation would (an arity mismatch).
                let arity_moved = interner
                    .get(&rel)
                    .and_then(|s| self.db.relation(s))
                    .is_some_and(|r| r.arity() != positions.len());
                if arity_moved {
                    self.cache.remove(&id);
                    outcome.invalidated += 1;
                    continue;
                }
                let entry = self.cache.get_mut(&id).expect("iterating live ids");
                for (fact, value) in by_rel.get(rel.as_str()).into_iter().flatten() {
                    if fact.tuple.arity() != positions.len() {
                        continue; // arity-mismatched delete: no-op
                    }
                    let key = fact.tuple.project(&positions);
                    let v = if self.monoid.is_zero(value) {
                        None
                    } else {
                        Some((*value).clone())
                    };
                    entry.rel.set(&key, v);
                }
                entry.valid_at = self.epoch;
                outcome.patched_scans += 1;
            } else {
                self.cache.remove(&id);
                outcome.invalidated += 1;
            }
        }
        Ok(outcome)
    }

    /// Materialises node `id` if the cache does not hold a valid copy.
    /// Inputs are guaranteed to be materialised first because lowered
    /// node lists are in dependency order.
    fn ensure(&mut self, id: PlanId, interner: &Interner) -> Result<(), ServingError> {
        if let Some(entry) = self.cache.get(&id) {
            // Backstop: eager invalidation should have removed stale
            // entries already.
            let fresh = self
                .ir
                .deps(id)
                .iter()
                .all(|d| self.rel_epoch.get(d).copied().unwrap_or(0) <= entry.valid_at);
            debug_assert!(fresh, "stale cache entry survived invalidation");
            if fresh {
                return Ok(());
            }
        }
        let node = self.ir.node(id).clone();
        let mut stats = EngineStats::default();
        let rel = match node {
            PlanExpr::Scan { rel, positions } => {
                let vars: Vec<Var> = (0..positions.len()).map(Var).collect();
                let ann_map = &self.ann;
                let mut ann = |sym: Sym, t: &Tuple| -> M::Elem {
                    ann_map
                        .get(&Fact::new(sym, t.clone()))
                        .cloned()
                        .expect("database and annotation map stay in sync")
                };
                R::scan(
                    &self.enc, &self.db, interner, &rel, &positions, vars, &mut ann, self.par,
                )?
            }
            PlanExpr::Project { input, col } => {
                let input_rel = self.cache[&input].rel.clone();
                let var = input_rel.vars()[col];
                input_rel.project_out(&self.monoid, var, &mut stats)
            }
            PlanExpr::Join { left, right } => {
                let l = self.cache[&left].rel.clone();
                let mut r = self.cache[&right].rel.clone();
                // Shared nodes are label-free: align the labels (pure
                // metadata — equal var *sets* per Rule 2, and both
                // sides are keyed in ascending-label column order, so
                // column j corresponds to column j).
                r.relabel(l.vars().to_vec());
                l.merge(&self.monoid, r, &mut stats)
            }
        };
        self.performed_add += stats.add_ops;
        self.performed_mul += stats.mul_ops;
        self.cache.insert(
            id,
            CachedNode {
                rel,
                add_ops: stats.add_ops,
                mul_ops: stats.mul_ops,
                valid_at: self.epoch,
            },
        );
        Ok(())
    }

    /// Replays a lowered query's value, op counts and support
    /// trajectory from the cached nodes — zero monoid operations.
    fn replay(&self, lowered: &LoweredQuery) -> (M::Elem, EngineStats) {
        let mut stats = EngineStats::default();
        let mut slot_nodes = lowered.scans.clone();
        let mut alive = vec![true; slot_nodes.len()];
        let support = |slot_nodes: &[PlanId], alive: &[bool]| -> usize {
            slot_nodes
                .iter()
                .zip(alive)
                .filter(|&(_, &a)| a)
                .map(|(id, _)| self.cache[id].rel.support_size())
                .sum()
        };
        stats.support_sizes.push(support(&slot_nodes, &alive));
        for step in &lowered.steps {
            let c = &self.cache[&step.node];
            stats.add_ops += c.add_ops;
            stats.mul_ops += c.mul_ops;
            if let Some(k) = step.killed {
                alive[k] = false;
            }
            slot_nodes[step.touched] = step.node;
            stats.support_sizes.push(support(&slot_nodes, &alive));
        }
        let value = self.cache[&lowered.root].rel.nullary_value(&self.monoid);
        (value, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{evaluate_encoded, evaluate_on_par};
    use crate::storage::Backend;
    use hq_db::db_from_ints;
    use hq_monoid::{CountMonoid, ProbMonoid};
    use hq_query::parse_query;

    fn chain_tid() -> (Vec<(Fact, f64)>, Interner) {
        let (db, i) = db_from_ints(&[
            ("E", &[&[1, 2], &[1, 3], &[4, 3], &[5, 5]]),
            ("F", &[&[2, 9], &[3, 8], &[3, 9], &[5, 1]]),
        ]);
        let tid = db
            .facts()
            .into_iter()
            .enumerate()
            .map(|(j, f)| (f, 0.15 + 0.09 * j as f64))
            .collect();
        (tid, i)
    }

    fn queries() -> Vec<Query> {
        [
            "Q() :- E(X,Y), F(Y,Z)",
            "Q() :- E(X,Y)",
            "Q() :- F(Y,Z)",
            "Q() :- E(X,Y), F(Y,Z)", // repeat: full sharing
        ]
        .iter()
        .map(|s| parse_query(s).unwrap())
        .collect()
    }

    fn independent(
        q: &Query,
        i: &Interner,
        tid: &[(Fact, f64)],
        backend: Backend,
        par: Parallelism,
    ) -> (f64, EngineStats) {
        evaluate_on_par(backend, par, &ProbMonoid, q, i, tid.iter().cloned()).unwrap()
    }

    #[test]
    fn session_matches_independent_evaluation_on_every_backend() {
        let (tid, i) = chain_tid();
        for q in queries() {
            let (want, want_stats) =
                independent(&q, &i, &tid, Backend::Map, Parallelism::default());
            let mut map: ServingSession<ProbMonoid, MapRelation<f64>> =
                ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
            let (got, stats) = map.query(&i, &q).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "map {q}");
            assert_eq!(stats, want_stats, "map {q}");
            let mut col: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
                ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
            let (got, stats) = col.query(&i, &q).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "columnar {q}");
            assert_eq!(stats, want_stats, "columnar {q}");
            let mut sh: ServingSession<ProbMonoid, ShardedColumnar<f64>> =
                ServingSession::with_parallelism(
                    ProbMonoid,
                    &i,
                    tid.iter().cloned(),
                    Parallelism::fine_grained(3),
                )
                .unwrap();
            let (got, stats) = sh.query(&i, &q).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "sharded {q}");
            assert_eq!(stats, want_stats, "sharded {q}");
        }
    }

    #[test]
    fn shared_batch_performs_strictly_fewer_ops_than_independent() {
        let (tid, i) = chain_tid();
        let qs = queries();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let results = session.query_batch(&i, &qs).unwrap();
        let mut independent_total = 0u64;
        for (q, (got, stats)) in qs.iter().zip(&results) {
            let (want, want_stats) =
                independent(q, &i, &tid, Backend::Columnar, Parallelism::default());
            assert_eq!(got.to_bits(), want.to_bits(), "{q}");
            assert_eq!(stats, &want_stats, "{q}");
            independent_total += want_stats.total_ops();
        }
        assert!(
            session.ops_performed() < independent_total,
            "sharing must save ops: performed {} vs independent {}",
            session.ops_performed(),
            independent_total
        );
    }

    #[test]
    fn repeated_query_is_a_full_cache_hit() {
        let (tid, i) = chain_tid();
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let (a, stats_a) = session.query(&i, &q).unwrap();
        let after_first = session.ops_performed();
        assert_eq!(after_first, stats_a.total_ops());
        let (b, stats_b) = session.query(&i, &q).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(stats_a, stats_b);
        assert_eq!(
            session.ops_performed(),
            after_first,
            "a cache hit must perform zero monoid ops"
        );
    }

    #[test]
    fn updates_invalidate_only_dependent_intermediates() {
        let (tid, i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let q_e = parse_query("Q() :- E(X,Y)").unwrap();
        let q_f = parse_query("Q() :- F(Y,Z)").unwrap();
        session.query(&i, &q_e).unwrap();
        session.query(&i, &q_f).unwrap();
        let ops_before = session.ops_performed();
        // Update an E fact (value already in the dictionary).
        let out = session.update(&i, &tid[0].0, 0.77).unwrap();
        assert_eq!(out.touched, vec!["E".to_owned()]);
        assert!(!out.refresh.dict_extended);
        assert_eq!(out.patched_scans, 1, "E's scan is patched in place");
        assert!(out.invalidated >= 1, "E's fold chain is dropped");
        // F's pipeline stayed warm: re-running q_f performs no ops.
        session.query(&i, &q_f).unwrap();
        assert_eq!(session.ops_performed(), ops_before);
        // And q_e recomputes only its folds, matching fresh evaluation.
        let mut current = tid.clone();
        current[0].1 = 0.77;
        let (want, want_stats) = independent(
            &q_e,
            &i,
            &current,
            Backend::Columnar,
            Parallelism::default(),
        );
        let (got, stats) = session.query(&i, &q_e).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn novel_values_extend_dictionary_and_clear_cache() {
        let (tid, mut i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        session.query(&i, &q).unwrap();
        let e = i.intern("E");
        let novel = Fact::new(e, Tuple::ints(&[100, 200]));
        let out = session.update(&i, &novel, 0.5).unwrap();
        assert!(out.refresh.dict_extended);
        assert_eq!(session.cached_nodes(), 0, "code space moved: cache cleared");
        let mut current = tid.clone();
        current.push((novel, 0.5));
        current.sort_by(|a, b| a.0.cmp(&b.0));
        let (want, want_stats) =
            independent(&q, &i, &current, Backend::Columnar, Parallelism::default());
        let (got, stats) = session.query(&i, &q).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn deletes_and_reinserts_stay_consistent() {
        let (tid, i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        session.query(&i, &q).unwrap();
        session.update(&i, &tid[1].0, 0.0).unwrap(); // delete
        let current: Vec<(Fact, f64)> = tid
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != 1)
            .map(|(_, p)| p.clone())
            .collect();
        let (want, want_stats) =
            independent(&q, &i, &current, Backend::Columnar, Parallelism::default());
        let (got, stats) = session.query(&i, &q).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
        // Re-insert with a new value.
        session.update(&i, &tid[1].0, 0.33).unwrap();
        let mut current = tid.clone();
        current[1].1 = 0.33;
        let (want, _) = independent(&q, &i, &current, Backend::Columnar, Parallelism::default());
        let (got, _) = session.query(&i, &q).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn session_agrees_with_evaluate_encoded() {
        // The columnar session's scan path is the EncodedDb slot
        // assembly itself; pin the equivalence against the public
        // evaluate_encoded entry point over the same database.
        let (tid, i) = chain_tid();
        let mut db = Database::new();
        let ann: BTreeMap<Fact, f64> = tid.iter().cloned().collect();
        for (f, _) in &tid {
            db.insert(f.clone());
        }
        let enc = EncodedDb::new(&db);
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        let (want, want_stats) = evaluate_encoded(
            Parallelism::default(),
            &ProbMonoid,
            &q,
            &i,
            &db,
            &enc,
            |sym, t| ann[&Fact::new(sym, t.clone())],
        )
        .unwrap();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let (got, stats) = session.query(&i, &q).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn rejects_non_hierarchical_queries() {
        let (tid, i) = chain_tid();
        let mut session: ServingSession<CountMonoid, ColumnarRelation<u64>> =
            ServingSession::new(CountMonoid, &i, tid.iter().map(|(f, _)| (f.clone(), 1u64)))
                .unwrap();
        let bad = hq_query::q_non_hierarchical();
        assert!(matches!(
            session.query(&i, &bad),
            Err(ServingError::NotHierarchical(_))
        ));
    }

    #[test]
    fn arity_mismatches_reject_cleanly_without_partial_writes() {
        let (tid, mut i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let e = i.get("E").unwrap();
        // Wrong arity against a stored relation: clean error.
        let bad = Fact::new(e, Tuple::ints(&[1, 2, 3]));
        assert!(matches!(
            session.update(&i, &bad, 0.5),
            Err(ServingError::Annotate(AnnotateError::ArityMismatch { .. }))
        ));
        // Wrong arity against a relation *emptied by deletes* (the
        // declared arity persists): still a clean error, not a panic.
        for (f, _) in tid.iter().filter(|(f, _)| f.rel == e) {
            session.update(&i, f, 0.0).unwrap();
        }
        assert!(matches!(
            session.update(&i, &bad, 0.5),
            Err(ServingError::Annotate(AnnotateError::ArityMismatch { .. }))
        ));
        // A batch that declares a brand-new relation and then
        // contradicts its own arity is rejected all-or-nothing: no
        // write of the batch lands.
        let g = i.intern("G");
        let batch = vec![
            (Fact::new(g, Tuple::ints(&[1])), 0.5),
            (Fact::new(g, Tuple::ints(&[1, 2])), 0.5),
        ];
        let before = session.facts();
        assert!(session.update_batch(&i, &batch).is_err());
        assert_eq!(session.facts(), before, "no partial write on rejection");
        // A delete followed by a differently-sized insert of the same
        // new relation matches serial semantics: the delete is a no-op
        // and must not "declare" an arity.
        let h = i.intern("H");
        let ok_batch = vec![
            (Fact::new(h, Tuple::ints(&[1])), 0.0),
            (Fact::new(h, Tuple::ints(&[1, 2])), 0.5),
        ];
        session.update_batch(&i, &ok_batch).unwrap();
        // Construction itself validates too, instead of panicking
        // inside Database::declare.
        let mixed = vec![
            (Fact::new(g, Tuple::ints(&[1])), 0.5),
            (Fact::new(g, Tuple::ints(&[1, 2])), 0.5),
        ];
        assert!(matches!(
            ServingSession::<ProbMonoid, ColumnarRelation<f64>>::new(
                ProbMonoid,
                &i,
                mixed.into_iter()
            ),
            Err(ServingError::Annotate(AnnotateError::ArityMismatch { .. }))
        ));
    }

    #[test]
    fn relation_declared_after_caching_drops_the_stale_empty_scan() {
        // A query over an absent relation caches an empty scan at the
        // atom's width; when an update later declares the relation with
        // a *different* arity, the scan must be dropped — re-serving
        // the query then reports the same ArityMismatch a fresh
        // evaluation would, never a silently stale empty result.
        let (tid, mut i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let q_g = parse_query("Q() :- G(X)").unwrap();
        let (p, _) = session.query(&i, &q_g).unwrap();
        assert_eq!(p, 0.0, "absent relation: empty scan");
        let g = i.intern("G");
        // Values 1 and 2 are already in the dictionary, so this takes
        // the scan-patch path rather than the cache-clearing one.
        session
            .update(&i, &Fact::new(g, Tuple::ints(&[1, 2])), 0.5)
            .unwrap();
        assert!(
            matches!(
                session.query(&i, &q_g),
                Err(ServingError::Annotate(AnnotateError::ArityMismatch { .. }))
            ),
            "stale empty scan must not be served"
        );
        // A width-matching query over the new relation works.
        let q_g2 = parse_query("Q() :- G(X,Y)").unwrap();
        let (p, _) = session.query(&i, &q_g2).unwrap();
        assert_eq!(p, 0.5);
    }

    #[test]
    fn map_backend_skips_encoding_and_survives_novel_values_warm() {
        let (tid, i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, MapRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let q_e = parse_query("Q() :- E(X,Y)").unwrap();
        let q_f = parse_query("Q() :- F(Y,Z)").unwrap();
        session.query(&i, &q_e).unwrap();
        session.query(&i, &q_f).unwrap();
        let before = session.ops_performed();
        // A novel-value insert into E: no code space on the map
        // backend, so F's pipeline must stay warm (no wholesale clear).
        let e = i.get("E").unwrap();
        let out = session
            .update(&i, &Fact::new(e, Tuple::ints(&[500, 600])), 0.5)
            .unwrap();
        assert!(
            out.refresh.is_noop(),
            "map backend never touches the encoding"
        );
        assert!(session.cached_nodes() > 0, "cache survives novel values");
        session.query(&i, &q_f).unwrap();
        assert_eq!(session.ops_performed(), before, "F stayed warm");
        // And the served answer still matches fresh evaluation.
        let mut current = tid.clone();
        current.push((Fact::new(e, Tuple::ints(&[500, 600])), 0.5));
        current.sort_by(|a, b| a.0.cmp(&b.0));
        let (want, want_stats) =
            independent(&q_e, &i, &current, Backend::Map, Parallelism::default());
        let (got, stats) = session.query(&i, &q_e).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn no_op_update_keeps_cache_warm() {
        let (tid, i) = chain_tid();
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &i, tid.iter().cloned()).unwrap();
        let q = parse_query("Q() :- E(X,Y), F(Y,Z)").unwrap();
        session.query(&i, &q).unwrap();
        let before = session.ops_performed();
        let out = session.update(&i, &tid[0].0, tid[0].1).unwrap();
        assert!(out.touched.is_empty(), "same value: nothing changed");
        session.query(&i, &q).unwrap();
        assert_eq!(session.ops_performed(), before);
    }
}
