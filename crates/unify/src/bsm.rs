//! Bag-Set Maximization front-end (Theorem 5.11).
//!
//! Given `(D, D_r, θ)`, computes — for *every* budget `i ≤ θ` at once —
//! the maximum bag-set value `Q(D')` over valid repairs
//! `D ⊆ D' ⊆ D ∪ D_r` with `|D' \ D| ≤ i`, in time
//! `O((|D| + |D_r|) · |D_r|²)`.
//!
//! The ψ-encoding of Definition 5.10 annotates facts already in `D`
//! with the all-ones vector `1` (multiplicity 1 for free), facts only
//! in `D_r` with `★ = (0, 1, 1, …)` (multiplicity 1 after paying one
//! budget unit), and everything else implicitly with `0`.

use crate::engine::{
    evaluate_columnar_par, evaluate_compressed_par, evaluate_on_par, EngineStats, UnifyError,
};
use crate::incremental::{IncrementalError, IncrementalRun};
use crate::serving::{ServingBackend, ServingError, ServingSession, UpdateOutcome};
use crate::storage::{
    Backend, ColumnarRelation, CompressedColumnar, MapRelation, Parallelism, ShardedColumnar,
    Storage,
};
use hq_db::{Database, Fact, Interner};
use hq_monoid::{BagMaxMonoid, BudgetVec, TwoMonoid};
use hq_query::Query;

/// The result of a Bag-Set Maximization run: the full budget curve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BsmSolution {
    /// `curve.get(i)` is the best achievable `Q(D')` with ≤ `i` added facts.
    pub curve: BudgetVec,
    /// Engine instrumentation.
    pub stats: EngineStats,
}

impl BsmSolution {
    /// The answer to the Bag-Set Maximization instance: `q(θ)`.
    pub fn optimum(&self) -> u64 {
        self.curve.get(self.curve.len() - 1)
    }

    /// The best value within budget `i`.
    ///
    /// # Panics
    /// Panics if `i > θ`.
    pub fn value_at(&self, i: usize) -> u64 {
        self.curve.get(i)
    }
}

/// Builds the ψ-annotated fact list of Definition 5.10.
///
/// Facts present in `d` get `1`; facts in `d_r` but not `d` get `★`.
/// The encoding is restricted to relations mentioned by the query —
/// other facts cannot affect a self-join-free query.
pub fn psi_encoding(monoid: &BagMaxMonoid, d: &Database, d_r: &Database) -> Vec<(Fact, BudgetVec)> {
    let mut out = Vec::with_capacity(d.fact_count() + d_r.fact_count());
    for f in d.facts() {
        out.push((f, monoid.one()));
    }
    for f in d_r.facts() {
        if !d.contains(&f) {
            out.push((f, monoid.star()));
        }
    }
    out
}

/// Solves Bag-Set Maximization for a hierarchical query.
///
/// # Errors
/// Returns [`UnifyError::NotHierarchical`] for non-hierarchical queries
/// (for which the problem is NP-complete — Theorem 4.4) and
/// [`UnifyError::Annotate`] for schema mismatches.
pub fn maximize(
    q: &Query,
    interner: &Interner,
    d: &Database,
    d_r: &Database,
    theta: usize,
) -> Result<BsmSolution, UnifyError> {
    maximize_on(Backend::Map, q, interner, d, d_r, theta)
}

/// [`maximize`] on an explicit storage backend. All backends return
/// identical curves and stats.
///
/// # Errors
/// Same failure modes as [`maximize`].
pub fn maximize_on(
    backend: Backend,
    q: &Query,
    interner: &Interner,
    d: &Database,
    d_r: &Database,
    theta: usize,
) -> Result<BsmSolution, UnifyError> {
    maximize_par(backend, Parallelism::default(), q, interner, d, d_r, theta)
}

/// [`maximize`] on an explicit backend and [`Parallelism`] degree:
/// shard kernels run on the persistent worker [`pool`](crate::pool)
/// (no per-call thread spawns), with identical curves and stats at
/// every thread count.
///
/// # Errors
/// Same failure modes as [`maximize`].
pub fn maximize_par(
    backend: Backend,
    par: Parallelism,
    q: &Query,
    interner: &Interner,
    d: &Database,
    d_r: &Database,
    theta: usize,
) -> Result<BsmSolution, UnifyError> {
    let monoid = BagMaxMonoid::new(theta);
    let (curve, stats) = match backend {
        // Fused ψ-encoding: annotate the columnar relations straight
        // from the two databases, without materialising a fact list.
        // Per relation, the base facts (annotation `1̄`) and the novel
        // repair facts (annotation `★`) are two sorted streams; merging
        // them here keeps every slot's rows sorted, so the columnar
        // build skips its re-sort entirely.
        // The compressed tier shares the same fused stream; only the
        // terminal evaluation call differs.
        Backend::Columnar | Backend::Compressed => {
            let one = monoid.one();
            let star = monoid.star();
            let (one, star) = (&one, &star);
            let syms: std::collections::BTreeSet<hq_db::Sym> = d
                .relations()
                .map(|(s, _)| s)
                .chain(d_r.relations().map(|(s, _)| s))
                .collect();
            let rows = syms.into_iter().flat_map(move |sym| {
                let base = d.relation(sym).map(|r| r.iter()).into_iter().flatten();
                let repairs = d_r
                    .relation(sym)
                    .map(|r| r.iter())
                    .into_iter()
                    .flatten()
                    .filter(move |t| !d.relation(sym).is_some_and(|r| r.contains(t)));
                MergedPsi {
                    base: base.peekable(),
                    repairs: repairs.peekable(),
                    one,
                    star,
                }
                .map(move |(t, k)| (sym, t, k))
            });
            if backend == Backend::Compressed {
                evaluate_compressed_par(par, &monoid, q, interner, rows)?
            } else {
                evaluate_columnar_par(par, &monoid, q, interner, rows)?
            }
        }
        Backend::Map => {
            let facts = psi_encoding(&monoid, d, d_r);
            evaluate_on_par(backend, par, &monoid, q, interner, facts)?
        }
    };
    debug_assert!(curve.is_monotone(), "output curve must be monotone");
    Ok(BsmSolution { curve, stats })
}

/// Merges a relation's sorted base-fact and repair-fact streams into
/// one sorted `(tuple, ψ-annotation)` stream (the streams are disjoint:
/// repair candidates already present in `D` are filtered out upstream).
struct MergedPsi<'a, A, B>
where
    A: Iterator<Item = &'a hq_db::Tuple>,
    B: Iterator<Item = &'a hq_db::Tuple>,
{
    base: std::iter::Peekable<A>,
    repairs: std::iter::Peekable<B>,
    one: &'a BudgetVec,
    star: &'a BudgetVec,
}

impl<'a, A, B> Iterator for MergedPsi<'a, A, B>
where
    A: Iterator<Item = &'a hq_db::Tuple>,
    B: Iterator<Item = &'a hq_db::Tuple>,
{
    type Item = (&'a hq_db::Tuple, BudgetVec);

    fn next(&mut self) -> Option<Self::Item> {
        match (self.base.peek(), self.repairs.peek()) {
            (Some(&b), Some(&r)) => {
                if b <= r {
                    self.base.next();
                    Some((b, self.one.clone()))
                } else {
                    self.repairs.next();
                    Some((r, self.star.clone()))
                }
            }
            (Some(_), None) => self.base.next().map(|t| (t, self.one.clone())),
            (None, Some(_)) => self.repairs.next().map(|t| (t, self.star.clone())),
            (None, None) => None,
        }
    }
}

/// How a fact participates in a maintained Bag-Set Maximization
/// instance — the three ψ-encoding classes of Definition 5.10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsiClass {
    /// The fact is in `D`: annotation `1̄` (multiplicity 1 for free).
    Base,
    /// The fact is a repair candidate in `D_r \ D`: annotation `★`
    /// (multiplicity 1 after paying one budget unit).
    Repair,
    /// The fact is in neither database: annotation `0` (absent).
    Absent,
}

/// An incrementally-maintained Bag-Set Maximization instance: build
/// the ψ-annotated pipeline once for `(Q, D, D_r, θ)`, then move facts
/// between `D`, `D_r` and absence ([`IncrementalBsm::set_fact`]) in
/// time proportional to the dirty groups touched. The maintained
/// budget curve stays identical to a fresh [`maximize`] run of the
/// current state. The budget `θ` is fixed at construction (it sizes
/// the monoid's truncated vectors).
pub struct IncrementalBsm<R: Storage<Ann = BudgetVec> = MapRelation<BudgetVec>> {
    monoid: BagMaxMonoid,
    run: IncrementalRun<BagMaxMonoid, R>,
}

impl IncrementalBsm<MapRelation<BudgetVec>> {
    /// Builds the maintained instance on the ordered-map backend.
    ///
    /// # Errors
    /// Rejects non-hierarchical queries and schema mismatches.
    pub fn new(
        q: &Query,
        interner: &Interner,
        d: &Database,
        d_r: &Database,
        theta: usize,
    ) -> Result<Self, IncrementalError> {
        let monoid = BagMaxMonoid::new(theta);
        let facts = psi_encoding(&monoid, d, d_r);
        let run = IncrementalRun::with_storage(monoid, q, interner, facts)?;
        Ok(IncrementalBsm { monoid, run })
    }
}

impl IncrementalBsm<ColumnarRelation<BudgetVec>> {
    /// Builds the maintained instance on the columnar backend.
    ///
    /// # Errors
    /// Rejects non-hierarchical queries and schema mismatches.
    pub fn columnar(
        q: &Query,
        interner: &Interner,
        d: &Database,
        d_r: &Database,
        theta: usize,
    ) -> Result<Self, IncrementalError> {
        let monoid = BagMaxMonoid::new(theta);
        let facts = psi_encoding(&monoid, d, d_r);
        let run = IncrementalRun::with_storage(monoid, q, interner, facts)?;
        Ok(IncrementalBsm { monoid, run })
    }
}

impl IncrementalBsm<CompressedColumnar<BudgetVec>> {
    /// Builds the maintained instance on the compressed columnar
    /// backend (block-encoded code matrices).
    ///
    /// # Errors
    /// Rejects non-hierarchical queries and schema mismatches.
    pub fn compressed(
        q: &Query,
        interner: &Interner,
        d: &Database,
        d_r: &Database,
        theta: usize,
    ) -> Result<Self, IncrementalError> {
        let monoid = BagMaxMonoid::new(theta);
        let facts = psi_encoding(&monoid, d, d_r);
        let run = IncrementalRun::with_storage(monoid, q, interner, facts)?;
        Ok(IncrementalBsm { monoid, run })
    }
}

impl IncrementalBsm<ShardedColumnar<BudgetVec>> {
    /// Builds the maintained instance on the sharded columnar backend
    /// at the given [`Parallelism`] degree.
    ///
    /// # Errors
    /// Rejects non-hierarchical queries and schema mismatches.
    pub fn sharded(
        q: &Query,
        interner: &Interner,
        d: &Database,
        d_r: &Database,
        theta: usize,
        par: Parallelism,
    ) -> Result<Self, IncrementalError> {
        let monoid = BagMaxMonoid::new(theta);
        let facts = psi_encoding(&monoid, d, d_r);
        let run = IncrementalRun::with_parallelism(monoid, q, interner, facts, par)?;
        Ok(IncrementalBsm { monoid, run })
    }
}

impl<R: Storage<Ann = BudgetVec>> IncrementalBsm<R> {
    /// The current budget curve: `curve().get(i)` is the best
    /// achievable `Q(D')` with ≤ `i` added facts.
    pub fn curve(&self) -> &BudgetVec {
        self.run.result()
    }

    /// Re-classifies one fact (ψ-annotation `1̄`, `★` or `0`) and
    /// returns the new budget curve. Unseen facts over query relations
    /// are admitted on the fly.
    ///
    /// # Errors
    /// Rejects facts over relations the query does not mention.
    pub fn set_fact(
        &mut self,
        interner: &Interner,
        fact: &Fact,
        class: PsiClass,
    ) -> Result<&BudgetVec, IncrementalError> {
        let ann = self.psi(class);
        self.run.update(interner, fact, ann)
    }

    /// Re-classifies a batch of facts in one propagation pass (later
    /// entries for the same fact win) and returns the new curve.
    ///
    /// # Errors
    /// See [`IncrementalBsm::set_fact`]; all-or-nothing on rejection.
    pub fn set_batch(
        &mut self,
        interner: &Interner,
        changes: &[(Fact, PsiClass)],
    ) -> Result<&BudgetVec, IncrementalError> {
        let batch: Vec<(Fact, BudgetVec)> = changes
            .iter()
            .map(|(f, c)| (f.clone(), self.psi(*c)))
            .collect();
        self.run.update_batch(interner, &batch)
    }

    /// The underlying maintained run (work accounting, replayed stats).
    pub fn run(&self) -> &IncrementalRun<BagMaxMonoid, R> {
        &self.run
    }

    fn psi(&self, class: PsiClass) -> BudgetVec {
        match class {
            PsiClass::Base => self.monoid.one(),
            PsiClass::Repair => self.monoid.star(),
            PsiClass::Absent => self.monoid.zero(),
        }
    }
}

/// A multi-query Bag-Set Maximization serving session over one
/// `(D, D_r, θ)` instance: many (possibly overlapping) queries share
/// intermediate ψ-annotated relations through the session's plan
/// cache, and ψ-class reassignments ([`BsmSession::set_fact`])
/// invalidate only the cached intermediates whose relations changed.
/// Every returned curve and [`EngineStats`] is bit-identical to a
/// fresh [`maximize`] run of the current state. `θ` is fixed at
/// construction (it sizes the monoid's truncated vectors).
pub struct BsmSession<R: ServingBackend<Ann = BudgetVec> = ColumnarRelation<BudgetVec>> {
    monoid: BagMaxMonoid,
    session: ServingSession<BagMaxMonoid, R>,
}

impl<R: ServingBackend<Ann = BudgetVec>> BsmSession<R> {
    /// Builds the session with an explicit [`Parallelism`] degree
    /// (meaningful on the sharded backend; bit-identical everywhere).
    ///
    /// # Errors
    /// Rejects inputs that give one relation two different arities.
    pub fn with_parallelism(
        interner: &Interner,
        d: &Database,
        d_r: &Database,
        theta: usize,
        par: Parallelism,
    ) -> Result<Self, ServingError> {
        let monoid = BagMaxMonoid::new(theta);
        let facts = psi_encoding(&monoid, d, d_r);
        Ok(BsmSession {
            session: ServingSession::with_parallelism(monoid, interner, facts, par)?,
            monoid,
        })
    }

    /// Builds the session sequentially.
    ///
    /// # Errors
    /// Rejects inputs that give one relation two different arities.
    pub fn new(
        interner: &Interner,
        d: &Database,
        d_r: &Database,
        theta: usize,
    ) -> Result<Self, ServingError> {
        Self::with_parallelism(interner, d, d_r, theta, Parallelism::default())
    }

    /// The full budget curve for one query, sharing sub-plans with
    /// every query this session has served.
    ///
    /// # Errors
    /// Rejects non-hierarchical queries and schema mismatches.
    pub fn query(&mut self, interner: &Interner, q: &Query) -> Result<BsmSolution, ServingError> {
        let (curve, stats) = self.session.query(interner, q)?;
        Ok(BsmSolution { curve, stats })
    }

    /// Re-classifies one fact (`1̄`, `★` or `0` — see [`PsiClass`]),
    /// repairing the caches incrementally.
    ///
    /// # Errors
    /// Schema mismatches with the stored relation.
    pub fn set_fact(
        &mut self,
        interner: &Interner,
        fact: &Fact,
        class: PsiClass,
    ) -> Result<UpdateOutcome, ServingError> {
        let ann = match class {
            PsiClass::Base => self.monoid.one(),
            PsiClass::Repair => self.monoid.star(),
            PsiClass::Absent => self.monoid.zero(),
        };
        self.session.update(interner, fact, ann)
    }

    /// The underlying session (sharing/caching introspection).
    pub fn session(&self) -> &ServingSession<BagMaxMonoid, R> {
        &self.session
    }

    /// Bounds the session's node cache (see
    /// [`ServingSession::set_cache_budget`]). Only the serving knobs
    /// are forwarded mutably — the session itself stays behind the
    /// wrapper so ψ-class validation cannot be bypassed.
    pub fn set_cache_budget(&mut self, budget: Option<usize>) {
        self.session.set_cache_budget(budget);
    }

    /// Enables or disables spill-on-evict (see
    /// [`ServingSession::set_spill`]); returns the effective state.
    pub fn set_spill(&mut self, enabled: bool) -> bool {
        self.session.set_spill(enabled)
    }

    /// Sets the rebuild-fallback threshold (see
    /// [`ServingSession::set_patch_fraction`]).
    pub fn set_patch_fraction(&mut self, fraction: f64) {
        self.session.set_patch_fraction(fraction);
    }
}

/// A Bag-Set Maximization solution carrying an optimal repair per
/// budget, not just its value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BsmRepairSolution {
    /// Witness-carrying budget curve.
    pub curve: hq_monoid::WitnessVec,
    /// The repair-candidate facts referenced by the curve's ids.
    pub candidates: Vec<Fact>,
    /// Engine instrumentation.
    pub stats: EngineStats,
}

impl BsmRepairSolution {
    /// The best value within budget `i`.
    pub fn value_at(&self, i: usize) -> u64 {
        self.curve.value_at(i)
    }

    /// One optimal repair (facts to add) for budget `i`.
    pub fn repair_at(&self, i: usize) -> Vec<Fact> {
        self.curve
            .facts_at(i)
            .iter()
            .map(|&id| self.candidates[id as usize].clone())
            .collect()
    }
}

/// Solves Bag-Set Maximization *and* extracts an optimal repair set
/// for every budget `i ≤ θ`, by running Algorithm 1 over the
/// witness-tracking variant of the Definition 5.9 monoid. Same
/// asymptotics as [`maximize`] with an extra `O(θ)` factor on the
/// convolution constants.
///
/// ```
/// use hq_db::{db_from_ints, Database, Tuple};
/// use hq_query::parse_query;
///
/// let q = parse_query("Q() :- R(X)").unwrap();
/// let (d, i) = db_from_ints(&[("R", &[&[1]])]);
/// let (d_r, _) = db_from_ints(&[("R", &[&[2], &[3]])]);
/// let sol = hq_unify::bsm::maximize_with_repair(&q, &i, &d, &d_r, 1).unwrap();
/// assert_eq!(sol.value_at(1), 2);
/// assert_eq!(sol.repair_at(1).len(), 1); // one bought fact suffices
/// ```
///
/// # Errors
/// Same failure modes as [`maximize`].
pub fn maximize_with_repair(
    q: &Query,
    interner: &Interner,
    d: &Database,
    d_r: &Database,
    theta: usize,
) -> Result<BsmRepairSolution, UnifyError> {
    maximize_with_repair_on(Backend::Map, q, interner, d, d_r, theta)
}

/// [`maximize_with_repair`] on an explicit storage backend.
///
/// # Errors
/// Same failure modes as [`maximize`].
pub fn maximize_with_repair_on(
    backend: Backend,
    q: &Query,
    interner: &Interner,
    d: &Database,
    d_r: &Database,
    theta: usize,
) -> Result<BsmRepairSolution, UnifyError> {
    maximize_with_repair_par(backend, Parallelism::default(), q, interner, d, d_r, theta)
}

/// [`maximize_with_repair`] on an explicit backend and [`Parallelism`]
/// degree.
///
/// # Errors
/// Same failure modes as [`maximize`].
pub fn maximize_with_repair_par(
    backend: Backend,
    par: Parallelism,
    q: &Query,
    interner: &Interner,
    d: &Database,
    d_r: &Database,
    theta: usize,
) -> Result<BsmRepairSolution, UnifyError> {
    use hq_monoid::BagMaxWitnessMonoid;
    let monoid = BagMaxWitnessMonoid::new(theta);
    let candidates: Vec<Fact> = d_r.facts().into_iter().filter(|f| !d.contains(f)).collect();
    let mut facts = Vec::with_capacity(d.fact_count() + candidates.len());
    for f in d.facts() {
        facts.push((f, monoid.one()));
    }
    for (id, f) in candidates.iter().enumerate() {
        facts.push((
            f.clone(),
            monoid.star(u32::try_from(id).expect("fact id fits u32")),
        ));
    }
    let (curve, stats) = evaluate_on_par(backend, par, &monoid, q, interner, facts)?;
    Ok(BsmRepairSolution {
        curve,
        candidates,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_db::{count_matches, db_from_ints, Tuple};
    use hq_query::{example_query, q_non_hierarchical, Query};

    /// The exact instance of Figure 1 with the query of Eq. (1).
    fn fig1() -> (Database, Database, Interner) {
        let (d, mut i) = db_from_ints(&[
            ("R", &[&[1, 5]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4]]),
        ]);
        let r = i.intern("R");
        let t = i.intern("T");
        let mut d_r = Database::new();
        d_r.insert_tuple(r, Tuple::ints(&[1, 6]));
        d_r.insert_tuple(r, Tuple::ints(&[1, 7]));
        d_r.insert_tuple(t, Tuple::ints(&[1, 1, 4]));
        d_r.insert_tuple(t, Tuple::ints(&[1, 2, 9]));
        (d, d_r, i)
    }

    #[test]
    fn figure_1_optimum_is_4() {
        // The paper's worked example: θ = 2 → optimum 4, achieved by
        // adding R(1,6) and T(1,2,9).
        let (d, d_r, i) = fig1();
        let sol = maximize(&example_query(), &i, &d, &d_r, 2).unwrap();
        assert_eq!(sol.optimum(), 4);
        // And the whole budget curve: 1 at θ=0, 2 at θ=1.
        assert_eq!(sol.value_at(0), 1);
        assert_eq!(sol.value_at(1), 2);
    }

    #[test]
    fn figure_1_larger_budgets() {
        // θ=3: R(1,6) + R(1,7) + T(1,2,9) → R-block 3 × (S,T)-block 2 = 6.
        // θ=4: all four repair facts → 3 R-facts × (T(1,1,4)+2·T(1,2,*))
        //      = 3 × 3 = 9.
        let (d, d_r, i) = fig1();
        let sol = maximize(&example_query(), &i, &d, &d_r, 4).unwrap();
        assert_eq!(sol.value_at(3), 6);
        assert_eq!(sol.value_at(4), 9);
    }

    #[test]
    fn zero_budget_equals_plain_count() {
        let (d, d_r, mut i) = fig1();
        let q = example_query();
        let sol = maximize(&q, &i, &d, &d_r, 0).unwrap();
        let pattern = q.to_pattern(&mut i);
        assert_eq!(sol.optimum(), hq_db::count_matches(&d, &pattern).unwrap());
    }

    #[test]
    fn budget_beyond_repair_db_saturates() {
        let (d, d_r, i) = fig1();
        let q = example_query();
        let full = maximize(&q, &i, &d, &d_r, 10).unwrap();
        // Adding everything: 3 R-facts × 3 (S⋈T) combos = 9.
        assert_eq!(full.optimum(), 9);
        assert_eq!(full.value_at(4), 9, "all useful facts bought by θ=4");
    }

    #[test]
    fn curve_is_monotone() {
        let (d, d_r, i) = fig1();
        let sol = maximize(&example_query(), &i, &d, &d_r, 6).unwrap();
        assert!(sol.curve.is_monotone());
    }

    #[test]
    fn empty_repair_database() {
        let (d, _, i) = fig1();
        let sol = maximize(&example_query(), &i, &d, &Database::new(), 3).unwrap();
        assert_eq!(sol.optimum(), 1);
    }

    #[test]
    fn repair_facts_already_in_d_cost_nothing() {
        // If D_r duplicates a fact of D, it must be annotated 1, not ★.
        let (d, i) = db_from_ints(&[("R", &[&[1]])]);
        let r = i.get("R").unwrap();
        let mut d_r = Database::new();
        d_r.insert_tuple(r, Tuple::ints(&[1])); // duplicate of D
        d_r.insert_tuple(r, Tuple::ints(&[2]));
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let sol = maximize(&q, &i, &d, &d_r, 1).unwrap();
        assert_eq!(sol.value_at(0), 1);
        assert_eq!(sol.value_at(1), 2);
    }

    #[test]
    fn rejects_non_hierarchical() {
        let (d, d_r, i) = fig1();
        assert!(matches!(
            maximize(&q_non_hierarchical(), &i, &d, &d_r, 2),
            Err(UnifyError::NotHierarchical(_))
        ));
        assert!(matches!(
            maximize_with_repair(&q_non_hierarchical(), &i, &d, &d_r, 2),
            Err(UnifyError::NotHierarchical(_))
        ));
    }

    #[test]
    fn witness_values_match_plain_solver() {
        let (d, d_r, i) = fig1();
        let q = example_query();
        let plain = maximize(&q, &i, &d, &d_r, 4).unwrap();
        let with = maximize_with_repair(&q, &i, &d, &d_r, 4).unwrap();
        for t in 0..=4 {
            assert_eq!(plain.value_at(t), with.value_at(t), "θ'={t}");
        }
    }

    #[test]
    fn extracted_repairs_are_valid_and_optimal() {
        // Materialise each budget's repair and re-count: the value must
        // be exactly the claimed optimum and the repair within budget.
        let (d, d_r, mut i) = fig1();
        let q = example_query();
        let sol = maximize_with_repair(&q, &i, &d, &d_r, 4).unwrap();
        let pattern = q.to_pattern(&mut i);
        for t in 0..=4 {
            let repair = sol.repair_at(t);
            assert!(repair.len() <= t, "budget exceeded at θ'={t}");
            let mut repaired = d.clone();
            for f in &repair {
                assert!(d_r.contains(f), "repair fact must come from D_r");
                assert!(!d.contains(f), "repair fact must be new");
                repaired.insert(f.clone());
            }
            assert_eq!(
                count_matches(&repaired, &pattern).unwrap(),
                sol.value_at(t),
                "θ'={t} repair {repair:?}"
            );
        }
    }

    #[test]
    fn fig1_theta2_repair_pairs_r_with_t() {
        let (d, d_r, i) = fig1();
        let q = example_query();
        let sol = maximize_with_repair(&q, &i, &d, &d_r, 2).unwrap();
        assert_eq!(sol.value_at(2), 4);
        let names: Vec<String> = sol
            .repair_at(2)
            .iter()
            .map(|f| f.display(&i).to_string())
            .collect();
        assert_eq!(names.len(), 2);
        assert!(names.iter().any(|n| n.starts_with("R(1, ")), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("T(1, ")), "{names:?}");
    }

    #[test]
    fn incremental_bsm_tracks_fresh_maximize() {
        let (d, d_r, i) = fig1();
        let q = example_query();
        let mut inc = IncrementalBsm::new(&q, &i, &d, &d_r, 2).unwrap();
        assert_eq!(inc.curve(), &maximize(&q, &i, &d, &d_r, 2).unwrap().curve);
        // Promote a repair candidate into the base database: the curve
        // must match a fresh run over the moved fact.
        let bought = Tuple::ints(&[1, 6]);
        let r = i.get("R").unwrap();
        let fact = Fact::new(r, bought.clone());
        inc.set_fact(&i, &fact, PsiClass::Base).unwrap();
        let mut d2 = d.clone();
        d2.insert(fact.clone());
        assert_eq!(inc.curve(), &maximize(&q, &i, &d2, &d_r, 2).unwrap().curve);
        // Retract it entirely; D_r loses the candidate.
        inc.set_fact(&i, &fact, PsiClass::Absent).unwrap();
        let mut dr2 = Database::new();
        for f in d_r.facts() {
            if f != fact {
                dr2.insert(f);
            }
        }
        assert_eq!(inc.curve(), &maximize(&q, &i, &d, &dr2, 2).unwrap().curve);
        // A batched reclassification equals the serial one, and the
        // columnar/sharded wrappers agree with the map wrapper.
        let t = i.get("T").unwrap();
        let batch = vec![
            (fact.clone(), PsiClass::Repair),
            (Fact::new(t, Tuple::ints(&[1, 2, 9])), PsiClass::Base),
        ];
        let mut col = IncrementalBsm::columnar(&q, &i, &d, &dr2, 2).unwrap();
        let mut sh = IncrementalBsm::sharded(
            &q,
            &i,
            &d,
            &dr2,
            2,
            crate::storage::Parallelism::fine_grained(2),
        )
        .unwrap();
        let want = inc.set_batch(&i, &batch).unwrap().clone();
        assert_eq!(col.set_batch(&i, &batch).unwrap(), &want);
        assert_eq!(sh.set_batch(&i, &batch).unwrap(), &want);
    }

    #[test]
    fn bsm_session_matches_fresh_maximize_through_updates() {
        let (d, d_r, i) = fig1();
        let q = example_query();
        let q_sub = Query::new(&[("S", &["A", "C"])]).unwrap();
        let mut session: BsmSession = BsmSession::new(&i, &d, &d_r, 2).unwrap();
        let fresh = maximize_on(Backend::Columnar, &q, &i, &d, &d_r, 2).unwrap();
        let got = session.query(&i, &q).unwrap();
        assert_eq!(got.curve, fresh.curve);
        assert_eq!(got.stats, fresh.stats);
        // A second (overlapping) query shares the S scan.
        session.query(&i, &q_sub).unwrap();
        // Promote a repair candidate into the base database.
        let r = i.get("R").unwrap();
        let fact = Fact::new(r, Tuple::ints(&[1, 6]));
        session.set_fact(&i, &fact, PsiClass::Base).unwrap();
        let mut d2 = d.clone();
        d2.insert(fact);
        let fresh = maximize_on(Backend::Columnar, &q, &i, &d2, &d_r, 2).unwrap();
        let got = session.query(&i, &q).unwrap();
        assert_eq!(got.curve, fresh.curve);
        assert_eq!(got.stats, fresh.stats);
    }

    #[test]
    fn support_never_grows() {
        let (d, d_r, i) = fig1();
        let sol = maximize(&example_query(), &i, &d, &d_r, 3).unwrap();
        assert!(sol.stats.support_never_grew());
    }
}
