//! Provenance front-end: Algorithm 1 over the universal provenance
//! 2-monoid (Definition 6.2 / Lemma 6.3).
//!
//! Annotates every fact with a unique symbol and returns the final
//! decomposable provenance tree together with the symbol table. This is
//! the executable form of the paper's generic correctness argument
//! (Theorem 6.4): the cross-crate property tests apply each problem's
//! homomorphism `φ` to this tree and compare against the direct run.

use crate::engine::{evaluate, UnifyError};
use hq_db::{Fact, Interner};
use hq_monoid::{Prov, ProvMonoid};
use hq_query::Query;

/// The provenance of `Q` over a fact set: the tree plus the fact each
/// leaf symbol denotes (`symbols[s]` is the fact labelled `s`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// The final (decomposable) provenance tree.
    pub tree: Prov,
    /// Symbol table: leaf `s` ↔ `symbols[s as usize]`.
    pub symbols: Vec<Fact>,
}

impl Provenance {
    /// The fact a leaf symbol denotes.
    pub fn fact(&self, symbol: u64) -> &Fact {
        &self.symbols[symbol as usize]
    }

    /// Position (symbol) of a fact, if it was annotated.
    pub fn symbol_of(&self, fact: &Fact) -> Option<u64> {
        self.symbols
            .iter()
            .position(|f| f == fact)
            .map(|p| p as u64)
    }
}

/// Runs Algorithm 1 over the provenance 2-monoid, annotating `facts`
/// with symbols `0..facts.len()` in order.
///
/// # Errors
/// Rejects non-hierarchical queries and schema mismatches.
pub fn provenance_tree(
    q: &Query,
    interner: &Interner,
    facts: &[Fact],
) -> Result<Provenance, UnifyError> {
    let annotated = facts
        .iter()
        .enumerate()
        .map(|(s, f)| (f.clone(), Prov::Leaf(s as u64)));
    let (tree, _) = evaluate(&ProvMonoid, q, interner, annotated)?;
    Ok(Provenance {
        tree,
        symbols: facts.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_db::db_from_ints;
    use hq_query::{example_query, q_hierarchical, Query};

    #[test]
    fn trees_are_decomposable() {
        // Lemma 6.3: the output provenance tree is decomposable.
        let q = example_query();
        let (db, i) = db_from_ints(&[
            ("R", &[&[1, 5], &[2, 6]]),
            ("S", &[&[1, 1], &[1, 2], &[2, 2]]),
            ("T", &[&[1, 2, 4], &[2, 2, 7]]),
        ]);
        let prov = provenance_tree(&q, &i, &db.facts()).unwrap();
        assert!(prov.tree.is_decomposable(), "{}", prov.tree);
    }

    #[test]
    fn tree_bool_semantics_match_query() {
        // Evaluating the provenance formula under "all facts present"
        // agrees with Boolean query evaluation.
        let q = q_hierarchical();
        let (db, mut i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3]])]);
        let prov = provenance_tree(&q, &i, &db.facts()).unwrap();
        assert!(prov.tree.eval_bool(&|_| true));
        // Knock out the E fact: the formula must become false.
        let e_sym = prov.symbol_of(&db.facts()[0]).expect("fact was annotated");
        assert!(!prov.tree.eval_bool(&|s| s != e_sym));
        let pattern = q.to_pattern(&mut i);
        assert!(hq_db::satisfiable(&db, &pattern).unwrap());
    }

    #[test]
    fn tree_multiplicity_matches_count() {
        // The multiplicity semantics of the tree equals the bag-set
        // value Q(D) when every fact has multiplicity 1.
        let q = example_query();
        let (db, mut i) = db_from_ints(&[
            ("R", &[&[1, 5], &[1, 6]]),
            ("S", &[&[1, 1], &[1, 2]]),
            ("T", &[&[1, 2, 4], &[1, 1, 9]]),
        ]);
        let prov = provenance_tree(&q, &i, &db.facts()).unwrap();
        let pattern = q.to_pattern(&mut i);
        let expected = hq_db::count_matches(&db, &pattern).unwrap();
        assert_eq!(prov.tree.multiplicity(&|_| 1), expected);
    }

    #[test]
    fn empty_database_gives_false() {
        let q = Query::new(&[("R", &["X"])]).unwrap();
        let i = Interner::new();
        let prov = provenance_tree(&q, &i, &[]).unwrap();
        assert_eq!(prov.tree, Prov::False);
    }

    #[test]
    fn support_is_contributing_facts() {
        // Facts that cannot join into any witness may be ⊗-ed with 0
        // but never dropped silently; facts over unrelated relations
        // are excluded up front.
        let q = q_hierarchical();
        let (db, i) = db_from_ints(&[("E", &[&[1, 2]]), ("F", &[&[2, 3], &[9, 9]])]);
        let prov = provenance_tree(&q, &i, &db.facts()).unwrap();
        let supp = prov.tree.support();
        // E(1,2) and F(2,3) surely contribute.
        assert!(supp.contains(&prov.symbol_of(&db.facts()[0]).unwrap()));
    }
}
