//! The update/query script grammar shared by every front-end.
//!
//! One line-oriented grammar serves three consumers: the CLI's
//! `--mode serve --script` files, the `--mode incremental --updates`
//! files, and the `hq serve --listen` wire protocol (the script
//! grammar *is* the wire format — a socket connection is just a script
//! whose lines arrive one at a time; parsed update commands are
//! submitted to the server's group-commit queue, so concurrent
//! connections' writes coalesce into one commit and each `ok epoch`
//! reply carries the submitting batch's own commit-ticket epoch). The
//! grammar:
//!
//! * `? <query>` — serve a query (e.g. `? Q() :- E(X,Y), F(Y,Z)`);
//! * `? fix <rel> [<src> [<dst>]]` — serve the recursive reachability
//!   query over binary relation `<rel>` ([`PlanExpr::Fixpoint`]):
//!   both endpoints → one pair's annotation, one endpoint → the
//!   ⊕-fold over its slice, neither → the ⊕-total; `_` is the
//!   wildcard (`? fix E _ 4` folds everything reaching `4`);
//!
//!   [`PlanExpr::Fixpoint`]: crate::plan_ir::PlanExpr::Fixpoint
//! * `R(v1, …) [@ p]` — upsert a fact (a missing weight means `1`);
//! * `!R(v1, …)` — **explicit delete** (the canonical delete form; it
//!   takes no `@ weight`);
//! * `R(v1, …) @ 0` — *deprecated* delete alias, kept for existing
//!   prob-monoid scripts where a zero weight and an absent fact
//!   coincide;
//! * `# …` — comment (also allowed after a command); blank lines are
//!   skipped.
//!
//! [`parse_command`] and [`render_command`] round-trip: rendering a
//! parsed command and re-parsing it yields the same command (pinned by
//! a proptest in the root differential suite). Fact values render
//! through the shared [`Interner`], weights through `f64`'s shortest
//! round-trippable display form.

use hq_db::{Fact, Interner, Value};
use hq_query::{parse_query, Query};
use std::fmt;

/// What one update line asks for. The explicit delete stays
/// distinguishable from a `0`-weight upsert so monoid-sensitive script
/// modes (#Sat/Shapley roles, where a zero-weight exogenous fact is
/// meaningful) can consume the same grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateAction {
    /// `!R(v1, …)` — explicit delete.
    Delete,
    /// `R(v1, …) [@ p]` — upsert (a missing weight means `1`).
    Weight(f64),
}

impl UpdateAction {
    /// The probability-monoid annotation: under PQE a delete and a
    /// zero weight coincide (`0` means absent), which is exactly why
    /// `@ 0` survives as a deprecated delete alias in these modes.
    pub fn prob_weight(&self) -> f64 {
        match self {
            UpdateAction::Delete => 0.0,
            UpdateAction::Weight(w) => *w,
        }
    }
}

/// One parsed script command.
#[derive(Debug, Clone)]
pub enum ScriptCommand {
    /// `? <query>` — serve the query.
    Query(Query),
    /// `? fix <rel> [<src> [<dst>]]` — serve the recursive
    /// reachability query over binary relation `rel`.
    Fix {
        /// The edge relation the fixpoint closes over.
        rel: String,
        /// Restrict to paths from this source (`None`: any source).
        src: Option<Value>,
        /// Restrict to paths into this target (`None`: any target).
        dst: Option<Value>,
    },
    /// A fact write: upsert or explicit delete.
    Update(Fact, UpdateAction),
}

impl fmt::Display for ScriptCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptCommand::Query(q) => write!(f, "? {q}"),
            ScriptCommand::Fix { rel, .. } => {
                write!(f, "? fix {rel} …") // values need an interner: see render_command
            }
            ScriptCommand::Update(..) => {
                write!(f, "<update>") // facts need an interner: see render_command
            }
        }
    }
}

/// Strips the `#` comment from one raw script line, returning the
/// remaining command text — or `None` when nothing remains. The shared
/// line discipline of every script consumer.
pub fn strip_comment(raw: &str) -> Option<&str> {
    let line = match raw.split_once('#') {
        Some((before, _)) => before.trim(),
        None => raw.trim(),
    };
    if line.is_empty() {
        None
    } else {
        Some(line)
    }
}

/// Parses one comment-stripped command line. `lineno` is zero-based
/// (error messages report it one-based, like every file diagnostic);
/// `source` names the script (a path, or e.g. `wire` for socket
/// input).
///
/// # Errors
/// A formatted message for malformed facts, weights, queries, and a
/// delete form carrying an `@ weight`.
pub fn parse_command(
    line: &str,
    lineno: usize,
    source: &str,
    interner: &mut Interner,
) -> Result<ScriptCommand, String> {
    if let Some(q_src) = line.strip_prefix('?') {
        let q_src = q_src.trim();
        if let Some(fix_src) = q_src.strip_prefix("fix ").or(match q_src {
            "fix" => Some(""),
            _ => None,
        }) {
            return parse_fix(fix_src, lineno, source, interner);
        }
        let q = parse_query(q_src).map_err(|e| format!("{source}:{}: query: {e}", lineno + 1))?;
        return Ok(ScriptCommand::Query(q));
    }
    if let Some(rest) = line.strip_prefix('!') {
        if rest.contains('@') {
            return Err(format!(
                "{source}: line {}: the delete form `!R(…)` takes no `@ weight`",
                lineno + 1
            ));
        }
        let (fact, _) = hq_db::text::parse_fact_line(rest.trim(), lineno + 1, interner)
            .map_err(|e| format!("{source}: {e}"))?;
        return Ok(ScriptCommand::Update(fact, UpdateAction::Delete));
    }
    let (fact, weight) = hq_db::text::parse_fact_line(line, lineno + 1, interner)
        .map_err(|e| format!("{source}: {e}"))?;
    Ok(ScriptCommand::Update(
        fact,
        UpdateAction::Weight(weight.unwrap_or(1.0)),
    ))
}

/// Parses the operand list of a `? fix` command: a relation name and
/// up to two endpoint values (`_` is the any-endpoint wildcard;
/// integer tokens parse as [`Value::Int`], anything else interns as a
/// string value).
fn parse_fix(
    rest: &str,
    lineno: usize,
    source: &str,
    interner: &mut Interner,
) -> Result<ScriptCommand, String> {
    let mut tokens = rest.split_whitespace();
    let Some(rel) = tokens.next() else {
        return Err(format!(
            "{source}: line {}: `? fix` needs a relation name",
            lineno + 1
        ));
    };
    let mut endpoint = |tok: Option<&str>| -> Option<Value> {
        let tok = tok?;
        if tok == "_" {
            return None;
        }
        Some(match tok.parse::<i64>() {
            Ok(n) => Value::Int(n),
            Err(_) => Value::Str(interner.intern(tok)),
        })
    };
    let src = endpoint(tokens.next());
    let dst = endpoint(tokens.next());
    if tokens.next().is_some() {
        return Err(format!(
            "{source}: line {}: `? fix` takes at most `rel src dst`",
            lineno + 1
        ));
    }
    Ok(ScriptCommand::Fix {
        rel: rel.to_owned(),
        src,
        dst,
    })
}

/// Parses a whole script text: comments stripped, blank lines skipped,
/// one [`ScriptCommand`] per remaining line.
///
/// # Errors
/// The first malformed line's [`parse_command`] message.
pub fn parse_script(
    text: &str,
    source: &str,
    interner: &mut Interner,
) -> Result<Vec<ScriptCommand>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let Some(line) = strip_comment(raw) else {
            continue;
        };
        out.push(parse_command(line, lineno, source, interner)?);
    }
    Ok(out)
}

/// Renders a command back into the line grammar. `render_command` and
/// [`parse_command`] round-trip: weights use `f64`'s shortest exact
/// display form, facts resolve their symbols through `interner`.
pub fn render_command(cmd: &ScriptCommand, interner: &Interner) -> String {
    match cmd {
        ScriptCommand::Query(q) => format!("? {q}"),
        ScriptCommand::Fix { rel, src, dst } => {
            let mut out = format!("? fix {rel}");
            // `_` only where a later operand forces the position.
            match (src, dst) {
                (None, None) => {}
                (Some(s), None) => out = format!("{out} {}", s.display(interner)),
                (None, Some(d)) => out = format!("{out} _ {}", d.display(interner)),
                (Some(s), Some(d)) => {
                    out = format!("{out} {} {}", s.display(interner), d.display(interner));
                }
            }
            out
        }
        ScriptCommand::Update(fact, UpdateAction::Delete) => {
            format!("!{}", fact.display(interner))
        }
        ScriptCommand::Update(fact, UpdateAction::Weight(w)) => {
            format!("{} @ {w}", fact.display(interner))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_db::{Tuple, Value};

    #[test]
    fn comments_and_blanks_are_stripped() {
        assert_eq!(strip_comment("  # all comment"), None);
        assert_eq!(strip_comment("   "), None);
        assert_eq!(strip_comment("R(1) @ 0.5 # trailing"), Some("R(1) @ 0.5"));
    }

    #[test]
    fn grammar_round_trips_through_render() {
        let mut i = Interner::new();
        let text = "? Q() :- E(X,Y)\nE(1, alice) @ 0.25\n!E(2, bob)\nE(3)\n";
        let script = parse_script(text, "test", &mut i).unwrap();
        assert_eq!(script.len(), 4);
        let rendered: Vec<String> = script.iter().map(|c| render_command(c, &i)).collect();
        assert_eq!(rendered[0], "? Q() :- E(X, Y)");
        assert_eq!(rendered[1], "E(1, alice) @ 0.25");
        assert_eq!(rendered[2], "!E(2, bob)");
        assert_eq!(rendered[3], "E(3) @ 1");
        // Re-parsing the rendered forms yields the same commands.
        for (cmd, line) in script.iter().zip(&rendered) {
            let again = parse_command(line, 0, "test", &mut i).unwrap();
            match (cmd, &again) {
                (ScriptCommand::Query(a), ScriptCommand::Query(b)) => {
                    assert_eq!(a.to_string(), b.to_string());
                }
                (ScriptCommand::Update(fa, aa), ScriptCommand::Update(fb, ab)) => {
                    assert_eq!(fa, fb);
                    assert_eq!(aa, ab);
                }
                _ => panic!("command kind changed across the round trip"),
            }
        }
    }

    #[test]
    fn fix_commands_round_trip() {
        let mut i = Interner::new();
        for line in [
            "? fix E",
            "? fix E 1",
            "? fix E 1 4",
            "? fix E _ 4",
            "? fix E alice _",
        ] {
            let cmd = parse_command(line, 0, "t", &mut i).unwrap();
            let rendered = render_command(&cmd, &i);
            let again = parse_command(&rendered, 0, "t", &mut i).unwrap();
            let (
                ScriptCommand::Fix { rel, src, dst },
                ScriptCommand::Fix {
                    rel: r2,
                    src: s2,
                    dst: d2,
                },
            ) = (&cmd, &again)
            else {
                panic!("expected fix commands");
            };
            assert_eq!((rel, src, dst), (r2, s2, d2), "{line} → {rendered}");
        }
        // A trailing-wildcard render drops the `_`.
        let cmd = parse_command("? fix E alice _", 0, "t", &mut i).unwrap();
        assert_eq!(render_command(&cmd, &i), "? fix E alice");
    }

    #[test]
    fn fix_command_operands_are_validated() {
        let mut i = Interner::new();
        let err = parse_command("? fix", 2, "s", &mut i).unwrap_err();
        assert!(err.contains("needs a relation name"), "{err}");
        let err = parse_command("? fix E 1 2 3", 0, "s", &mut i).unwrap_err();
        assert!(err.contains("at most"), "{err}");
    }

    #[test]
    fn delete_with_weight_is_rejected() {
        let mut i = Interner::new();
        let err = parse_command("!E(1) @ 0.5", 4, "s.txt", &mut i).unwrap_err();
        assert!(err.contains("line 5"), "{err}");
        assert!(err.contains("takes no `@ weight`"), "{err}");
    }

    #[test]
    fn string_values_resolve_through_the_interner() {
        let mut i = Interner::new();
        let cmd = parse_command("E(alice, 7)", 0, "s", &mut i).unwrap();
        let ScriptCommand::Update(fact, UpdateAction::Weight(w)) = cmd else {
            panic!("expected an upsert");
        };
        assert_eq!(w, 1.0);
        assert_eq!(fact.tuple.get(1), Value::int(7));
        assert_eq!(fact.tuple, {
            let a = i.intern("alice");
            Tuple::from(vec![Value::Str(a), Value::int(7)])
        });
    }
}
