//! Incremental update serving scales with the dirty set, not `|D|`.
//!
//! Measures single-update and batched-update latency of the maintained
//! [`IncrementalRun`] pipeline against `|D|` and batch size, on the
//! map, columnar and sharded backends, with a fresh-full-evaluation
//! row as the baseline the incremental path must beat. Emits
//! `BENCH_incremental_scaling.json` in the same machine-readable
//! format as the other benches (skipped under CI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hq_bench::{
    chain_tid, smoke_mode, thread_sweep, write_bench_summary, SummaryEntry, TidWorkload,
};
use hq_db::Fact;
use hq_unify::{pqe, Backend, IncrementalPqe, Parallelism};
use std::time::Duration;

/// A deterministic stream of (fact, probability) updates cycling over
/// the workload's facts with drifting probabilities.
fn update_stream(w: &TidWorkload, len: usize) -> Vec<(Fact, f64)> {
    (0..len)
        .map(|j| {
            let (f, _) = &w.tid[(j * 7919) % w.tid.len()];
            (f.clone(), 0.05 + 0.9 * ((j % 89) as f64) / 89.0)
        })
        .collect()
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let sizes: &[usize] = if smoke_mode() {
        &[1_000]
    } else {
        &[1_000, 4_000]
    };
    for &n in sizes {
        let w = chain_tid(n, 31);
        let updates = update_stream(&w, 1024);
        group.throughput(Throughput::Elements(1));
        let mut map_run = IncrementalPqe::new(&w.query, &w.interner, &w.tid).unwrap();
        let mut j = 0usize;
        group.bench_with_input(BenchmarkId::new("single_map", w.tid.len()), &(), |b, ()| {
            b.iter(|| {
                let (f, p) = &updates[j % updates.len()];
                j += 1;
                map_run.update(&w.interner, f, *p).unwrap()
            })
        });
        let mut col_run = IncrementalPqe::columnar(&w.query, &w.interner, &w.tid).unwrap();
        let mut j = 0usize;
        group.bench_with_input(
            BenchmarkId::new("single_columnar", w.tid.len()),
            &(),
            |b, ()| {
                b.iter(|| {
                    let (f, p) = &updates[j % updates.len()];
                    j += 1;
                    col_run.update(&w.interner, f, *p).unwrap()
                })
            },
        );
        // Baseline: what a non-incremental server pays per update.
        group.bench_with_input(BenchmarkId::new("fresh_eval", w.tid.len()), &w, |b, w| {
            b.iter(|| {
                pqe::probability_on(Backend::Columnar, &w.query, &w.interner, &w.tid).unwrap()
            })
        });
    }
    group.finish();
}

/// The machine-readable summary: per-update latency for single and
/// batched serving at growing `|D|`, per backend, plus the fresh-eval
/// baseline. `threads` carries the worker count of the sharded rows;
/// `speedup_vs_1` within a workload is relative to its first row.
fn bench_incremental_summary(_c: &mut Criterion) {
    println!("\n== incremental_scaling (per-update latency)");
    let mut entries: Vec<SummaryEntry> = Vec::new();
    let iters = 60usize;
    let sizes: &[usize] = if smoke_mode() {
        &[1_000]
    } else {
        &[1_000, 4_000, 16_000]
    };
    for &n in sizes {
        let w = chain_tid(n, 31);
        let updates = update_stream(&w, 4096);
        let d = w.tid.len();
        // Single-update latency per backend (map / columnar / sharded-max).
        let mut map_run = IncrementalPqe::new(&w.query, &w.interner, &w.tid).unwrap();
        let mut j = 0usize;
        entries.extend(thread_sweep(
            &format!("single_map_{d}"),
            &[1],
            iters,
            |_| {
                let (f, p) = &updates[j % updates.len()];
                j += 1;
                map_run.update(&w.interner, f, *p).unwrap()
            },
        ));
        let mut col_run = IncrementalPqe::columnar(&w.query, &w.interner, &w.tid).unwrap();
        let mut j = 0usize;
        entries.extend(thread_sweep(
            &format!("single_columnar_{d}"),
            &[1],
            iters,
            |_| {
                let (f, p) = &updates[j % updates.len()];
                j += 1;
                col_run.update(&w.interner, f, *p).unwrap()
            },
        ));
        let max = Parallelism::available();
        let mut sh_run = IncrementalPqe::sharded(&w.query, &w.interner, &w.tid, max).unwrap();
        let mut j = 0usize;
        entries.extend(thread_sweep(
            &format!("single_sharded_{d}"),
            &[max.threads],
            iters,
            |_| {
                let (f, p) = &updates[j % updates.len()];
                j += 1;
                sh_run.update(&w.interner, f, *p).unwrap()
            },
        ));
        // Batched serving: per-update cost amortised over one
        // propagation pass per batch.
        for batch in [16usize, 256] {
            let mut run = IncrementalPqe::columnar(&w.query, &w.interner, &w.tid).unwrap();
            let mut j = 0usize;
            let mut sweep = thread_sweep(
                &format!("batch{batch}_columnar_{d}"),
                &[1],
                (iters / batch).max(3),
                |_| {
                    let start = (j * batch) % updates.len().saturating_sub(batch).max(1);
                    j += 1;
                    run.update_batch(&w.interner, &updates[start..start + batch])
                        .unwrap()
                },
            );
            for e in &mut sweep {
                e.mean_ns /= batch as f64; // report per-update cost
            }
            entries.extend(sweep);
        }
        // Insert-heavy batches with novel domain values: the
        // batch-level dictionary extension must pay at most one
        // extension per live relation per batch, strictly beating the
        // per-update serial path (ROADMAP PR 3 follow-up b; asserted,
        // not just timed).
        {
            let batch: Vec<(Fact, f64)> = (0..64)
                .map(|k| {
                    let (f, _) = &w.tid[k % w.tid.len()];
                    let novel = 1_000_000 + (n as i64) * 10 + k as i64;
                    (
                        Fact::new(f.rel, hq_db::Tuple::ints(&[novel, novel + 1])),
                        0.4,
                    )
                })
                .collect();
            let mut batched = IncrementalPqe::columnar(&w.query, &w.interner, &w.tid).unwrap();
            batched.update_batch(&w.interner, &batch).unwrap();
            let batched_ext = batched.run().last_update_stats().dict_extensions;
            let mut serial = IncrementalPqe::columnar(&w.query, &w.interner, &w.tid).unwrap();
            let mut serial_ext = 0usize;
            for (f, p) in &batch {
                serial.update(&w.interner, f, *p).unwrap();
                serial_ext += serial.run().last_update_stats().dict_extensions;
            }
            assert!(
                batched_ext < serial_ext,
                "batch-level dictionary extension must beat per-set extension \
                 at |D| = {d}: {batched_ext} vs {serial_ext}"
            );
            assert_eq!(
                batched.probability().to_bits(),
                serial.probability().to_bits(),
                "amortised extension changed the result at |D| = {d}"
            );
            println!(
                "novel-value batch of {}: {} dictionary extensions batched vs {} serial",
                batch.len(),
                batched_ext,
                serial_ext
            );
        }
        // Baseline: a fresh full evaluation per update.
        entries.extend(thread_sweep(&format!("fresh_eval_{d}"), &[1], 5, |_| {
            pqe::probability_on(Backend::Columnar, &w.query, &w.interner, &w.tid).unwrap()
        }));
        // Sanity: the maintained runs agree with a fresh evaluation of
        // their drifted state bit for bit (map vs columnar vs sharded
        // ran the same update sequence).
        assert_eq!(
            map_run.probability().to_bits(),
            col_run.probability().to_bits(),
            "map and columnar maintained runs diverged at |D| = {d}"
        );
        assert_eq!(
            col_run.probability().to_bits(),
            sh_run.probability().to_bits(),
            "sequential and sharded maintained runs diverged at |D| = {d}"
        );
    }
    let path = write_bench_summary("incremental_scaling", &entries).expect("summary written");
    println!("summary: {path}");
}

criterion_group!(benches, bench_incremental, bench_incremental_summary);
criterion_main!(benches);
