//! Multi-query serving: shared plan cache vs independent evaluation.
//!
//! Serves a batch of N overlapping queries over one database through a
//! [`ServingSession`] (common sub-plans evaluated once, cache kept
//! warm across updates) and against the independent baseline (one
//! `evaluate_encoded` per query; encoding rebuilt when the database
//! changes). Measured with and without interleaved single-fact
//! updates, at growing `|D|`. Emits `BENCH_serving.json` in the same
//! machine-readable format as the other benches (skipped under CI).
//!
//! Bit-identity is asserted in-bench: every served probability must
//! equal its independent evaluation bit for bit, and the session must
//! execute strictly fewer monoid ops than the independent total.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hq_bench::{
    chain_tid, smoke_mode, thread_sweep, write_bench_summary, SummaryEntry, TidWorkload,
};
use hq_db::{Database, Fact};
use hq_monoid::ProbMonoid;
use hq_query::{parse_query, Query};
use hq_unify::{evaluate_encoded, ColumnarRelation, EncodedDb, Parallelism, ServingSession};

/// The overlapping query batch: the chain query, its two single-atom
/// sub-queries, and the chain query again (a pure cache hit).
fn query_batch() -> Vec<Query> {
    [
        "Q() :- E(X,Y), F(Y,Z)",
        "Q() :- E(X,Y)",
        "Q() :- F(Y,Z)",
        "Q() :- E(X,Y), F(Y,Z)",
    ]
    .iter()
    .map(|s| parse_query(s).unwrap())
    .collect()
}

/// Database + fresh encoding for the independent baseline.
fn build_encoded(w: &TidWorkload) -> (Database, EncodedDb) {
    let mut db = Database::new();
    for (f, _) in &w.tid {
        db.insert(f.clone());
    }
    let enc = EncodedDb::new(&db);
    (db, enc)
}

fn independent_eval(
    w: &TidWorkload,
    db: &Database,
    enc: &EncodedDb,
    ann: &std::collections::BTreeMap<Fact, f64>,
    queries: &[Query],
) -> Vec<f64> {
    queries
        .iter()
        .map(|q| {
            evaluate_encoded(
                Parallelism::default(),
                &ProbMonoid,
                q,
                &w.interner,
                db,
                enc,
                |sym, t| ann[&Fact::new(sym, t.clone())],
            )
            .unwrap()
            .0
        })
        .collect()
}

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_scaling");
    group.sample_size(10);
    let w = chain_tid(1_000, 17);
    let queries = query_batch();
    let ann: std::collections::BTreeMap<Fact, f64> = w.tid.iter().cloned().collect();
    let (db, enc) = build_encoded(&w);
    group.bench_function(BenchmarkId::new("independent_4q", w.tid.len()), |b| {
        b.iter(|| independent_eval(&w, &db, &enc, &ann, &queries))
    });
    let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
        ServingSession::new(ProbMonoid, &w.interner, w.tid.iter().cloned()).unwrap();
    group.bench_function(BenchmarkId::new("shared_4q", w.tid.len()), |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| session.query(&w.interner, q).unwrap().0)
                .collect::<Vec<f64>>()
        })
    });
    group.finish();
}

fn bench_serving_summary(_c: &mut Criterion) {
    println!("\n== serving_scaling (N=4 overlapping queries per iteration)");
    let mut entries: Vec<SummaryEntry> = Vec::new();
    let queries = query_batch();
    let sizes: &[usize] = if smoke_mode() {
        &[1_000]
    } else {
        &[1_000, 4_000, 16_000]
    };
    for &n in sizes {
        let w = chain_tid(n, 17);
        let d = w.tid.len();
        let ann: std::collections::BTreeMap<Fact, f64> = w.tid.iter().cloned().collect();
        let iters = 12usize;
        // --- Query-only serving: warm cache vs per-query evaluation.
        let (db, enc) = build_encoded(&w);
        let mut independent_vals = Vec::new();
        entries.extend(thread_sweep(
            &format!("independent_4q_{d}"),
            &[1],
            iters,
            |_| {
                independent_vals = independent_eval(&w, &db, &enc, &ann, &queries);
            },
        ));
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &w.interner, w.tid.iter().cloned()).unwrap();
        let mut shared_vals = Vec::new();
        entries.extend(thread_sweep(&format!("shared_4q_{d}"), &[1], iters, |_| {
            shared_vals = queries
                .iter()
                .map(|q| session.query(&w.interner, q).unwrap().0)
                .collect::<Vec<f64>>();
        }));
        for (s, i) in shared_vals.iter().zip(&independent_vals) {
            assert_eq!(s.to_bits(), i.to_bits(), "serving diverged at |D| = {d}");
        }
        // --- Interleaved updates: the session delta-patches its
        // caches; the independent baseline must rebuild its encoding.
        let updates: Vec<(Fact, f64)> = (0..iters + 1)
            .map(|j| {
                let (f, _) = &w.tid[(j * 7919) % w.tid.len()];
                (f.clone(), 0.05 + 0.9 * ((j % 89) as f64) / 89.0)
            })
            .collect();
        let mut j = 0usize;
        let mut upd_db = db.clone();
        let mut upd_ann = ann.clone();
        entries.extend(thread_sweep(
            &format!("independent_upd_4q_{d}"),
            &[1],
            (iters / 2).max(3),
            |_| {
                let (f, p) = &updates[j % updates.len()];
                j += 1;
                upd_db.insert(f.clone());
                upd_ann.insert(f.clone(), *p);
                let enc = EncodedDb::new(&upd_db); // snapshot invalidated: rebuild
                independent_vals = independent_eval(&w, &upd_db, &enc, &upd_ann, &queries);
            },
        ));
        let mut j = 0usize;
        entries.extend(thread_sweep(
            &format!("shared_upd_4q_{d}"),
            &[1],
            (iters / 2).max(3),
            |_| {
                let (f, p) = &updates[j % updates.len()];
                j += 1;
                session.update(&w.interner, f, *p).unwrap();
                shared_vals = queries
                    .iter()
                    .map(|q| session.query(&w.interner, q).unwrap().0)
                    .collect::<Vec<f64>>();
            },
        ));
        // Replay the same update stream on the baseline state so the
        // final comparison sees identical databases.
        for (s, i) in shared_vals.iter().zip(&independent_vals) {
            assert_eq!(
                s.to_bits(),
                i.to_bits(),
                "serving diverged after updates at |D| = {d}"
            );
        }
        // --- Delta-patching vs drop-and-rebuild: the same interleaved
        // update/query stream served by a session that patches cached
        // intermediates in place (the default) and by one that drops
        // every dirty intermediate (`patch_fraction = 0`, the old
        // behaviour). Patched must execute strictly fewer monoid ops
        // and stay bit-identical.
        let mut patched: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &w.interner, w.tid.iter().cloned()).unwrap();
        let mut rebuild: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &w.interner, w.tid.iter().cloned()).unwrap();
        rebuild.set_patch_fraction(0.0);
        let mut patched_vals = Vec::new();
        let mut rebuild_vals = Vec::new();
        let mut j = 0usize;
        entries.extend(thread_sweep(
            &format!("patched_upd_4q_{d}"),
            &[1],
            (iters / 2).max(3),
            |_| {
                let (f, p) = &updates[j % updates.len()];
                j += 1;
                patched.update(&w.interner, f, *p).unwrap();
                patched_vals = queries
                    .iter()
                    .map(|q| patched.query(&w.interner, q).unwrap().0)
                    .collect::<Vec<f64>>();
            },
        ));
        let mut j = 0usize;
        entries.extend(thread_sweep(
            &format!("rebuild_upd_4q_{d}"),
            &[1],
            (iters / 2).max(3),
            |_| {
                let (f, p) = &updates[j % updates.len()];
                j += 1;
                rebuild.update(&w.interner, f, *p).unwrap();
                rebuild_vals = queries
                    .iter()
                    .map(|q| rebuild.query(&w.interner, q).unwrap().0)
                    .collect::<Vec<f64>>();
            },
        ));
        for (p, r) in patched_vals.iter().zip(&rebuild_vals) {
            assert_eq!(
                p.to_bits(),
                r.to_bits(),
                "patched serving diverged from rebuild at |D| = {d}"
            );
        }
        assert!(
            patched.ops_performed() < rebuild.ops_performed(),
            "delta-patching must execute strictly fewer monoid ops than \
             drop-and-rebuild at |D| = {d}: {} vs {}",
            patched.ops_performed(),
            rebuild.ops_performed()
        );
        // The acceptance bar, asserted on real workloads: sharing must
        // execute strictly fewer monoid ops than independent totals.
        let mut probe: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &w.interner, w.tid.iter().cloned()).unwrap();
        let mut reported = 0u64;
        for q in &queries {
            reported += probe.query(&w.interner, q).unwrap().1.total_ops();
        }
        assert!(
            probe.ops_performed() < reported,
            "shared serving must beat independent ops at |D| = {d}: {} vs {}",
            probe.ops_performed(),
            reported
        );
    }
    let path = write_bench_summary("serving", &entries).expect("summary written");
    println!("summary: {path}");
}

criterion_group!(benches, bench_serving, bench_serving_summary);
criterion_main!(benches);
