//! Multi-tenant serving throughput: queries/sec vs concurrent client
//! count over one shared [`hq_unify::Server`].
//!
//! Two variants at growing `|D|`:
//!
//! * **warm-cache** — N clients replay the overlapping query batch
//!   against a fully materialised shared cache (every evaluation is a
//!   zero-op replay; throughput measures the concurrent read path);
//! * **update-interleaved** — the same N clients evaluate against
//!   pinned epochs while a writer publishes a drift batch per round
//!   (snapshot isolation keeps every answer deterministic).
//!
//! For each client count c the `serialised_*` baseline performs the
//! same total work on one thread through c sessions taken in turn.
//! Emits `BENCH_server_throughput.json` keyed by client count (the
//! `threads` field). Bit-identity is asserted in-bench: every reply,
//! concurrent or serial, pinned or current, must equal its serial
//! oracle bit for bit — and the persistent pool must spawn **zero**
//! threads per request after warmup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hq_bench::{
    chain_tid, host_threads, smoke_mode, thread_sweep, write_bench_summary, SummaryEntry,
    TidWorkload,
};
use hq_db::Fact;
use hq_monoid::ProbMonoid;
use hq_query::{parse_query, Query};
use hq_unify::{ColumnarRelation, Parallelism, Server, ServingSession};
use std::collections::BTreeMap;

/// Concurrent client counts — the `threads` axis of the summary.
const CLIENTS: [usize; 4] = [1, 2, 4, 8];

/// The overlapping query batch every client serves per round.
fn query_batch() -> Vec<Query> {
    [
        "Q() :- E(X,Y), F(Y,Z)",
        "Q() :- E(X,Y)",
        "Q() :- F(Y,Z)",
        "Q() :- E(X,Y), F(Y,Z)",
    ]
    .iter()
    .map(|s| parse_query(s).unwrap())
    .collect()
}

/// Serial oracle: the expected bits for every query at one state.
fn oracle_bits(w: &TidWorkload, state: &BTreeMap<Fact, f64>, queries: &[Query]) -> Vec<u64> {
    let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> = ServingSession::new(
        ProbMonoid,
        &w.interner,
        state.iter().map(|(f, p)| (f.clone(), *p)),
    )
    .unwrap();
    queries
        .iter()
        .map(|q| session.query(&w.interner, q).unwrap().0.to_bits())
        .collect()
}

/// One concurrent round: `c` pinned reader sessions each serve the
/// whole batch on their own thread; every reply must match `expect`.
fn concurrent_round(
    server: &Server<ProbMonoid, ColumnarRelation<f64>>,
    w: &TidWorkload,
    queries: &[Query],
    expect: &[u64],
    c: usize,
    reps: usize,
) {
    let mut sessions: Vec<_> = (0..c)
        .map(|_| {
            let mut s = server.session();
            s.pin();
            s
        })
        .collect();
    std::thread::scope(|scope| {
        for session in &mut sessions {
            scope.spawn(move || {
                for _ in 0..reps {
                    for (q, want) in queries.iter().zip(expect.iter()) {
                        let (got, _) = session.query(&w.interner, q).unwrap();
                        assert_eq!(got.to_bits(), *want, "concurrent reply diverged on {q}");
                    }
                }
            });
        }
    });
}

/// The serialised baseline: the same `c × |queries|` evaluations on
/// one thread, through `c` distinct sessions taken in turn.
fn serial_round(
    server: &Server<ProbMonoid, ColumnarRelation<f64>>,
    w: &TidWorkload,
    queries: &[Query],
    expect: &[u64],
    c: usize,
    reps: usize,
) {
    let mut sessions: Vec<_> = (0..c)
        .map(|_| {
            let mut s = server.session();
            s.pin();
            s
        })
        .collect();
    for session in &mut sessions {
        for _ in 0..reps {
            for (q, want) in queries.iter().zip(expect.iter()) {
                let (got, _) = session.query(&w.interner, q).unwrap();
                assert_eq!(got.to_bits(), *want, "serial reply diverged on {q}");
            }
        }
    }
}

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(10);
    let w = chain_tid(1_000, 17);
    let queries = query_batch();
    let state: BTreeMap<Fact, f64> = w.tid.iter().cloned().collect();
    let expect = oracle_bits(&w, &state, &queries);
    let server: Server<ProbMonoid, ColumnarRelation<f64>> =
        Server::new(ProbMonoid, &w.interner, w.tid.iter().cloned()).unwrap();
    server.session().query(&w.interner, &queries[0]).unwrap();
    for c_n in [1usize, 4] {
        group.bench_function(BenchmarkId::new("warm_concurrent", c_n), |b| {
            b.iter(|| concurrent_round(&server, &w, &queries, &expect, c_n, 8))
        });
        group.bench_function(BenchmarkId::new("warm_serialised", c_n), |b| {
            b.iter(|| serial_round(&server, &w, &queries, &expect, c_n, 8))
        });
    }
    group.finish();
}

fn bench_server_summary(_c: &mut Criterion) {
    println!("\n== server_throughput (4 queries per client per round)");
    let mut entries: Vec<SummaryEntry> = Vec::new();
    let queries = query_batch();
    let sizes: &[usize] = if smoke_mode() {
        &[1_000]
    } else {
        &[1_000, 4_000]
    };
    let iters = if smoke_mode() { 3 } else { 8 };
    // Repetitions of the query batch per client per measured round:
    // enough work per scoped thread that spawn overhead cannot mask
    // the concurrency win the acceptance assertion looks for.
    let reps = if smoke_mode() { 4 } else { 64 };
    let mut warm_at_largest: Vec<(usize, f64, f64)> = Vec::new(); // (c, concurrent, serial)
    for (si, &n) in sizes.iter().enumerate() {
        let w = chain_tid(n, 17);
        let d = w.tid.len();
        let state: BTreeMap<Fact, f64> = w.tid.iter().cloned().collect();
        let expect = oracle_bits(&w, &state, &queries);
        // The server warms the persistent pool at construction; after
        // the first query materialises the shared nodes, no request —
        // concurrent or not — may spawn a pool thread.
        let server: Server<ProbMonoid, ColumnarRelation<f64>> = Server::with_parallelism(
            ProbMonoid,
            &w.interner,
            w.tid.iter().cloned(),
            Parallelism::default(),
        )
        .unwrap();
        server.session().query(&w.interner, &queries[0]).unwrap();
        let spawned = hq_unify::pool::spawn_count();

        // --- Warm cache: replays only.
        for &c in &CLIENTS {
            let conc = thread_sweep(&format!("warm_concurrent_{d}"), &[c], iters, |_| {
                concurrent_round(&server, &w, &queries, &expect, c, reps);
            });
            let ser = thread_sweep(&format!("warm_serialised_{d}"), &[c], iters, |_| {
                serial_round(&server, &w, &queries, &expect, c, reps);
            });
            if si + 1 == sizes.len() {
                warm_at_largest.push((c, conc[0].mean_ns, ser[0].mean_ns));
            }
            entries.extend(conc);
            entries.extend(ser);
        }

        // --- Update-interleaved: pinned readers race a writer that
        // publishes one drift batch per measured round. Oracles are
        // precomputed per epoch, so every pinned reply is still
        // checked bit-for-bit.
        // `mean_ns` runs one warmup call plus `iters` measured calls
        // per sweep entry; the +8 is slack so the oracle table can
        // never run out ahead of the epoch counter.
        let rounds = (iters + 1) * CLIENTS.len() + 8;
        let mut model = state.clone();
        let mut epoch_expect: Vec<Vec<u64>> = vec![expect.clone()];
        let batches: Vec<Vec<(Fact, f64)>> = (0..rounds)
            .map(|j| {
                let (f, _) = &w.tid[(j * 7919) % w.tid.len()];
                let p = 0.05 + 0.9 * ((j % 89) as f64) / 89.0;
                vec![(f.clone(), p)]
            })
            .collect();
        for b in &batches {
            for (f, p) in b {
                model.insert(f.clone(), *p);
            }
            epoch_expect.push(oracle_bits(&w, &model, &queries));
        }
        let upd_server: Server<ProbMonoid, ColumnarRelation<f64>> =
            Server::new(ProbMonoid, &w.interner, w.tid.iter().cloned()).unwrap();
        upd_server
            .session()
            .query(&w.interner, &queries[0])
            .unwrap();
        let mut round = 0usize;
        for &c in &CLIENTS {
            entries.extend(thread_sweep(
                &format!("upd_concurrent_{d}"),
                &[c],
                iters,
                |_| {
                    let (w, queries) = (&w, &queries);
                    let expect = &epoch_expect[upd_server.current_epoch() as usize];
                    let batch = &batches[round % batches.len()];
                    round += 1;
                    let mut sessions: Vec<_> = (0..c)
                        .map(|_| {
                            let mut s = upd_server.session();
                            s.pin();
                            s
                        })
                        .collect();
                    std::thread::scope(|scope| {
                        for session in &mut sessions {
                            let expect = &expect;
                            scope.spawn(move || {
                                for _ in 0..reps {
                                    for (q, want) in queries.iter().zip(expect.iter()) {
                                        let (got, _) = session.query(&w.interner, q).unwrap();
                                        assert_eq!(
                                            got.to_bits(),
                                            *want,
                                            "pinned reply diverged on {q}"
                                        );
                                    }
                                }
                            });
                        }
                        scope.spawn(|| {
                            upd_server.update_batch(&w.interner, batch).unwrap();
                        });
                    });
                },
            ));
        }
        assert_eq!(
            hq_unify::pool::spawn_count(),
            spawned,
            "serving spawned pool threads per request at |D| = {d}"
        );
    }
    // The acceptance bar: on a host with real parallelism, concurrent
    // readers must beat the serialised baseline at the largest size
    // for the widest client count the host can actually run.
    if !smoke_mode() && host_threads() >= 4 {
        let (c, conc, ser) = warm_at_largest
            .iter()
            .filter(|(c, _, _)| *c <= host_threads())
            .max_by_key(|(c, _, _)| *c)
            .copied()
            .expect("at least one client count measured");
        assert!(
            conc < ser,
            "{c} concurrent readers did not beat the serialised baseline: \
             {conc:.0} ns vs {ser:.0} ns"
        );
    }
    let path = write_bench_summary("server_throughput", &entries).expect("summary written");
    println!("summary: {path}");
}

criterion_group!(benches, bench_server, bench_server_summary);
criterion_main!(benches);
