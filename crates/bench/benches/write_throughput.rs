//! Group-commit write throughput: updates/sec vs concurrent writer
//! count over one shared [`hq_unify::Server`].
//!
//! Two variants at growing `|D|` for each writer count c ∈ {1,2,4,8}:
//!
//! * **grouped** — c writer threads each submit their batches through
//!   [`Server::commit_batch`], so concurrent submissions coalesce into
//!   shared group commits (one delta-patch/refold pass and one epoch
//!   publish per group);
//! * **serialised** — the same batches applied one at a time on one
//!   thread, one commit per batch (the pre-group-commit write path).
//!
//! Writers own disjoint fact subsets during the throughput rounds, so
//! the final state is deterministic no matter how the scheduler groups
//! the submissions; after every sweep the served answer is asserted
//! bit-identical to a fresh evaluation of the model state.
//!
//! A separate deterministic **overlap** section submits k batches that
//! all touch the same facts, flushes them as one group, and asserts the
//! pipeline's reason to exist: grouped commit publishes **strictly
//! fewer epochs** and performs **strictly fewer monoid ops** than
//! committing the same batches one by one. Those four counters are
//! deterministic and are emitted into `BENCH_write_throughput.json`
//! alongside the wall-clock entries (keyed by writer count in the
//! `threads` field).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hq_bench::{
    chain_tid, host_threads, smoke_mode, thread_sweep, write_bench_summary, SummaryEntry,
    TidWorkload,
};
use hq_db::Fact;
use hq_monoid::ProbMonoid;
use hq_unify::{ColumnarRelation, Server, ServingSession};
use std::collections::BTreeMap;

/// Concurrent writer counts — the `threads` axis of the summary.
const WRITERS: [usize; 4] = [1, 2, 4, 8];

/// Facts per writer batch.
const BATCH: usize = 8;

/// Batches each writer commits per measured round.
const ROUNDS_PER_CALL: usize = 4;

type ProbServer = Server<ProbMonoid, ColumnarRelation<f64>>;

/// The batch writer `i` of `c` commits at `round`: [`BATCH`] facts from
/// the writer's own residue class (disjoint across writers for every
/// `c` dividing `|D|`), with a probability that varies by round so
/// every commit actually dirties the fold.
fn writer_batch(w: &TidWorkload, c: usize, i: usize, round: usize) -> Vec<(Fact, f64)> {
    (0..BATCH)
        .map(|j| {
            let (f, _) = &w.tid[(i + j * c) % w.tid.len()];
            let p = 0.05 + 0.9 * (((round * 131 + i * 17 + j * 7) % 97) as f64) / 97.0;
            (f.clone(), p)
        })
        .collect()
}

/// Serial oracle: the expected answer bits at one model state.
fn oracle_bits(w: &TidWorkload, state: &BTreeMap<Fact, f64>) -> u64 {
    let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> = ServingSession::new(
        ProbMonoid,
        &w.interner,
        state.iter().map(|(f, p)| (f.clone(), *p)),
    )
    .unwrap();
    session.query(&w.interner, &w.query).unwrap().0.to_bits()
}

/// One grouped round: `c` writer threads, each committing
/// `ROUNDS_PER_CALL` of its own batches through the group-commit
/// queue. Within a writer the order is the submission order
/// (`commit_batch` is synchronous); across writers the subsets are
/// disjoint, so the final state is round-deterministic.
fn grouped_round(server: &ProbServer, w: &TidWorkload, c: usize, base_round: usize) {
    std::thread::scope(|scope| {
        for i in 0..c {
            scope.spawn(move || {
                for b in 0..ROUNDS_PER_CALL {
                    let batch = writer_batch(w, c, i, base_round + b);
                    server.commit_batch(&w.interner, &batch).unwrap();
                }
            });
        }
    });
}

/// The serialised baseline: the same `c × ROUNDS_PER_CALL` batches
/// applied one at a time on one thread — one commit per batch.
fn serial_round(server: &ProbServer, w: &TidWorkload, c: usize, base_round: usize) {
    for b in 0..ROUNDS_PER_CALL {
        for i in 0..c {
            let batch = writer_batch(w, c, i, base_round + b);
            server.update_batch(&w.interner, &batch).unwrap();
        }
    }
}

/// Folds the round's batches into the model (last write per fact wins;
/// writer subsets are disjoint, so application order is immaterial).
fn apply_round(model: &mut BTreeMap<Fact, f64>, w: &TidWorkload, c: usize, base_round: usize) {
    for b in 0..ROUNDS_PER_CALL {
        for i in 0..c {
            for (f, p) in writer_batch(w, c, i, base_round + b) {
                model.insert(f, p);
            }
        }
    }
}

/// The served answer must be bit-identical to fresh evaluation of the
/// model state, however the scheduler grouped the commits.
fn assert_state(server: &ProbServer, w: &TidWorkload, model: &BTreeMap<Fact, f64>, label: &str) {
    let s = server.session();
    let (got, _) = s.query(&w.interner, &w.query).unwrap();
    assert_eq!(
        got.to_bits(),
        oracle_bits(w, model),
        "{label}: served answer diverged from the fresh oracle"
    );
}

/// The overlap acceptance check: `k` batches all touching the same
/// facts, committed as one group vs one by one. Returns
/// `(grouped_epochs, serial_epochs, grouped_ops, serial_ops)` —
/// deterministic counters, asserted strictly ordered.
fn grouped_vs_serial_overlap(w: &TidWorkload, k: usize) -> (u64, u64, u64, u64) {
    let facts: Vec<Fact> = w.tid.iter().take(4).map(|(f, _)| f.clone()).collect();
    let batches: Vec<Vec<(Fact, f64)>> = (0..k)
        .map(|j| {
            facts
                .iter()
                .map(|f| (f.clone(), 0.1 + 0.8 * (j as f64) / (k as f64)))
                .collect()
        })
        .collect();

    let build = || -> ProbServer {
        let server = Server::new(ProbMonoid, &w.interner, w.tid.iter().cloned()).unwrap();
        // Materialise the plan so every commit below pays the real
        // delta-patch/refold cost the counters compare.
        server.session().query(&w.interner, &w.query).unwrap();
        server
    };

    // Grouped: enqueue all k batches, then flush them as one group.
    let grouped = build();
    let (epoch0, ops0) = (grouped.current_epoch(), grouped.writer_ops_performed());
    let tickets: Vec<_> = batches
        .iter()
        .map(|b| grouped.submit_batch(&w.interner, b).unwrap())
        .collect();
    assert_eq!(grouped.flush_writes(&w.interner), k, "all batches flushed");
    for t in tickets {
        let receipt = t.wait(&w.interner).unwrap();
        assert_eq!(receipt.group_batches, k, "every ticket saw the whole group");
        assert_eq!(receipt.epoch, epoch0 + 1, "one shared epoch per group");
    }
    let grouped_epochs = grouped.current_epoch() - epoch0;
    let grouped_ops = grouped.writer_ops_performed() - ops0;

    // Serialised: the same batches, one commit each.
    let serial = build();
    let (epoch0, ops0) = (serial.current_epoch(), serial.writer_ops_performed());
    for b in &batches {
        serial.update_batch(&w.interner, b).unwrap();
    }
    let serial_epochs = serial.current_epoch() - epoch0;
    let serial_ops = serial.writer_ops_performed() - ops0;

    assert!(
        grouped_epochs < serial_epochs,
        "grouped commit must publish strictly fewer epochs on overlapping \
         batches: {grouped_epochs} vs {serial_epochs}"
    );
    assert!(
        grouped_ops < serial_ops,
        "grouped commit must perform strictly fewer monoid ops on \
         overlapping batches: {grouped_ops} vs {serial_ops}"
    );
    // Both write paths land on the same state, bit for bit.
    let model: BTreeMap<Fact, f64> = w
        .tid
        .iter()
        .cloned()
        .chain(batches.last().unwrap().iter().cloned())
        .collect();
    assert_state(&grouped, w, &model, "overlap grouped");
    assert_state(&serial, w, &model, "overlap serialised");
    (grouped_epochs, serial_epochs, grouped_ops, serial_ops)
}

fn bench_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_throughput");
    group.sample_size(10);
    let w = chain_tid(1_000, 23);
    let grouped = Server::new(ProbMonoid, &w.interner, w.tid.iter().cloned()).unwrap();
    grouped.session().query(&w.interner, &w.query).unwrap();
    let serial: ProbServer = Server::new(ProbMonoid, &w.interner, w.tid.iter().cloned()).unwrap();
    serial.session().query(&w.interner, &w.query).unwrap();
    let mut round = 0usize;
    for c_n in [1usize, 4] {
        group.bench_function(BenchmarkId::new("grouped", c_n), |b| {
            b.iter(|| {
                grouped_round(&grouped, &w, c_n, round);
                round += ROUNDS_PER_CALL;
            })
        });
        group.bench_function(BenchmarkId::new("serialised", c_n), |b| {
            b.iter(|| {
                serial_round(&serial, &w, c_n, round);
                round += ROUNDS_PER_CALL;
            })
        });
    }
    group.finish();
}

fn bench_write_summary(_c: &mut Criterion) {
    println!(
        "\n== write_throughput ({BATCH} facts x {ROUNDS_PER_CALL} batches per writer per round)"
    );
    let mut entries: Vec<SummaryEntry> = Vec::new();
    let sizes: &[usize] = if smoke_mode() {
        &[1_000]
    } else {
        &[1_000, 4_000]
    };
    let iters = if smoke_mode() { 2 } else { 6 };
    for &n in sizes {
        let w = chain_tid(n, 23);
        let d = w.tid.len();
        let grouped: ProbServer =
            Server::new(ProbMonoid, &w.interner, w.tid.iter().cloned()).unwrap();
        grouped.session().query(&w.interner, &w.query).unwrap();
        let serial: ProbServer =
            Server::new(ProbMonoid, &w.interner, w.tid.iter().cloned()).unwrap();
        serial.session().query(&w.interner, &w.query).unwrap();
        let spawned = hq_unify::pool::spawn_count();
        let mut g_model: BTreeMap<Fact, f64> = w.tid.iter().cloned().collect();
        let mut s_model = g_model.clone();
        let (mut g_round, mut s_round) = (0usize, 0usize);
        for &c in &WRITERS {
            entries.extend(thread_sweep(
                &format!("grouped_upd_{d}"),
                &[c],
                iters,
                |_| {
                    grouped_round(&grouped, &w, c, g_round);
                    apply_round(&mut g_model, &w, c, g_round);
                    g_round += ROUNDS_PER_CALL;
                },
            ));
            entries.extend(thread_sweep(
                &format!("serial_upd_{d}"),
                &[c],
                iters,
                |_| {
                    serial_round(&serial, &w, c, s_round);
                    apply_round(&mut s_model, &w, c, s_round);
                    s_round += ROUNDS_PER_CALL;
                },
            ));
            assert_state(&grouped, &w, &g_model, "grouped sweep");
            assert_state(&serial, &w, &s_model, "serialised sweep");
        }
        let ws = grouped.write_stats();
        println!(
            "   |D| = {d}: grouped committed {} batch(es) in {} commit(s), max group {}",
            ws.batches_committed, ws.commits, ws.max_group
        );
        assert_eq!(
            hq_unify::pool::spawn_count(),
            spawned,
            "committing spawned pool threads per request at |D| = {d}"
        );
    }

    // The acceptance bar (always on, smoke included): on overlapping
    // batches, grouped commit must publish strictly fewer epochs and
    // perform strictly fewer monoid ops than per-batch serial commits.
    let w = chain_tid(1_000, 23);
    let k = WRITERS[WRITERS.len() - 1];
    let (ge, se, go, so) = grouped_vs_serial_overlap(&w, k);
    println!("   overlap x{k}: grouped {ge} epoch(s) / {go} ops, serial {se} epoch(s) / {so} ops");
    // Deterministic counters, emitted so the summary itself shows the
    // grouped-vs-serial gap (mean_ns carries the raw count).
    for (workload, count) in [
        ("overlap_grouped_epochs", ge),
        ("overlap_serial_epochs", se),
        ("overlap_grouped_ops", go),
        ("overlap_serial_ops", so),
    ] {
        entries.push(SummaryEntry {
            workload: workload.to_owned(),
            threads: k,
            mean_ns: count as f64,
            speedup_vs_1: 1.0,
            pool_workers: hq_unify::pool::workers(),
            host_threads: host_threads(),
        });
    }
    let path = write_bench_summary("write_throughput", &entries).expect("summary written");
    println!("summary: {path}");
}

criterion_group!(benches, bench_write, bench_write_summary);
criterion_main!(benches);
