//! Recursive fixpoint scaling: semi-naive transitive-closure build per
//! storage backend, and single-edge incremental maintenance against a
//! fresh re-evaluation of the whole fixpoint.
//!
//! The workload is a forest of disjoint 4-edge chains with seeded
//! annotation probabilities, so the closure stays linear in the edge
//! count and the fixpoint scales without a quadratic blow-up; the
//! incremental rounds insert *bridge* edges between chains — pure
//! inserts on previously absent keys, the patchable case. Emits
//! `BENCH_recursive_scaling.json` in the same machine-readable format
//! as the other benches (skipped under CI).
//!
//! Bit-identity is asserted in-bench: every backend layout feeds the
//! kernel identical rows (identical accumulator, stats and total), the
//! sharded serving build returns the kernel's total at every thread
//! count, and the patched run equals the fresh fixpoint over the
//! post-insert edges bit for bit — while performing **strictly fewer**
//! monoid operations and refolding strictly fewer rows (the acceptance
//! bar for incremental maintenance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hq_bench::{smoke_mode, thread_sweep, write_bench_summary, SummaryEntry};
use hq_db::generate::rng;
use hq_db::{Fact, Interner, Tuple};
use hq_monoid::ProbMonoid;
use hq_unify::fixpoint::{
    patch_inserts, transitive_closure, transitive_closure_on, PatchOutcome, StepShape,
};
use hq_unify::{Backend, ColumnarRelation, Parallelism, ServingSession, ShardedColumnar};
use rand::Rng;

const CHAIN_LEN: i64 = 4;

/// `edges / 4` disjoint chains of length 4 with seeded edge
/// probabilities, node ranges spaced so chains never touch.
fn chain_forest(edges: usize, seed: u64) -> Vec<(Tuple, f64)> {
    let chains = (edges as i64) / CHAIN_LEN;
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(edges);
    for c in 0..chains {
        let base = c * (CHAIN_LEN + 2);
        for j in 0..CHAIN_LEN {
            out.push((
                Tuple::ints(&[base + j, base + j + 1]),
                r.gen_range(0.05..0.95),
            ));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// The `i`-th distinct bridge edge: chain `2i`'s last node into chain
/// `2i+1`'s first node — always a pure insert on an absent key.
fn bridge(i: i64) -> (Tuple, f64) {
    let from = (2 * i) * (CHAIN_LEN + 2) + CHAIN_LEN;
    let to = (2 * i + 1) * (CHAIN_LEN + 2);
    (Tuple::ints(&[from, to]), 0.25)
}

fn bench_recursive(c: &mut Criterion) {
    let mut group = c.benchmark_group("recursive_scaling");
    group.sample_size(10);
    let edges = chain_forest(2_048, 23);
    group.bench_function(BenchmarkId::new("fix_build_map", edges.len()), |b| {
        b.iter(|| transitive_closure(&ProbMonoid, &edges).unwrap())
    });
    let run = transitive_closure(&ProbMonoid, &edges).unwrap();
    let mut post = edges.clone();
    post.push(bridge(0));
    post.sort_by(|a, b| a.0.cmp(&b.0));
    let ins = [bridge(0)];
    group.bench_function(BenchmarkId::new("fix_incr_patch", edges.len()), |b| {
        b.iter(|| {
            let mut patched = run.clone();
            patch_inserts(
                &ProbMonoid,
                &mut patched,
                &post,
                &ins,
                &ins,
                StepShape::LeftLinear,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_recursive_summary(_c: &mut Criterion) {
    println!("\n== recursive_scaling (annotated transitive closure over disjoint chains)");
    let mut entries: Vec<SummaryEntry> = Vec::new();
    let sizes: &[usize] = if smoke_mode() {
        &[2_048]
    } else {
        &[8_192, 32_768]
    };
    for &n in sizes {
        let edges = chain_forest(n, 23);
        let d = edges.len();
        let iters = 8usize;

        // --- Fresh fixpoint build, once per storage layout; every
        // layout must hand the kernel identical rows.
        let mut runs = Vec::new();
        for (label, backend) in [
            ("map", Backend::Map),
            ("columnar", Backend::Columnar),
            ("compressed", Backend::Compressed),
        ] {
            let mut last = None;
            entries.extend(thread_sweep(
                &format!("fix_build_{label}_{d}"),
                &[1],
                iters,
                |_| {
                    last = Some(transitive_closure_on(backend, &ProbMonoid, &edges).unwrap());
                },
            ));
            runs.push(last.unwrap());
        }
        for r in &runs[1..] {
            assert_eq!(runs[0].acc, r.acc, "backends diverged on the accumulator");
            assert_eq!(
                runs[0].stats, r.stats,
                "backends diverged on fixpoint stats"
            );
            assert_eq!(runs[0].total.to_bits(), r.total.to_bits());
        }

        // --- Sharded serving build across thread counts: session
        // construction + first `query_fix` (encode, materialise, run).
        let total_bits = runs[0].total.to_bits();
        let mut interner = Interner::new();
        let e = interner.intern("E");
        let facts: Vec<(Fact, f64)> = edges
            .iter()
            .map(|(t, p)| (Fact::new(e, t.clone()), *p))
            .collect();
        entries.extend(thread_sweep(
            &format!("fix_build_sharded_{d}"),
            &[1, 2, 8],
            iters.min(4),
            |t| {
                let mut s: ServingSession<ProbMonoid, ShardedColumnar<f64>> =
                    ServingSession::with_parallelism(
                        ProbMonoid,
                        &interner,
                        facts.iter().cloned(),
                        Parallelism::fine_grained(t),
                    )
                    .unwrap();
                let (p, _) = s.query_fix(&interner, "E", None, None).unwrap();
                assert_eq!(p.to_bits(), total_bits, "sharded serving diverged");
            },
        ));

        // --- Single-edge incremental: patch the materialised run vs a
        // fresh fixpoint over the post-insert edges.
        let base_run = runs.swap_remove(0);
        let mut post = edges.clone();
        post.push(bridge(0));
        post.sort_by(|a, b| a.0.cmp(&b.0));
        let ins = [bridge(0)];
        let mut last_patch = None;
        entries.extend(thread_sweep(
            &format!("fix_incr_patch_{d}"),
            &[1],
            iters,
            |_| {
                let mut patched = base_run.clone();
                match patch_inserts(
                    &ProbMonoid,
                    &mut patched,
                    &post,
                    &ins,
                    &ins,
                    StepShape::LeftLinear,
                )
                .unwrap()
                {
                    PatchOutcome::Patched(p) => last_patch = Some((p, patched)),
                    PatchOutcome::Rebuild => panic!("a bridge insert must patch in place"),
                }
            },
        ));
        let (patch, patched) = last_patch.unwrap();
        let mut last_fresh = None;
        entries.extend(thread_sweep(
            &format!("fix_incr_fresh_{d}"),
            &[1],
            iters,
            |_| {
                last_fresh = Some(transitive_closure(&ProbMonoid, &post).unwrap());
            },
        ));
        let fresh = last_fresh.unwrap();
        assert_eq!(patched.acc, fresh.acc, "patched run diverged from fresh");
        assert_eq!(patched.stats, fresh.stats, "patched stats diverged");
        assert_eq!(patched.total.to_bits(), fresh.total.to_bits());
        assert!(
            patch.performed_add + patch.performed_mul < fresh.stats.total_ops(),
            "patch must perform strictly fewer monoid ops: {} vs {}",
            patch.performed_add + patch.performed_mul,
            fresh.stats.total_ops()
        );
        assert!(
            patch.refolded_rows < fresh.acc.len(),
            "patch must refold strictly fewer rows: {} vs {}",
            patch.refolded_rows,
            fresh.acc.len()
        );

        // --- Serving-layer incremental on the columnar backend: one
        // novel bridge edge per iteration, served immediately.
        let mut session: ServingSession<ProbMonoid, ColumnarRelation<f64>> =
            ServingSession::new(ProbMonoid, &interner, facts.iter().cloned()).unwrap();
        session.query_fix(&interner, "E", None, None).unwrap();
        let mut i = 1i64;
        entries.extend(thread_sweep(
            &format!("fix_incr_serving_{d}"),
            &[1],
            iters,
            |_| {
                let (t, p) = bridge(i);
                i += 1;
                session.update(&interner, &Fact::new(e, t), p).unwrap();
                session.query_fix(&interner, "E", None, None).unwrap();
            },
        ));
    }
    match write_bench_summary("recursive_scaling", &entries) {
        Ok(path) => println!("wrote {path}"),
        Err(err) => println!("could not write summary: {err}"),
    }
}

criterion_group!(benches, bench_recursive, bench_recursive_summary);
criterion_main!(benches);
