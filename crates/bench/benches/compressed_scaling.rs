//! Compressed columnar tier: memory footprint and streaming-kernel
//! throughput, up to `|D| = 10M` rows.
//!
//! The workload is the block format's target shape: sorted code rows
//! `(i/16, i%16)` — a delta-friendly leading key column, a 4-bit
//! FOR-packed trailing column — with annotations cycling through 8
//! distinct values (dictionary-coded per block). Streamed through
//! [`CompressedBuilder`], the 10M-row relation never materialises a
//! dense matrix at any point: build, Rule 1 fold, and Rule 2 merge all
//! run block-at-a-time.
//!
//! Asserted in-bench (smoke mode included):
//! * footprint: compressed `storage_bytes` ≤ 25% of the dense columnar
//!   equivalent, at 32k (against a real dense build) and at 10M
//!   (against the dense per-row arithmetic);
//! * bit-identity: fold and merge outputs equal the dense kernels'
//!   row-for-row, with identical [`EngineStats`]; the 10M fold's every
//!   group annotation matches the closed form;
//! * spill-on-evict beats recompute: under a 1-row cache budget, the
//!   spilling serving session re-serves alternating pipelines with
//!   **zero** further monoid ops after its warm round, while the
//!   recomputing session pays the full pipeline every time.
//!
//! Wall-clock bars (skipped under `HQ_BENCH_SMOKE`): fold and merge at
//! 32k within 2× of the dense kernels; spilled re-serving faster than
//! recomputing. Emits `BENCH_compressed_scaling.json` (skipped in CI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hq_bench::{chain_tid, smoke_mode, thread_sweep, write_bench_summary, SummaryEntry};
use hq_db::{RowCode, Value, ValueDict};
use hq_monoid::{CountMonoid, ProbMonoid};
use hq_query::Var;
use hq_unify::engine::EngineStats;
use hq_unify::{CompressedBuilder, CompressedColumnar, ServingSession, Storage};
use std::sync::Arc;

/// Dense-columnar bytes per row of this schema (2 key codes + one
/// `u64` annotation) — the footprint the compressed tier is measured
/// against when the dense build would not fit the point of the bench.
const DENSE_ROW_BYTES: usize = 2 * std::mem::size_of::<RowCode>() + std::mem::size_of::<u64>();

/// An identity dictionary large enough for every code the workload
/// uses: code `c` decodes to `Int(c)`.
fn identity_dict(codes: usize) -> Arc<ValueDict> {
    Arc::new(ValueDict::from_sorted(
        (0..codes as i64).map(Value::Int).collect(),
    ))
}

/// Streams the sorted workload into compressed blocks: row `i` is
/// `(i/16, i%16)` annotated `(i % 8) + 1`.
fn build_compressed(rows: usize, dict: &Arc<ValueDict>) -> CompressedColumnar<u64> {
    let mut b = CompressedBuilder::new(2);
    for i in 0..rows {
        let row = [(i / 16) as RowCode, (i % 16) as RowCode];
        b.push(&row, (i % 8) as u64 + 1);
    }
    b.finish(vec![Var(0), Var(1)], Arc::clone(dict))
}

/// The same rows annotated `2` — the merge partner.
fn build_partner(rows: usize, dict: &Arc<ValueDict>) -> CompressedColumnar<u64> {
    let mut b = CompressedBuilder::new(2);
    for i in 0..rows {
        let row = [(i / 16) as RowCode, (i % 16) as RowCode];
        b.push(&row, 2u64);
    }
    b.finish(vec![Var(0), Var(1)], Arc::clone(dict))
}

/// A sparse partner holding every 256th row — the annihilating merge's
/// block-skip showcase: whole left blocks fall outside the right
/// support and are skipped by min/max without decoding.
fn build_sparse(rows: usize, dict: &Arc<ValueDict>) -> CompressedColumnar<u64> {
    let mut b = CompressedBuilder::new(2);
    for i in (0..rows).step_by(256) {
        let row = [(i / 16) as RowCode, (i % 16) as RowCode];
        b.push(&row, 3u64);
    }
    b.finish(vec![Var(0), Var(1)], Arc::clone(dict))
}

/// Mean and minimum wall-clock of one side of an interleaved A/B run.
struct AbMeasure {
    mean_ns: f64,
    min_ns: f64,
}

/// Alternates the two closures in batches (after one warm-up call
/// each) and reports the mean and the minimum batch-mean per side.
/// Interleaving keeps both sides exposed to the same host
/// clock-frequency drift — back-to-back separate sweeps can disagree
/// by 2x on a drifting host — while batching keeps each measurement
/// homogeneous (branch predictors settle per side). The min-of-batches
/// ratio is what the throughput bars assert on.
fn interleaved_ab(
    iters: usize,
    a: &mut dyn FnMut(),
    b: &mut dyn FnMut(),
) -> (AbMeasure, AbMeasure) {
    const BATCH: usize = 4;
    let rounds = iters.div_ceil(BATCH).max(1);
    a();
    b();
    let mut acc = [(0f64, f64::MAX); 2];
    for _ in 0..rounds {
        for (side, acc) in acc.iter_mut().enumerate() {
            let t = std::time::Instant::now();
            for _ in 0..BATCH {
                if side == 0 {
                    a();
                } else {
                    b();
                }
            }
            let ns = t.elapsed().as_secs_f64() * 1e9 / BATCH as f64;
            acc.0 += ns;
            acc.1 = acc.1.min(ns);
        }
    }
    let m = |(sum, min): (f64, f64)| AbMeasure {
        mean_ns: sum / rounds as f64,
        min_ns: min,
    };
    (m(acc[0]), m(acc[1]))
}

/// A single-threaded summary entry for a measured workload.
fn summary_entry(workload: &str, mean_ns: f64) -> SummaryEntry {
    SummaryEntry {
        workload: workload.to_owned(),
        threads: 1,
        mean_ns,
        speedup_vs_1: 1.0,
        pool_workers: hq_unify::pool::workers(),
        host_threads: hq_bench::host_threads(),
    }
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("compressed_scaling");
    group.sample_size(10);
    let rows = 32_768usize;
    let dict = identity_dict(rows / 16);
    let compressed = build_compressed(rows, &dict);
    let dense = compressed.to_columnar();
    let partner = build_partner(rows, &dict);
    let partner_dense = partner.to_columnar();
    group.bench_function(BenchmarkId::new("fold_compressed", rows), |b| {
        b.iter(|| {
            let mut stats = EngineStats::default();
            compressed
                .clone()
                .project_out(&CountMonoid, Var(1), &mut stats)
        })
    });
    group.bench_function(BenchmarkId::new("fold_dense", rows), |b| {
        b.iter(|| {
            let mut stats = EngineStats::default();
            dense.clone().project_out(&CountMonoid, Var(1), &mut stats)
        })
    });
    group.bench_function(BenchmarkId::new("merge_compressed", rows), |b| {
        b.iter(|| {
            let mut stats = EngineStats::default();
            compressed
                .clone()
                .merge(&CountMonoid, partner.clone(), &mut stats)
        })
    });
    group.bench_function(BenchmarkId::new("merge_dense", rows), |b| {
        b.iter(|| {
            let mut stats = EngineStats::default();
            dense
                .clone()
                .merge(&CountMonoid, partner_dense.clone(), &mut stats)
        })
    });
    group.finish();
}

#[allow(clippy::too_many_lines)]
fn bench_compressed_summary(_c: &mut Criterion) {
    println!("\n== compressed_scaling (sorted (i/16, i%16) workload, u64 annotations)");
    let mut entries: Vec<SummaryEntry> = Vec::new();
    let smoke = smoke_mode();

    // ---- 32k: throughput and bit-identity against the dense kernels.
    let rows = 32_768usize;
    let dict = identity_dict(rows / 16);
    let compressed = build_compressed(rows, &dict);
    let dense = compressed.to_columnar();
    let partner = build_partner(rows, &dict);
    let partner_dense = partner.to_columnar();
    assert!(
        compressed.storage_bytes() * 4 <= dense.storage_bytes(),
        "32k footprint: compressed {} B must be ≤ 25% of dense {} B",
        compressed.storage_bytes(),
        dense.storage_bytes()
    );
    let iters = if smoke { 3 } else { 16 };
    // Each interleaved session is fair to both sides, but a process can
    // land in a slow frequency/code-layout mode mid-run — re-measure up
    // to twice before trusting a ratio that trips the 2x bar.
    let mut fold_c = None;
    let mut fold_d = None;
    let mut attempt = 0;
    let (fold_c_m, fold_d_m) = loop {
        let (c, d) = interleaved_ab(
            iters,
            &mut || {
                let mut stats = EngineStats::default();
                let out = compressed
                    .clone()
                    .project_out(&CountMonoid, Var(1), &mut stats);
                fold_c = Some((out, stats));
            },
            &mut || {
                let mut stats = EngineStats::default();
                let out = dense.clone().project_out(&CountMonoid, Var(1), &mut stats);
                fold_d = Some((out, stats));
            },
        );
        attempt += 1;
        if smoke || c.min_ns <= 2.0 * d.min_ns || attempt == 3 {
            break (c, d);
        }
    };
    entries.push(summary_entry(
        &format!("fold_compressed_{rows}"),
        fold_c_m.mean_ns,
    ));
    entries.push(summary_entry(
        &format!("fold_dense_{rows}"),
        fold_d_m.mean_ns,
    ));
    let (fold_c, fold_c_stats) = fold_c.expect("measured");
    let (fold_d, fold_d_stats) = fold_d.expect("measured");
    assert_eq!(fold_c.rows(), fold_d.rows(), "fold outputs diverged at 32k");
    assert_eq!(fold_c_stats, fold_d_stats, "fold stats diverged at 32k");
    let mut merge_c = None;
    let mut merge_d = None;
    let mut attempt = 0;
    let (merge_c_m, merge_d_m) = loop {
        let (c, d) = interleaved_ab(
            iters,
            &mut || {
                let mut stats = EngineStats::default();
                let out = compressed
                    .clone()
                    .merge(&CountMonoid, partner.clone(), &mut stats);
                merge_c = Some((out, stats));
            },
            &mut || {
                let mut stats = EngineStats::default();
                let out = dense
                    .clone()
                    .merge(&CountMonoid, partner_dense.clone(), &mut stats);
                merge_d = Some((out, stats));
            },
        );
        attempt += 1;
        if smoke || c.min_ns <= 2.0 * d.min_ns || attempt == 3 {
            break (c, d);
        }
    };
    entries.push(summary_entry(
        &format!("merge_compressed_{rows}"),
        merge_c_m.mean_ns,
    ));
    entries.push(summary_entry(
        &format!("merge_dense_{rows}"),
        merge_d_m.mean_ns,
    ));
    let (merge_c, merge_c_stats) = merge_c.expect("measured");
    let (merge_d, merge_d_stats) = merge_d.expect("measured");
    assert_eq!(
        merge_c.rows(),
        merge_d.rows(),
        "merge outputs diverged at 32k"
    );
    assert_eq!(merge_c_stats, merge_d_stats, "merge stats diverged at 32k");
    println!(
        "  32k fold: compressed {:.3} ms vs dense {:.3} ms ({:.2}x, min-of-{iters}); \
         merge: {:.3} vs {:.3} ms ({:.2}x)",
        fold_c_m.min_ns / 1e6,
        fold_d_m.min_ns / 1e6,
        fold_c_m.min_ns / fold_d_m.min_ns,
        merge_c_m.min_ns / 1e6,
        merge_d_m.min_ns / 1e6,
        merge_c_m.min_ns / merge_d_m.min_ns
    );
    if !smoke {
        assert!(
            fold_c_m.min_ns <= 2.0 * fold_d_m.min_ns,
            "compressed fold must stay within 2x of dense at 32k: {:.0} vs {:.0} ns",
            fold_c_m.min_ns,
            fold_d_m.min_ns
        );
        assert!(
            merge_c_m.min_ns <= 2.0 * merge_d_m.min_ns,
            "compressed merge must stay within 2x of dense at 32k: {:.0} vs {:.0} ns",
            merge_c_m.min_ns,
            merge_d_m.min_ns
        );
    }

    // ---- 10M: build, footprint cap, fold, and block-skipping merge —
    // no dense matrix is ever materialised at this size.
    let big_rows = if smoke { 262_144 } else { 10_000_000 };
    let big_dict = identity_dict(big_rows / 16);
    let mut built = None;
    entries.extend(thread_sweep(&format!("build_{big_rows}"), &[1], 1, |_| {
        built = Some(build_compressed(big_rows, &big_dict));
    }));
    let big = built.expect("built");
    assert_eq!(big.support_size(), big_rows);
    let dense_equiv = big_rows * DENSE_ROW_BYTES;
    println!(
        "  |D| = {}: compressed {} B vs {} B dense-equivalent ({:.1}%)",
        big_rows,
        big.storage_bytes(),
        dense_equiv,
        100.0 * big.storage_bytes() as f64 / dense_equiv as f64
    );
    assert!(
        big.storage_bytes() * 4 <= dense_equiv,
        "10M footprint: compressed {} B must be ≤ 25% of dense-equivalent {} B",
        big.storage_bytes(),
        dense_equiv
    );
    let mut folded = None;
    entries.extend(thread_sweep(
        &format!("fold_{big_rows}"),
        &[1],
        if smoke { 1 } else { 3 },
        |_| {
            let mut stats = EngineStats::default();
            folded = Some(big.clone().project_out(&CountMonoid, Var(1), &mut stats));
        },
    ));
    let folded = folded.expect("folded");
    // Closed form: each group of 16 rows carries annotations
    // 1..8,1..8, so every ⊕-fold sums to 72.
    assert_eq!(folded.support_size(), big_rows / 16);
    assert!(
        folded.rows().iter().all(|(_, a)| *a == 72),
        "10M fold group annotations must all equal the closed form 72"
    );
    let sparse = build_sparse(big_rows, &big_dict);
    let mut skipped = None;
    entries.extend(thread_sweep(
        &format!("merge_skip_{big_rows}"),
        &[1],
        if smoke { 1 } else { 3 },
        |_| {
            let mut stats = EngineStats::default();
            skipped = Some(big.clone().merge(&CountMonoid, sparse.clone(), &mut stats));
        },
    ));
    let skipped = skipped.expect("merged");
    assert_eq!(
        skipped.support_size(),
        big_rows.div_ceil(256),
        "annihilating merge keeps exactly the sparse side's support"
    );
    assert!(
        skipped.rows().iter().all(|(_, a)| *a % 3 == 0),
        "every surviving annotation is a product with the sparse side's 3"
    );

    // ---- Spill-on-evict vs recompute on the interleaved serving
    // workload: alternating two disjoint pipelines under a 1-row cache
    // budget, every re-serve either reloads spilled bytes (zero monoid
    // ops) or recomputes the full pipeline.
    let w = chain_tid(if smoke { 1_000 } else { 16_000 }, 17);
    let d = w.tid.len();
    let q_e = hq_query::parse_query("Q() :- E(X,Y)").unwrap();
    let q_f = hq_query::parse_query("Q() :- F(Y,Z)").unwrap();
    let mut spill: ServingSession<ProbMonoid, CompressedColumnar<f64>> =
        ServingSession::new(ProbMonoid, &w.interner, w.tid.iter().cloned()).unwrap();
    assert!(spill.set_spill(true), "f64 carrier must be spillable");
    spill.set_cache_budget(Some(1));
    let mut recompute: ServingSession<ProbMonoid, CompressedColumnar<f64>> =
        ServingSession::new(ProbMonoid, &w.interner, w.tid.iter().cloned()).unwrap();
    recompute.set_cache_budget(Some(1));
    // Warm round: both sessions evaluate (and the spiller spills).
    let mut spill_vals = [0f64; 2];
    let mut recompute_vals = [0f64; 2];
    for (i, q) in [&q_e, &q_f].into_iter().enumerate() {
        spill_vals[i] = spill.query(&w.interner, q).unwrap().0;
        recompute_vals[i] = recompute.query(&w.interner, q).unwrap().0;
    }
    let spill_warm_ops = spill.ops_performed();
    let serve_iters = if smoke { 2 } else { 8 };
    entries.extend(thread_sweep(
        &format!("serve_spill_{d}"),
        &[1],
        serve_iters,
        |_| {
            for (i, q) in [&q_e, &q_f].into_iter().enumerate() {
                spill_vals[i] = spill.query(&w.interner, q).unwrap().0;
            }
        },
    ));
    let spill_ns = entries.last().expect("swept").mean_ns;
    entries.extend(thread_sweep(
        &format!("serve_recompute_{d}"),
        &[1],
        serve_iters,
        |_| {
            for (i, q) in [&q_e, &q_f].into_iter().enumerate() {
                recompute_vals[i] = recompute.query(&w.interner, q).unwrap().0;
            }
        },
    ));
    let recompute_ns = entries.last().expect("swept").mean_ns;
    for (s, r) in spill_vals.iter().zip(&recompute_vals) {
        assert_eq!(
            s.to_bits(),
            r.to_bits(),
            "spilling session diverged at |D| = {d}"
        );
    }
    assert_eq!(
        spill.ops_performed(),
        spill_warm_ops,
        "after the warm round every re-serve reloads spilled bytes: zero further ops"
    );
    assert!(
        spill.spill_reloads() >= 2,
        "both pipelines reloaded from disk"
    );
    assert!(
        spill.ops_performed() < recompute.ops_performed(),
        "spilling must undercut recompute ops at |D| = {d}: {} vs {}",
        spill.ops_performed(),
        recompute.ops_performed()
    );
    if !smoke {
        assert!(
            spill_ns < recompute_ns,
            "spilled re-serving must be faster than recompute at |D| = {d}: \
             {spill_ns:.0} vs {recompute_ns:.0} ns"
        );
    }
    let path = write_bench_summary("compressed_scaling", &entries).expect("summary written");
    println!("summary: {path}");
}

criterion_group!(benches, bench_kernels, bench_compressed_summary);
criterion_main!(benches);
