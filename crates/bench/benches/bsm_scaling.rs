//! E5: Bag-Set Maximization runtime is O((|D|+|D_r|)·|D_r|²)
//! (Theorem 5.11): linear in |D| at fixed budget, quadratic in the
//! budget cap θ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hq_bench::bsm_workload;
use hq_unify::bsm;
use std::time::Duration;

fn bench_bsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsm_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // (a) sweep |D| at fixed θ.
    for d_size in [500usize, 1_000, 2_000] {
        let w = bsm_workload(d_size, 40, 17);
        group.throughput(Throughput::Elements(3 * d_size as u64));
        group.bench_with_input(BenchmarkId::new("sweep_d", 3 * d_size), &w, |b, w| {
            b.iter(|| bsm::maximize(&w.query, &w.interner, &w.d, &w.d_r, 10).unwrap())
        });
    }
    // (b) sweep θ at fixed |D|.
    for theta in [8usize, 16, 32, 64] {
        let w = bsm_workload(300, 200, 19);
        group.bench_with_input(BenchmarkId::new("sweep_theta", theta), &w, |b, w| {
            b.iter(|| bsm::maximize(&w.query, &w.interner, &w.d, &w.d_r, theta).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bsm);
criterion_main!(benches);
