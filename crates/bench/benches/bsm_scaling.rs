//! E5: Bag-Set Maximization runtime is O((|D|+|D_r|)·|D_r|²)
//! (Theorem 5.11): linear in |D| at fixed budget, quadratic in the
//! budget cap θ. Both storage backends run every series — the
//! algorithmic bound is identical, the columnar layout only shrinks
//! the constants.
//!
//! With `HQ_BENCH_SMOKE` set (the CI smoke step) the workloads shrink
//! to their smallest size and the wall-clock speedup gate is skipped —
//! but every kernel and every curve-identity assertion still runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hq_bench::{bsm_workload, host_threads, smoke_mode, thread_sweep, write_bench_summary};
use hq_unify::{bsm, Backend, Parallelism};
use std::time::Duration;

fn bench_bsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsm_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let smoke = smoke_mode();
    let d_sizes: &[usize] = if smoke { &[500] } else { &[500, 2_000, 8_000] };
    let thetas: &[usize] = if smoke { &[8] } else { &[8, 16, 32, 64] };
    // (a) sweep |D| at fixed θ.
    for &d_size in d_sizes {
        let w = bsm_workload(d_size, 40, 17);
        group.throughput(Throughput::Elements(3 * d_size as u64));
        for backend in Backend::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("sweep_d_{backend}"), 3 * d_size),
                &w,
                |b, w| {
                    b.iter(|| {
                        bsm::maximize_on(backend, &w.query, &w.interner, &w.d, &w.d_r, 10).unwrap()
                    })
                },
            );
        }
    }
    // (b) sweep θ at fixed |D|.
    for &theta in thetas {
        let w = bsm_workload(300, 200, 19);
        for backend in Backend::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("sweep_theta_{backend}"), theta),
                &w,
                |b, w| {
                    b.iter(|| {
                        bsm::maximize_on(backend, &w.query, &w.interner, &w.d, &w.d_r, theta)
                            .unwrap()
                    })
                },
            );
        }
    }
    // Sanity: identical budget curves on the largest |D| sweep point.
    let w = bsm_workload(*d_sizes.last().unwrap(), 40, 17);
    let map = bsm::maximize_on(Backend::Map, &w.query, &w.interner, &w.d, &w.d_r, 10).unwrap();
    let col = bsm::maximize_on(Backend::Columnar, &w.query, &w.interner, &w.d, &w.d_r, 10).unwrap();
    assert_eq!(map.curve, col.curve, "backends disagreed");
    group.finish();
}

/// The threads axis: sharded columnar BSM at 1/2/4/max workers on the
/// largest |D| and largest θ sweep points, curves asserted identical
/// at every count; emits `BENCH_bsm_scaling.json`.
fn bench_bsm_threads(_c: &mut Criterion) {
    println!("\n== bsm_scaling/threads (sharded columnar)");
    let smoke = smoke_mode();
    let (d_size, theta_big) = if smoke { (500, 8) } else { (8_000, 64) };
    let max = Parallelism::available().threads;
    let mut counts = vec![1usize, 2, 4];
    if !counts.contains(&max) {
        counts.push(max);
    }
    let mut entries = Vec::new();
    for (label, w, theta) in [
        (
            format!("sweep_d_{}", 3 * d_size),
            bsm_workload(d_size, 40, 17),
            10usize,
        ),
        (
            format!("sweep_theta_{theta_big}"),
            bsm_workload(300, 200, 19),
            theta_big,
        ),
    ] {
        let seq = bsm::maximize_on(
            Backend::Columnar,
            &w.query,
            &w.interner,
            &w.d,
            &w.d_r,
            theta,
        )
        .unwrap();
        entries.extend(thread_sweep(&label, &counts, 3, |threads| {
            let sol = bsm::maximize_par(
                Backend::Columnar,
                Parallelism::new(threads),
                &w.query,
                &w.interner,
                &w.d,
                &w.d_r,
                theta,
            )
            .unwrap();
            assert_eq!(
                seq.curve, sol.curve,
                "{label}: sharded at {threads} threads diverged"
            );
            sol.optimum()
        }));
    }
    // Acceptance gate: > 2x at 4 threads on the largest |D| sweep —
    // the θ sweep's |D| is too small for sharding to pay, so only the
    // sweep_d point is gated. Skipped in smoke mode and on hosts with
    // fewer than 4 hardware threads.
    if !smoke && host_threads() >= 4 {
        for e in entries
            .iter()
            .filter(|e| e.threads == 4 && e.workload.starts_with("sweep_d"))
        {
            assert!(
                e.speedup_vs_1 > 2.0,
                "{}: expected >2x at 4 threads, got {:.2}x",
                e.workload,
                e.speedup_vs_1
            );
        }
    }
    let path = write_bench_summary("bsm_scaling", &entries).expect("summary written");
    println!("summary: {path}");
}

criterion_group!(benches, bench_bsm, bench_bsm_threads);
criterion_main!(benches);
