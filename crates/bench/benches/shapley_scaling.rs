//! E7: #Sat / Shapley runtime is O((|D_x|+|D_n|)·|D_n|²)
//! (Theorem 5.16): one Algorithm-1 run per #Sat vector, two per
//! Shapley value.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hq_bench::{shapley_workload, smoke_mode};
use hq_unify::shapley;
use std::time::Duration;

fn bench_shapley(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapley_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let sizes: &[usize] = if smoke_mode() { &[20] } else { &[20, 40, 80] };
    for &n_rel in sizes {
        let w = shapley_workload(n_rel, 0.5, 29);
        group.bench_with_input(
            BenchmarkId::new("sat_counts", w.endogenous.len()),
            &w,
            |b, w| {
                b.iter(|| {
                    shapley::sat_counts(&w.query, &w.interner, &w.exogenous, &w.endogenous).unwrap()
                })
            },
        );
        let f = w.endogenous[0].clone();
        group.bench_with_input(
            BenchmarkId::new("shapley_value", w.endogenous.len()),
            &(&w, f),
            |b, (w, f)| {
                b.iter(|| {
                    shapley::shapley_value(&w.query, &w.interner, &w.exogenous, &w.endogenous, f)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shapley);
criterion_main!(benches);
