//! E3: Probabilistic Query Evaluation scales linearly in |D|
//! (Theorem 5.8). Series over chain and star (Eq. 1) queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hq_bench::{chain_tid, star_tid};
use hq_unify::pqe;
use std::time::Duration;

fn bench_pqe(c: &mut Criterion) {
    let mut group = c.benchmark_group("pqe_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [1_000usize, 4_000, 16_000] {
        let w = chain_tid(n, 11);
        group.throughput(Throughput::Elements(w.tid.len() as u64));
        group.bench_with_input(BenchmarkId::new("chain", w.tid.len()), &w, |b, w| {
            b.iter(|| pqe::probability(&w.query, &w.interner, &w.tid).unwrap())
        });
        let w = star_tid(n, 12);
        group.throughput(Throughput::Elements(w.tid.len() as u64));
        group.bench_with_input(BenchmarkId::new("star_eq1", w.tid.len()), &w, |b, w| {
            b.iter(|| pqe::probability(&w.query, &w.interner, &w.tid).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pqe);
criterion_main!(benches);
