//! E3: Probabilistic Query Evaluation scales linearly in |D|
//! (Theorem 5.8). Series over chain and star (Eq. 1) queries, racing
//! the ordered-map and columnar storage backends on identical
//! workloads (they return bit-identical probabilities; only the
//! constants differ).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hq_bench::{chain_tid, star_tid, thread_sweep, write_bench_summary};
use hq_unify::{pqe, Backend, Parallelism};
use std::time::Duration;

fn bench_pqe(c: &mut Criterion) {
    let mut group = c.benchmark_group("pqe_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [1_000usize, 4_000, 16_000] {
        for backend in Backend::ALL {
            let w = chain_tid(n, 11);
            group.throughput(Throughput::Elements(w.tid.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("chain_{backend}"), w.tid.len()),
                &w,
                |b, w| {
                    b.iter(|| pqe::probability_on(backend, &w.query, &w.interner, &w.tid).unwrap())
                },
            );
            let w = star_tid(n, 12);
            group.throughput(Throughput::Elements(w.tid.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("star_eq1_{backend}"), w.tid.len()),
                &w,
                |b, w| {
                    b.iter(|| pqe::probability_on(backend, &w.query, &w.interner, &w.tid).unwrap())
                },
            );
        }
    }
    // Sanity: the backends agree bit-for-bit on the largest workload.
    let w = chain_tid(16_000, 11);
    let pm = pqe::probability_on(Backend::Map, &w.query, &w.interner, &w.tid).unwrap();
    let pc = pqe::probability_on(Backend::Columnar, &w.query, &w.interner, &w.tid).unwrap();
    assert_eq!(
        pm.to_bits(),
        pc.to_bits(),
        "backends disagreed: {pm} vs {pc}"
    );
    group.finish();
}

/// The threads axis: sharded columnar at 1/2/4/max workers on the
/// largest workloads, with bit-identity asserted at every count and a
/// machine-readable `BENCH_pqe_scaling.json` emitted for the perf
/// trajectory.
fn bench_pqe_threads(_c: &mut Criterion) {
    println!("\n== pqe_scaling/threads (sharded columnar)");
    let max = Parallelism::available().threads;
    let mut counts = vec![1usize, 2, 4];
    if !counts.contains(&max) {
        counts.push(max);
    }
    let mut entries = Vec::new();
    for (label, w) in [
        ("chain_16000", chain_tid(16_000, 11)),
        ("star_eq1_16000", star_tid(16_000, 12)),
    ] {
        let seq = pqe::probability_on(Backend::Columnar, &w.query, &w.interner, &w.tid).unwrap();
        entries.extend(thread_sweep(label, &counts, 5, |threads| {
            let p = pqe::probability_par(
                Backend::Columnar,
                Parallelism::new(threads),
                &w.query,
                &w.interner,
                &w.tid,
            )
            .unwrap();
            assert_eq!(
                seq.to_bits(),
                p.to_bits(),
                "{label}: sharded at {threads} threads diverged"
            );
            p
        }));
    }
    let path = write_bench_summary("pqe_scaling", &entries).expect("summary written");
    println!("summary: {path}");
}

criterion_group!(benches, bench_pqe, bench_pqe_threads);
criterion_main!(benches);
