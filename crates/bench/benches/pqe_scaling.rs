//! E3: Probabilistic Query Evaluation scales linearly in |D|
//! (Theorem 5.8). Series over chain and star (Eq. 1) queries, racing
//! the ordered-map and columnar storage backends on identical
//! workloads (they return bit-identical probabilities; only the
//! constants differ).
//!
//! With `HQ_BENCH_SMOKE` set (the CI smoke step) the workloads shrink
//! to their smallest size and the wall-clock speedup gate is skipped —
//! but every kernel and every bit-identity assertion still runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hq_bench::{chain_tid, host_threads, smoke_mode, star_tid, thread_sweep, write_bench_summary};
use hq_unify::{pqe, Backend, Parallelism};
use std::time::Duration;

fn bench_pqe(c: &mut Criterion) {
    let mut group = c.benchmark_group("pqe_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let sizes: &[usize] = if smoke_mode() {
        &[1_000]
    } else {
        &[1_000, 4_000, 16_000]
    };
    for &n in sizes {
        for backend in Backend::ALL {
            let w = chain_tid(n, 11);
            group.throughput(Throughput::Elements(w.tid.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("chain_{backend}"), w.tid.len()),
                &w,
                |b, w| {
                    b.iter(|| pqe::probability_on(backend, &w.query, &w.interner, &w.tid).unwrap())
                },
            );
            let w = star_tid(n, 12);
            group.throughput(Throughput::Elements(w.tid.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("star_eq1_{backend}"), w.tid.len()),
                &w,
                |b, w| {
                    b.iter(|| pqe::probability_on(backend, &w.query, &w.interner, &w.tid).unwrap())
                },
            );
        }
    }
    // Sanity: the backends agree bit-for-bit on the largest workload.
    let w = chain_tid(*sizes.last().unwrap(), 11);
    let pm = pqe::probability_on(Backend::Map, &w.query, &w.interner, &w.tid).unwrap();
    let pc = pqe::probability_on(Backend::Columnar, &w.query, &w.interner, &w.tid).unwrap();
    assert_eq!(
        pm.to_bits(),
        pc.to_bits(),
        "backends disagreed: {pm} vs {pc}"
    );
    group.finish();
}

/// The threads axis: sharded columnar at 1/2/4/max workers on the
/// largest workloads, with bit-identity asserted at every count and a
/// machine-readable `BENCH_pqe_scaling.json` emitted for the perf
/// trajectory.
fn bench_pqe_threads(_c: &mut Criterion) {
    println!("\n== pqe_scaling/threads (sharded columnar)");
    let smoke = smoke_mode();
    let n = if smoke { 1_000 } else { 16_000 };
    let max = Parallelism::available().threads;
    let mut counts = vec![1usize, 2, 4];
    if !counts.contains(&max) {
        counts.push(max);
    }
    let mut entries = Vec::new();
    for (label, w) in [
        (format!("chain_{n}"), chain_tid(n, 11)),
        (format!("star_eq1_{n}"), star_tid(n, 12)),
    ] {
        let seq = pqe::probability_on(Backend::Columnar, &w.query, &w.interner, &w.tid).unwrap();
        entries.extend(thread_sweep(&label, &counts, 5, |threads| {
            let p = pqe::probability_par(
                Backend::Columnar,
                Parallelism::new(threads),
                &w.query,
                &w.interner,
                &w.tid,
            )
            .unwrap();
            assert_eq!(
                seq.to_bits(),
                p.to_bits(),
                "{label}: sharded at {threads} threads diverged"
            );
            p
        }));
    }
    // Acceptance gate: > 2x at 4 threads on the largest workloads.
    // Only meaningful on hosts with >= 4 hardware threads, and skipped
    // in smoke mode (which shrinks the workloads below the point where
    // sharding pays).
    if !smoke && host_threads() >= 4 {
        for e in entries.iter().filter(|e| e.threads == 4) {
            assert!(
                e.speedup_vs_1 > 2.0,
                "{}: expected >2x at 4 threads, got {:.2}x",
                e.workload,
                e.speedup_vs_1
            );
        }
    }
    let path = write_bench_summary("pqe_scaling", &entries).expect("summary written");
    println!("summary: {path}");
}

criterion_group!(benches, bench_pqe, bench_pqe_threads);
criterion_main!(benches);
