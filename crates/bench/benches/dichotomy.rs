//! E4/E6/E9: the dichotomy, measured. Unified algorithm vs the
//! definitional exponential baselines on matched instances — the
//! baselines double per added fact while the unified algorithm stays
//! polynomial (and is only available for hierarchical queries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hq_baselines::{maximize_bruteforce, probability_exhaustive};
use hq_bench::{bsm_workload, chain_tid};
use hq_unify::{bsm, pqe};
use std::time::Duration;

fn bench_pqe_dichotomy(c: &mut Criterion) {
    let mut group = c.benchmark_group("pqe_dichotomy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [4usize, 6, 8] {
        let w = chain_tid(n, 13);
        group.bench_with_input(BenchmarkId::new("unified", 2 * n), &w, |b, w| {
            b.iter(|| pqe::probability(&w.query, &w.interner, &w.tid).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("possible_worlds", 2 * n), &w, |b, w| {
            b.iter(|| probability_exhaustive(&w.query, &w.interner, &w.tid))
        });
    }
    group.finish();
}

fn bench_bsm_dichotomy(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsm_dichotomy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for m in [4usize, 6, 8] {
        let w = bsm_workload(10, m, 23);
        let theta = m;
        group.bench_with_input(BenchmarkId::new("unified", m), &w, |b, w| {
            b.iter(|| bsm::maximize(&w.query, &w.interner, &w.d, &w.d_r, theta).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("subset_enumeration", m), &w, |b, w| {
            b.iter(|| maximize_bruteforce(&w.query, &w.interner, &w.d, &w.d_r, theta))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pqe_dichotomy, bench_bsm_dichotomy);
criterion_main!(benches);
