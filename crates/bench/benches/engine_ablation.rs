//! Ablation: elimination-plan order (Rule-1-first vs Rule-2-first vs
//! high-variable-first). Proposition 5.1 guarantees identical results;
//! this bench measures how much the order affects intermediate sizes
//! and runtime on the Eq. (1) workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hq_bench::star_tid;
use hq_monoid::ProbMonoid;
use hq_query::{plan_with_order, PlanOrder};
use hq_unify::{annotate, run_plan};
use std::time::Duration;

fn bench_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_order_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let w = star_tid(8_000, 61);
    for (name, order) in [
        ("rule1_first", PlanOrder::Rule1First),
        ("rule2_first", PlanOrder::Rule2First),
        ("rule1_high_var", PlanOrder::Rule1HighVar),
    ] {
        let p = plan_with_order(&w.query, order).unwrap();
        group.bench_with_input(BenchmarkId::new(name, w.tid.len()), &p, |b, p| {
            b.iter(|| {
                let db = annotate(
                    &w.query,
                    &w.interner,
                    w.tid.iter().map(|(f, pr)| (f.clone(), *pr)),
                )
                .unwrap();
                run_plan(&ProbMonoid, p, db)
            })
        });
    }
    // Sanity: all orders produce the same probability.
    let mut results = Vec::new();
    for order in [
        PlanOrder::Rule1First,
        PlanOrder::Rule2First,
        PlanOrder::Rule1HighVar,
    ] {
        let p = plan_with_order(&w.query, order).unwrap();
        let db = annotate(
            &w.query,
            &w.interner,
            w.tid.iter().map(|(f, pr)| (f.clone(), *pr)),
        )
        .unwrap();
        results.push(run_plan(&ProbMonoid, &p, db).0);
    }
    assert!(
        results.windows(2).all(|x| (x[0] - x[1]).abs() < 1e-9),
        "plan orders disagreed: {results:?}"
    );
    group.finish();
}

criterion_group!(benches, bench_orders);
criterion_main!(benches);
